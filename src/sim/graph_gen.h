// Copyright 2026 The LTAM Authors.
// Synthetic location-graph generators for tests and benchmarks.
//
// The paper's complexity claim for Algorithm 1 is O(NL^2 * Nd * Na); the
// generators here let the benchmark harness sweep NL (location count) and
// Nd (degree) independently: grids (fixed degree 4), trees (degree b+1),
// random regular-ish graphs (configurable degree), and campus-like
// multilevel layouts mirroring Figure 2's structure at scale.

#ifndef LTAM_SIM_GRAPH_GEN_H_
#define LTAM_SIM_GRAPH_GEN_H_

#include <cstdint>

#include "graph/multilevel_graph.h"
#include "util/random.h"
#include "util/result.h"

namespace ltam {

/// A width x height 4-connected grid of primitive rooms under one root;
/// the (0,0) corner room is the entry.
Result<MultilevelLocationGraph> MakeGridGraph(uint32_t width,
                                              uint32_t height);

/// A complete `branching`-ary tree of `depth` levels of primitive rooms
/// (edges parent-child); the root room is the entry. depth = 1 is a
/// single room.
Result<MultilevelLocationGraph> MakeTreeGraph(uint32_t branching,
                                              uint32_t depth);

/// A connected random graph over `n` primitive rooms where every room
/// gets approximately `degree` neighbors (a Hamiltonian cycle for
/// connectivity plus random chords). Room 0 is the entry.
Result<MultilevelLocationGraph> MakeRandomRegularGraph(uint32_t n,
                                                       uint32_t degree,
                                                       Rng* rng);

/// A campus-like multilevel graph: `buildings` composite buildings under
/// the root, each containing `rooms_per_building` primitive rooms
/// arranged as a path with one entry (its "GO"), buildings connected in a
/// ring at the root level (the shape of Figure 2 at parametric scale).
Result<MultilevelLocationGraph> MakeCampusGraph(uint32_t buildings,
                                                uint32_t rooms_per_building);

/// Builds exactly the NTU multilevel location graph of Figures 1-2:
/// composites SCE/EEE/CEE/SME/NBS under root NTU, the SCE and EEE room
/// graphs (GO, Dean's Office, SectionA/B/C, CAIS, CHIPES, Lab1, Lab2),
/// entry locations (SCE.GO, SCE.SectionC, EEE.GO, EEE.SectionC, ...) and
/// the edges implied by the paper's routes:
///   - simple route <SCE.Dean's Office, SCE.SectionA, SCE.SectionB, CAIS>;
///   - complex route <EEE.Dean's Office, EEE.SectionA, EEE.GO, SCE.GO,
///     SCE.SectionA, SCE.Dean's Office>;
///   - all_route_from(SCE.GO) to CAIS covering {SCE.GO, SCE.SectionA,
///     SCE.SectionB, SCE.SectionC, CHIPES} (Example 3).
Result<MultilevelLocationGraph> MakeNtuCampusGraph();

/// Builds the 4-location example graph of Figure 4 (A, B, C, D with edges
/// A-B, A-D, B-C, C-D; A is the entry), with edge insertion order chosen
/// so the worklist algorithm reproduces Table 2's row order.
Result<MultilevelLocationGraph> MakeFig4Graph();

}  // namespace ltam

#endif  // LTAM_SIM_GRAPH_GEN_H_
