// Copyright 2026 The LTAM Authors.
// Derivation of authorizations from rules (Section 4).
//
// "An authorization rule generates a number of authorizations based on an
// input authorization... The access control engine is also responsible
// for authorization derivation. When the administrator specifies new
// rules, [it] will evaluate the new rules on the existing authorizations
// and user profiles. The derived authorizations are then added to the
// authorization database."
//
// The engine also implements the re-derivation semantics of Example 1:
// "By specifying this rule, it is not necessary to create new
// authorizations if Alice is assigned a different supervisor. The system
// is able to automatically derive the authorizations for the new
// supervisor while the authorization for Bob will be revoked."

#ifndef LTAM_CORE_RULES_RULE_ENGINE_H_
#define LTAM_CORE_RULES_RULE_ENGINE_H_

#include <vector>

#include "core/auth_database.h"
#include "core/rules/rule.h"
#include "graph/multilevel_graph.h"
#include "profile/user_profile.h"

namespace ltam {

/// Outcome of one derivation pass.
struct DerivationReport {
  /// Rules evaluated.
  size_t rules_evaluated = 0;
  /// Authorizations newly added.
  size_t derived = 0;
  /// Previously derived authorizations revoked before re-derivation.
  size_t revoked = 0;
  /// Candidate derivations dropped because the operator pipeline produced
  /// an entry/exit combination violating Definition 4 even after
  /// clamping, or produced no subjects/locations/durations.
  size_t skipped = 0;
};

/// Evaluates authorization rules against the authorization, profile, and
/// location databases.
class RuleEngine {
 public:
  /// The engine borrows all three stores; they must outlive it.
  RuleEngine(AuthorizationDatabase* auth_db, UserProfileDatabase* profiles,
             const MultilevelLocationGraph* graph);

  /// Registers a rule; validates that the base authorization exists.
  Result<RuleId> AddRule(AuthorizationRule rule);

  /// Removes a rule and revokes everything it derived.
  Status RemoveRule(RuleId id);

  /// The registered rules.
  const std::vector<AuthorizationRule>& rules() const { return rules_; }

  /// Re-derives all rules: first revokes prior derivations of each rule,
  /// then derives afresh from current profiles and graph. Idempotent when
  /// nothing changed.
  Result<DerivationReport> DeriveAll();

  /// Derives a single rule (same revoke-then-derive contract).
  Result<DerivationReport> DeriveRule(RuleId id);

  /// DeriveAll() only when the profile database changed since the last
  /// derivation; returns an empty report otherwise.
  Result<DerivationReport> RefreshIfProfilesChanged();

  /// Expands one rule against its base authorization without touching the
  /// database — the derived quadruples in evaluation order.
  Result<std::vector<LocationTemporalAuthorization>> Expand(
      const AuthorizationRule& rule) const;

 private:
  AuthorizationDatabase* auth_db_;
  UserProfileDatabase* profiles_;
  const MultilevelLocationGraph* graph_;
  std::vector<AuthorizationRule> rules_;
  uint64_t last_profile_version_ = 0;
};

}  // namespace ltam

#endif  // LTAM_CORE_RULES_RULE_ENGINE_H_
