// Copyright 2026 The LTAM Authors.
// In-process telemetry: a registry of named counters, gauges, and
// latency histograms, cheap enough to live on the server's hot path.
//
// Design constraints, in order:
//
//  1. Recording must never serialize hot-path threads against each
//     other. Counters are striped across cache-line-aligned atomic
//     cells indexed by a hash of the calling thread's id — an
//     uncontended relaxed fetch_add per increment, aggregated by
//     summing the stripes at read time (the classic "statistical
//     counter": reads are O(stripes) and may tear across stripes, but
//     a quiescent read is exact — telemetry_test asserts exactness).
//     Histograms take a striped mutex per Record; a LatencyHistogram
//     update touches several fields, and an uncontended spin on a
//     per-stripe lock is cheaper than making every bucket atomic.
//  2. A metric handle, once returned, is valid for the registry's
//     lifetime. Lookup (Counter()/Gauge()/Histogram()) takes the
//     registry mutex, so call sites resolve handles once and reuse
//     them; the instrumented paths never re-resolve names.
//  3. Snapshots are consistent per metric, not across metrics — a
//     scrape while writers run sees each histogram internally
//     coherent (per-stripe locks held during merge) but no global
//     barrier. That is the standard Prometheus contract.
//
// There is deliberately no process-global registry: tests run many
// servers in one process, and a bench baseline wants a server with no
// registry at all (a null MetricsRegistry* disables instrumentation
// at every call site). Owners — ltam_serve, tests — create one and
// thread a raw pointer through ServerOptions/RuntimeOptions.

#ifndef LTAM_TELEMETRY_METRICS_H_
#define LTAM_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/latency_histogram.h"

namespace ltam {

/// Monotonic nanoseconds — the clock every stage stamp and histogram
/// sample uses (steady_clock, so wall-clock steps never produce
/// negative stage durations).
uint64_t MonotonicNowNs();

/// A monotonically increasing sum, striped for write scalability.
/// Increment is a relaxed fetch_add on one cache-line-private cell;
/// value() sums the cells.
class Counter {
 public:
  void Increment(uint64_t delta = 1);
  /// Sum over every stripe. Exact when writers are quiescent; may
  /// miss in-flight increments (never double-counts) while they run.
  uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static constexpr size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// A last-write-wins instantaneous value (watermark lag, queue depth).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// A latency histogram striped across mutex-guarded LatencyHistogram
/// cells; Record locks one stripe (selected by thread id), snapshot
/// merges all stripes.
class Histogram {
 public:
  void Record(uint64_t value_ns);
  /// Merged view of every stripe.
  LatencyHistogram Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  static constexpr size_t kStripes = 8;
  struct Cell {
    mutable std::mutex mu;
    LatencyHistogram histogram;
  };
  Cell cells_[kStripes];
};

/// One metric's value at scrape time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;
};

/// Named-metric registry. Metric names are dotted lowercase
/// ("ingest.apply", "replication.replica.3.lag_records"). Looking up
/// an existing name with the matching kind returns the same object;
/// a kind collision (a counter named like an existing histogram)
/// fails the lookup with nullptr rather than aborting, so a buggy
/// call site degrades to uninstrumented instead of taking the server
/// down.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returns nullptr on a kind collision.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Find-only (no creation). nullptr when absent or kind-mismatched.
  Counter* FindCounter(const std::string& name) const;
  Gauge* FindGauge(const std::string& name) const;
  Histogram* FindHistogram(const std::string& name) const;

  /// Unregisters a metric (a retired replica's lag gauge). The handle
  /// is destroyed — callers must drop their pointer first. Returns
  /// whether the name existed.
  bool Remove(const std::string& name);

  /// Every metric, names sorted ascending within each kind.
  MetricsSnapshot Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;

  Entry* FindEntry(const std::string& name);
  const Entry* FindEntry(const std::string& name) const;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot. Metric
/// names are sanitized (dots to underscores) and prefixed "ltam_";
/// histograms render as summaries with quantile labels plus _sum and
/// _count series, durations converted from nanoseconds to seconds.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// One human line per metric ("ingest.apply p50=0.8ms ... (n=123)"),
/// for --metrics-dump-s and `ltam_shell metrics` against a local
/// runtime. Counters and gauges fold into leading summary lines.
std::string MetricsSummaryText(const MetricsSnapshot& snapshot);

/// This process's resident set size in bytes (/proc/self/statm RSS
/// pages x page size), 0 where /proc is unavailable. Feeds the
/// `storage.resident_bytes` gauge: a retention soak run asserts this
/// plateaus instead of growing with total history.
uint64_t ReadResidentBytes();

}  // namespace ltam

#endif  // LTAM_TELEMETRY_METRICS_H_
