// Copyright 2026 The LTAM Authors.

#include "core/rules/subject_op.h"

#include <algorithm>

#include "util/string_util.h"

namespace ltam {

Result<std::vector<SubjectId>> IdentitySubjectOp::Apply(
    SubjectId base, const UserProfileDatabase& profiles) const {
  if (!profiles.Exists(base)) {
    return Status::NotFound("base subject does not exist");
  }
  return std::vector<SubjectId>{base};
}

Result<std::vector<SubjectId>> SupervisorOfOp::Apply(
    SubjectId base, const UserProfileDatabase& profiles) const {
  if (!profiles.Exists(base)) {
    return Status::NotFound("base subject does not exist");
  }
  Result<SubjectId> sup = profiles.SupervisorOf(base);
  if (!sup.ok()) return std::vector<SubjectId>{};  // No supervisor: derive nothing.
  return std::vector<SubjectId>{*sup};
}

Result<std::vector<SubjectId>> SubordinatesOfOp::Apply(
    SubjectId base, const UserProfileDatabase& profiles) const {
  if (!profiles.Exists(base)) {
    return Status::NotFound("base subject does not exist");
  }
  return profiles.SubordinatesOf(base);
}

Result<std::vector<SubjectId>> GroupMembersOp::Apply(
    SubjectId /*base*/, const UserProfileDatabase& profiles) const {
  return profiles.MembersOfGroup(group_);
}

Result<std::vector<SubjectId>> RoleHoldersOp::Apply(
    SubjectId /*base*/, const UserProfileDatabase& profiles) const {
  return profiles.SubjectsWithRole(role_);
}

Result<std::vector<SubjectId>> SameGroupAsOp::Apply(
    SubjectId base, const UserProfileDatabase& profiles) const {
  if (!profiles.Exists(base)) {
    return Status::NotFound("base subject does not exist");
  }
  std::vector<SubjectId> out;
  for (const std::string& group : profiles.subject(base).groups) {
    for (SubjectId member : profiles.MembersOfGroup(group)) {
      if (member != base) out.push_back(member);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SubjectOperatorRegistry SubjectOperatorRegistry::Default() {
  SubjectOperatorRegistry reg;
  reg.Register("identity", [](const std::string&) -> Result<SubjectOperatorPtr> {
    return SubjectOperatorPtr(new IdentitySubjectOp());
  });
  reg.Register("supervisor_of",
               [](const std::string&) -> Result<SubjectOperatorPtr> {
                 return SubjectOperatorPtr(new SupervisorOfOp());
               });
  reg.Register("subordinates_of",
               [](const std::string&) -> Result<SubjectOperatorPtr> {
                 return SubjectOperatorPtr(new SubordinatesOfOp());
               });
  reg.Register("group_members",
               [](const std::string& arg) -> Result<SubjectOperatorPtr> {
                 if (arg.empty()) {
                   return Status::ParseError("Group_Members needs a group");
                 }
                 return SubjectOperatorPtr(new GroupMembersOp(arg));
               });
  reg.Register("role_holders",
               [](const std::string& arg) -> Result<SubjectOperatorPtr> {
                 if (arg.empty()) {
                   return Status::ParseError("Role_Holders needs a role");
                 }
                 return SubjectOperatorPtr(new RoleHoldersOp(arg));
               });
  reg.Register("same_group_as",
               [](const std::string&) -> Result<SubjectOperatorPtr> {
                 return SubjectOperatorPtr(new SameGroupAsOp());
               });
  return reg;
}

void SubjectOperatorRegistry::Register(const std::string& name,
                                       Factory factory) {
  factories_[ToLower(name)] = std::move(factory);
}

Result<SubjectOperatorPtr> SubjectOperatorRegistry::Parse(
    const std::string& spec) const {
  std::string t = Trim(spec);
  std::string name = t;
  std::string arg;
  size_t open = t.find('(');
  if (open != std::string::npos) {
    if (t.back() != ')') {
      return Status::ParseError("unbalanced parentheses in '" + t + "'");
    }
    name = Trim(t.substr(0, open));
    arg = Trim(t.substr(open + 1, t.size() - open - 2));
  }
  auto it = factories_.find(ToLower(name));
  if (it == factories_.end()) {
    return Status::NotFound("unknown subject operator '" + name + "'");
  }
  return it->second(arg);
}

}  // namespace ltam
