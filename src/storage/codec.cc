// Copyright 2026 The LTAM Authors.

#include "storage/codec.h"

#include "util/string_util.h"

namespace ltam {

std::string EscapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 >= field.size()) {
      return Status::ParseError("dangling escape in field: '" + field + "'");
    }
    ++i;
    switch (field[i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return Status::ParseError(std::string("unknown escape '\\") +
                                  field[i] + "'");
    }
  }
  return out;
}

std::string EncodeRecord(const Record& record) {
  std::string out = EscapeField(record.type);
  for (const std::string& field : record.fields) {
    out += '\t';
    out += EscapeField(field);
  }
  return out;
}

Result<Record> DecodeRecord(const std::string& line) {
  std::vector<std::string> parts = Split(line, '\t');
  if (parts.empty() || parts[0].empty()) {
    return Status::ParseError("record line has no type tag");
  }
  Record out;
  LTAM_ASSIGN_OR_RETURN(out.type, UnescapeField(parts[0]));
  for (size_t i = 1; i < parts.size(); ++i) {
    LTAM_ASSIGN_OR_RETURN(std::string field, UnescapeField(parts[i]));
    out.fields.push_back(std::move(field));
  }
  return out;
}

}  // namespace ltam
