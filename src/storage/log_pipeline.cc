// Copyright 2026 The LTAM Authors.

#include "storage/log_pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/logging.h"

namespace ltam {

const char* SyncModeToString(SyncMode mode) {
  switch (mode) {
    case SyncMode::kBatch: return "batch";
    case SyncMode::kPipelined: return "pipelined";
    case SyncMode::kInterval: return "interval";
  }
  return "unknown";
}

Result<SyncMode> ParseSyncMode(const std::string& name) {
  if (name == "batch") return SyncMode::kBatch;
  if (name == "pipelined") return SyncMode::kPipelined;
  if (name == "interval") return SyncMode::kInterval;
  return Status::InvalidArgument("unknown sync mode '" + name +
                                 "' (batch|pipelined|interval)");
}

namespace {

std::string EncodeLine(const Record& record) {
  std::string line = EncodeRecord(record);
  line += '\n';
  return line;
}

}  // namespace

ShardLog::ShardLog(WalWriter writer, uint64_t writer_bytes,
                   uint32_t segment_index, DurabilityOptions options,
                   bool sync_each_batch, RotateFn rotate)
    : options_(std::move(options)),
      sync_each_batch_(sync_each_batch),
      rotate_(std::move(rotate)),
      writer_(std::move(writer)),
      segment_bytes_(writer_bytes),
      segment_index_(segment_index),
      shared_segment_index_(segment_index) {
  if (options_.metrics != nullptr) {
    sync_histogram_ = options_.metrics->GetHistogram("wal.sync");
  }
  if (options_.mode != SyncMode::kBatch) {
    thread_ = std::thread([this] { ThreadLoop(); });
  }
}

ShardLog::~ShardLog() {
  if (thread_.joinable()) {
    // The destructor runs on the owner's thread with the producer
    // quiesced, so publishing any unboundaried tail is race-free.
    PublishPending();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    thread_.join();
  }
}

void ShardLog::PublishPending() {
  if (pending_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& entry : pending_) {
      queue_.push_back(std::move(entry));
    }
  }
  pending_.clear();
  work_cv_.notify_one();
}

Status ShardLog::WriteLine(const std::string& line) {
  ++append_attempts_;
  if (options_.fault_injector) {
    LTAM_RETURN_IF_ERROR(options_.fault_injector("append", append_attempts_));
  }
  LTAM_RETURN_IF_ERROR(writer_.AppendEncoded(line));
  segment_bytes_ += line.size();
  unsynced_bytes_ += line.size();
  return Status::OK();
}

Status ShardLog::SyncNow(uint64_t covered_seq) {
  ++sync_attempts_;
  Status synced = options_.fault_injector
                      ? options_.fault_injector("sync", sync_attempts_)
                      : Status::OK();
  if (synced.ok()) {
    const uint64_t t0 = sync_histogram_ != nullptr ? MonotonicNowNs() : 0;
    synced = writer_.Sync();
    if (sync_histogram_ != nullptr) {
      sync_histogram_->Record(MonotonicNowNs() - t0);
    }
  }
  if (synced.ok()) {
    unsynced_bytes_ = 0;
    unsynced_groups_ = 0;
    // Rotate BEFORE advertising durability: a barrier waiter (e.g.
    // Checkpoint) wakes the instant durable_ advances, and it must
    // never find this thread still republishing the manifest — the
    // owner's manifest writes would race ours.
    MaybeRotate();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (synced.ok()) {
    durable_ = std::max(durable_, covered_seq);
  } else {
    ++sync_failures_;
  }
  durable_cv_.notify_all();
  return synced;
}

void ShardLog::MaybeRotate() {
  if (!rotate_ || options_.segment_max_bytes == 0 ||
      segment_bytes_ < options_.segment_max_bytes) {
    return;
  }
  // Everything in the current segment is durable (callers rotate only
  // after a successful sync), so switching files loses nothing.
  Result<WalWriter> next = rotate_(segment_index_ + 1);
  if (!next.ok()) {
    // Keep appending to the oversized segment; growth retries the
    // rotation after the next sync.
    LTAM_LOG_WARNING << "WAL segment rotation failed (staying on segment "
                     << segment_index_
                     << "): " << next.status().ToString();
    return;
  }
  writer_ = std::move(next).ValueOrDie();
  ++segment_index_;
  segment_bytes_ = 0;
  std::lock_guard<std::mutex> lock(mu_);
  shared_segment_index_ = segment_index_;
}

Result<CommitTicket> ShardLog::AppendSynchronous(const std::string& line) {
  Status written = WriteLine(line);
  if (!written.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++append_failures_;
    return written;
  }
  const uint64_t seq = appended_.load(std::memory_order_relaxed) + 1;
  appended_.store(seq, std::memory_order_relaxed);
  return CommitTicket{seq};
}

Result<CommitTicket> ShardLog::Append(const Record& record) {
  std::string line = EncodeLine(record);
  if (options_.mode == SyncMode::kBatch) return AppendSynchronous(line);
  // Per-event hot path: a producer-local buffer push, no lock, no
  // wakeup. The slice is published (and the log thread woken) once per
  // batch, at the boundary. A sticky-failed log still accepts the
  // record — the event applies either way; the loss is counted when the
  // log thread drops it.
  const uint64_t seq = appended_.load(std::memory_order_relaxed) + 1;
  appended_.store(seq, std::memory_order_relaxed);
  pending_.push_back(Entry{seq, std::move(line), /*boundary=*/false});
  return CommitTicket{seq};
}

Result<CommitTicket> ShardLog::BatchBoundary() {
  const uint64_t covered = appended_.load(std::memory_order_relaxed);
  if (options_.mode == SyncMode::kBatch) {
    if (!sync_each_batch_) return CommitTicket{covered};
    LTAM_RETURN_IF_ERROR(SyncNow(covered));
    return CommitTicket{covered};
  }
  pending_.push_back(Entry{0, std::string(), /*boundary=*/true});
  PublishPending();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sticky_error_.ok()) return sticky_error_;
  }
  return CommitTicket{covered};
}

Status ShardLog::WaitDurable(uint64_t seq) {
  if (options_.mode == SyncMode::kBatch) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (durable_ >= seq) return Status::OK();
    }
    return SyncNow(appended_.load(std::memory_order_relaxed));
  }
  // Barriers run in the control phase (producer quiesced), so any
  // unboundaried tail can be published race-free here — without this a
  // WaitDurable between Append and BatchBoundary would wait on records
  // the log thread cannot see.
  PublishPending();
  std::unique_lock<std::mutex> lock(mu_);
  if (durable_ >= seq) return sticky_error_;
  flush_requested_ = true;
  work_cv_.notify_one();
  durable_cv_.wait(lock, [this, seq] {
    return durable_ >= seq || !sticky_error_.ok() || !flush_error_.ok();
  });
  if (durable_ >= seq) return Status::OK();
  if (!sticky_error_.ok()) return sticky_error_;
  Status failed_flush = std::move(flush_error_);
  flush_error_ = Status::OK();
  return failed_flush;
}

Status ShardLog::Flush() { return WaitDurable(appended_seq()); }

uint64_t ShardLog::appended_seq() const {
  return appended_.load(std::memory_order_relaxed);
}

uint64_t ShardLog::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_;
}

uint64_t ShardLog::append_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_failures_;
}

uint64_t ShardLog::sync_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_failures_;
}

uint32_t ShardLog::segment_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shared_segment_index_;
}

void ShardLog::ThreadLoop() {
  using Clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::milliseconds(std::max<uint32_t>(1, options_.sync_interval_ms));
  const size_t depth = std::max<size_t>(1, options_.pipeline_depth);
  auto last_sync = Clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (queue_.empty() && !stop_ && !flush_requested_) {
      auto woken = [this] {
        return !queue_.empty() || stop_ || flush_requested_;
      };
      if (options_.mode == SyncMode::kInterval && written_seq_ > durable_ &&
          sticky_error_.ok()) {
        work_cv_.wait_until(lock, last_sync + interval, woken);
      } else {
        work_cv_.wait(lock, woken);
      }
    }
    std::deque<Entry> chunk;
    chunk.swap(queue_);
    const bool flush = flush_requested_;
    flush_requested_ = false;
    const bool stopping = stop_;
    bool failed = !sticky_error_.ok();
    lock.unlock();

    for (Entry& entry : chunk) {
      if (entry.boundary) {
        ++unsynced_groups_;
        continue;
      }
      if (!failed) {
        Status written = WriteLine(entry.line);
        if (written.ok()) {
          written_seq_ = entry.seq;
          continue;
        }
        // First failure: freeze. Writing anything AFTER a lost record
        // would leave a hole — replay would apply a stream that never
        // happened — so the whole suffix is dropped and counted.
        failed = true;
        std::lock_guard<std::mutex> relock(mu_);
        sticky_error_ = written.WithContext("pipelined WAL append");
        ++append_failures_;
        durable_cv_.notify_all();
        continue;
      }
      std::lock_guard<std::mutex> relock(mu_);
      ++append_failures_;
    }

    bool need_sync = false;
    if (!failed && written_seq_ > durable_seq()) {
      if (flush || stopping) {
        need_sync = true;
      } else if (options_.mode == SyncMode::kPipelined) {
        bool drained;
        {
          std::lock_guard<std::mutex> relock(mu_);
          drained = queue_.empty();
        }
        need_sync = unsynced_groups_ >= depth ||
                    (options_.max_unsynced_bytes > 0 &&
                     unsynced_bytes_ >= options_.max_unsynced_bytes) ||
                    (drained && unsynced_groups_ >= 1);
      } else {  // kInterval
        need_sync = Clock::now() - last_sync >= interval;
      }
    }
    if (need_sync) {
      Status synced = SyncNow(written_seq_);
      last_sync = Clock::now();
      if (!synced.ok()) {
        failed = true;
        std::lock_guard<std::mutex> relock(mu_);
        if (options_.retry_failed_syncs) {
          // No hole: everything is written, only the barrier failed.
          // Leave the sticky slot clear so the next cadence retries;
          // hand the error to any barrier that demanded this fsync.
          if (flush || stopping) {
            flush_error_ = synced.WithContext("WAL fsync");
          }
        } else if (sticky_error_.ok()) {
          sticky_error_ = synced.WithContext("pipelined WAL fsync");
        }
        durable_cv_.notify_all();
      }
    } else if (flush) {
      // A flush with nothing new to write still has to release waiters
      // (durable may already cover their target, or the log is failed).
      std::lock_guard<std::mutex> relock(mu_);
      durable_cv_.notify_all();
    }

    lock.lock();
    if (stopping && queue_.empty()) {
      durable_cv_.notify_all();
      return;
    }
  }
}

}  // namespace ltam
