// Copyright 2026 The LTAM Authors.
// Planar geometry for location boundaries.
//
// Section 3.1: "locations in LTAM are both semantic and physical. When
// represented physically, a location is described by its absolute spatial
// coordinates... physical location information [is] used to define the
// spatial boundaries of locations so that it is possible to track users in
// different locations." The paper's testbed would use positioning hardware
// plus a spatial library (e.g. GEOS); this module is the in-repo
// substitute: simple polygons with exact point-in-polygon containment,
// which is all boundary resolution needs.

#ifndef LTAM_SPATIAL_GEOMETRY_H_
#define LTAM_SPATIAL_GEOMETRY_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace ltam {

/// A point in the building-plan plane (meters from a site datum).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Axis-aligned bounding box.
class BoundingBox {
 public:
  /// An empty box (contains nothing; Expand() fixes it up).
  BoundingBox();
  BoundingBox(Point lo, Point hi);

  /// True iff no point has been added.
  bool empty() const;

  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  double width() const { return empty() ? 0.0 : hi_.x - lo_.x; }
  double height() const { return empty() ? 0.0 : hi_.y - lo_.y; }

  /// Grows the box to include `p`.
  void Expand(const Point& p);
  /// Grows the box to include `other`.
  void Expand(const BoundingBox& other);

  /// Closed containment test.
  bool Contains(const Point& p) const;
  /// True iff the two boxes share any point.
  bool Intersects(const BoundingBox& other) const;

  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

/// A simple polygon given by its outer ring (no self-intersection
/// verification is performed beyond basic sanity checks; rings may be
/// listed in either winding order).
class Polygon {
 public:
  /// Checked constructor: needs >= 3 vertices and nonzero area.
  static Result<Polygon> Make(std::vector<Point> ring);

  /// Convenience axis-aligned rectangle [x0,x1] x [y0,y1].
  static Polygon Rect(double x0, double y0, double x1, double y1);

  const std::vector<Point>& ring() const { return ring_; }

  /// Signed area (positive for counter-clockwise rings).
  double SignedArea() const;
  /// Absolute area.
  double Area() const { return SignedArea() < 0 ? -SignedArea() : SignedArea(); }

  /// Area centroid.
  Point Centroid() const;

  /// Bounding box of the ring.
  const BoundingBox& bbox() const { return bbox_; }

  /// Point-in-polygon by ray casting; points exactly on an edge count as
  /// inside (a user standing on a doorsill is in the room).
  bool Contains(const Point& p) const;

  std::string ToString() const;

 private:
  explicit Polygon(std::vector<Point> ring);

  std::vector<Point> ring_;
  BoundingBox bbox_;
};

/// Euclidean distance.
double Distance(const Point& a, const Point& b);

/// Distance from point `p` to segment (a, b).
double DistanceToSegment(const Point& p, const Point& a, const Point& b);

}  // namespace ltam

#endif  // LTAM_SPATIAL_GEOMETRY_H_
