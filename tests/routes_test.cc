// Copyright 2026 The LTAM Authors.
// Tests for route finding, including the paper's simple and complex route
// examples over the NTU campus graph (Section 3.1).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/multilevel_graph.h"
#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

using testing_util::Names;

class NtuRoutesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeNtuCampusGraph());
  }

  LocationId Id(const std::string& name) {
    return graph_.Find(name).ValueOrDie();
  }

  MultilevelLocationGraph graph_;
};

TEST_F(NtuRoutesTest, PaperSimpleRouteIsValid) {
  // <SCE.Dean's Office, SCE.SectionA, SCE.SectionB, CAIS> (Section 3.1).
  std::vector<LocationId> route = {Id("SCE.DeanOffice"), Id("SCE.SectionA"),
                                   Id("SCE.SectionB"), Id("CAIS")};
  EXPECT_TRUE(graph_.IsRoute(route));
  EXPECT_TRUE(graph_.IsSimpleRoute(route));
}

TEST_F(NtuRoutesTest, PaperComplexRouteIsValid) {
  // <EEE.Dean's Office, EEE.SectionA, EEE.GO, SCE.GO, SCE.SectionA,
  //  SCE.Dean's Office> (Section 3.1).
  std::vector<LocationId> route = {Id("EEE.DeanOffice"), Id("EEE.SectionA"),
                                   Id("EEE.GO"),        Id("SCE.GO"),
                                   Id("SCE.SectionA"),  Id("SCE.DeanOffice")};
  EXPECT_TRUE(graph_.IsRoute(route));
  // It crosses two location graphs, so it is not simple.
  EXPECT_FALSE(graph_.IsSimpleRoute(route));
}

TEST_F(NtuRoutesTest, FindRouteCrossSchool) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<LocationId> route,
      graph_.FindRoute(Id("EEE.DeanOffice"), Id("SCE.DeanOffice")));
  // BFS shortest: exactly the paper's complex route.
  EXPECT_EQ(Names(graph_, route),
            (std::vector<std::string>{"EEE.DeanOffice", "EEE.SectionA",
                                      "EEE.GO", "SCE.GO", "SCE.SectionA",
                                      "SCE.DeanOffice"}));
}

TEST_F(NtuRoutesTest, FindRouteWithinComposite) {
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph_.Find("SCE"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<LocationId> route,
      graph_.FindRouteWithin(sce, Id("SCE.GO"), Id("CAIS")));
  EXPECT_EQ(Names(graph_, route),
            (std::vector<std::string>{"SCE.GO", "SCE.SectionA",
                                      "SCE.SectionB", "CAIS"}));
  // Restricting to EEE makes SCE rooms unreachable.
  ASSERT_OK_AND_ASSIGN(LocationId eee, graph_.Find("EEE"));
  EXPECT_TRUE(graph_.FindRouteWithin(eee, Id("EEE.GO"), Id("CAIS"))
                  .status()
                  .IsNotFound());
}

TEST_F(NtuRoutesTest, TrivialRoute) {
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> route,
                       graph_.FindRoute(Id("CAIS"), Id("CAIS")));
  EXPECT_EQ(route, std::vector<LocationId>{Id("CAIS")});
  EXPECT_TRUE(graph_.IsRoute(route));
  EXPECT_TRUE(graph_.IsSimpleRoute(route));
}

TEST_F(NtuRoutesTest, RoutesToCompositesAreRejected) {
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph_.Find("SCE"));
  EXPECT_TRUE(graph_.FindRoute(Id("CAIS"), sce).status().IsInvalidArgument());
}

TEST_F(NtuRoutesTest, EnumerateRoutesGoToCais) {
  // Example 3's two GO -> CAIS routes: via SectionB directly and via
  // SectionC/CHIPES. Scoped to SCE — the unscoped enumeration also finds
  // detours through the other schools (cross-school complex routes).
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph_.Find("SCE"));
  std::vector<std::vector<LocationId>> routes =
      graph_.EnumerateRoutesWithin(sce, Id("SCE.GO"), Id("CAIS"), 16, 16);
  std::vector<std::vector<LocationId>> unscoped =
      graph_.EnumerateRoutes(Id("SCE.GO"), Id("CAIS"), 64, 16);
  EXPECT_GT(unscoped.size(), routes.size());
  ASSERT_EQ(routes.size(), 2u);
  std::vector<std::vector<std::string>> names;
  for (const auto& r : routes) names.push_back(Names(graph_, r));
  std::sort(names.begin(), names.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  EXPECT_EQ(names[0],
            (std::vector<std::string>{"SCE.GO", "SCE.SectionA",
                                      "SCE.SectionB", "CAIS"}));
  EXPECT_EQ(names[1],
            (std::vector<std::string>{"SCE.GO", "SCE.SectionA",
                                      "SCE.SectionB", "SCE.SectionC",
                                      "CHIPES", "CAIS"}));
}

TEST_F(NtuRoutesTest, EnumerateRoutesRespectsCaps) {
  EXPECT_TRUE(graph_.EnumerateRoutes(Id("SCE.GO"), Id("CAIS"), 0).empty());
  EXPECT_EQ(graph_.EnumerateRoutes(Id("SCE.GO"), Id("CAIS"), 1).size(), 1u);
  // Length cap below the shortest route length yields nothing.
  EXPECT_TRUE(graph_.EnumerateRoutes(Id("SCE.GO"), Id("CAIS"), 16, 3).empty());
}

TEST_F(NtuRoutesTest, LowestCommonComposite) {
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph_.Find("SCE"));
  ASSERT_OK_AND_ASSIGN(LocationId lca,
                       graph_.LowestCommonComposite(Id("SCE.GO"), Id("CAIS")));
  EXPECT_EQ(lca, sce);
  // Cross-school pairs meet at the root.
  ASSERT_OK_AND_ASSIGN(
      LocationId root_lca,
      graph_.LowestCommonComposite(Id("SCE.GO"), Id("EEE.GO")));
  EXPECT_EQ(root_lca, graph_.root());
  // A room and its own school.
  ASSERT_OK_AND_ASSIGN(LocationId self_lca,
                       graph_.LowestCommonComposite(Id("CAIS"), sce));
  EXPECT_EQ(self_lca, sce);
  EXPECT_TRUE(graph_.LowestCommonComposite(Id("CAIS"), 9999)
                  .status()
                  .IsNotFound());
}

TEST_F(NtuRoutesTest, IsRouteRejectsBrokenSequences) {
  EXPECT_FALSE(graph_.IsRoute({}));
  EXPECT_FALSE(graph_.IsRoute({Id("SCE.GO"), Id("CAIS")}));  // Not adjacent.
  // Composite in the middle.
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph_.Find("SCE"));
  EXPECT_FALSE(graph_.IsRoute({Id("SCE.GO"), sce}));
}

TEST(RouteGridTest, GridRoutesAreShortest) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(5, 5));
  ASSERT_OK_AND_ASSIGN(LocationId from, g.Find("R0_0"));
  ASSERT_OK_AND_ASSIGN(LocationId to, g.Find("R4_4"));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> route, g.FindRoute(from, to));
  // Manhattan distance 8 -> 9 locations.
  EXPECT_EQ(route.size(), 9u);
  EXPECT_TRUE(g.IsRoute(route));
}

TEST(RouteGridTest, DisconnectedEndpointsReportNotFound) {
  // Two sibling rooms with no edge: unreachable (invalid as a location
  // graph, but routing should still answer NotFound, not crash).
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId a, g.AddPrimitive("a", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId b, g.AddPrimitive("b", g.root()));
  EXPECT_TRUE(g.FindRoute(a, b).status().IsNotFound());
}

}  // namespace
}  // namespace ltam
