// Copyright 2026 The LTAM Authors.
// Uniform-grid spatial index mapping position fixes to boundary polygons.
//
// The enforcement engine receives a stream of (time, subject, point)
// position fixes from the (simulated) positioning infrastructure and must
// resolve each fix to the primitive location whose boundary contains it.
// A uniform grid over the site bounding box gives O(1) candidate lookup,
// which is plenty for building-scale layouts (and mirrors the simple
// indexing structures used by GSAM-style systems the paper cites).

#ifndef LTAM_SPATIAL_GRID_INDEX_H_
#define LTAM_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "spatial/geometry.h"
#include "util/result.h"

namespace ltam {

/// Opaque handle for an indexed boundary (the graph layer stores the
/// mapping from BoundaryId to LocationId).
using BoundaryId = uint32_t;

/// Uniform grid over registered polygons with point queries.
class GridIndex {
 public:
  /// `cell_size` is the grid pitch in plan units; must be positive.
  explicit GridIndex(double cell_size = 8.0);

  /// Registers a polygon and returns its id (dense, starting at 0).
  BoundaryId Add(Polygon polygon);

  /// Number of registered polygons.
  size_t size() const { return polygons_.size(); }

  const Polygon& polygon(BoundaryId id) const { return polygons_[id]; }

  /// Builds the grid. Must be called after the last Add and before the
  /// first query; returns FailedPrecondition on an empty index.
  Status Build();

  /// True once Build() has succeeded.
  bool built() const { return built_; }

  /// All polygons containing `p` (overlapping boundaries are legal; the
  /// caller disambiguates, e.g. preferring the smallest area).
  std::vector<BoundaryId> FindContaining(const Point& p) const;

  /// The containing polygon with the smallest area, or nullopt when the
  /// point is outside every boundary ("outdoors").
  std::optional<BoundaryId> FindBest(const Point& p) const;

 private:
  struct Cell {
    std::vector<BoundaryId> candidates;
  };

  int CellIndex(const Point& p) const;

  double cell_size_;
  std::vector<Polygon> polygons_;
  BoundingBox extent_;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<Cell> cells_;
  bool built_ = false;
};

}  // namespace ltam

#endif  // LTAM_SPATIAL_GRID_INDEX_H_
