// Copyright 2026 The LTAM Authors.

#include "engine/movement_db.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

TEST(MovementDbTest, RecordAndCurrentLocation) {
  MovementDatabase db;
  EXPECT_EQ(db.CurrentLocation(0), kInvalidLocation);
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  EXPECT_EQ(db.CurrentLocation(0), 5u);
  ASSERT_OK_AND_ASSIGN(Chronon since, db.CurrentStaySince(0));
  EXPECT_EQ(since, 10);
  ASSERT_OK(db.RecordMovement(20, 0, 6));
  EXPECT_EQ(db.CurrentLocation(0), 6u);
  ASSERT_OK(db.RecordMovement(30, 0, kInvalidLocation));
  EXPECT_EQ(db.CurrentLocation(0), kInvalidLocation);
  EXPECT_TRUE(db.CurrentStaySince(0).status().IsNotFound());
  EXPECT_EQ(db.history().size(), 3u);
  EXPECT_EQ(db.tracked_subjects(), 0u);  // Nobody inside now.
}

TEST(MovementDbTest, RejectsNoOpAndOutOfOrder) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  EXPECT_TRUE(db.RecordMovement(15, 0, 5).IsInvalidArgument());
  EXPECT_TRUE(db.RecordMovement(5, 0, 6).IsFailedPrecondition());
  // Equal time is allowed (movement within one chronon).
  EXPECT_OK(db.RecordMovement(10, 0, 6));
  EXPECT_TRUE(db.RecordMovement(0, 99, kInvalidLocation)
                  .IsInvalidArgument());  // Exit while outside is a no-op.
  EXPECT_TRUE(
      db.RecordMovement(0, kInvalidSubject, 5).IsInvalidArgument());
}

TEST(MovementDbTest, LocationAtReconstructsHistory) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(20, 0, 6));
  ASSERT_OK(db.RecordMovement(30, 0, kInvalidLocation));
  EXPECT_EQ(db.LocationAt(0, 9), kInvalidLocation);
  EXPECT_EQ(db.LocationAt(0, 10), 5u);
  EXPECT_EQ(db.LocationAt(0, 19), 5u);
  EXPECT_EQ(db.LocationAt(0, 20), 6u);
  EXPECT_EQ(db.LocationAt(0, 29), 6u);
  EXPECT_EQ(db.LocationAt(0, 30), kInvalidLocation);
  EXPECT_EQ(db.LocationAt(0, 1000), kInvalidLocation);
  EXPECT_EQ(db.LocationAt(7, 10), kInvalidLocation);  // Unknown subject.
}

TEST(MovementDbTest, OccupantsAt) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(15, 1, 5));
  ASSERT_OK(db.RecordMovement(20, 0, kInvalidLocation));
  EXPECT_EQ(db.OccupantsAt(5, 12), std::vector<SubjectId>{0});
  EXPECT_EQ(db.OccupantsAt(5, 17), (std::vector<SubjectId>{0, 1}));
  EXPECT_EQ(db.OccupantsAt(5, 25), std::vector<SubjectId>{1});
  EXPECT_TRUE(db.OccupantsAt(9, 12).empty());
  EXPECT_EQ(db.CurrentOccupants(5), std::vector<SubjectId>{1});
}

TEST(MovementDbTest, StaysOfAndStaysIn) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(20, 0, 6));
  ASSERT_OK(db.RecordMovement(30, 0, 5));
  std::vector<Stay> stays = db.StaysOf(0);
  ASSERT_EQ(stays.size(), 3u);
  EXPECT_EQ(stays[0].location, 5u);
  EXPECT_EQ(stays[0].enter_time, 10);
  EXPECT_EQ(stays[0].exit_time, 20);
  EXPECT_EQ(stays[2].exit_time, kChrononMax);  // Open stay.
  std::vector<Stay> in5 = db.StaysIn(5);
  ASSERT_EQ(in5.size(), 2u);
  EXPECT_EQ(in5[0].exit_time, 20);
  EXPECT_EQ(in5[1].exit_time, kChrononMax);
  EXPECT_TRUE(db.StaysOf(9).empty());
  EXPECT_TRUE(db.StaysIn(9).empty());
}

TEST(MovementDbTest, ContactsBasicOverlap) {
  MovementDatabase db;
  // Alice in room 5 during [10, 30); Bob in room 5 during [20, 40).
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(20, 1, 5));
  ASSERT_OK(db.RecordMovement(30, 0, kInvalidLocation));
  ASSERT_OK(db.RecordMovement(40, 1, kInvalidLocation));
  std::vector<MovementDatabase::Contact> contacts =
      db.ContactsOf(0, TimeInterval(0, 100));
  ASSERT_EQ(contacts.size(), 1u);
  EXPECT_EQ(contacts[0].other, 1u);
  EXPECT_EQ(contacts[0].location, 5u);
  EXPECT_EQ(contacts[0].overlap_start, 20);
  EXPECT_EQ(contacts[0].overlap_end, 29);
  // Symmetric.
  std::vector<MovementDatabase::Contact> rev =
      db.ContactsOf(1, TimeInterval(0, 100));
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0].other, 0u);
}

TEST(MovementDbTest, ContactsRespectWindowAndMinOverlap) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(20, 1, 5));
  ASSERT_OK(db.RecordMovement(30, 0, kInvalidLocation));
  // Query window ends before the overlap starts.
  EXPECT_TRUE(db.ContactsOf(0, TimeInterval(0, 15)).empty());
  // Overlap is 10 chronons [20, 29]; min_overlap above that filters.
  EXPECT_TRUE(db.ContactsOf(0, TimeInterval(0, 100), 11).empty());
  EXPECT_EQ(db.ContactsOf(0, TimeInterval(0, 100), 10).size(), 1u);
}

TEST(MovementDbTest, ContactsAcrossDifferentRoomsNone) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(10, 1, 6));
  EXPECT_TRUE(db.ContactsOf(0, TimeInterval(0, 100)).empty());
}

TEST(MovementDbTest, ContactsWithOpenStays) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(10, 0, 5));
  ASSERT_OK(db.RecordMovement(20, 1, 5));
  // Both still inside: overlap runs to the window edge.
  std::vector<MovementDatabase::Contact> contacts =
      db.ContactsOf(0, TimeInterval(0, 50));
  ASSERT_EQ(contacts.size(), 1u);
  EXPECT_EQ(contacts[0].overlap_start, 20);
  EXPECT_EQ(contacts[0].overlap_end, 50);
}

TEST(MovementDbTest, PerSubjectTimelinesIndependent) {
  MovementDatabase db;
  ASSERT_OK(db.RecordMovement(100, 0, 5));
  // Another subject may record earlier times.
  EXPECT_OK(db.RecordMovement(10, 1, 5));
}

}  // namespace
}  // namespace ltam
