// Copyright 2026 The LTAM Authors.
// Line-oriented record codec for persistence.
//
// Every persisted record is one line: a record type tag followed by
// tab-separated fields, with tabs/newlines/backslashes escaped inside
// fields. Human-inspectable, diff-friendly, and trivially append-able —
// the right trade-off for an authorization store whose write rate is
// administrator-scale.

#ifndef LTAM_STORAGE_CODEC_H_
#define LTAM_STORAGE_CODEC_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace ltam {

/// Escapes '\t', '\n', '\r', and '\\' so a field is line-safe.
std::string EscapeField(const std::string& field);

/// Reverses EscapeField; ParseError on dangling escapes.
Result<std::string> UnescapeField(const std::string& field);

/// A decoded record: type tag + fields.
struct Record {
  std::string type;
  std::vector<std::string> fields;
};

/// Encodes a record to one line (no trailing newline).
std::string EncodeRecord(const Record& record);

/// Decodes one line.
Result<Record> DecodeRecord(const std::string& line);

}  // namespace ltam

#endif  // LTAM_STORAGE_CODEC_H_
