// Copyright 2026 The LTAM Authors.
// The sharded batch pipeline: equivalence with the sequential engine,
// deterministic alert merging, and a multi-thread stress case (run this
// binary under -fsanitize=thread via ci.sh to certify the shard
// discipline).

#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "engine/access_control_engine.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

/// A world with per-subject random authorizations over a grid.
struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

World MakeWorld(uint32_t side, uint32_t subject_count, uint64_t seed,
                double coverage = 0.6) {
  World w;
  w.graph = MakeGridGraph(side, side).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, subject_count);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = coverage;
  opt.horizon = 400;
  opt.min_len = 20;
  opt.max_len = 120;
  opt.max_entries = 3;  // Exercise the ledger/exhaustion path.
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

std::vector<std::vector<AccessEvent>> MakeBatches(const World& w,
                                                  size_t total_events,
                                                  size_t batch_size,
                                                  uint64_t seed) {
  Rng rng(seed);
  BatchWorkloadOptions opt;
  opt.batch_size = batch_size;
  opt.exit_fraction = 0.15;
  opt.observe_fraction = 0.15;
  return GenerateEventBatches(w.graph, w.subjects, total_events, opt, &rng);
}

std::string DecisionKey(const Decision& d) {
  return d.ToString();
}

/// Replays the batches sequentially through one AccessControlEngine (the
/// reference implementation; see sim/workload.h).
SequentialReplay RunSequential(World* w,
                               const std::vector<std::vector<AccessEvent>>& bs,
                               const EngineOptions& options) {
  return ReplayBatchesSequential(w->graph, &w->auth_db, w->profiles, bs,
                                 options);
}

/// The headline equivalence property (acceptance criterion): for random
/// workload batches, the sharded engine's decisions are identical to the
/// sequential engine's, event by event — >= 1000 events, >= 4 shards.
TEST(ShardedEngineTest, DecisionsMatchSequentialEngine) {
  for (uint32_t shards : {4u, 7u}) {
    // Two independent worlds so the sequential and sharded runs see
    // identical starting ledgers (the run itself mutates entries_used).
    World sequential_world = MakeWorld(8, 48, /*seed=*/11);
    World sharded_world = MakeWorld(8, 48, /*seed=*/11);
    auto batches = MakeBatches(sequential_world, /*total_events=*/1500,
                               /*batch_size=*/256, /*seed=*/22);
    ASSERT_GE(batches.size(), 5u);

    SequentialReplay reference =
        RunSequential(&sequential_world, batches, EngineOptions{});

    ShardedEngineOptions opt;
    opt.num_shards = shards;
    ShardedDecisionEngine engine(&sharded_world.graph, &sharded_world.auth_db,
                                 &sharded_world.profiles, opt);
    std::vector<Decision> sharded;
    for (const auto& batch : batches) {
      std::vector<Decision> d = engine.EvaluateBatch(batch);
      sharded.insert(sharded.end(), d.begin(), d.end());
    }

    ASSERT_EQ(sharded.size(), reference.decisions.size());
    for (size_t i = 0; i < sharded.size(); ++i) {
      EXPECT_EQ(DecisionKey(sharded[i]), DecisionKey(reference.decisions[i]))
          << "event " << i << " with " << shards << " shards";
    }
    size_t entry_events = 0;
    for (const auto& batch : batches) {
      for (const AccessEvent& e : batch) {
        if (e.kind == AccessEventKind::kRequestEntry) ++entry_events;
      }
    }
    EXPECT_EQ(engine.requests_processed(), entry_events);
  }
}

/// Alerts carry the same multiset of (time, subject, location, type)
/// regardless of sharding; DrainAlerts orders them deterministically.
TEST(ShardedEngineTest, AlertsMatchSequentialEngineUpToOrder) {
  World sequential_world = MakeWorld(6, 32, /*seed=*/33, /*coverage=*/0.4);
  World sharded_world = MakeWorld(6, 32, /*seed=*/33, /*coverage=*/0.4);
  auto batches = MakeBatches(sequential_world, 1200, 200, /*seed=*/44);

  SequentialReplay reference =
      RunSequential(&sequential_world, batches, EngineOptions{});

  ShardedEngineOptions opt;
  opt.num_shards = 5;
  ShardedDecisionEngine engine(&sharded_world.graph, &sharded_world.auth_db,
                               &sharded_world.profiles, opt);
  for (const auto& batch : batches) engine.EvaluateBatch(batch);
  std::vector<Alert> sharded_alerts = engine.DrainAlerts();

  auto key = [](const Alert& a) {
    return std::make_tuple(a.time, a.subject, a.location,
                           static_cast<int>(a.type), a.detail);
  };
  std::multiset<std::tuple<Chronon, SubjectId, LocationId, int, std::string>>
      expected, actual;
  for (const Alert& a : reference.alerts) expected.insert(key(a));
  for (const Alert& a : sharded_alerts) actual.insert(key(a));
  EXPECT_EQ(actual, expected);

  // Drained order is sorted by (time, subject, location, type).
  for (size_t i = 1; i < sharded_alerts.size(); ++i) {
    EXPECT_LE(key(sharded_alerts[i - 1]), key(sharded_alerts[i]));
  }
  // Draining clears the buffers.
  EXPECT_TRUE(engine.DrainAlerts().empty());
}

/// Every subject's events land on exactly one shard, and the shard's
/// movement view tracks exactly its own subjects.
TEST(ShardedEngineTest, ShardPartitionIsStableAndExhaustive) {
  World w = MakeWorld(4, 64, /*seed=*/55);
  ShardedEngineOptions opt;
  opt.num_shards = 8;
  ShardedDecisionEngine engine(&w.graph, &w.auth_db, &w.profiles, opt);
  ASSERT_EQ(engine.num_shards(), 8u);

  for (SubjectId s : w.subjects) {
    uint32_t shard = engine.ShardOf(s);
    ASSERT_LT(shard, engine.num_shards());
    EXPECT_EQ(engine.ShardOf(s), shard) << "ShardOf must be stable";
  }

  auto batches = MakeBatches(w, 800, 160, /*seed=*/66);
  for (const auto& batch : batches) engine.EvaluateBatch(batch);

  // Each shard's movement view only ever saw subjects mapping to it.
  for (uint32_t k = 0; k < engine.num_shards(); ++k) {
    for (const MovementEvent& ev : engine.shard_movements(k).history()) {
      EXPECT_EQ(engine.ShardOf(ev.subject), k);
    }
  }
}

/// EvaluateBatch returns one decision per event, in input order, and an
/// empty batch is a no-op.
TEST(ShardedEngineTest, BatchShapeAndEmptyBatch) {
  World w = MakeWorld(4, 8, /*seed=*/77);
  ShardedDecisionEngine engine(&w.graph, &w.auth_db, &w.profiles);

  EXPECT_TRUE(engine.EvaluateBatch({}).empty());
  EXPECT_EQ(engine.batches_evaluated(), 1u);

  // An exit for a subject that never entered is rejected, with the
  // dedicated reason (not conflated with unknown-subject).
  std::vector<Decision> exit_only =
      engine.EvaluateBatch({AccessEvent::Exit(1, w.subjects[0])});
  ASSERT_EQ(exit_only.size(), 1u);
  EXPECT_FALSE(exit_only[0].granted);
  EXPECT_EQ(exit_only[0].reason, DenyReason::kExitRejected);

  auto batches = MakeBatches(w, 100, 100, /*seed=*/88);
  ASSERT_EQ(batches.size(), 1u);
  std::vector<Decision> d = engine.EvaluateBatch(batches[0]);
  EXPECT_EQ(d.size(), batches[0].size());
  EXPECT_EQ(engine.requests_processed(),
            static_cast<size_t>(
                std::count_if(batches[0].begin(), batches[0].end(),
                              [](const AccessEvent& e) {
                                return e.kind == AccessEventKind::kRequestEntry;
                              })));
}

/// num_shards = 0 is clamped to one shard; single-shard results equal the
/// sequential engine trivially.
TEST(ShardedEngineTest, SingleShardDegeneratesToSequential) {
  World sequential_world = MakeWorld(5, 16, /*seed=*/99);
  World sharded_world = MakeWorld(5, 16, /*seed=*/99);
  auto batches = MakeBatches(sequential_world, 400, 80, /*seed=*/101);

  SequentialReplay reference =
      RunSequential(&sequential_world, batches, EngineOptions{});

  ShardedEngineOptions opt;
  opt.num_shards = 0;  // Clamped to 1.
  ShardedDecisionEngine engine(&sharded_world.graph, &sharded_world.auth_db,
                               &sharded_world.profiles, opt);
  EXPECT_EQ(engine.num_shards(), 1u);
  std::vector<Decision> sharded;
  for (const auto& batch : batches) {
    std::vector<Decision> d = engine.EvaluateBatch(batch);
    sharded.insert(sharded.end(), d.begin(), d.end());
  }
  ASSERT_EQ(sharded.size(), reference.decisions.size());
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(DecisionKey(sharded[i]), DecisionKey(reference.decisions[i]));
  }
}

/// Multi-thread stress: many shards, many batches, heavy subject count.
/// Safe under -fsanitize=thread — the per-shard movement views, the
/// subject-bucketed candidate cache, and the per-record ledger writes
/// must never race.
TEST(ShardedEngineTest, ThreadStress) {
  World w = MakeWorld(8, 128, /*seed=*/123);
  ShardedEngineOptions opt;
  opt.num_shards = 8;
  ShardedDecisionEngine engine(&w.graph, &w.auth_db, &w.profiles, opt);

  auto batches = MakeBatches(w, 4000, 500, /*seed=*/456);
  size_t total = 0;
  for (const auto& batch : batches) {
    total += engine.EvaluateBatch(batch).size();
  }
  EXPECT_EQ(total, 4000u);
  EXPECT_EQ(engine.batches_evaluated(), batches.size());

  // The cache must have served repeat (subject, location) lookups.
  EXPECT_GT(w.auth_db.cache_hits(), 0u);

  // Reuse after a mutation between batches: revoke one subject's records
  // and keep going — decisions must still complete (stale grants are the
  // cache test's concern; here we only certify liveness under threads).
  for (AuthId id : w.auth_db.ForSubject(w.subjects[0])) {
    ASSERT_OK(w.auth_db.Revoke(id));
  }
  auto more = MakeBatches(w, 1000, 250, /*seed=*/789);
  for (const auto& batch : more) engine.EvaluateBatch(batch);
  EXPECT_EQ(engine.batches_evaluated(), batches.size() + more.size());
}

}  // namespace
}  // namespace ltam
