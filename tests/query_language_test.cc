// Copyright 2026 The LTAM Authors.
// Tests for the textual query language (the paper's future-work front
// end).

#include "query/query_language.h"

#include <gtest/gtest.h>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

class QueryLanguageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeFig4Graph());
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
    ASSERT_OK_AND_ASSIGN(bob_, profiles_.AddSubject("Bob"));
    ASSERT_OK_AND_ASSIGN(a_, graph_.Find("A"));
    ASSERT_OK_AND_ASSIGN(b_, graph_.Find("B"));
    Grant(alice_, a_, 2, 35, 20, 50);
    Grant(alice_, b_, 40, 60, 55, 80);
    ASSERT_OK(movement_db_.RecordMovement(10, alice_, a_));
    ASSERT_OK(movement_db_.RecordMovement(12, bob_, a_));
    engine_ = std::make_unique<QueryEngine>(&graph_, &auth_db_,
                                            &movement_db_, &profiles_);
    interp_ = std::make_unique<QueryInterpreter>(
        engine_.get(), &graph_, &profiles_, &movement_db_, &auth_db_);
  }

  void Grant(SubjectId s, LocationId l, Chronon es, Chronon ee, Chronon xs,
             Chronon xe) {
    auth_db_.Add(LocationTemporalAuthorization::Make(
                     TimeInterval(es, ee), TimeInterval(xs, xe),
                     LocationAuthorization{s, l}, 2)
                     .ValueOrDie());
  }

  QueryResult Run(const std::string& q) {
    Result<QueryResult> r = interp_->Run(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  MultilevelLocationGraph graph_;
  UserProfileDatabase profiles_;
  AuthorizationDatabase auth_db_;
  MovementDatabase movement_db_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<QueryInterpreter> interp_;
  SubjectId alice_ = kInvalidSubject;
  SubjectId bob_ = kInvalidSubject;
  LocationId a_ = kInvalidLocation;
  LocationId b_ = kInvalidLocation;
};

TEST_F(QueryLanguageTest, CanAccess) {
  QueryResult r = Run("CAN Alice ACCESS A AT 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NE(r.rows[0][3].find("granted"), std::string::npos);
  r = Run("can Alice access A at 36");  // Keywords case-insensitive.
  EXPECT_NE(r.rows[0][3].find("denied"), std::string::npos);
}

TEST_F(QueryLanguageTest, WhenCanAccess) {
  // Alice's overall grant time for B: entry [40,60] clipped by A's
  // departure window [20,50] -> [40,50].
  QueryResult r = Run("WHEN CAN Alice ACCESS B");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "[40, 50]");
  r = Run("WHEN CAN Alice ACCESS A IN G");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "[2, 35]");
  // Bob has no authorizations: no windows.
  QueryResult none = Run("WHEN CAN Bob ACCESS A");
  EXPECT_TRUE(none.rows.empty());
  // Composite locations are rejected.
  EXPECT_TRUE(interp_->Run("WHEN CAN Alice ACCESS G")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryLanguageTest, AuthsFor) {
  QueryResult r = Run("AUTHS FOR Alice");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_NE(r.rows[0][1].find("(Alice, A)"), std::string::npos);
  EXPECT_EQ(r.rows[0][2], "explicit");
}

TEST_F(QueryLanguageTest, WhoCanAccess) {
  QueryResult r = Run("WHO CAN ACCESS A DURING [0, 100]");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "Alice");
}

TEST_F(QueryLanguageTest, AccessibleAndInaccessible) {
  QueryResult acc = Run("ACCESSIBLE FOR Alice");
  // A and B accessible; C and D not.
  ASSERT_EQ(acc.rows.size(), 2u);
  EXPECT_EQ(acc.rows[0][0], "A");
  EXPECT_EQ(acc.rows[1][0], "B");
  QueryResult inacc = Run("INACCESSIBLE FOR Alice IN G");
  ASSERT_EQ(inacc.rows.size(), 2u);
  EXPECT_EQ(inacc.rows[0][0], "C");
  EXPECT_EQ(inacc.rows[1][0], "D");
}

TEST_F(QueryLanguageTest, Route) {
  QueryResult r = Run("ROUTE FOR Alice FROM A TO B");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1], "A");
  EXPECT_EQ(r.rows[1][1], "B");
  EXPECT_EQ(r.rows[0][2], "[2, 35]");
  // With an explicit impossible window the query errors.
  EXPECT_TRUE(interp_->Run("ROUTE FOR Alice FROM A TO B DURING [90, 100]")
                  .status()
                  .IsNotFound());
}

TEST_F(QueryLanguageTest, WhereWasAndOccupants) {
  QueryResult r = Run("WHERE WAS Alice AT 11");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][2], "A");
  r = Run("WHERE WAS Alice AT 5");
  EXPECT_EQ(r.rows[0][2], "outside");
  r = Run("OCCUPANTS OF A AT 13");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(QueryLanguageTest, Contacts) {
  QueryResult r = Run("CONTACTS OF Alice DURING [0, 100]");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "Bob");
  EXPECT_EQ(r.rows[0][1], "A");
  // MIN filter.
  QueryResult none = Run("CONTACTS OF Alice DURING [0, 100] MIN 10000");
  EXPECT_TRUE(none.rows.empty());
}

TEST_F(QueryLanguageTest, Overstaying) {
  QueryResult r = Run("OVERSTAYING AT 51");
  // Alice's exit window for A ends at 50; Bob has no authorization at all
  // (every window "closed"), so both are flagged.
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], "Alice");
  EXPECT_EQ(r.rows[1][0], "Bob");
}

TEST_F(QueryLanguageTest, History) {
  QueryResult r = Run("HISTORY OF Alice");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "10");
  EXPECT_EQ(r.rows[0][1], "(inside)");
  EXPECT_EQ(r.rows[0][2], "A");
}

TEST_F(QueryLanguageTest, TableRendering) {
  QueryResult r = Run("WHO CAN ACCESS A DURING [0, 100]");
  std::string table = r.ToString();
  EXPECT_NE(table.find("subject"), std::string::npos);
  EXPECT_NE(table.find("Alice"), std::string::npos);
  EXPECT_NE(table.find("---"), std::string::npos);
  QueryResult empty = Run("WHO CAN ACCESS B DURING [0, 10]");
  EXPECT_NE(empty.ToString().find("(no rows)"), std::string::npos);
}

TEST_F(QueryLanguageTest, ParseErrors) {
  EXPECT_TRUE(interp_->Run("").status().IsParseError());
  EXPECT_TRUE(interp_->Run("FROBNICATE EVERYTHING").status().IsParseError());
  EXPECT_TRUE(interp_->Run("CAN Alice ACCESS A").status().IsParseError());
  EXPECT_TRUE(interp_->Run("CAN Alice ACCESS A AT ten").status()
                  .IsParseError());
  EXPECT_TRUE(interp_->Run("WHO CAN ACCESS A DURING [0,").status()
                  .IsParseError());
  EXPECT_TRUE(interp_->Run("CAN Alice ACCESS A AT 10 EXTRA").status()
                  .IsParseError());
}

TEST_F(QueryLanguageTest, NameResolutionErrors) {
  EXPECT_TRUE(interp_->Run("CAN Carol ACCESS A AT 10").status().IsNotFound());
  EXPECT_TRUE(interp_->Run("CAN Alice ACCESS Z AT 10").status().IsNotFound());
}

}  // namespace
}  // namespace ltam
