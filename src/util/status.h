// Copyright 2026 The LTAM Authors.
// Status/Result error-handling primitives in the Arrow/RocksDB idiom.
//
// All fallible public APIs in LTAM return either `Status` (for operations
// without a value) or `Result<T>` (for operations that produce a value).
// Exceptions are never thrown across library boundaries.

#ifndef LTAM_UTIL_STATUS_H_
#define LTAM_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace ltam {

/// Machine-readable category of an error carried by `Status`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kPermissionDenied = 9,
  kParseError = 10,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...). Stable; used by the text codec.
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value.
///
/// A default-constructed or `Status::OK()` status is success; every other
/// factory produces an error with a code and human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns the success singleton.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The human-readable message (empty for OK).
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }

  /// "OK" or "<code-name>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context, keeping the code.
  /// OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.msg_ == b.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace ltam

/// Propagates an error status from an expression that evaluates to Status.
#define LTAM_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::ltam::Status _ltam_status_ = (expr);         \
    if (!_ltam_status_.ok()) return _ltam_status_; \
  } while (false)

#define LTAM_CONCAT_IMPL_(x, y) x##y
#define LTAM_CONCAT_(x, y) LTAM_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the error status from the enclosing function.
#define LTAM_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto LTAM_CONCAT_(_ltam_result_, __LINE__) = (rexpr);            \
  if (!LTAM_CONCAT_(_ltam_result_, __LINE__).ok())                 \
    return LTAM_CONCAT_(_ltam_result_, __LINE__).status();         \
  lhs = std::move(LTAM_CONCAT_(_ltam_result_, __LINE__)).ValueOrDie()

#endif  // LTAM_UTIL_STATUS_H_
