// Copyright 2026 The LTAM Authors.

#include "storage/event_log.h"

#include <limits>

#include "engine/sharded_engine.h"
#include "util/string_util.h"

namespace ltam {

namespace {

constexpr const char kEntryTag[] = "ev-entry";
constexpr const char kExitTag[] = "ev-exit";
constexpr const char kObserveTag[] = "ev-obs";
constexpr const char kTickTag[] = "ev-tick";

Result<int64_t> Field(const Record& rec, size_t i) {
  if (i >= rec.fields.size()) {
    return Status::ParseError("WAL record '" + rec.type + "' missing field " +
                              std::to_string(i));
  }
  return ParseInt64(rec.fields[i]);
}

Status CheckFieldCount(const Record& rec, size_t expected) {
  if (rec.fields.size() != expected) {
    return Status::ParseError("WAL record '" + rec.type + "' has " +
                              std::to_string(rec.fields.size()) +
                              " fields, expected " + std::to_string(expected));
  }
  return Status::OK();
}

/// Ids are stored as decimal int64 but must round-trip through uint32.
Result<uint32_t> CheckedId(int64_t v, const char* what) {
  if (v < 0 || v > static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::ParseError(std::string(what) + " id out of range: " +
                              std::to_string(v));
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

Record EncodeEventRecord(const AccessEvent& event) {
  switch (event.kind) {
    case AccessEventKind::kRequestEntry:
      return Record{kEntryTag,
                    {std::to_string(event.time), std::to_string(event.subject),
                     std::to_string(event.location)}};
    case AccessEventKind::kRequestExit:
      return Record{kExitTag,
                    {std::to_string(event.time),
                     std::to_string(event.subject)}};
    case AccessEventKind::kObserve:
      return Record{kObserveTag,
                    {std::to_string(event.time), std::to_string(event.subject),
                     std::to_string(event.location)}};
  }
  return Record{kTickTag, {std::to_string(event.time)}};  // Unreachable.
}

Record EncodeTickRecord(Chronon t) {
  return Record{kTickTag, {std::to_string(t)}};
}

Result<LoggedEvent> DecodeEventRecord(const Record& record) {
  LoggedEvent out;
  if (record.type == kTickTag) {
    LTAM_RETURN_IF_ERROR(CheckFieldCount(record, 1));
    LTAM_ASSIGN_OR_RETURN(out.tick_time, Field(record, 0));
    out.is_tick = true;
    return out;
  }
  if (record.type == kEntryTag || record.type == kObserveTag) {
    LTAM_RETURN_IF_ERROR(CheckFieldCount(record, 3));
    LTAM_ASSIGN_OR_RETURN(int64_t t, Field(record, 0));
    LTAM_ASSIGN_OR_RETURN(int64_t s, Field(record, 1));
    LTAM_ASSIGN_OR_RETURN(int64_t l, Field(record, 2));
    LTAM_ASSIGN_OR_RETURN(uint32_t subject, CheckedId(s, "subject"));
    LTAM_ASSIGN_OR_RETURN(uint32_t location, CheckedId(l, "location"));
    out.event = record.type == kEntryTag
                    ? AccessEvent::Entry(t, subject, location)
                    : AccessEvent::Observe(t, subject, location);
    return out;
  }
  if (record.type == kExitTag) {
    LTAM_RETURN_IF_ERROR(CheckFieldCount(record, 2));
    LTAM_ASSIGN_OR_RETURN(int64_t t, Field(record, 0));
    LTAM_ASSIGN_OR_RETURN(int64_t s, Field(record, 1));
    LTAM_ASSIGN_OR_RETURN(uint32_t subject, CheckedId(s, "subject"));
    out.event = AccessEvent::Exit(t, subject);
    return out;
  }
  return Status::ParseError("unknown WAL record '" + record.type + "'");
}

void ApplyLoggedEvent(AccessControlEngine* engine, const LoggedEvent& event) {
  if (event.is_tick) {
    engine->Tick(event.tick_time);
    return;
  }
  Decision ignored = ApplyAccessEvent(engine, event.event);
  (void)ignored;  // Deterministic re-application; denials repeat.
}

Status ApplyLoggedRecord(AccessControlEngine* engine, const Record& record) {
  LTAM_ASSIGN_OR_RETURN(LoggedEvent event, DecodeEventRecord(record));
  ApplyLoggedEvent(engine, event);
  return Status::OK();
}

}  // namespace ltam
