// Copyright 2026 The LTAM Authors.

#include "time/periodic.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

TEST(PeriodicTest, MakeValidates) {
  EXPECT_TRUE(PeriodicExpression::Make(0, 0, {TimeInterval(0, 1)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PeriodicExpression::Make(24, 0, {}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PeriodicExpression::Make(24, 0, {TimeInterval(9, 24)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PeriodicExpression::Make(24, 0, {TimeInterval(-1, 5)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PeriodicExpression::Make(24, 0, {TimeInterval(9, 17)}).ok());
}

TEST(PeriodicTest, ContainsOfficeHours) {
  // Period 24 (one day of hour-chronons), window [9, 17].
  ASSERT_OK_AND_ASSIGN(
      PeriodicExpression office,
      PeriodicExpression::Make(24, 0, {TimeInterval(9, 17)}));
  EXPECT_TRUE(office.Contains(9));
  EXPECT_TRUE(office.Contains(17));
  EXPECT_FALSE(office.Contains(8));
  EXPECT_FALSE(office.Contains(18));
  // Next day.
  EXPECT_TRUE(office.Contains(24 + 12));
  EXPECT_FALSE(office.Contains(24 + 3));
  // Negative time (before the anchor) still cycles correctly.
  EXPECT_TRUE(office.Contains(-24 + 10));
}

TEST(PeriodicTest, AnchorShiftsPhase) {
  ASSERT_OK_AND_ASSIGN(
      PeriodicExpression expr,
      PeriodicExpression::Make(10, 3, {TimeInterval(0, 1)}));
  EXPECT_TRUE(expr.Contains(3));
  EXPECT_TRUE(expr.Contains(4));
  EXPECT_FALSE(expr.Contains(5));
  EXPECT_TRUE(expr.Contains(13));
}

TEST(PeriodicTest, ExpandWithin) {
  ASSERT_OK_AND_ASSIGN(
      PeriodicExpression office,
      PeriodicExpression::Make(24, 0, {TimeInterval(9, 17)}));
  ASSERT_OK_AND_ASSIGN(IntervalSet days,
                       office.ExpandWithin(TimeInterval(0, 72)));
  EXPECT_EQ(days.ToString(), "{[9, 17], [33, 41], [57, 65]}");
  // Clipping at the horizon edges.
  ASSERT_OK_AND_ASSIGN(IntervalSet clipped,
                       office.ExpandWithin(TimeInterval(10, 35)));
  EXPECT_EQ(clipped.ToString(), "{[10, 17], [33, 35]}");
}

TEST(PeriodicTest, ExpandConsistentWithContains) {
  ASSERT_OK_AND_ASSIGN(
      PeriodicExpression expr,
      PeriodicExpression::Make(7, 2, {TimeInterval(0, 1), TimeInterval(4, 4)}));
  TimeInterval horizon(0, 100);
  ASSERT_OK_AND_ASSIGN(IntervalSet expanded, expr.ExpandWithin(horizon));
  for (Chronon t = 0; t <= 100; ++t) {
    EXPECT_EQ(expanded.Contains(t), expr.Contains(t)) << "t=" << t;
  }
}

TEST(PeriodicTest, ExpandRejectsUnboundedHorizon) {
  ASSERT_OK_AND_ASSIGN(
      PeriodicExpression expr,
      PeriodicExpression::Make(24, 0, {TimeInterval(9, 17)}));
  EXPECT_TRUE(expr.ExpandWithin(TimeInterval::From(0))
                  .status()
                  .IsInvalidArgument());
}

TEST(PeriodicTest, ParseRoundTrip) {
  ASSERT_OK_AND_ASSIGN(
      PeriodicExpression expr,
      PeriodicExpression::Make(24, 5, {TimeInterval(9, 17)}));
  EXPECT_EQ(expr.ToString(), "every 24 from 5 in {[9, 17]}");
  ASSERT_OK_AND_ASSIGN(PeriodicExpression parsed,
                       PeriodicExpression::Parse(expr.ToString()));
  EXPECT_EQ(parsed.period(), 24);
  EXPECT_EQ(parsed.anchor(), 5);
  ASSERT_EQ(parsed.offsets().size(), 1u);
  EXPECT_EQ(parsed.offsets()[0], TimeInterval(9, 17));
}

TEST(PeriodicTest, ParseRejectsGarbage) {
  EXPECT_TRUE(
      PeriodicExpression::Parse("sometimes").status().IsParseError());
  EXPECT_TRUE(PeriodicExpression::Parse("every x from 0 in {[1,2]}")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(PeriodicExpression::Parse("every 24 from 0 in {}")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace ltam
