// Copyright 2026 The LTAM Authors.
//
// A security officer's workflow over a secured building (the homeland-
// security scenario of Section 1):
//
//   1. define the layout and the access policy;
//   2. audit it with the inaccessible-location analysis (Section 6) and
//      fix the gap it finds;
//   3. run live enforcement against simulated movement with injected
//      tailgating and overstays, comparing LTAM's detections against the
//      card-reader baseline;
//   4. investigate with the query language.
//
// Run: ./build/examples/building_security

#include <cstdio>

#include "core/inaccessible.h"
#include "query/query_language.h"
#include "sim/graph_gen.h"
#include "sim/movement_sim.h"
#include "sim/workload.h"
#include "util/logging.h"

int main() {
  using namespace ltam;  // NOLINT: example brevity.

  // 1. Layout: a 4-building campus, 6 rooms per building.
  MultilevelLocationGraph graph = MakeCampusGraph(4, 6).ValueOrDie();
  UserProfileDatabase profiles;
  std::vector<SubjectId> staff = GenerateSubjects(&profiles, 12);

  // Policy: everyone may use building 0; only the first four staff may
  // enter building 1's secure lab (room B1.R5) and the corridor to it.
  AuthorizationDatabase auth_db;
  auto grant = [&](SubjectId s, const std::string& room) {
    auth_db.Add(LocationTemporalAuthorization::Make(
                    TimeInterval(0, 300), TimeInterval(0, 360),
                    LocationAuthorization{s, graph.Find(room).ValueOrDie()},
                    kUnlimitedEntries)
                    .ValueOrDie());
  };
  for (SubjectId s : staff) {
    for (uint32_t r = 0; r < 6; ++r) {
      grant(s, "B0.R" + std::to_string(r));
    }
  }
  for (size_t i = 0; i < 4; ++i) {
    // Oops: the officer grants the lab but forgets room B1.R4 on the way.
    for (uint32_t r = 0; r < 4; ++r) {
      grant(staff[i], "B1.R" + std::to_string(r));
    }
    grant(staff[i], "B1.R5");
  }

  // 2. Audit (Section 6): is the lab actually reachable?
  LocationId lab = graph.Find("B1.R5").ValueOrDie();
  InaccessibleResult audit =
      FindInaccessible(graph, graph.root(), staff[0], auth_db).ValueOrDie();
  std::printf("audit for %s: %zu of %zu locations inaccessible\n",
              profiles.subject(staff[0]).name.c_str(),
              audit.inaccessible.size(), audit.analyzed.size());
  if (audit.IsInaccessible(lab)) {
    std::printf(
        "  -> B1.R5 is granted but UNREACHABLE (missing corridor room); "
        "fixing.\n");
    for (size_t i = 0; i < 4; ++i) grant(staff[i], "B1.R4");
  }
  audit =
      FindInaccessible(graph, graph.root(), staff[0], auth_db).ValueOrDie();
  std::printf("after fix: lab inaccessible? %s\n\n",
              audit.IsInaccessible(lab) ? "yes" : "no");

  // 3. Live enforcement vs the card-reader baseline on one simulated day
  //    with misbehaving users.
  SimOptions sim;
  sim.steps_per_subject = 40;
  sim.tailgate_prob = 0.15;
  sim.overstay_prob = 0.05;
  Rng rng(2026);
  Scenario day = SimulateMovement(graph, auth_db, staff, sim, &rng);

  MovementDatabase movements;
  AccessControlEngine ltam_engine(&graph, &auth_db, &movements, &profiles);
  ReplayOnEngine(day, &ltam_engine);
  DetectionStats ltam_stats = ScoreDetections(day, ltam_engine.alerts());

  AuthorizationDatabase card_db = auth_db;  // Same policy, separate ledger.
  CardReaderBaseline card(&card_db);
  ReplayOnBaseline(day, &card);
  DetectionStats card_stats = ScoreDetections(day, card.alerts());

  std::printf("injected violations: %zu\n", day.ground_truth.size());
  std::printf("  %-22s detected %zu (recall %.0f%%)\n", "LTAM:",
              ltam_stats.detected, 100.0 * ltam_stats.recall());
  std::printf("  %-22s detected %zu (recall %.0f%%)\n",
              "card-reader baseline:", card_stats.detected,
              100.0 * card_stats.recall());

  // 4. Investigate with the query language.
  QueryEngine qe(&graph, &auth_db, &movements, &profiles);
  QueryInterpreter interp(&qe, &graph, &profiles, &movements, &auth_db);
  for (const char* q : {
           "WHO CAN ACCESS B1.R5 DURING [0, 300]",
           "ACCESSIBLE FOR u0 IN B1",
           "ROUTE FOR u0 FROM B0.R0 TO B1.R5 DURING [0, 300]",
       }) {
    std::printf("\n> %s\n", q);
    Result<QueryResult> r = interp.Run(q);
    if (r.ok()) {
      std::printf("%s", r->ToString().c_str());
    } else {
      std::printf("  error: %s\n", r.status().ToString().c_str());
    }
  }
  return 0;
}
