// Copyright 2026 The LTAM Authors.

#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/sharded_engine.h"
#include "query/query_language.h"
#include "replication/epoch.h"
#include "replication/log_shipper.h"
#include "service/protocol.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One accepted connection. The owning I/O loop (index `owner`) has
/// exclusive use of the socket's read side, the frame assembler, the
/// sequence counter, and the epoll interest; any thread may append (or
/// directly send) response bytes under out_mu.
struct Connection {
  Connection(int fd_in, uint64_t id_in, uint32_t owner_in)
      : fd(fd_in), id(id_in), owner(owner_in) {}
  ~Connection() {
    if (!fd_closed) ::close(fd);
  }

  const int fd;
  const uint64_t id;     // Unique forever (keys coalescer state safely
                         // across address reuse).
  const uint32_t owner;  // Owning I/O loop index.

  // Owner-loop-only state.
  FrameAssembler assembler;
  uint64_t next_seq = 0;  // Ingest sequence numbers handed out.

  /// This connection's share of the global ingest quota, in queue
  /// units. Charged by the owner loop, released by the coalescer.
  std::atomic<size_t> queued_units{0};

  /// True once the connection is torn down; set under out_mu, readable
  /// without it. Responders drop their bytes instead of touching a
  /// closed (possibly reused) fd.
  std::atomic<bool> dead{false};

  /// Dedups attention signals to the owner loop.
  std::atomic<bool> attention_pending{false};

  std::mutex out_mu;
  std::string out;                 // Unsent response bytes.
  bool want_attention = false;     // Set with out growth off-loop.
  bool write_armed = false;        // EPOLLOUT currently registered.
  bool close_after_flush = false;  // Drop once out drains.
  bool io_failed = false;          // Hard send error or backlog overflow.
  bool fd_closed = false;          // fd already closed by the owner loop.
};

using ConnectionPtr = std::shared_ptr<Connection>;

bool IsBarrier(MessageType type) {
  return type == MessageType::kApplyFix || type == MessageType::kCheckpoint;
}

/// One ingest frame queued for the coalescer. Apply/ApplyBatch frames
/// carry their payload as a pinned zero-copy view — the events are
/// decoded exactly once, at merge time.
struct IngestJob {
  ConnectionPtr conn;
  uint64_t seq = 0;
  uint32_t request_id = 0;
  MessageType type = MessageType::kApply;
  FrameView frame;          // kApply / kApplyBatch payload view.
  uint32_t event_count = 0; // Validated by PeekApplyEventCount.
  PositionFix fix;          // kApplyFix.
  size_t units = 0;         // Quota units charged for this frame.
  // Telemetry stamps (0 when the server runs uninstrumented):
  uint64_t recv_ns = 0;     // Dispatch saw the complete frame.
  uint64_t pickup_ns = 0;   // The coalescer merged it into a group.
};

/// Node of one per-shard MPSC ingest queue (a Treiber stack: I/O
/// threads CAS-push, the coalescer exchanges the whole head off and
/// reverses it back into arrival order).
struct IngestNode {
  explicit IngestNode(IngestJob job_in) : job(std::move(job_in)) {}
  IngestJob job;
  IngestNode* next = nullptr;
};

struct ShardQueue {
  std::atomic<IngestNode*> head{nullptr};
  std::atomic<uint64_t> frames{0};  // Accepted frames, for stats.
};

/// One frame bound for the read pool.
struct ReadJob {
  ConnectionPtr conn;
  uint32_t request_id = 0;
  MessageType type = MessageType::kQuery;
  std::string statement;     // kQuery.
  uint8_t metrics_format = 0;  // kMetrics.
};

/// An alert no in-flight frame could carry by subject. Held until the
/// bounded deadline: attached to the preferred connection's next frame
/// immediately, to ANY frame of a merge once a full coalescer round has
/// passed, or pushed as kAlertPush at shutdown.
struct PendingAlert {
  Alert alert;
  uint64_t parked_round = 0;
  std::weak_ptr<Connection> preferred;  // Last toucher of the subject.
};

}  // namespace

class ServiceServer::Impl {
 public:
  Impl(AccessRuntime* runtime, ServerOptions options)
      : runtime_(runtime), options_(options) {
    if (options_.metrics != nullptr) {
      MetricsRegistry* m = options_.metrics;
      h_queue_wait_ = m->GetHistogram("ingest.queue_wait");
      h_decode_ = m->GetHistogram("ingest.decode");
      h_apply_ = m->GetHistogram("ingest.apply");
      h_fsync_wait_ = m->GetHistogram("ingest.fsync_wait");
      h_write_ = m->GetHistogram("ingest.write");
      h_e2e_ = m->GetHistogram("ingest.e2e");
      h_query_ = m->GetHistogram("query.run");
      c_frames_ = m->GetCounter("ingest.frames");
      c_events_ = m->GetCounter("ingest.events");
      c_quota_refusals_ = m->GetCounter("ingest.quota_refusals");
      c_trace_emitted_ = m->GetCounter("trace.emitted");
      c_trace_suppressed_ = m->GetCounter("trace.suppressed");
    }
  }

  bool instrumented() const { return options_.metrics != nullptr; }

  ~Impl() { Stop(); }

  Status Start() {
    if (started_) return Status::FailedPrecondition("server already started");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      CloseListen();
      return Status::InvalidArgument("unparseable listen host '" +
                                     options_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status st = Errno("bind");
      CloseListen();
      return st;
    }
    if (::listen(listen_fd_, options_.listen_backlog) != 0) {
      Status st = Errno("listen");
      CloseListen();
      return st;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      Status st = Errno("getsockname");
      CloseListen();
      return st;
    }
    bound_port_ = ntohs(addr.sin_port);
    if (!SetNonBlocking(listen_fd_)) {
      Status st = Errno("fcntl(listen)");
      CloseListen();
      return st;
    }

    // One ingest queue per runtime shard: frames are routed by the
    // shard of their first event, so a shard's frames arrive already
    // grouped for the runtime's fan-out.
    nshards_ = std::max<uint32_t>(1, runtime_->Stats().num_shards);
    shard_queues_ = std::make_unique<ShardQueue[]>(nshards_);

    const uint32_t nloops = std::max(1u, options_.io_threads);
    loops_.clear();
    loops_.reserve(nloops);
    for (uint32_t i = 0; i < nloops; ++i) {
      auto loop = std::make_unique<IoLoop>();
      loop->index = i;
      loop->epoll_fd = ::epoll_create1(0);
      loop->event_fd = ::eventfd(0, EFD_NONBLOCK);
      if (loop->epoll_fd < 0 || loop->event_fd < 0) {
        Status st = Errno(loop->epoll_fd < 0 ? "epoll_create1" : "eventfd");
        loops_.push_back(std::move(loop));  // So TeardownLoops sees it.
        TeardownLoops();
        CloseListen();
        return st;
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = loop->event_fd;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
      if (i == 0) {
        ev.data.fd = listen_fd_;
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
      }
      loops_.push_back(std::move(loop));
    }

    // The one interpreter every read worker shares: its referents (the
    // runtime's stores and MovementView) are stable for the runtime's
    // lifetime, and workers only run it under the shared runtime lock.
    interpreter_ = std::make_unique<QueryInterpreter>(
        &runtime_->query(), &runtime_->graph(), &runtime_->profiles(),
        &runtime_->movements(), &runtime_->auth_db());

    stopping_ = false;
    coal_stop_ = false;
    started_ = true;
    for (auto& loop : loops_) {
      IoLoop* raw = loop.get();
      loop->thread = std::thread([this, raw] { IoLoopRun(raw); });
    }
    coalescer_thread_ = std::thread([this] { CoalescerLoop(); });
    const uint32_t workers = std::max(1u, options_.read_workers);
    read_threads_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      read_threads_.emplace_back([this] { ReadLoop(); });
    }
    return Status::OK();
  }

  void Stop() {
    if (!started_) return;
    // Phase 1: stop the I/O loops. Connections stay open — queued
    // frames still owe responses.
    stopping_ = true;
    for (auto& loop : loops_) SignalLoop(loop.get());
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) loop->thread.join();
    }
    // The loops are gone, so no new subscription can start; retire the
    // log shippers before their connections are torn down.
    StopAllShippers();
    // Phase 2: the producers are gone, so the coalescer can drain every
    // queue (and every held reorder gap resolves) before exiting.
    coal_stop_ = true;
    {
      std::lock_guard<std::mutex> lock(coal_mu_);
      coal_cv_.notify_all();
    }
    coalescer_thread_.join();
    // The coalescer is gone; close out any fsync-wait spans it left
    // (the watermark has settled — the runtime's log threads idle-sync).
    if (instrumented()) FlushFsyncWaits(/*final=*/true);
    // Phase 3: read workers drain the remaining Query/Stats jobs.
    {
      std::lock_guard<std::mutex> lock(reads_mu_);
      reads_cv_.notify_all();
    }
    for (std::thread& t : read_threads_) t.join();
    read_threads_.clear();
    // Phase 4: whatever alerts are still held get pushed to a live
    // connection — the tail of the delivery guarantee.
    DrainStrandedAlerts();
    // Phase 5: best-effort blocking flush, then teardown.
    FinalFlush();
    for (auto& loop : loops_) loop->connections.clear();
    TeardownLoops();
    CloseListen();
    states_.clear();
    last_toucher_.clear();
    pending_alerts_.clear();
    read_queue_.clear();
    queued_units_ = 0;
    started_ = false;
  }

  uint16_t bound_port() const { return bound_port_; }

  std::shared_mutex& runtime_mutex() { return runtime_mu_; }

  CoalescerStats coalescer_stats() const {
    CoalescerStats out;
    {
      std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
      out = coalescer_stats_;
    }
    out.shard_queue_frames.resize(nshards_);
    for (uint32_t k = 0; k < nshards_; ++k) {
      out.shard_queue_frames[k] =
          shard_queues_[k].frames.load(std::memory_order_relaxed);
    }
    out.io_thread_connections.reserve(loops_.size());
    for (const auto& loop : loops_) {
      out.io_thread_connections.push_back(
          loop->accepted.load(std::memory_order_relaxed));
    }
    return out;
  }

 private:
  /// One epoll I/O loop. `connections` and all epoll interest mutation
  /// belong to the loop's own thread; `pending_adds` / `attention` are
  /// the handoff from other threads, guarded by pending_mu and signaled
  /// via event_fd.
  struct IoLoop {
    uint32_t index = 0;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::unordered_map<int, ConnectionPtr> connections;
    std::mutex pending_mu;
    std::vector<ConnectionPtr> pending_adds;
    std::vector<ConnectionPtr> attention;
    std::atomic<size_t> accepted{0};
  };

  /// Per-connection reorder state on the coalescer: per-shard queues
  /// deliver a connection's frames possibly out of order (a drain can
  /// catch shard A after frame n+1 landed there but before frame n
  /// reached shard B), and the sequence numbers restore FIFO here.
  struct ConnState {
    std::weak_ptr<Connection> wconn;
    uint64_t next_seq = 0;
    std::unordered_map<uint64_t, IngestJob> held;
    std::deque<IngestJob> ready;
  };

  void CloseListen() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
  }

  void TeardownLoops() {
    for (auto& loop : loops_) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->event_fd >= 0) ::close(loop->event_fd);
      loop->epoll_fd = loop->event_fd = -1;
    }
    loops_.clear();
  }

  void SignalLoop(IoLoop* loop) {
    uint64_t one = 1;
    ssize_t ignored = ::write(loop->event_fd, &one, sizeof(one));
    (void)ignored;
  }

  /// Queues `conn` for its owner loop's attention (output to arm, or a
  /// failure to reap) and wakes the loop. Deduped per connection.
  void SignalAttention(const ConnectionPtr& conn) {
    if (conn->attention_pending.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    IoLoop* loop = loops_[conn->owner].get();
    {
      std::lock_guard<std::mutex> lock(loop->pending_mu);
      loop->attention.push_back(conn);
    }
    SignalLoop(loop);
  }

  // --- I/O loops -------------------------------------------------------------

  void IoLoopRun(IoLoop* loop) {
    epoll_event events[64];
    while (!stopping_) {
      int n = ::epoll_wait(loop->epoll_fd, events, 64, /*timeout_ms=*/200);
      if (n < 0) {
        if (errno == EINTR) continue;
        LTAM_LOG_ERROR << "server epoll_wait failed: " << std::strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const uint32_t ev = events[i].events;
        if (fd == loop->event_fd) {
          DrainEventFd(loop);
          HandleAttention(loop);
          continue;
        }
        if (fd == listen_fd_) {
          AcceptPending(loop);
          continue;
        }
        auto it = loop->connections.find(fd);
        if (it == loop->connections.end()) continue;  // Dropped this batch.
        ConnectionPtr conn = it->second;
        bool drop = false;
        {
          std::lock_guard<std::mutex> lock(conn->out_mu);
          if (conn->io_failed ||
              conn->out.size() > options_.max_connection_backlog_bytes) {
            drop = true;
          }
        }
        if (!drop && (ev & (EPOLLERR | EPOLLHUP))) drop = true;
        if (!drop && (ev & EPOLLIN)) drop = !ReadFrom(loop, conn);
        if (!drop && (ev & EPOLLOUT)) drop = !FlushTo(loop, conn);
        if (drop) Drop(loop, conn);
      }
    }
    // Leave connections intact: Stop() still owes them queued responses
    // and the final flush.
  }

  void DrainEventFd(IoLoop* loop) {
    uint64_t count = 0;
    while (::read(loop->event_fd, &count, sizeof(count)) > 0) {
    }
  }

  void HandleAttention(IoLoop* loop) {
    std::vector<ConnectionPtr> adds;
    std::vector<ConnectionPtr> attention;
    {
      std::lock_guard<std::mutex> lock(loop->pending_mu);
      adds.swap(loop->pending_adds);
      attention.swap(loop->attention);
    }
    for (ConnectionPtr& conn : adds) Register(loop, std::move(conn));
    for (const ConnectionPtr& conn : attention) {
      conn->attention_pending.store(false, std::memory_order_release);
      if (conn->dead.load(std::memory_order_acquire)) continue;
      bool drop = false;
      bool arm = false;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->io_failed ||
            conn->out.size() > options_.max_connection_backlog_bytes) {
          drop = true;
        } else if (!conn->out.empty() && !conn->write_armed) {
          conn->write_armed = true;
          arm = true;
        } else if (conn->out.empty() && conn->close_after_flush) {
          drop = true;
        }
      }
      if (drop) {
        Drop(loop, conn);
      } else if (arm) {
        UpdateInterest(loop, conn, /*want_read=*/true, /*want_write=*/true);
      }
    }
  }

  void Register(IoLoop* loop, ConnectionPtr conn) {
    const int fd = conn->fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->dead.store(true, std::memory_order_release);
      conn->fd_closed = true;
      ::close(fd);
      return;
    }
    loop->connections.emplace(fd, std::move(conn));
  }

  void UpdateInterest(IoLoop* loop, const ConnectionPtr& conn, bool want_read,
                      bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  /// Tears a connection down: marks it dead (responders drop their
  /// bytes), then closes the fd. The dead store happens under out_mu so
  /// no responder can be mid-send on the fd when it closes.
  void Drop(IoLoop* loop, const ConnectionPtr& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->dead.store(true, std::memory_order_release);
      conn->out.clear();
      if (!conn->fd_closed) {
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
        ::close(conn->fd);
        conn->fd_closed = true;
      }
    }
    loop->connections.erase(conn->fd);
    StopShipper(conn->id);  // No-op for the non-subscribed majority.
  }

  void AcceptPending(IoLoop* loop0) {
    while (!stopping_) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Round-robin steering: each loop owns its connections for life.
      const uint32_t target =
          next_loop_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<uint32_t>(loops_.size());
      auto conn = std::make_shared<Connection>(
          fd, next_conn_id_.fetch_add(1, std::memory_order_relaxed), target);
      loops_[target]->accepted.fetch_add(1, std::memory_order_relaxed);
      if (target == loop0->index) {
        Register(loop0, std::move(conn));
      } else {
        IoLoop* peer = loops_[target].get();
        {
          std::lock_guard<std::mutex> lock(peer->pending_mu);
          peer->pending_adds.push_back(std::move(conn));
        }
        SignalLoop(peer);
      }
    }
  }

  /// Reads what the socket has; false when the connection is done.
  /// recv() lands straight in the assembler's chunk (BeginFill), so the
  /// bytes are copied exactly once off the kernel.
  bool ReadFrom(IoLoop* loop, const ConnectionPtr& conn) {
    while (true) {
      size_t capacity = 0;
      char* dst = conn->assembler.BeginFill(4096, &capacity);
      ssize_t n = ::recv(conn->fd, dst, capacity, 0);
      if (n > 0) {
        conn->assembler.CommitFill(static_cast<size_t>(n));
        if (!DrainFrames(loop, conn)) return false;
        {
          std::lock_guard<std::mutex> lock(conn->out_mu);
          if (conn->close_after_flush) return true;  // Stop reading.
        }
        // A partial fill means the socket buffer is drained — skip the
        // recv that would only return EAGAIN.
        if (static_cast<size_t>(n) < capacity) return true;
        continue;
      }
      conn->assembler.CommitFill(0);
      if (n == 0) return false;  // Peer closed.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Extracts complete frames as zero-copy views and dispatches them;
  /// false to drop the connection now.
  bool DrainFrames(IoLoop* loop, const ConnectionPtr& conn) {
    while (true) {
      Result<std::optional<FrameView>> next = conn->assembler.NextView();
      if (!next.ok()) {
        // The stream can no longer be framed: send one final error
        // (request id 0 — no frame to attribute it to) and close once
        // it flushes.
        Respond(conn, MessageType::kError, 0,
                EncodeErrorResult(next.status()));
        bool drop_now = false;
        {
          std::lock_guard<std::mutex> lock(conn->out_mu);
          conn->close_after_flush = true;
          if (conn->out.empty()) {
            drop_now = true;  // The error already went out.
          } else if (!conn->write_armed) {
            conn->write_armed = true;
          }
        }
        if (!drop_now) {
          UpdateInterest(loop, conn, /*want_read=*/false, /*want_write=*/true);
        }
        return !drop_now;
      }
      if (!next->has_value()) return true;
      Dispatch(conn, std::move(**next));
    }
  }

  void Dispatch(const ConnectionPtr& conn, FrameView frame) {
    const uint32_t id = frame.header.request_id;
    const MessageType type = frame.header.type;
    switch (type) {
      case MessageType::kPing:
        // No runtime state involved: answered inline on the I/O thread.
        Respond(conn, MessageType::kPong, id, "");
        return;
      case MessageType::kApply:
      case MessageType::kApplyBatch: {
        // O(1) shape check only — the events are decoded once, at merge
        // time, straight from this pinned view.
        Result<uint32_t> count = PeekApplyEventCount(type, frame.payload);
        if (!count.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(count.status()));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = type;
        job.event_count = *count;
        job.units = std::max<size_t>(1, *count);
        if (instrumented()) job.recv_ns = MonotonicNowNs();
        std::optional<SubjectId> subject =
            PeekFirstSubject(type, frame.payload);
        job.frame = std::move(frame);
        const uint32_t shard =
            subject.has_value()
                ? ShardedDecisionEngine::ShardOfSubject(*subject, nshards_)
                : 0;
        EnqueueIngest(std::move(job), shard);
        return;
      }
      case MessageType::kApplyFix: {
        Result<PositionFix> fix = DecodeApplyFixRequest(frame.payload);
        if (!fix.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(fix.status()));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kApplyFix;
        job.fix = *fix;
        job.units = 1;
        EnqueueIngest(std::move(job),
                      ShardedDecisionEngine::ShardOfSubject(fix->subject,
                                                            nshards_));
        return;
      }
      case MessageType::kCheckpoint: {
        if (!frame.payload.empty()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(Status::ParseError(
                      "checkpoint: unexpected payload")));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kCheckpoint;
        job.units = 1;
        EnqueueIngest(std::move(job), 0);
        return;
      }
      case MessageType::kQuery: {
        Result<std::string> statement = DecodeQueryRequest(frame.payload);
        if (!statement.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(statement.status()));
          return;
        }
        ReadJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kQuery;
        job.statement = std::move(*statement);
        EnqueueRead(std::move(job));
        return;
      }
      case MessageType::kStats: {
        if (!frame.payload.empty()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(
                      Status::ParseError("stats: unexpected payload")));
          return;
        }
        ReadJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kStats;
        EnqueueRead(std::move(job));
        return;
      }
      case MessageType::kMetrics: {
        Result<uint8_t> format = DecodeMetricsRequest(frame.payload);
        if (!format.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(format.status()));
          return;
        }
        if (!instrumented()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(Status::FailedPrecondition(
                      "this server runs without a telemetry registry "
                      "(ServerOptions::metrics unset)")));
          return;
        }
        ReadJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kMetrics;
        job.metrics_format = *format;
        EnqueueRead(std::move(job));
        return;
      }
      case MessageType::kReplicaHello: {
        Result<ReplicaHello> hello = DecodeReplicaHello(frame.payload);
        if (!hello.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(hello.status()));
          return;
        }
        uint64_t local_epoch = 0;
        Status accepted = ValidateHello(*hello, &local_epoch);
        if (!accepted.ok()) {
          Respond(conn, MessageType::kError, id, EncodeErrorResult(accepted));
          return;
        }
        // Welcome FIRST (frames on one connection stay ordered), then
        // the shipper starts pushing chunks behind it.
        ReplicaWelcome welcome;
        welcome.epoch = local_epoch;
        welcome.num_shards = nshards_;
        Respond(conn, MessageType::kReplicaWelcome, id,
                EncodeReplicaWelcome(welcome));
        StartShipper(conn, std::move(hello->positions));
        return;
      }
      case MessageType::kPromote: {
        if (!frame.payload.empty()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(
                      Status::ParseError("promote: unexpected payload")));
          return;
        }
        if (!options_.promote_hook) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(Status::FailedPrecondition(
                      "this server has no promotion hook (not started as "
                      "a replica)")));
          return;
        }
        Result<uint64_t> epoch = options_.promote_hook();
        if (!epoch.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(epoch.status()));
          return;
        }
        Respond(conn, MessageType::kPromoteResult, id,
                EncodePromoteResult(*epoch));
        return;
      }
      case MessageType::kRepoint: {
        Result<RepointRequest> repoint = DecodeRepointRequest(frame.payload);
        if (!repoint.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(repoint.status()));
          return;
        }
        if (!options_.repoint_hook) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(Status::FailedPrecondition(
                      "this server has no repoint hook (not started as "
                      "a replica)")));
          return;
        }
        Status repointed = options_.repoint_hook(repoint->host, repoint->port);
        if (!repointed.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(repointed));
          return;
        }
        Respond(conn, MessageType::kRepointResult, id, "");
        return;
      }
      default:
        Respond(conn, MessageType::kError, id,
                EncodeErrorResult(Status::InvalidArgument(
                    std::string("server received a response frame (") +
                    MessageTypeToString(type) + ")")));
        return;
    }
  }

  // --- Replication subscriptions ---------------------------------------------

  /// Gate for an incoming subscription: the runtime must be able to
  /// ship (durable sharded), the sharding must match, and the fencing
  /// rule must admit the replica's epoch.
  Status ValidateHello(const ReplicaHello& hello, uint64_t* local_epoch) {
    {
      std::shared_lock<std::shared_mutex> lock(runtime_mu_);
      *local_epoch = runtime_->replication_epoch();
      // Probes replication capability (in-memory and sequential
      // runtimes refuse here).
      LTAM_RETURN_IF_ERROR(runtime_->ReplicationPositions().status());
    }
    if (hello.num_shards != nshards_) {
      return Status::FailedPrecondition(
          "replica runs " + std::to_string(hello.num_shards) +
          " shards, this primary " + std::to_string(nshards_) +
          " — replication requires identical sharding");
    }
    return CheckSubscriptionEpoch(*local_epoch, hello.epoch);
  }

  /// Spawns the per-subscription shipper, keyed by connection id so the
  /// owner loop can retire it when the connection drops. A second hello
  /// on the same connection replaces (and stops) the first shipper.
  void StartShipper(const ConnectionPtr& conn,
                    std::vector<uint64_t> positions) {
    auto send = [this, conn](MessageType type,
                             const std::string& payload) -> bool {
      if (conn->dead.load(std::memory_order_acquire)) return false;
      Respond(conn, type, /*id=*/0, payload);
      bool failed = false;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        failed = conn->io_failed;
      }
      return !failed && !conn->dead.load(std::memory_order_acquire);
    };
    LogShipperOptions shipper_options;
    shipper_options.metrics = options_.metrics;
    shipper_options.subscriber_id = conn->id;
    auto shipper = std::make_unique<LogShipper>(
        runtime_, &runtime_mu_, std::move(positions), std::move(send),
        shipper_options);
    std::unique_ptr<LogShipper> replaced;
    {
      std::lock_guard<std::mutex> lock(shippers_mu_);
      replaced = std::move(shippers_[conn->id]);
      shipper->Start();
      shippers_[conn->id] = std::move(shipper);
    }
    if (replaced != nullptr) replaced->Stop();
  }

  void StopShipper(uint64_t conn_id) {
    std::unique_ptr<LogShipper> shipper;
    {
      std::lock_guard<std::mutex> lock(shippers_mu_);
      auto it = shippers_.find(conn_id);
      if (it == shippers_.end()) return;
      shipper = std::move(it->second);
      shippers_.erase(it);
    }
    shipper->Stop();  // Outside the lock: Stop joins the shipper thread.
  }

  void StopAllShippers() {
    std::unordered_map<uint64_t, std::unique_ptr<LogShipper>> taken;
    {
      std::lock_guard<std::mutex> lock(shippers_mu_);
      taken.swap(shippers_);
    }
    for (auto& [id, shipper] : taken) shipper->Stop();
  }

  /// Flushes pending output from the owner loop; false when the
  /// connection is done.
  bool FlushTo(IoLoop* loop, const ConnectionPtr& conn) {
    bool disarm = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      size_t off = 0;
      while (off < conn->out.size()) {
        ssize_t n = ::send(conn->fd, conn->out.data() + off,
                           conn->out.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
          off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn->out.erase(0, off);
        return false;
      }
      conn->out.erase(0, off);
      if (conn->out.empty()) {
        if (conn->close_after_flush) return false;
        if (conn->write_armed) {
          conn->write_armed = false;
          disarm = true;
        }
      }
    }
    if (disarm) {
      UpdateInterest(loop, conn, /*want_read=*/true, /*want_write=*/false);
    }
    return true;
  }

  /// Sends one response frame. Safe from any thread: when the
  /// connection's buffer is empty the frame goes straight to the socket
  /// (the common case — no wakeup, no extra epoll round-trip); only a
  /// short write leaves residue for the owner loop's EPOLLOUT. A
  /// payload over the wire ceiling (e.g. a query whose table outgrew
  /// 8 MiB) degrades to a structured error — it must never reach
  /// EncodeFrame's fatal check and take the whole service down.
  void Respond(const ConnectionPtr& conn, MessageType type, uint32_t id,
               const std::string& payload) {
    std::string frame;
    if (payload.size() > kMaxFramePayload) {
      frame = EncodeFrame(
          MessageType::kError, id,
          EncodeErrorResult(Status::OutOfRange(
              std::string(MessageTypeToString(type)) + " response of " +
              std::to_string(payload.size()) +
              " bytes exceeds the frame ceiling; narrow the request")));
    } else {
      frame = EncodeFrame(type, id, payload);
    }
    bool need_attention = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->dead.load(std::memory_order_acquire)) return;
      if (conn->io_failed) return;
      if (conn->out.empty()) {
        size_t off = 0;
        while (off < frame.size()) {
          ssize_t n = ::send(conn->fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
          if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          conn->io_failed = true;  // Hard error: owner loop reaps it.
          need_attention = true;
          break;
        }
        if (!conn->io_failed && off < frame.size()) {
          conn->out.assign(frame, off, std::string::npos);
          need_attention = !conn->write_armed;
        }
      } else {
        conn->out += frame;
        need_attention = !conn->write_armed;
        if (conn->out.size() > options_.max_connection_backlog_bytes) {
          // A client writing requests but never reading responses
          // cannot buffer without bound.
          conn->io_failed = true;
          need_attention = true;
        }
      }
    }
    if (need_attention) SignalAttention(conn);
  }

  // --- Ingest queues ---------------------------------------------------------

  /// Quota check (global budget first, then the per-connection share),
  /// then a lock-free push onto the frame's shard queue. The sequence
  /// number is assigned only after acceptance, so the coalescer's
  /// reorder never waits on a refused frame.
  void EnqueueIngest(IngestJob job, uint32_t shard) {
    const size_t units = job.units;
    const size_t global_before =
        queued_units_.fetch_add(units, std::memory_order_acq_rel);
    if (global_before + units > options_.max_queued_events) {
      queued_units_.fetch_sub(units, std::memory_order_acq_rel);
      Respond(job.conn, MessageType::kError, job.request_id,
              EncodeErrorResult(Status::FailedPrecondition(
                  "ingest queue full (" + std::to_string(global_before) +
                  " events queued); retry later")));
      return;
    }
    // Per-connection quota: one flooding client is refused on ITS share
    // long before it can exhaust the global budget and starve every
    // other connection.
    const size_t conn_before =
        job.conn->queued_units.fetch_add(units, std::memory_order_acq_rel);
    if (conn_before + units > options_.max_connection_queued_events) {
      job.conn->queued_units.fetch_sub(units, std::memory_order_acq_rel);
      queued_units_.fetch_sub(units, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
        ++coalescer_stats_.connection_quota_refusals;
      }
      if (c_quota_refusals_ != nullptr) c_quota_refusals_->Increment();
      Respond(job.conn, MessageType::kError, job.request_id,
              EncodeErrorResult(Status::FailedPrecondition(
                  "connection ingest quota full (" +
                  std::to_string(conn_before) +
                  " events queued on this connection); read responses or "
                  "retry later")));
      return;
    }
    job.seq = job.conn->next_seq++;
    // Apply frames only: barriers (Checkpoint/ApplyFix) never enter the
    // merge group, so counting them here would strand the counter above
    // every per-frame stage histogram and break the reconciliation.
    if (c_frames_ != nullptr && !IsBarrier(job.type)) {
      c_frames_->Increment();
      c_events_->Increment(job.event_count);
    }
    ShardQueue& q = shard_queues_[shard];
    auto* node = new IngestNode(std::move(job));
    IngestNode* head = q.head.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!q.head.compare_exchange_weak(head, node,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
    q.frames.fetch_add(1, std::memory_order_relaxed);
    if (coalescer_idle_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(coal_mu_);
      coal_cv_.notify_one();
    }
  }

  void EnqueueRead(ReadJob job) {
    {
      std::lock_guard<std::mutex> lock(reads_mu_);
      if (read_queue_.size() >= options_.max_queued_reads) {
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(Status::FailedPrecondition(
                    "read queue full (" +
                    std::to_string(read_queue_.size()) +
                    " queries queued); retry later")));
        return;
      }
      read_queue_.push_back(std::move(job));
    }
    reads_cv_.notify_all();
  }

  // --- Ingest coalescer ------------------------------------------------------

  bool AnyQueueNonEmpty() const {
    for (uint32_t k = 0; k < nshards_; ++k) {
      if (shard_queues_[k].head.load(std::memory_order_acquire) != nullptr) {
        return true;
      }
    }
    return false;
  }

  bool AnyStateHasWork() const {
    for (const auto& [id, st] : states_) {
      if (!st.ready.empty() || !st.held.empty()) return true;
    }
    return false;
  }

  void CoalescerLoop() {
    while (true) {
      const bool did_work = RoundOnce();
      if (coal_stop_.load(std::memory_order_acquire)) {
        // Drain to empty: the producers joined before coal_stop_, so
        // every pushed frame is reachable and every reorder gap closes.
        if (!did_work && !AnyQueueNonEmpty() && !AnyStateHasWork()) return;
        continue;
      }
      if (did_work) continue;
      std::unique_lock<std::mutex> lock(coal_mu_);
      coalescer_idle_.store(true, std::memory_order_seq_cst);
      if (AnyQueueNonEmpty() || coal_stop_.load(std::memory_order_acquire)) {
        coalescer_idle_.store(false, std::memory_order_seq_cst);
        continue;
      }
      // Unresolved fsync-wait spans cap the nap: their durations are
      // resolved by polling the watermark at round starts, so a long
      // idle sleep would overstate them.
      coal_cv_.wait_for(lock, std::chrono::milliseconds(
                                  fsync_pending_.empty() ? 100 : 5));
      coalescer_idle_.store(false, std::memory_order_seq_cst);
    }
  }

  /// One coalescer round: drain the shard queues into per-connection
  /// FIFO state, apply any leading barriers, merge one apply frame per
  /// connection into a single runtime batch, then GC dead connections.
  /// Returns whether anything moved.
  bool RoundOnce() {
    FlushFsyncWaits(/*final=*/false);
    bool any = DrainShardQueues();
    // Barriers: ApplyFix/Checkpoint apply alone, in their connection's
    // FIFO position.
    for (auto& [id, st] : states_) {
      while (!st.ready.empty() && IsBarrier(st.ready.front().type)) {
        IngestJob job = std::move(st.ready.front());
        st.ready.pop_front();
        ReleaseUnits(job);
        if (job.type == MessageType::kApplyFix) {
          ProcessFix(job);
        } else {
          ProcessCheckpoint(job);
        }
        any = true;
      }
    }
    // Merge group: at most ONE Apply/ApplyBatch frame per connection
    // (the earliest queued), bounded by max_coalesced_events. Merging
    // across connections is the whole point — it amortizes the sharded
    // fan-out and group commit — while one-frame-per-connection keeps
    // batch-scoped alert attribution exact and preserves every
    // connection's (hence every subject's, when subjects are not shared
    // across connections) time order.
    group_.clear();
    size_t events = 0;
    const uint64_t pickup_ns = instrumented() ? MonotonicNowNs() : 0;
    for (auto& [id, st] : states_) {
      if (st.ready.empty()) continue;
      IngestJob& front = st.ready.front();
      if (IsBarrier(front.type)) continue;  // Arrived during this loop? No —
                                            // but cheap to keep exact.
      if (!group_.empty() &&
          events + front.event_count > options_.max_coalesced_events) {
        continue;  // Over budget this round; a smaller frame may still fit.
      }
      events += front.event_count;
      ReleaseUnits(front);
      if (pickup_ns != 0) {
        front.pickup_ns = pickup_ns;
        // Recorded once per frame, here: the refusal-retry path below
        // re-enters ProcessMergedBatch but never re-picks-up.
        h_queue_wait_->Record(pickup_ns - front.recv_ns);
      }
      group_.push_back(std::move(front));
      st.ready.pop_front();
      any = true;
    }
    if (!group_.empty()) ProcessMergedBatch(&group_);
    for (auto it = states_.begin(); it != states_.end();) {
      if (it->second.wconn.expired() && it->second.ready.empty() &&
          it->second.held.empty()) {
        it = states_.erase(it);
      } else {
        ++it;
      }
    }
    return any;
  }

  bool DrainShardQueues() {
    bool any = false;
    for (uint32_t k = 0; k < nshards_; ++k) {
      IngestNode* node =
          shard_queues_[k].head.exchange(nullptr, std::memory_order_acquire);
      // The stack pops newest-first; reverse back to arrival order.
      IngestNode* ordered = nullptr;
      while (node != nullptr) {
        IngestNode* next = node->next;
        node->next = ordered;
        ordered = node;
        node = next;
      }
      while (ordered != nullptr) {
        Feed(std::move(ordered->job));
        IngestNode* next = ordered->next;
        delete ordered;
        ordered = next;
        any = true;
      }
    }
    return any;
  }

  /// Restores per-connection FIFO: in-sequence frames go to `ready`,
  /// early arrivals wait in `held` until their gap closes.
  void Feed(IngestJob job) {
    ConnState& st = states_[job.conn->id];
    if (st.wconn.expired()) st.wconn = job.conn;
    if (job.seq == st.next_seq) {
      st.ready.push_back(std::move(job));
      ++st.next_seq;
      auto it = st.held.find(st.next_seq);
      while (it != st.held.end()) {
        st.ready.push_back(std::move(it->second));
        st.held.erase(it);
        ++st.next_seq;
        it = st.held.find(st.next_seq);
      }
    } else {
      st.held.emplace(job.seq, std::move(job));
    }
  }

  /// Returns the frame's quota units (charged at dispatch) as its
  /// processing begins — this bounds queued + in-flight memory.
  void ReleaseUnits(const IngestJob& job) {
    job.conn->queued_units.fetch_sub(job.units, std::memory_order_acq_rel);
    queued_units_.fetch_sub(job.units, std::memory_order_acq_rel);
  }

  void ProcessMergedBatch(std::vector<IngestJob>* group) {
    // The ONE event decode: straight from each frame's pinned view into
    // the reused merge buffer, each frame's events contiguous in
    // arrival order. A frame that fails validation here gets its error
    // now and drops out of the merge.
    merged_.clear();
    const size_t n = group->size();
    std::vector<size_t> offsets(n, 0);
    std::vector<bool> live(n, false);
    std::vector<uint64_t> decode_ns(instrumented() ? n : 0, 0);
    size_t live_count = 0;
    for (size_t i = 0; i < n; ++i) {
      IngestJob& job = (*group)[i];
      offsets[i] = merged_.size();
      const uint64_t t_decode = instrumented() ? MonotonicNowNs() : 0;
      Status decoded =
          DecodeApplyEventsInto(job.type, job.frame.payload, &merged_);
      if (!decoded.ok()) {
        merged_.resize(offsets[i]);
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(decoded));
        continue;
      }
      if (t_decode != 0) {
        decode_ns[i] = MonotonicNowNs() - t_decode;
        h_decode_->Record(decode_ns[i]);
      }
      live[i] = true;
      ++live_count;
    }
    if (live_count == 0) return;

    const uint64_t t_apply = instrumented() ? MonotonicNowNs() : 0;
    Result<BatchResult> result = [&]() -> Result<BatchResult> {
      std::unique_lock<std::shared_mutex> lock(runtime_mu_);
      return runtime_->ApplyBatch(merged_);
    }();
    const uint64_t apply_done = instrumented() ? MonotonicNowNs() : 0;
    const uint64_t apply_ns = apply_done - t_apply;
    {
      std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
      ++coalescer_stats_.merged_batches;
      coalescer_stats_.merged_frames += live_count;
      coalescer_stats_.max_frames_per_batch =
          std::max(coalescer_stats_.max_frames_per_batch, live_count);
      coalescer_stats_.merged_events += merged_.size();
    }
    if (instrumented()) {
      // Once per frame per ApplyBatch attempt — the same basis as
      // CoalescerStats::merged_frames (the refusal-retry path below
      // re-enters with single frames and both tick again), so the two
      // reconcile exactly.
      for (size_t i = 0; i < live_count; ++i) h_apply_->Record(apply_ns);
    }
    if (!result.ok()) {
      // A whole-batch refusal: nothing was applied. A MERGED refusal can
      // be the coalescer's own doing (individually-legal frames summing
      // past the runtime's max_batch_events), so degrade to applying
      // each frame alone — every frame then gets its own accurate
      // verdict instead of inheriting its neighbors'. A single frame's
      // refusal is final.
      if (live_count > 1) {
        for (size_t i = 0; i < n; ++i) {
          if (!live[i]) continue;
          std::vector<IngestJob> alone;
          alone.push_back(std::move((*group)[i]));
          ProcessMergedBatch(&alone);
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        if (!live[i]) continue;
        const IngestJob& job = (*group)[i];
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(result.status().WithContext(
                    "batch refused; nothing applied")));
      }
      return;
    }

    ++round_;

    if (instrumented()) {
      // Durable-ack span: the pipelined coalescer acks before the fsync
      // lands, so "how long until this batch's records were actually
      // crash-proof" is measured asynchronously — the span closes when
      // a later round observes the durable watermark at or past this
      // batch's applied position (see FlushFsyncWaits). One span per
      // merged batch: frames share the batch's fsync, counting it per
      // frame would overstate the fsync load.
      if (result->watermark.durable >= result->watermark.applied) {
        h_fsync_wait_->Record(0);
      } else {
        fsync_pending_.push_back({result->watermark.applied, apply_done});
      }
    }

    // Demux decisions back to their frames by offset, and route alerts
    // by subject: an alert belongs to the first frame of this merge
    // that touched its subject. Alerts for subjects no frame touched
    // (e.g. raised by an earlier ApplyFix whose subject went quiet) are
    // parked with a bounded deadline — see RouteAlerts.
    std::unordered_map<SubjectId, size_t> owner;
    std::unordered_map<const Connection*, size_t> conn_index;
    size_t first_live = n;
    for (size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      if (first_live == n) first_live = i;
      conn_index.emplace((*group)[i].conn.get(), i);
      const size_t end =
          i + 1 < n ? offsets[i + 1] : merged_.size();
      for (size_t e = offsets[i]; e < end; ++e) {
        owner.emplace(merged_[e].subject, i);
        last_toucher_[merged_[e].subject] = (*group)[i].conn;
      }
    }

    std::vector<std::vector<Alert>> routed(n);
    RouteAlerts(owner, conn_index, first_live, &result->alerts, &routed);

    for (size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      const IngestJob& job = (*group)[i];
      WireBatchResult wire;
      const size_t begin = offsets[i];
      const size_t end = i + 1 < n ? offsets[i + 1] : merged_.size();
      wire.decisions.assign(result->decisions.begin() + begin,
                            result->decisions.begin() + end);
      wire.alerts = std::move(routed[i]);
      SortAlerts(&wire.alerts);
      wire.durability = result->durability;
      wire.watermark = result->watermark;
      const MessageType type = job.type == MessageType::kApply
                                   ? MessageType::kApplyResult
                                   : MessageType::kBatchResult;
      const uint64_t t_write = instrumented() ? MonotonicNowNs() : 0;
      Respond(job.conn, type, job.request_id, EncodeBatchResult(wire));
      if (t_write != 0) {
        const uint64_t done = MonotonicNowNs();
        const uint64_t write_ns = done - t_write;
        const uint64_t e2e_ns = done - job.recv_ns;
        h_write_->Record(write_ns);
        h_e2e_->Record(e2e_ns);
        MaybeTraceSlow(job, e2e_ns, decode_ns[i], apply_ns, write_ns,
                       live_count, merged_.size());
      }
    }
  }

  /// Emits one per-stage span timeline for a slow ingest frame —
  /// enough to explain a tail outlier from a single log line — bounded
  /// to a few lines per second so a saturated server cannot flood its
  /// own log (overflow is counted, not printed). Coalescer thread only.
  void MaybeTraceSlow(const IngestJob& job, uint64_t e2e_ns,
                      uint64_t frame_decode_ns, uint64_t apply_ns,
                      uint64_t write_ns, size_t batch_frames,
                      size_t batch_events) {
    if (options_.trace_threshold_us == 0) return;
    if (e2e_ns < options_.trace_threshold_us * 1000) return;
    static constexpr uint32_t kMaxTracesPerSecond = 10;
    const uint64_t now = MonotonicNowNs();
    if (now - trace_window_start_ns_ >= 1000000000ull) {
      trace_window_start_ns_ = now;
      traces_this_window_ = 0;
    }
    if (traces_this_window_ >= kMaxTracesPerSecond) {
      c_trace_suppressed_->Increment();
      return;
    }
    ++traces_this_window_;
    c_trace_emitted_->Increment();
    auto ms = [](uint64_t ns) { return static_cast<double>(ns) / 1e6; };
    LTAM_LOG_WARNING << StrFormat(
        "slow request: conn=%llu req=%u e2e=%.3fms queue_wait=%.3fms "
        "decode=%.3fms apply=%.3fms write=%.3fms events=%u "
        "merged_frames=%zu merged_events=%zu",
        static_cast<unsigned long long>(job.conn->id), job.request_id,
        ms(e2e_ns), ms(job.pickup_ns - job.recv_ns), ms(frame_decode_ns),
        ms(apply_ns), ms(write_ns), job.event_count, batch_frames,
        batch_events);
  }

  /// Resolves queued fsync-wait spans against the runtime's durable
  /// watermark. Resolution granularity is one coalescer round (or the
  /// shortened idle nap), so recorded waits overshoot by at most a few
  /// milliseconds — negligible against a real fsync stall, which is
  /// what this histogram exists to expose. `final` (shutdown, after
  /// the producers stopped) drops spans whose target never became
  /// durable (sticky WAL failure) instead of recording a fake wait.
  void FlushFsyncWaits(bool final) {
    if (fsync_pending_.empty()) return;
    uint64_t durable = 0;
    {
      std::shared_lock<std::shared_mutex> lock(runtime_mu_);
      durable = runtime_->Watermark().durable;
    }
    const uint64_t now = MonotonicNowNs();
    while (!fsync_pending_.empty()) {
      const auto& [target, started_ns] = fsync_pending_.front();
      if (target > durable) {
        if (!final) return;
        fsync_pending_.pop_front();
        continue;
      }
      h_fsync_wait_->Record(now - started_ns);
      fsync_pending_.pop_front();
    }
  }

  /// Routes this merge's fresh alerts and the parked backlog. Exact
  /// subject attribution when a frame of the merge touched the subject;
  /// otherwise the alert is parked and delivered on a bounded deadline:
  /// to the subject's last toucher as soon as that connection has a
  /// frame in a merge, or to ANY frame once a full round has passed.
  void RouteAlerts(const std::unordered_map<SubjectId, size_t>& owner,
                   const std::unordered_map<const Connection*, size_t>&
                       conn_index,
                   size_t first_live, std::vector<Alert>* fresh,
                   std::vector<std::vector<Alert>>* routed) {
    size_t stranded = 0;
    std::vector<PendingAlert> still_pending;
    for (PendingAlert& pa : pending_alerts_) {
      auto it = owner.find(pa.alert.subject);
      if (it != owner.end()) {
        (*routed)[it->second].push_back(std::move(pa.alert));
        continue;  // A frame touched the subject: exact, not stranded.
      }
      if (ConnectionPtr pref = pa.preferred.lock()) {
        auto ci = conn_index.find(pref.get());
        if (ci != conn_index.end()) {
          (*routed)[ci->second].push_back(std::move(pa.alert));
          ++stranded;
          continue;
        }
      }
      if (pa.parked_round < round_) {
        // Waited a full round with no better carrier: any frame will do.
        (*routed)[first_live].push_back(std::move(pa.alert));
        ++stranded;
        continue;
      }
      still_pending.push_back(std::move(pa));
    }
    pending_alerts_ = std::move(still_pending);
    for (Alert& alert : *fresh) {
      auto it = owner.find(alert.subject);
      if (it != owner.end()) {
        (*routed)[it->second].push_back(std::move(alert));
        continue;
      }
      PendingAlert pa;
      pa.parked_round = round_;
      auto lt = last_toucher_.find(alert.subject);
      if (lt != last_toucher_.end()) pa.preferred = lt->second;
      pa.alert = std::move(alert);
      pending_alerts_.push_back(std::move(pa));
    }
    if (stranded > 0) {
      std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
      coalescer_stats_.stranded_alerts_delivered += stranded;
    }
  }

  void ProcessFix(const IngestJob& job) {
    WireFixResult wire;
    {
      std::unique_lock<std::shared_mutex> lock(runtime_mu_);
      wire.status = runtime_->ApplyFix(job.fix);
      std::vector<Alert> alerts = runtime_->DrainAlerts();
      for (Alert& alert : alerts) {
        if (alert.subject == job.fix.subject) {
          wire.alerts.push_back(std::move(alert));
        } else {
          // Orphaned by this fix: prefer its connection as the carrier.
          PendingAlert pa;
          pa.parked_round = round_;
          pa.preferred = job.conn;
          pa.alert = std::move(alert);
          pending_alerts_.push_back(std::move(pa));
        }
      }
    }
    last_toucher_[job.fix.subject] = job.conn;
    Respond(job.conn, MessageType::kFixResult, job.request_id,
            EncodeFixResult(wire));
  }

  void ProcessCheckpoint(const IngestJob& job) {
    Status status;
    {
      std::unique_lock<std::shared_mutex> lock(runtime_mu_);
      status = runtime_->Checkpoint();
    }
    if (status.ok()) {
      Respond(job.conn, MessageType::kCheckpointResult, job.request_id, "");
    } else {
      Respond(job.conn, MessageType::kError, job.request_id,
              EncodeErrorResult(status));
    }
  }

  // --- Shutdown tail ---------------------------------------------------------

  /// Delivers whatever pending_alerts_ still holds as kAlertPush frames
  /// (request_id 0): each alert goes to its preferred connection when
  /// that socket is still live, else to the first live connection. Only
  /// when NO connection survives is an alert truly undeliverable.
  void DrainStrandedAlerts() {
    if (pending_alerts_.empty()) return;
    ConnectionPtr fallback;
    for (const auto& loop : loops_) {
      for (const auto& [fd, conn] : loop->connections) {
        if (!conn->dead.load(std::memory_order_acquire)) {
          fallback = conn;
          break;
        }
      }
      if (fallback) break;
    }
    std::unordered_map<Connection*, std::vector<Alert>> buckets;
    std::unordered_map<Connection*, ConnectionPtr> keepalive;
    size_t delivered = 0;
    for (PendingAlert& pa : pending_alerts_) {
      ConnectionPtr target = pa.preferred.lock();
      if (!target || target->dead.load(std::memory_order_acquire)) {
        target = fallback;
      }
      if (!target) continue;  // No live connection at all.
      keepalive.emplace(target.get(), target);
      buckets[target.get()].push_back(std::move(pa.alert));
      ++delivered;
    }
    pending_alerts_.clear();
    for (auto& [raw, alerts] : buckets) {
      SortAlerts(&alerts);
      Respond(keepalive[raw], MessageType::kAlertPush, 0,
              EncodeAlertPush(alerts));
    }
    if (delivered > 0) {
      std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
      coalescer_stats_.stranded_alerts_delivered += delivered;
    }
  }

  /// Best-effort blocking flush of every surviving connection's buffer
  /// (bounded by a send timeout) so final responses and alert pushes
  /// actually reach peers before the sockets close.
  void FinalFlush() {
    for (const auto& loop : loops_) {
      for (const auto& [fd, conn] : loop->connections) {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->dead.load(std::memory_order_acquire) || conn->out.empty()) {
          continue;
        }
        int flags = ::fcntl(conn->fd, F_GETFL, 0);
        if (flags >= 0) ::fcntl(conn->fd, F_SETFL, flags & ~O_NONBLOCK);
        timeval tv{};
        tv.tv_usec = 500 * 1000;
        ::setsockopt(conn->fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        size_t off = 0;
        while (off < conn->out.size()) {
          ssize_t sent = ::send(conn->fd, conn->out.data() + off,
                                conn->out.size() - off, MSG_NOSIGNAL);
          if (sent > 0) {
            off += static_cast<size_t>(sent);
            continue;
          }
          if (sent < 0 && errno == EINTR) continue;
          break;
        }
        conn->out.clear();
      }
    }
  }

  // --- Read workers ----------------------------------------------------------

  void ReadLoop() {
    while (true) {
      ReadJob job;
      {
        std::unique_lock<std::mutex> lock(reads_mu_);
        reads_cv_.wait(lock, [this] {
          return stopping_.load() || !read_queue_.empty();
        });
        if (read_queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        job = std::move(read_queue_.front());
        read_queue_.pop_front();
      }
      if (job.type == MessageType::kStats) {
        RuntimeStats stats;
        {
          std::shared_lock<std::shared_mutex> lock(runtime_mu_);
          stats = runtime_->Stats();
        }
        Respond(job.conn, MessageType::kStatsResult, job.request_id,
                EncodeStatsResult(stats));
        continue;
      }
      if (job.type == MessageType::kMetrics) {
        // No runtime lock: the registry has its own synchronization, so
        // a scrape can never stall behind (or stall) the coalescer.
        const MetricsSnapshot snapshot = options_.metrics->Snapshot();
        Respond(job.conn, MessageType::kMetricsResult, job.request_id,
                job.metrics_format == kMetricsFormatText
                    ? ToPrometheusText(snapshot)
                    : EncodeMetricsResult(snapshot));
        continue;
      }
      const uint64_t t_query = instrumented() ? MonotonicNowNs() : 0;
      Result<QueryResult> result = [&]() -> Result<QueryResult> {
        std::shared_lock<std::shared_mutex> lock(runtime_mu_);
        return interpreter_->Run(job.statement);
      }();
      if (t_query != 0) h_query_->Record(MonotonicNowNs() - t_query);
      if (result.ok()) {
        Respond(job.conn, MessageType::kQueryResult, job.request_id,
                EncodeQueryResult(*result));
      } else {
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(result.status()));
      }
    }
  }

  AccessRuntime* const runtime_;
  const ServerOptions options_;
  std::unique_ptr<QueryInterpreter> interpreter_;

  bool started_ = false;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  uint32_t nshards_ = 0;

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::atomic<uint32_t> next_loop_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  std::thread coalescer_thread_;
  std::vector<std::thread> read_threads_;

  /// Writers (coalescer) take it exclusive; readers (query/stats
  /// workers) take it shared. This is the entire concurrency contract
  /// between the runtime's single-control-thread discipline and the
  /// server's parallel read path.
  std::shared_mutex runtime_mu_;

  /// Per-shard MPSC ingest queues (size nshards_).
  std::unique_ptr<ShardQueue[]> shard_queues_;
  /// Queue units pending across all shard queues and the coalescer's
  /// ready/held frames (released as processing begins).
  std::atomic<size_t> queued_units_{0};

  /// Coalescer sleep/wake handshake: producers notify only when the
  /// idle flag is up; the coalescer re-checks the queue heads after
  /// raising it, so a push can never slip between check and wait.
  std::mutex coal_mu_;
  std::condition_variable coal_cv_;
  std::atomic<bool> coalescer_idle_{false};
  std::atomic<bool> coal_stop_{false};

  std::mutex reads_mu_;
  std::condition_variable reads_cv_;
  std::deque<ReadJob> read_queue_;

  // Coalescer-thread-only state (Stop() touches it after the join).
  std::unordered_map<uint64_t, ConnState> states_;  // By Connection::id.
  std::vector<IngestJob> group_;
  std::vector<AccessEvent> merged_;
  uint64_t round_ = 0;
  std::vector<PendingAlert> pending_alerts_;
  std::unordered_map<SubjectId, std::weak_ptr<Connection>> last_toucher_;

  // Telemetry (all coalescer-thread-only except the registry handles,
  // which are internally synchronized). Handles resolved once in the
  // ctor; null when ServerOptions::metrics is null.
  Histogram* h_queue_wait_ = nullptr;
  Histogram* h_decode_ = nullptr;
  Histogram* h_apply_ = nullptr;
  Histogram* h_fsync_wait_ = nullptr;
  Histogram* h_write_ = nullptr;
  Histogram* h_e2e_ = nullptr;
  Histogram* h_query_ = nullptr;
  Counter* c_frames_ = nullptr;
  Counter* c_events_ = nullptr;
  Counter* c_quota_refusals_ = nullptr;
  Counter* c_trace_emitted_ = nullptr;
  Counter* c_trace_suppressed_ = nullptr;
  /// Open durable-ack spans: (applied-offset target, span start).
  std::deque<std::pair<uint64_t, uint64_t>> fsync_pending_;
  uint64_t trace_window_start_ns_ = 0;
  uint32_t traces_this_window_ = 0;

  mutable std::mutex coalescer_stats_mu_;
  CoalescerStats coalescer_stats_;

  /// Live log shippers, keyed by subscriber connection id. Entries are
  /// retired by the owner loop's Drop, by a replacing hello, or by
  /// Stop().
  std::mutex shippers_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<LogShipper>> shippers_;
};

ServiceServer::ServiceServer(AccessRuntime* runtime, ServerOptions options)
    : impl_(std::make_unique<Impl>(runtime, options)) {}

ServiceServer::~ServiceServer() = default;

Status ServiceServer::Start() { return impl_->Start(); }

void ServiceServer::Stop() { impl_->Stop(); }

uint16_t ServiceServer::bound_port() const { return impl_->bound_port(); }

CoalescerStats ServiceServer::coalescer_stats() const {
  return impl_->coalescer_stats();
}

std::shared_mutex& ServiceServer::runtime_mutex() {
  return impl_->runtime_mutex();
}

}  // namespace ltam
