// Copyright 2026 The LTAM Authors.

#include "engine/location_resolver.h"

namespace ltam {

Result<LocationResolver> LocationResolver::Build(
    const MultilevelLocationGraph& graph, double cell_size) {
  GridIndex index(cell_size);
  std::vector<LocationId> mapping;
  for (LocationId p : graph.Primitives()) {
    const Location& loc = graph.location(p);
    if (!loc.boundary.has_value()) continue;
    index.Add(*loc.boundary);
    mapping.push_back(p);
  }
  if (mapping.empty()) {
    return Status::FailedPrecondition(
        "no primitive location carries a boundary polygon");
  }
  LTAM_RETURN_IF_ERROR(index.Build());
  return LocationResolver(std::move(index), std::move(mapping));
}

std::optional<LocationId> LocationResolver::Resolve(const Point& p) const {
  std::optional<BoundaryId> hit = index_.FindBest(p);
  if (!hit.has_value()) return std::nullopt;
  return boundary_location_[*hit];
}

}  // namespace ltam
