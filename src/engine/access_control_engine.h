// Copyright 2026 The LTAM Authors.
// The access control engine (Figure 3, Section 5).
//
// "When a user issues an access request, the access control engine [1]
// checks the authorization database... [2] invokes the query engine to
// find out whether the user has violated any authorization due to
// unauthorized access requests or over-staying. [3] ... is also
// responsible for authorization derivation."
//
// Beyond request-time checks, the engine monitors movement continuously
// ("LTAM monitors the user movement at all times"), which lets it catch
// tailgating (presence without a granted request) and overstays — the two
// failure classes the paper contrasts against card-reader systems.

#ifndef LTAM_ENGINE_ACCESS_CONTROL_ENGINE_H_
#define LTAM_ENGINE_ACCESS_CONTROL_ENGINE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/auth_database.h"
#include "core/rules/rule_engine.h"
#include "engine/events.h"
#include "engine/location_resolver.h"
#include "engine/movement_db.h"
#include "graph/multilevel_graph.h"

namespace ltam {

/// Tuning knobs for the engine.
struct EngineOptions {
  /// Enforce physical adjacency: from outside, a subject may only enter
  /// an entry primitive of the site; from inside, only an effective
  /// neighbor of their current location. Denials carry kNotAdjacent.
  bool enforce_adjacency = true;
  /// Raise kAccessDenied alerts for denied requests.
  bool alert_on_denial = true;
  /// When a subject is *observed* somewhere without a grant, also record
  /// the movement (true keeps the movement DB equal to physical reality;
  /// false keeps only authorized movement).
  bool record_unauthorized_movement = true;
};

/// The LTAM enforcement engine.
///
/// Borrows the four stores of Figure 3 (graph = location layout,
/// authorization DB, movement DB, profile DB); they must outlive the
/// engine. All event entry points take the current chronon; time must be
/// nondecreasing per subject (enforced by the movement database).
class AccessControlEngine {
 public:
  AccessControlEngine(const MultilevelLocationGraph* graph,
                      AuthorizationDatabase* auth_db,
                      MovementDatabase* movement_db,
                      const UserProfileDatabase* profiles,
                      EngineOptions options = {});

  /// Handles an access request (t, s, l): Definition-7 check plus
  /// movement-graph adjacency. On grant, records the entry in the ledger
  /// and the movement database (closing the previous stay, with exit-
  /// window checks on the location being left).
  Decision RequestEntry(Chronon t, SubjectId s, LocationId l);

  /// Subject leaves the site (steps outside). Checks the exit window of
  /// the stay being closed.
  Status RequestExit(Chronon t, SubjectId s);

  /// Tracking observation: the positioning substrate saw `s` inside `l`.
  /// If that contradicts the movement database, raises alerts
  /// (kUnauthorizedPresence when s has no usable authorization covering
  /// t, kImpossibleMovement when the jump skips the graph) and, per
  /// options, records the corrected movement. Returns non-OK when the
  /// observation itself was refused — it names an unknown/composite
  /// location (kInvalidArgument) or arrives out of time order for the
  /// subject (kFailedPrecondition) — so callers with a uniform error
  /// contract never lose the refusal. Alerts are raised either way.
  Status ObservePresence(Chronon t, SubjectId s, LocationId l);

  /// Raw position fix; resolved through `resolver` (set via
  /// AttachResolver) then forwarded to ObservePresence. Fixes outside
  /// every boundary are treated as "outside" and close open stays.
  /// Returns kFailedPrecondition when no resolver is attached, and
  /// forwards ObservePresence's refusals.
  Status HandlePositionFix(const PositionFix& fix);

  /// Attaches a spatial resolver (required for HandlePositionFix).
  void AttachResolver(LocationResolver resolver);

  /// Recovery support: registers an already-open stay (subject inside `l`
  /// since `since` under authorization `auth`; kInvalidAuth when the stay
  /// was unauthorized) without touching the movement database or the
  /// ledger. Used by DurableSystem when resuming from a snapshot.
  void ResumeStay(SubjectId s, LocationId l, AuthId auth, Chronon since);

  /// Periodic patrol: raises one kOverstay alert per stay whose exit
  /// window has passed while the subject is still inside.
  void Tick(Chronon t);

  /// Alerts raised so far, in time order.
  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Clears the alert buffer (e.g. after the operator acknowledges).
  void ClearAlerts() { alerts_.clear(); }

  /// Total requests processed / granted.
  size_t requests_processed() const { return requests_processed_; }
  size_t requests_granted() const { return requests_granted_; }

 private:
  /// Per-subject state of the stay currently in progress.
  struct ActiveStay {
    LocationId location = kInvalidLocation;
    /// Authorization that granted the entry; kInvalidAuth for stays
    /// created by contradicting observations (tailgaters).
    AuthId auth = kInvalidAuth;
    Chronon since = 0;
    bool overstay_alerted = false;
  };

  void RaiseAlert(Chronon t, SubjectId s, LocationId l, AlertType type,
                  std::string detail);

  /// Exit-window checks for the stay being closed at time t.
  void CheckExitWindow(Chronon t, SubjectId s, const ActiveStay& stay);

  /// True iff moving s from their current location to l is one legal step.
  bool AdjacencyOk(SubjectId s, LocationId l) const;

  const MultilevelLocationGraph* graph_;
  AuthorizationDatabase* auth_db_;
  MovementDatabase* movement_db_;
  const UserProfileDatabase* profiles_;
  EngineOptions options_;
  std::optional<LocationResolver> resolver_;
  std::unordered_map<SubjectId, ActiveStay> active_;
  std::vector<Alert> alerts_;
  size_t requests_processed_ = 0;
  size_t requests_granted_ = 0;
};

/// Re-registers every open stay recorded in `movements` on `engine`
/// (restricted to `subjects`): each inside subject resumes under the
/// first active in-window authorization for (s, current location) — the
/// same preference order CheckAccess uses, so overstay tracking survives
/// recovery and pre-seeded histories. Shared by every runtime that
/// rebuilds an engine over an existing movement history (the durable
/// runtimes' recovery, the facade's seeding of in-memory backends).
void ResumeOpenStays(AccessControlEngine* engine,
                     const MovementDatabase& movements,
                     const AuthorizationDatabase& auth_db,
                     const std::vector<SubjectId>& subjects);

}  // namespace ltam

#endif  // LTAM_ENGINE_ACCESS_CONTROL_ENGINE_H_
