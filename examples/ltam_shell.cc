// Copyright 2026 The LTAM Authors.
//
// An administrator shell: loads a policy script (path as argv[1], or a
// built-in demo policy) into an AccessRuntime, derives the rules inside
// the runtime's mutation window, then evaluates query-language
// statements from stdin — the interactive face of Figure 3's query
// engine, answering over the runtime's MovementView.
//
// Run: ./build/examples/ltam_shell [policy.ltam]  (then type queries;
//      e.g. "WHEN CAN Alice ACCESS CAIS", "INACCESSIBLE FOR Bob")

#include <cstdio>
#include <iostream>
#include <string>

#include "core/rules/rule_engine.h"
#include "query/query_language.h"
#include "runtime/access_runtime.h"
#include "storage/policy_script.h"

namespace {

constexpr const char kDemoPolicy[] = R"(
# Demo policy: a slice of the paper's NTU campus.
SITE NTU
COMPOSITE SCE IN NTU
ROOM SCE.GO IN SCE
ROOM SCE.SectionA IN SCE
ROOM SCE.SectionB IN SCE
ROOM CAIS IN SCE
EDGE SCE.GO SCE.SectionA
EDGE SCE.SectionA SCE.SectionB
EDGE SCE.SectionB CAIS
ENTRY SCE.GO
ENTRY SCE

SUBJECT Alice
SUBJECT Bob
SUPERVISOR Alice Bob

AUTH Alice CAIS ENTER [5,20] EXIT [15,50] TIMES 2
AUTH Alice SCE.GO ENTER [0,30] EXIT [0,60]
AUTH Alice SCE.SectionA ENTER [0,30] EXIT [0,60]
AUTH Alice SCE.SectionB ENTER [0,40] EXIT [0,60]

# Bob inherits Alice's CAIS rights (Example 1).
RULE FROM 7 BASE 0 SUBJECT Supervisor_Of LABEL r1
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ltam;  // NOLINT: example brevity.

  Result<SystemState> state_or =
      argc > 1 ? LoadPolicyScript(argv[1]) : ParsePolicyScript(kDemoPolicy);
  if (!state_or.ok()) {
    std::fprintf(stderr, "policy error: %s\n",
                 state_or.status().ToString().c_str());
    return 1;
  }

  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(state_or).ValueOrDie());
  if (!opened.ok()) {
    std::fprintf(stderr, "runtime error: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<AccessRuntime> runtime = std::move(opened).ValueOrDie();

  // Register and derive the scripted rules — database mutations go
  // through the runtime's mutation window.
  size_t derived = 0;
  Status mutated = runtime->Mutate([&](const MutableStores& stores) {
    RuleEngine rules(&stores.auth_db, &stores.profiles, &stores.graph);
    for (AuthorizationRule& rule : stores.rules) {
      LTAM_ASSIGN_OR_RETURN(RuleId id, rules.AddRule(rule));
      (void)id;
    }
    LTAM_ASSIGN_OR_RETURN(DerivationReport report, rules.DeriveAll());
    derived = report.derived;
    return Status::OK();
  });
  if (!mutated.ok()) {
    std::fprintf(stderr, "rule error: %s\n", mutated.ToString().c_str());
    return 1;
  }
  std::printf(
      "loaded: %zu locations, %zu subjects, %zu authorizations "
      "(%zu rule-derived)\n",
      runtime->graph().size(), runtime->profiles().size(),
      runtime->auth_db().active_size(), derived);

  QueryInterpreter interp(&runtime->query(), &runtime->graph(),
                          &runtime->profiles(), &runtime->movements(),
                          &runtime->auth_db());
  std::printf("query> ");
  std::fflush(stdout);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) {
      Result<QueryResult> result = interp.Run(line);
      if (result.ok()) {
        std::printf("%s", result->ToString().c_str());
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    }
    std::printf("query> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
