// Copyright 2026 The LTAM Authors.
// The multilevel location graph (Definitions 1 and 2).
//
// A location graph (L, E) has primitive locations L and bidirectional
// edges E ("if (l1,l2) is an edge, l2 can be reached from l1 directly
// without going through other locations, and vice versa"). A multilevel
// location graph nests location graphs inside composite locations; every
// (multilevel) location graph designates at least one *entry location*.
//
// This class stores the whole hierarchy in one arena: a tree of composite
// locations whose leaves are primitive locations, per-composite edges
// between sibling locations, and entry designations. It exposes both the
// hierarchical view (children / entries / part-of) and the flattened
// primitive-level view induced by the paper's complex-route rule.

#ifndef LTAM_GRAPH_MULTILEVEL_GRAPH_H_
#define LTAM_GRAPH_MULTILEVEL_GRAPH_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/location.h"
#include "util/result.h"

namespace ltam {

/// A full multilevel location graph with one root composite.
///
/// Mutation API (AddComposite/AddPrimitive/AddEdge/SetEntry/SetBoundary)
/// builds the layout; `Validate()` then checks the paper's structural
/// requirements; the query API (routes, adjacency, entries) serves the
/// authorization model. All name lookups are O(1).
class MultilevelLocationGraph {
 public:
  /// Creates a graph whose root composite is `root_name` (e.g. "NTU").
  explicit MultilevelLocationGraph(std::string root_name = "ROOT");

  // --- Construction -------------------------------------------------------

  /// Adds a composite location under `parent`. Names are globally unique.
  Result<LocationId> AddComposite(const std::string& name,
                                  LocationId parent);

  /// Adds a primitive location under `parent`.
  Result<LocationId> AddPrimitive(const std::string& name, LocationId parent);

  /// Convenience overloads resolving the parent by name.
  Result<LocationId> AddComposite(const std::string& name,
                                  const std::string& parent_name);
  Result<LocationId> AddPrimitive(const std::string& name,
                                  const std::string& parent_name);

  /// Adds a bidirectional edge between two locations that belong to the
  /// same composite (edges only ever connect siblings; cross-graph
  /// movement goes through entry locations per the complex-route rule).
  Status AddEdge(LocationId a, LocationId b);
  Status AddEdge(const std::string& a, const std::string& b);

  /// Marks `l` as an entry location of its parent graph.
  Status SetEntry(LocationId l, bool is_entry = true);
  Status SetEntry(const std::string& name, bool is_entry = true);

  /// Attaches a physical boundary to a location.
  Status SetBoundary(LocationId l, Polygon boundary);

  /// Sets the free-form description.
  Status SetDescription(LocationId l, std::string description);

  // --- Lookup -------------------------------------------------------------

  /// Resolves a globally unique name.
  Result<LocationId> Find(const std::string& name) const;

  /// True iff `id` denotes an existing location.
  bool Exists(LocationId id) const { return id < locations_.size(); }

  /// Borrowing accessor; `id` must exist.
  const Location& location(LocationId id) const;

  /// Total number of locations (composites + primitives).
  size_t size() const { return locations_.size(); }

  /// The root composite (id 0).
  LocationId root() const { return 0; }

  /// Ids of every primitive location, ascending.
  std::vector<LocationId> Primitives() const;

  /// Ids of every composite location, ascending.
  std::vector<LocationId> Composites() const;

  /// All sibling edges as (a, b) pairs with a < b, grouped by composite.
  std::vector<std::pair<LocationId, LocationId>> Edges() const;

  // --- Hierarchy ----------------------------------------------------------

  /// "li is part of H if li directly or indirectly belongs to H."
  bool IsPartOf(LocationId l, LocationId composite) const;

  /// Chain of composites from `l`'s parent up to the root.
  std::vector<LocationId> Ancestors(LocationId l) const;

  /// Entry locations (direct children flagged is_entry) of a composite.
  std::vector<LocationId> EntryLocations(LocationId composite) const;

  /// Recursively expands entry designations to primitive locations: the
  /// primitive doors through which a composite is entered. For a primitive
  /// input, returns {l}.
  std::vector<LocationId> EntryPrimitives(LocationId l) const;

  /// All primitive locations that are part of `l` ({l} when primitive).
  std::vector<LocationId> PrimitivesWithin(LocationId l) const;

  // --- Flattened (complex-route) view -------------------------------------

  /// Primitive-level neighbors of primitive `l` under the complex-route
  /// rule: direct sibling edges expand composite endpoints to their entry
  /// primitives. Cached; invalidated by any mutation.
  const std::vector<LocationId>& EffectiveNeighbors(LocationId l) const;

  /// Builds the flattened-adjacency cache now if it is stale. Call this
  /// before sharing the graph across threads that query
  /// EffectiveNeighbors concurrently (e.g. ShardedDecisionEngine does so
  /// at construction): the lazy build inside that const accessor is not
  /// thread-safe, but a pre-warmed cache is read-only until the next
  /// graph mutation.
  void WarmEffectiveAdjacency() const;

  /// Maximum effective degree over all primitives (the paper's Nd).
  size_t MaxDegree() const;

  // --- Routes (see routes.cc) ---------------------------------------------

  /// Shortest route (fewest locations) between two primitives over the
  /// flattened adjacency; the returned sequence includes both endpoints.
  /// NotFound when unreachable.
  Result<std::vector<LocationId>> FindRoute(LocationId src,
                                            LocationId dst) const;

  /// Shortest route restricted to primitives that are part of `composite`
  /// (a *simple route* when composite is a leaf-level location graph).
  Result<std::vector<LocationId>> FindRouteWithin(LocationId composite,
                                                  LocationId src,
                                                  LocationId dst) const;

  /// Enumerates up to `max_routes` loop-free routes from src to dst, each
  /// at most `max_length` locations, in order of discovery (DFS).
  std::vector<std::vector<LocationId>> EnumerateRoutes(
      LocationId src, LocationId dst, size_t max_routes = 16,
      size_t max_length = 32) const;

  /// Same, restricted to primitives that are part of `composite`.
  std::vector<std::vector<LocationId>> EnumerateRoutesWithin(
      LocationId composite, LocationId src, LocationId dst,
      size_t max_routes = 16, size_t max_length = 32) const;

  /// The smallest composite containing both locations (their lowest
  /// common ancestor in the containment tree; the root when nothing
  /// smaller contains both).
  Result<LocationId> LowestCommonComposite(LocationId a, LocationId b) const;

  /// True iff `seq` is a route: nonempty, all primitive, and every
  /// consecutive pair adjacent in the flattened view.
  bool IsRoute(const std::vector<LocationId>& seq) const;

  /// True iff `seq` is a *simple route* (Section 3.1): a route whose
  /// locations all belong to one location graph and use direct edges.
  bool IsSimpleRoute(const std::vector<LocationId>& seq) const;

  // --- Validation & export -------------------------------------------------

  /// Checks the structural requirements of Definitions 1-2 (see
  /// validation.cc): every composite nonempty, has >= 1 entry location,
  /// and its sibling graph is connected.
  Status Validate() const;

  /// Graphviz DOT rendering with composites as clusters and entry
  /// locations double-circled (mirrors Figure 2's notation).
  std::string ToDot() const;

  /// Human-readable tree dump.
  std::string ToString() const;

 private:
  Result<LocationId> AddLocation(const std::string& name, LocationKind kind,
                                 LocationId parent);
  void InvalidateCaches() const;
  void BuildEffectiveAdjacency() const;

  std::vector<Location> locations_;
  std::unordered_map<std::string, LocationId> by_name_;
  std::vector<std::pair<LocationId, LocationId>> edges_;

  // Lazily built flattened adjacency (primitive ids only).
  mutable std::vector<std::vector<LocationId>> effective_adj_;
  mutable bool effective_valid_ = false;
};

}  // namespace ltam

#endif  // LTAM_GRAPH_MULTILEVEL_GRAPH_H_
