// Copyright 2026 The LTAM Authors.
// ltam-serve: the TCP front end over one AccessRuntime.
//
// AccessRuntime demands single-threaded event application (the same
// discipline every engine below it requires), so a server cannot simply
// hand each connection its own runtime calls. ServiceServer instead runs
// three thread groups around one runtime:
//
//  - N I/O threads (ServerOptions::io_threads): each runs its own
//    epoll(7) readiness loop with an eventfd wakeup. Accepted
//    connections are steered round-robin across the loops, and each
//    loop owns its connections' reads, writes, and epoll interest for
//    their whole lifetime — no socket is ever touched by two I/O
//    threads. Frames are received straight into the connection's
//    FrameAssembler chunks and dispatched as zero-copy FrameViews: the
//    I/O thread validates an Apply/ApplyBatch payload's shape in O(1)
//    (count vs size), never decodes the events, and enqueues the pinned
//    view. Response bytes are written directly from whichever thread
//    produced them when the socket is writable (the common loopback
//    case); only a short write falls back to the owner loop's EPOLLOUT.
//  - the ingest coalescer: ONE thread that owns event application. It
//    drains per-shard lock-free MPSC ingest queues (frames are routed
//    by ShardOfSubject of their first event; per-connection sequence
//    numbers restore per-connection FIFO at the consumer) and merges
//    Apply/ApplyBatch frames — at most one per connection per round,
//    each frame's events contiguous and in order, so per-subject time
//    order within a connection is preserved — into a single
//    AccessRuntime::ApplyBatch call. The merge is also where the ONE
//    event decode happens, straight from the pinned frame views into
//    the reused merge buffer. Decisions are demultiplexed back to their
//    originating frames by offset and drained alerts are routed to
//    frames by subject (exact, because one round holds one frame per
//    connection). This is the scaling mechanism: the sharded fan-out
//    and the per-shard group-commit fsync are paid once per merged
//    batch, not once per connection. ApplyFix and Checkpoint frames are
//    per-connection barriers, applied alone when they reach the front
//    of their connection's queue.
//  - read workers: a small pool answering Query (the query language over
//    the runtime's MovementView) and Stats concurrently — they take the
//    runtime lock shared, so reads run in parallel with each other and
//    with all network I/O, and only exclude the coalescer's exclusive
//    application window.
//
// Responses preserve per-connection order within the ingest path (the
// coalescer is FIFO per connection) but reads may overtake writes; every
// response echoes its request_id, so pipelined clients demultiplex by id.
//
// Alert delivery guarantee: an alert whose subject no in-flight frame
// touched (e.g. raised by a Tick or an ApplyFix for an idle subject) is
// held, then attached to the next merged response — preferring the
// connection that most recently touched that subject, falling back to
// any frame of the merge after one coalescer round — and whatever is
// still held at Stop() is pushed to a live connection as a kAlertPush
// frame before the sockets close. No alert is silently dropped.
//
// Commit pipelining (RuntimeOptions::durability, ltam_serve
// --sync-mode=pipelined|interval): ApplyBatch on a pipelined runtime
// returns as soon as the decisions are computed and the log records
// queued — the fsync happens on the runtime's per-shard log threads. The
// coalescer therefore acks each frame's decisions immediately and merges
// the NEXT round while the previous round's fsync is still in flight;
// clients that need the stronger guarantee read the durability watermark
// echoed in every batch result (and in Stats) or issue a Checkpoint
// barrier.

#ifndef LTAM_SERVICE_SERVER_H_
#define LTAM_SERVICE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "runtime/access_runtime.h"
#include "util/result.h"

namespace ltam {

/// Knobs for one ServiceServer.
struct ServerOptions {
  /// Listen address. Loopback by default: exposing an enforcement
  /// runtime beyond the host is a deliberate decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see bound_port()).
  uint16_t port = 0;
  /// Number of epoll I/O loops. Accepted connections are steered
  /// round-robin; each loop owns its connections exclusively. 1 is
  /// right for a handful of connections; scale up with connection
  /// count and core count.
  uint32_t io_threads = 1;
  /// Read worker pool size (Query/Stats concurrency).
  uint32_t read_workers = 2;
  /// Ceiling on events merged into one coalesced ApplyBatch. The
  /// coalescer always takes at least one frame, so a single frame at the
  /// wire maximum still applies.
  size_t max_coalesced_events = 8192;
  /// Ingest-queue backpressure: frames arriving while this many queue
  /// units (one per event, minimum one per frame — so event-free
  /// Checkpoint floods are bounded too) are already queued are refused
  /// with kFailedPrecondition instead of buffering without bound.
  size_t max_queued_events = 1u << 20;
  /// Per-connection ingest quota, in the same queue units: one client
  /// flooding pipelined frames is refused once ITS queued share crosses
  /// this, long before it can exhaust the global budget and starve
  /// every other connection. Refusals are counted in
  /// CoalescerStats::connection_quota_refusals.
  size_t max_connection_queued_events = 1u << 16;
  /// Read-queue backpressure: Query/Stats frames beyond this many
  /// queued are refused with kFailedPrecondition.
  size_t max_queued_reads = 4096;
  /// A connection whose unread response backlog exceeds this many bytes
  /// (a client writing requests but never reading responses) is
  /// dropped.
  size_t max_connection_backlog_bytes = 64u << 20;
  /// listen(2) backlog.
  int listen_backlog = 64;
  /// Failover hooks, supplied by the embedding binary (which owns the
  /// replica link and knows how to retire it). A kPromote / kRepoint
  /// frame invokes the hook inline on the receiving I/O thread — these
  /// are rare, operator-driven frames, and blocking one loop briefly
  /// during a failover is the point. An unset hook refuses the frame
  /// with a structured error.
  std::function<Result<uint64_t>()> promote_hook;
  std::function<Status(const std::string& host, uint16_t port)> repoint_hook;
  /// Telemetry registry (may be null; borrowed, must outlive the
  /// server). When set, the ingest path records per-stage histograms —
  /// ingest.queue_wait (dispatch to coalesce pickup), ingest.decode
  /// (frame view to merge buffer), ingest.apply (the merged
  /// ApplyBatch, lock wait included), ingest.fsync_wait (apply return
  /// to durable watermark catch-up, per merged batch — the part of
  /// durability the pipelined ack does NOT wait for), ingest.write
  /// (response encode + send) and ingest.e2e (recv to response
  /// written) — plus query.run, ingest.frames/ingest.events counters,
  /// and per-replica shipped-lag gauges from the log shippers. Null =
  /// fully uninstrumented hot path (the bench baseline). Typically the
  /// SAME registry as RuntimeOptions::metrics so one scrape shows
  /// server and runtime stages side by side.
  MetricsRegistry* metrics = nullptr;
  /// Slow-request tracing: an ingest frame whose end-to-end latency
  /// (recv to response written) exceeds this many microseconds gets
  /// its per-stage span timeline logged in one line, bounded to a few
  /// traces per second (suppressions are counted in trace.suppressed).
  /// 0 disables. Requires `metrics` to be set (the stages come from
  /// the same stamps).
  uint64_t trace_threshold_us = 0;
};

/// Counters describing what the coalescer actually merged — the
/// observable proof that concurrent connections amortize into shared
/// batches (asserted by tests, reported by benches).
struct CoalescerStats {
  /// Merged ApplyBatch calls issued to the runtime.
  size_t merged_batches = 0;
  /// Ingest frames those calls served.
  size_t merged_frames = 0;
  /// Largest number of frames served by one merged call.
  size_t max_frames_per_batch = 0;
  /// Events those calls carried.
  size_t merged_events = 0;
  /// Ingest frames refused because their connection's queued share
  /// exceeded ServerOptions::max_connection_queued_events (the global
  /// max_queued_events refusals are not counted here).
  size_t connection_quota_refusals = 0;
  /// Alerts no response could carry by subject, delivered via the
  /// bounded-deadline fallback or the shutdown alert-push drain (see
  /// the alert delivery guarantee above). Zero means every alert was
  /// attributed exactly.
  size_t stranded_alerts_delivered = 0;
  /// Frames accepted into each per-shard ingest queue (index = runtime
  /// shard; quota-refused frames are not counted).
  std::vector<size_t> shard_queue_frames;
  /// Connections each I/O loop has accepted over the server's lifetime
  /// (index = I/O thread; round-robin steering makes these near-equal).
  std::vector<size_t> io_thread_connections;
};

/// One TCP server over one AccessRuntime. The runtime is borrowed: the
/// caller keeps it alive for the server's lifetime and must not apply
/// events to it concurrently (queries through rt->query() remain safe
/// only before Start() and after Stop()).
class ServiceServer {
 public:
  ServiceServer(AccessRuntime* runtime, ServerOptions options);
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and spawns the thread groups. kFailedPrecondition
  /// when already started; IOError for socket failures.
  Status Start();

  /// Stops accepting, drains the ingest queues (queued frames still get
  /// their responses), pushes any still-held alerts to a live
  /// connection, flushes what the sockets will take, closes every
  /// connection, and joins all threads. Idempotent.
  void Stop();

  /// The port actually bound (== options.port unless it was 0).
  uint16_t bound_port() const;

  /// Live coalescing counters.
  CoalescerStats coalescer_stats() const;

  /// The lock arbitrating the runtime between the coalescer (exclusive)
  /// and the read workers (shared). A replica's upstream link applies
  /// shipped records under THIS lock, exclusive — that is the entire
  /// reason it is exposed. Valid for the server's lifetime.
  std::shared_mutex& runtime_mutex();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ltam

#endif  // LTAM_SERVICE_SERVER_H_
