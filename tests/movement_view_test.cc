// Copyright 2026 The LTAM Authors.
// MovementView: the sharded fan-out implementation must answer every
// query exactly like one sequential database holding the union history
// (modulo the documented StaysIn tie normalization), with and without a
// subject router attached.

#include "query/movement_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "engine/sharded_engine.h"
#include "query/query_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

constexpr uint32_t kShards = 3;

uint32_t ShardOf(SubjectId s) {
  return ShardedDecisionEngine::ShardOfSubject(s, kShards);
}

/// One movement history recorded twice: into a single reference database
/// and partitioned by subject across kShards shard databases.
struct SplitWorld {
  MovementDatabase reference;
  std::vector<MovementDatabase> shards{kShards};

  void Record(Chronon t, SubjectId s, LocationId to) {
    ASSERT_OK(reference.RecordMovement(t, s, to));
    ASSERT_OK(shards[ShardOf(s)].RecordMovement(t, s, to));
  }
};

SplitWorld MakeWorld(uint64_t seed, uint32_t subjects = 17,
                     uint32_t locations = 9, uint32_t steps = 40) {
  SplitWorld w;
  Rng rng(seed);
  std::vector<Chronon> clock(subjects, 0);
  for (uint32_t step = 0; step < steps; ++step) {
    for (SubjectId s = 0; s < subjects; ++s) {
      clock[s] += 1 + static_cast<Chronon>(rng.Uniform(4));
      // Mostly moves between locations; occasionally leaves the site.
      LocationId to = rng.Uniform(8) == 0
                          ? kInvalidLocation
                          : static_cast<LocationId>(rng.Uniform(locations));
      LocationId cur = w.reference.CurrentLocation(s);
      if (to == cur) continue;  // RecordMovement rejects no-ops.
      w.Record(clock[s], s, to);
    }
  }
  return w;
}

std::vector<const MovementDatabase*> ShardPtrs(const SplitWorld& w) {
  std::vector<const MovementDatabase*> out;
  for (const MovementDatabase& db : w.shards) out.push_back(&db);
  return out;
}

using StayKey = std::tuple<Chronon, SubjectId, LocationId, Chronon>;

std::vector<StayKey> Normalized(std::vector<Stay> stays) {
  std::vector<StayKey> out;
  out.reserve(stays.size());
  for (const Stay& s : stays) {
    out.push_back(
        std::make_tuple(s.enter_time, s.subject, s.location, s.exit_time));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ContactString(const std::vector<MovementDatabase::Contact>& cs) {
  std::string out;
  for (const MovementDatabase::Contact& c : cs) {
    out += std::to_string(c.other) + "@" + std::to_string(c.location) + ":" +
           std::to_string(c.overlap_start) + "-" +
           std::to_string(c.overlap_end) + ";";
  }
  return out;
}

class MovementViewTest : public ::testing::TestWithParam<bool> {
 protected:
  ShardedMovementView MakeView(const SplitWorld& w) const {
    if (GetParam()) {
      return ShardedMovementView(ShardPtrs(w), &ShardOf);
    }
    return ShardedMovementView(ShardPtrs(w));  // Router-less: scan all.
  }
};

TEST_P(MovementViewTest, MatchesSequentialDatabase) {
  SplitWorld w = MakeWorld(2026);
  MovementDatabaseView sequential(&w.reference);
  ShardedMovementView fanout = MakeView(w);

  const uint32_t subjects = 17;
  const uint32_t locations = 9;
  EXPECT_EQ(sequential.tracked_subjects(), fanout.tracked_subjects());
  EXPECT_EQ(sequential.history_size(), fanout.history_size());

  for (SubjectId s = 0; s < subjects + 3; ++s) {  // +3: unknown subjects.
    SCOPED_TRACE(s);
    EXPECT_EQ(sequential.CurrentLocation(s), fanout.CurrentLocation(s));
    Result<Chronon> seq_since = sequential.CurrentStaySince(s);
    Result<Chronon> fan_since = fanout.CurrentStaySince(s);
    ASSERT_EQ(seq_since.ok(), fan_since.ok());
    if (seq_since.ok()) {
      EXPECT_EQ(*seq_since, *fan_since);
    }
    for (Chronon t : {0, 10, 50, 100, 200}) {
      EXPECT_EQ(sequential.LocationAt(s, t), fanout.LocationAt(s, t));
    }
    EXPECT_EQ(Normalized(sequential.StaysOf(s)),
              Normalized(fanout.StaysOf(s)));
    EXPECT_EQ(ContactString(sequential.ContactsOf(s, TimeInterval(0, 150), 1)),
              ContactString(fanout.ContactsOf(s, TimeInterval(0, 150), 1)));
    EXPECT_EQ(ContactString(sequential.ContactsOf(s, TimeInterval(20, 80), 3)),
              ContactString(fanout.ContactsOf(s, TimeInterval(20, 80), 3)));
  }
  for (LocationId l = 0; l < locations + 2; ++l) {  // +2: unknown locations.
    SCOPED_TRACE(l);
    for (Chronon t : {0, 25, 75, 150}) {
      EXPECT_EQ(sequential.OccupantsAt(l, t), fanout.OccupantsAt(l, t));
    }
    EXPECT_EQ(sequential.CurrentOccupants(l), fanout.CurrentOccupants(l));
    EXPECT_EQ(Normalized(sequential.StaysIn(l)), Normalized(fanout.StaysIn(l)));
  }
}

TEST_P(MovementViewTest, StaysInIsDeterministicallyOrdered) {
  SplitWorld w = MakeWorld(7);
  ShardedMovementView fanout = MakeView(w);
  for (LocationId l = 0; l < 9; ++l) {
    std::vector<Stay> stays = fanout.StaysIn(l);
    for (size_t i = 1; i < stays.size(); ++i) {
      bool ordered =
          std::make_tuple(stays[i - 1].enter_time, stays[i - 1].subject) <=
          std::make_tuple(stays[i].enter_time, stays[i].subject);
      EXPECT_TRUE(ordered) << "location " << l << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RoutedAndScanned, MovementViewTest,
                         ::testing::Bool());

TEST(MovementViewQueryEngineTest, QueryEngineConsumesAnyView) {
  // The same QueryEngine code answers over a fan-out view and over the
  // sequential database with identical results.
  SplitWorld w = MakeWorld(99, /*subjects=*/8, /*locations=*/5);
  MultilevelLocationGraph graph("Site");
  std::vector<LocationId> rooms;
  for (int i = 0; i < 5; ++i) {
    rooms.push_back(
        graph.AddPrimitive("R" + std::to_string(i), graph.root())
            .ValueOrDie());
  }
  for (size_t i = 1; i < rooms.size(); ++i) {
    ASSERT_OK(graph.AddEdge(rooms[i - 1], rooms[i]));
  }
  ASSERT_OK(graph.SetEntry(rooms[0]));
  UserProfileDatabase profiles;
  for (int i = 0; i < 8; ++i) {
    profiles.AddSubject("u" + std::to_string(i)).ValueOrDie();
  }
  AuthorizationDatabase auth_db;

  ShardedMovementView fanout(ShardPtrs(w), &ShardOf);
  QueryEngine over_view(&graph, &auth_db, &fanout, &profiles);
  QueryEngine over_db(&graph, &auth_db, &w.reference, &profiles);
  for (SubjectId s = 0; s < 8; ++s) {
    EXPECT_EQ(over_db.WhereWas(s, 60), over_view.WhereWas(s, 60));
  }
  for (LocationId l : rooms) {
    EXPECT_EQ(over_db.Occupants(l, 60), over_view.Occupants(l, 60));
  }
}

}  // namespace
}  // namespace ltam
