// Copyright 2026 The LTAM Authors.
// Tests for position-fix resolution and the engine's tracking pipeline.

#include "engine/location_resolver.h"

#include <gtest/gtest.h>

#include "engine/access_control_engine.h"
#include "test_util.h"

namespace ltam {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two adjacent rooms with physical boundaries; A is the entry.
    ASSERT_OK_AND_ASSIGN(a_, graph_.AddPrimitive("A", graph_.root()));
    ASSERT_OK_AND_ASSIGN(b_, graph_.AddPrimitive("B", graph_.root()));
    ASSERT_OK(graph_.AddEdge(a_, b_));
    ASSERT_OK(graph_.SetEntry(a_));
    ASSERT_OK(graph_.SetBoundary(a_, Polygon::Rect(0, 0, 10, 10)));
    ASSERT_OK(graph_.SetBoundary(b_, Polygon::Rect(10, 0, 20, 10)));
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
  }

  MultilevelLocationGraph graph_{"Site"};
  UserProfileDatabase profiles_;
  AuthorizationDatabase auth_db_;
  MovementDatabase movement_db_;
  SubjectId alice_ = kInvalidSubject;
  LocationId a_ = kInvalidLocation;
  LocationId b_ = kInvalidLocation;
};

TEST_F(ResolverTest, ResolvesPointsToLocations) {
  ASSERT_OK_AND_ASSIGN(LocationResolver resolver,
                       LocationResolver::Build(graph_));
  EXPECT_EQ(resolver.size(), 2u);
  auto in_a = resolver.Resolve({5, 5});
  ASSERT_TRUE(in_a.has_value());
  EXPECT_EQ(*in_a, a_);
  auto in_b = resolver.Resolve({15, 5});
  ASSERT_TRUE(in_b.has_value());
  EXPECT_EQ(*in_b, b_);
  EXPECT_FALSE(resolver.Resolve({50, 50}).has_value());
}

TEST_F(ResolverTest, BuildFailsWithoutBoundaries) {
  MultilevelLocationGraph bare("Bare");
  ASSERT_OK_AND_ASSIGN(LocationId r, bare.AddPrimitive("R", bare.root()));
  (void)r;
  EXPECT_TRUE(LocationResolver::Build(bare).status().IsFailedPrecondition());
}

TEST_F(ResolverTest, EngineConsumesPositionFixes) {
  auth_db_.Add(LocationTemporalAuthorization::Make(
                   TimeInterval(0, 100), TimeInterval(0, 200),
                   LocationAuthorization{alice_, a_}, kUnlimitedEntries)
                   .ValueOrDie());
  AccessControlEngine engine(&graph_, &auth_db_, &movement_db_, &profiles_);
  ASSERT_OK_AND_ASSIGN(LocationResolver resolver,
                       LocationResolver::Build(graph_));
  engine.AttachResolver(std::move(resolver));

  // Fix inside A: authorized, movement recorded, no alerts.
  engine.HandlePositionFix({10, alice_, {5, 5}});
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), a_);
  EXPECT_TRUE(engine.alerts().empty());

  // Fix inside B: adjacent but unauthorized -> unauthorized presence.
  engine.HandlePositionFix({20, alice_, {15, 5}});
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), b_);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].type, AlertType::kUnauthorizedPresence);

  // Fix outside all boundaries: treated as leaving the site.
  engine.HandlePositionFix({30, alice_, {100, 100}});
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), kInvalidLocation);
}

TEST_F(ResolverTest, FixWithoutResolverAlerts) {
  AccessControlEngine engine(&graph_, &auth_db_, &movement_db_, &profiles_);
  engine.HandlePositionFix({10, alice_, {5, 5}});
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].type, AlertType::kImpossibleMovement);
}

}  // namespace
}  // namespace ltam
