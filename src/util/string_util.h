// Copyright 2026 The LTAM Authors.
// Small string helpers shared across modules.

#ifndef LTAM_UTIL_STRING_UTIL_H_
#define LTAM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ltam {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty fields and trimming whitespace.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);
/// ASCII upper-casing (locale-independent).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a signed 64-bit integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ltam

#endif  // LTAM_UTIL_STRING_UTIL_H_
