// Copyright 2026 The LTAM Authors.
// Tests for the structural validation of Definitions 1-2.

#include <gtest/gtest.h>

#include "graph/multilevel_graph.h"
#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

TEST(ValidationTest, EmptyCompositeRejected) {
  MultilevelLocationGraph g;
  EXPECT_TRUE(g.Validate().IsFailedPrecondition());  // Root is empty.
}

TEST(ValidationTest, MissingEntryRejected) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId r, g.AddPrimitive("r", g.root()));
  (void)r;
  Status st = g.Validate();
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("no entry location"), std::string::npos);
}

TEST(ValidationTest, MinimalValidGraph) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId r, g.AddPrimitive("r", g.root()));
  ASSERT_OK(g.SetEntry(r));
  EXPECT_OK(g.Validate());
}

TEST(ValidationTest, DisconnectedSiblingGraphRejected) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId a, g.AddPrimitive("a", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId b, g.AddPrimitive("b", g.root()));
  (void)b;
  ASSERT_OK(g.SetEntry(a));
  Status st = g.Validate();
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("not connected"), std::string::npos);
  ASSERT_OK(g.AddEdge("a", "b"));
  EXPECT_OK(g.Validate());
}

TEST(ValidationTest, NestedCompositeNeedsItsOwnEntry) {
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId b1, g.AddComposite("B1", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId r1, g.AddPrimitive("R1", b1));
  (void)r1;
  ASSERT_OK(g.SetEntry(b1));
  // B1 is the entry of the root but has no internal entry.
  Status st = g.Validate();
  EXPECT_TRUE(st.IsFailedPrecondition());
  ASSERT_OK(g.SetEntry("R1"));
  EXPECT_OK(g.Validate());
}

TEST(ValidationTest, CompositeEntryMustExpandToPrimitiveDoor) {
  // Root entry is composite B1 whose own entry is composite B2 with no
  // primitive entry: unusable.
  MultilevelLocationGraph g;
  ASSERT_OK_AND_ASSIGN(LocationId b1, g.AddComposite("B1", g.root()));
  ASSERT_OK_AND_ASSIGN(LocationId b2, g.AddComposite("B2", b1));
  ASSERT_OK_AND_ASSIGN(LocationId r, g.AddPrimitive("R", b2));
  (void)r;
  ASSERT_OK(g.SetEntry(b1));
  ASSERT_OK(g.SetEntry(b2));
  EXPECT_TRUE(g.Validate().IsFailedPrecondition());
  ASSERT_OK(g.SetEntry("R"));
  EXPECT_OK(g.Validate());
}

TEST(ValidationTest, GeneratedGraphsValidate) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph grid, MakeGridGraph(4, 3));
  EXPECT_OK(grid.Validate());
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph tree, MakeTreeGraph(3, 4));
  EXPECT_OK(tree.Validate());
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph campus, MakeCampusGraph(4, 5));
  EXPECT_OK(campus.Validate());
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph ntu, MakeNtuCampusGraph());
  EXPECT_OK(ntu.Validate());
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph fig4, MakeFig4Graph());
  EXPECT_OK(fig4.Validate());
}

}  // namespace
}  // namespace ltam
