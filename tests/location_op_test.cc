// Copyright 2026 The LTAM Authors.
// Tests for location operators, including the exact Example 3 result.

#include "core/rules/location_op.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

using testing_util::Names;

class LocationOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeNtuCampusGraph());
    ASSERT_OK_AND_ASSIGN(cais_, graph_.Find("CAIS"));
  }

  std::vector<std::string> SortedNames(const std::vector<LocationId>& ids) {
    std::vector<std::string> names = Names(graph_, ids);
    std::sort(names.begin(), names.end());
    return names;
  }

  MultilevelLocationGraph graph_;
  LocationId cais_ = kInvalidLocation;
};

TEST_F(LocationOpTest, Identity) {
  IdentityLocationOp op;
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op.Apply(cais_, graph_));
  EXPECT_EQ(out, std::vector<LocationId>{cais_});
  EXPECT_TRUE(op.Apply(9999, graph_).status().IsNotFound());
}

TEST_F(LocationOpTest, AllRouteFromReproducesExample3) {
  // "The location operator all_route_from returns all the locations on
  // the route from source SCE.GO to destination CAIS, which are {SCE.GO,
  // SCE.SectionA, SCE.SectionB, SCE.SectionC, SCE.CHIPES}."
  AllRouteFromOp op("SCE.GO");
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op.Apply(cais_, graph_));
  EXPECT_EQ(SortedNames(out),
            (std::vector<std::string>{"CHIPES", "SCE.GO", "SCE.SectionA",
                                      "SCE.SectionB", "SCE.SectionC"}));
  EXPECT_EQ(op.ToString(), "all_route_from(SCE.GO)");
}

TEST_F(LocationOpTest, AllRouteFromErrors) {
  AllRouteFromOp bad_src("Atlantis");
  EXPECT_TRUE(bad_src.Apply(cais_, graph_).status().IsNotFound());
  // No route between disconnected pieces cannot happen in a validated
  // graph, but a base equal to the source still works (trivial route).
  AllRouteFromOp self("CAIS");
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, self.Apply(cais_, graph_));
  EXPECT_TRUE(out.empty());  // Only the base itself, which is excluded.
}

TEST_F(LocationOpTest, ShortestRouteFrom) {
  ShortestRouteFromOp op("SCE.GO");
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op.Apply(cais_, graph_));
  EXPECT_EQ(Names(graph_, out),
            (std::vector<std::string>{"SCE.GO", "SCE.SectionA",
                                      "SCE.SectionB"}));
}

TEST_F(LocationOpTest, Neighbors) {
  NeighborsOp op;
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op.Apply(cais_, graph_));
  EXPECT_EQ(SortedNames(out),
            (std::vector<std::string>{"CHIPES", "SCE.SectionB"}));
  ASSERT_OK_AND_ASSIGN(LocationId sce, graph_.Find("SCE"));
  EXPECT_TRUE(op.Apply(sce, graph_).status().IsInvalidArgument());
}

TEST_F(LocationOpTest, WithinComposite) {
  WithinCompositeOp op("SCE");
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op.Apply(cais_, graph_));
  EXPECT_EQ(out.size(), 7u);
  WithinCompositeOp bad("CAIS");
  EXPECT_TRUE(bad.Apply(cais_, graph_).status().IsInvalidArgument());
  WithinCompositeOp missing("Atlantis");
  EXPECT_TRUE(missing.Apply(cais_, graph_).status().IsNotFound());
}

TEST_F(LocationOpTest, EntriesOf) {
  EntriesOfOp op("SCE");
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op.Apply(cais_, graph_));
  EXPECT_EQ(SortedNames(out),
            (std::vector<std::string>{"SCE.GO", "SCE.SectionC"}));
  // Entries of the whole campus expand through the schools.
  EntriesOfOp root("NTU");
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> doors,
                       root.Apply(cais_, graph_));
  EXPECT_FALSE(doors.empty());
}

TEST_F(LocationOpTest, RegistryParsesBuiltins) {
  LocationOperatorRegistry reg = LocationOperatorRegistry::Default();
  ASSERT_OK_AND_ASSIGN(LocationOperatorPtr op,
                       reg.Parse("all_route_from(SCE.GO)"));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op->Apply(cais_, graph_));
  EXPECT_EQ(out.size(), 5u);
  ASSERT_OK_AND_ASSIGN(LocationOperatorPtr id, reg.Parse("identity"));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> self, id->Apply(cais_, graph_));
  EXPECT_EQ(self, std::vector<LocationId>{cais_});
  EXPECT_TRUE(reg.Parse("all_route_from").status().IsParseError());
  EXPECT_TRUE(reg.Parse("teleport(CAIS)").status().IsNotFound());
}

TEST_F(LocationOpTest, RegistryCustomOperator) {
  LocationOperatorRegistry reg = LocationOperatorRegistry::Default();
  class NowhereOp : public LocationOperator {
   public:
    Result<std::vector<LocationId>> Apply(
        LocationId, const MultilevelLocationGraph&) const override {
      return std::vector<LocationId>{};
    }
    std::string ToString() const override { return "nowhere"; }
  };
  reg.Register("nowhere", [](const std::string&) -> Result<LocationOperatorPtr> {
    return LocationOperatorPtr(new NowhereOp());
  });
  ASSERT_OK_AND_ASSIGN(LocationOperatorPtr op, reg.Parse("nowhere"));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> out, op->Apply(cais_, graph_));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace ltam
