// Copyright 2026 The LTAM Authors.
// Tests for the synthetic graph generators.

#include "sim/graph_gen.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace ltam {
namespace {

TEST(GridGraphTest, ShapeAndDegrees) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(4, 3));
  EXPECT_EQ(g.Primitives().size(), 12u);
  EXPECT_OK(g.Validate());
  // Interior rooms have 4 neighbors; corners 2.
  ASSERT_OK_AND_ASSIGN(LocationId corner, g.Find("R0_0"));
  EXPECT_EQ(g.EffectiveNeighbors(corner).size(), 2u);
  ASSERT_OK_AND_ASSIGN(LocationId mid, g.Find("R1_1"));
  EXPECT_EQ(g.EffectiveNeighbors(mid).size(), 4u);
  EXPECT_EQ(g.MaxDegree(), 4u);
  EXPECT_TRUE(g.location(corner).is_entry);
  EXPECT_TRUE(MakeGridGraph(0, 3).status().IsInvalidArgument());
}

TEST(TreeGraphTest, ShapeAndConnectivity) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeTreeGraph(2, 4));
  // 1 + 2 + 4 + 8 = 15 rooms.
  EXPECT_EQ(g.Primitives().size(), 15u);
  EXPECT_OK(g.Validate());
  ASSERT_OK_AND_ASSIGN(LocationId root_room, g.Find("T0"));
  EXPECT_EQ(g.EffectiveNeighbors(root_room).size(), 2u);
  EXPECT_TRUE(g.location(root_room).is_entry);
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph single, MakeTreeGraph(3, 1));
  EXPECT_EQ(single.Primitives().size(), 1u);
}

TEST(RandomRegularGraphTest, ConnectedWithRequestedDegree) {
  Rng rng(42);
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g,
                       MakeRandomRegularGraph(64, 6, &rng));
  EXPECT_EQ(g.Primitives().size(), 64u);
  EXPECT_OK(g.Validate());
  // Average degree approaches 6.
  size_t total_degree = 0;
  for (LocationId p : g.Primitives()) {
    total_degree += g.EffectiveNeighbors(p).size();
  }
  double avg = static_cast<double>(total_degree) / 64.0;
  EXPECT_GE(avg, 4.5);
  EXPECT_LE(avg, 6.5);
  // Connectivity: a route exists between arbitrary rooms.
  ASSERT_OK_AND_ASSIGN(LocationId from, g.Find("N0"));
  ASSERT_OK_AND_ASSIGN(LocationId to, g.Find("N63"));
  EXPECT_TRUE(g.FindRoute(from, to).ok());
  EXPECT_TRUE(MakeRandomRegularGraph(1, 2, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeRandomRegularGraph(8, 2, nullptr).status().IsInvalidArgument());
}

TEST(RandomRegularGraphTest, DeterministicForSeed) {
  Rng rng1(7);
  Rng rng2(7);
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g1,
                       MakeRandomRegularGraph(32, 4, &rng1));
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g2,
                       MakeRandomRegularGraph(32, 4, &rng2));
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(CampusGraphTest, Shape) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeCampusGraph(3, 4));
  EXPECT_EQ(g.Primitives().size(), 12u);
  EXPECT_EQ(g.Composites().size(), 4u);  // Root + 3 buildings.
  EXPECT_OK(g.Validate());
  // Cross-building movement goes door to door.
  ASSERT_OK_AND_ASSIGN(LocationId d0, g.Find("B0.R0"));
  ASSERT_OK_AND_ASSIGN(LocationId d1, g.Find("B1.R0"));
  const std::vector<LocationId>& adj = g.EffectiveNeighbors(d0);
  EXPECT_NE(std::find(adj.begin(), adj.end(), d1), adj.end());
  // Deep rooms require walking the corridor.
  ASSERT_OK_AND_ASSIGN(LocationId deep, g.Find("B2.R3"));
  ASSERT_OK_AND_ASSIGN(std::vector<LocationId> route, g.FindRoute(d0, deep));
  EXPECT_GE(route.size(), 5u);
}

TEST(NtuGraphTest, MatchesFigure2) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeNtuCampusGraph());
  EXPECT_OK(g.Validate());
  // 5 schools + root.
  EXPECT_EQ(g.Composites().size(), 6u);
  // SCE: 7 rooms; EEE: 7 rooms; CEE/SME/NBS: 1 each.
  EXPECT_EQ(g.Primitives().size(), 17u);
  // Entry locations per the figure.
  ASSERT_OK_AND_ASSIGN(LocationId sce, g.Find("SCE"));
  std::vector<std::string> entries =
      testing_util::Names(g, g.EntryLocations(sce));
  EXPECT_EQ(entries, (std::vector<std::string>{"SCE.GO", "SCE.SectionC"}));
  // Campus doors resolve through the schools.
  std::vector<std::string> doors =
      testing_util::Names(g, g.EntryPrimitives(g.root()));
  std::sort(doors.begin(), doors.end());
  EXPECT_EQ(doors, (std::vector<std::string>{"EEE.GO", "EEE.SectionC",
                                             "SCE.GO", "SCE.SectionC"}));
}

TEST(Fig4GraphTest, MatchesFigure4) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeFig4Graph());
  EXPECT_OK(g.Validate());
  EXPECT_EQ(g.Primitives().size(), 4u);
  ASSERT_OK_AND_ASSIGN(LocationId a, g.Find("A"));
  ASSERT_OK_AND_ASSIGN(LocationId b, g.Find("B"));
  ASSERT_OK_AND_ASSIGN(LocationId c, g.Find("C"));
  ASSERT_OK_AND_ASSIGN(LocationId d, g.Find("D"));
  EXPECT_TRUE(g.location(a).is_entry);
  // The square A-B, B-C, C-D, D-A.
  EXPECT_EQ(g.EffectiveNeighbors(a), (std::vector<LocationId>{b, d}));
  EXPECT_EQ(g.EffectiveNeighbors(b), (std::vector<LocationId>{c, a}));
  EXPECT_EQ(g.EffectiveNeighbors(c), (std::vector<LocationId>{b, d}));
  EXPECT_EQ(g.EffectiveNeighbors(d), (std::vector<LocationId>{a, c}));
}

}  // namespace
}  // namespace ltam
