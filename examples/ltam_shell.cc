// Copyright 2026 The LTAM Authors.
//
// An administrator shell: loads a policy script (path as argv[1], or a
// built-in demo policy), derives the rules, then evaluates query-language
// statements from stdin — the interactive face of Figure 3's query
// engine.
//
// Run: ./build/examples/ltam_shell [policy.ltam]  (then type queries;
//      e.g. "WHEN CAN Alice ACCESS CAIS", "INACCESSIBLE FOR Bob")

#include <cstdio>
#include <iostream>
#include <string>

#include "core/rules/rule_engine.h"
#include "query/query_language.h"
#include "storage/policy_script.h"

namespace {

constexpr const char kDemoPolicy[] = R"(
# Demo policy: a slice of the paper's NTU campus.
SITE NTU
COMPOSITE SCE IN NTU
ROOM SCE.GO IN SCE
ROOM SCE.SectionA IN SCE
ROOM SCE.SectionB IN SCE
ROOM CAIS IN SCE
EDGE SCE.GO SCE.SectionA
EDGE SCE.SectionA SCE.SectionB
EDGE SCE.SectionB CAIS
ENTRY SCE.GO
ENTRY SCE

SUBJECT Alice
SUBJECT Bob
SUPERVISOR Alice Bob

AUTH Alice CAIS ENTER [5,20] EXIT [15,50] TIMES 2
AUTH Alice SCE.GO ENTER [0,30] EXIT [0,60]
AUTH Alice SCE.SectionA ENTER [0,30] EXIT [0,60]
AUTH Alice SCE.SectionB ENTER [0,40] EXIT [0,60]

# Bob inherits Alice's CAIS rights (Example 1).
RULE FROM 7 BASE 0 SUBJECT Supervisor_Of LABEL r1
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ltam;  // NOLINT: example brevity.

  Result<SystemState> state_or =
      argc > 1 ? LoadPolicyScript(argv[1]) : ParsePolicyScript(kDemoPolicy);
  if (!state_or.ok()) {
    std::fprintf(stderr, "policy error: %s\n",
                 state_or.status().ToString().c_str());
    return 1;
  }
  SystemState state = std::move(state_or).ValueOrDie();

  // Register and derive the scripted rules.
  RuleEngine rules(&state.auth_db, &state.profiles, &state.graph);
  for (AuthorizationRule& rule : state.rules) {
    Result<RuleId> added = rules.AddRule(rule);
    if (!added.ok()) {
      std::fprintf(stderr, "rule error: %s\n",
                   added.status().ToString().c_str());
      return 1;
    }
  }
  Result<DerivationReport> report = rules.DeriveAll();
  if (!report.ok()) {
    std::fprintf(stderr, "derivation error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "loaded: %zu locations, %zu subjects, %zu authorizations "
      "(%zu rule-derived)\n",
      state.graph.size(), state.profiles.size(),
      state.auth_db.active_size(), report->derived);

  QueryEngine qe(&state.graph, &state.auth_db, &state.movements,
                 &state.profiles);
  QueryInterpreter interp(&qe, &state.graph, &state.profiles,
                          &state.movements, &state.auth_db);
  std::printf("query> ");
  std::fflush(stdout);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) {
      Result<QueryResult> result = interp.Run(line);
      if (result.ok()) {
        std::printf("%s", result->ToString().c_str());
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    }
    std::printf("query> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
