// Copyright 2026 The LTAM Authors.
// Implementation of Algorithm 1 (FindInaccessible) and the Lemma-1
// hierarchical pruning.

#include "core/inaccessible.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

namespace {

/// Working state for the propagation.
struct Work {
  std::vector<LocationId> analyzed;                 // Sorted primitive ids.
  std::unordered_map<LocationId, size_t> index;     // id -> position.
  std::vector<std::vector<size_t>> adj;             // Scope-restricted.
  std::vector<IntervalSet> grant;                   // T^g.
  std::vector<IntervalSet> departure;               // T^d.
  std::vector<char> flag;
  std::vector<char> is_entry_seed;
  // Authorizations per analyzed location for the subject, as
  // (entry, exit) duration pairs.
  std::vector<std::vector<std::pair<TimeInterval, TimeInterval>>> auths;
};

Result<Work> BuildWork(const MultilevelLocationGraph& graph,
                       LocationId scope, SubjectId subject,
                       const AuthorizationDatabase& auth_db) {
  if (!graph.Exists(scope) || !graph.location(scope).IsComposite()) {
    return Status::InvalidArgument(
        "analysis scope must be a composite location");
  }
  Work w;
  w.analyzed = graph.PrimitivesWithin(scope);
  std::sort(w.analyzed.begin(), w.analyzed.end());
  for (size_t i = 0; i < w.analyzed.size(); ++i) {
    w.index.emplace(w.analyzed[i], i);
  }
  const size_t n = w.analyzed.size();
  w.adj.resize(n);
  w.grant.resize(n);
  w.departure.resize(n);
  w.flag.assign(n, 0);
  w.is_entry_seed.assign(n, 0);
  w.auths.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Scope-restricted flattened adjacency, preserving neighbor order.
    for (LocationId nb : graph.EffectiveNeighbors(w.analyzed[i])) {
      auto it = w.index.find(nb);
      if (it != w.index.end()) w.adj[i].push_back(it->second);
    }
    for (AuthId id : auth_db.ForSubjectLocation(subject, w.analyzed[i])) {
      const LocationTemporalAuthorization& a = auth_db.record(id).auth;
      w.auths[i].emplace_back(a.entry_duration(), a.exit_duration());
    }
  }
  for (LocationId e : graph.EntryPrimitives(scope)) {
    auto it = w.index.find(e);
    if (it != w.index.end()) w.is_entry_seed[it->second] = 1;
  }
  return w;
}

void CaptureRow(const Work& w, const std::string& label,
                std::vector<TraceRow>* trace) {
  if (trace == nullptr) return;
  TraceRow row;
  row.label = label;
  row.states.reserve(w.analyzed.size());
  for (size_t i = 0; i < w.analyzed.size(); ++i) {
    row.states.push_back(LocationTimeState{w.analyzed[i], w.flag[i] != 0,
                                           w.grant[i], w.departure[i]});
  }
  trace->push_back(std::move(row));
}

/// Algorithm 1 lines 2-13: seed every entry location from its
/// authorizations, then flag the neighbors of entries with a non-null
/// departure time. Emits one trace row per entry processed.
void Initiate(Work* w, const MultilevelLocationGraph& graph,
              std::vector<TraceRow>* trace, std::deque<size_t>* queue) {
  for (size_t i = 0; i < w->analyzed.size(); ++i) {
    if (!w->is_entry_seed[i]) continue;
    for (const auto& [entry, exit] : w->auths[i]) {
      w->grant[i].Add(entry);
      w->departure[i].Add(exit);
    }
    w->flag[i] = 0;  // "their admissible time will not change further"
    if (!w->departure[i].empty()) {
      for (size_t nb : w->adj[i]) {
        if (!w->flag[nb]) {
          w->flag[nb] = 1;
          if (queue != nullptr) queue->push_back(nb);
        }
      }
    }
    CaptureRow(*w, "Update " + graph.location(w->analyzed[i]).name, trace);
  }
}

/// Algorithm 1 lines 16-27: recompute one location's T^g/T^d from its
/// neighbors' departure times. Returns true iff T^d changed.
bool UpdateLocation(Work* w, size_t i) {
  IntervalSet old_departure = w->departure[i];
  // T := union of the departure times of all neighbors (line 18).
  IntervalSet t;
  for (size_t nb : w->adj[i]) t = t.Union(w->departure[nb]);
  // For each window and each authorization: grant contribution
  // [max(tp,tis), min(tq,tie)], departure contribution [max(tp,tos), toe]
  // (lines 19-26).
  for (const TimeInterval& window : t.intervals()) {
    for (const auto& [entry, exit] : w->auths[i]) {
      Chronon gs = std::max(window.start(), entry.start());
      Chronon ge = std::min(window.end(), entry.end());
      if (gs > ge) continue;
      w->grant[i].Add(TimeInterval(gs, ge));
      Chronon ds = std::max(window.start(), exit.start());
      if (ds <= exit.end()) {
        w->departure[i].Add(TimeInterval(ds, exit.end()));
      }
    }
  }
  return !(w->departure[i] == old_departure);
}

InaccessibleResult Finish(const Work& w, const InaccessibleOptions& options,
                          size_t updates, std::vector<TraceRow> trace) {
  InaccessibleResult out;
  out.analyzed = w.analyzed;
  out.updates = updates;
  out.trace = std::move(trace);
  for (size_t i = 0; i < w.analyzed.size(); ++i) {
    out.final_states.push_back(LocationTimeState{
        w.analyzed[i], w.flag[i] != 0, w.grant[i], w.departure[i]});
    bool inaccessible = w.grant[i].empty();
    // Section 6 textual remark (optional strict mode): an entry location
    // with no authorized exit is unusable, hence inaccessible.
    if (!inaccessible && options.strict_entry_exit && w.is_entry_seed[i] &&
        w.departure[i].empty()) {
      inaccessible = true;
    }
    if (inaccessible) out.inaccessible.push_back(w.analyzed[i]);
  }
  return out;
}

}  // namespace

bool InaccessibleResult::IsInaccessible(LocationId l) const {
  return std::binary_search(inaccessible.begin(), inaccessible.end(), l);
}

std::string InaccessibleResult::TraceToString(
    const MultilevelLocationGraph& graph) const {
  std::string out;
  // Header.
  out += StrFormat("%-12s", "Step");
  for (LocationId l : analyzed) {
    out += StrFormat(" | %-36s", graph.location(l).name.c_str());
  }
  out += "\n";
  out += StrFormat("%-12s", "");
  for (size_t i = 0; i < analyzed.size(); ++i) {
    out += StrFormat(" | %-4s %-15s %-15s", "flag", "T^g", "T^d");
  }
  out += "\n";
  auto set_str = [](const IntervalSet& s) {
    return s.empty() ? std::string("phi") : s.ToString();
  };
  for (const TraceRow& row : trace) {
    out += StrFormat("%-12s", row.label.c_str());
    for (const LocationTimeState& st : row.states) {
      out += StrFormat(" | %-4s %-15s %-15s", st.flag ? "T" : "F",
                       set_str(st.grant).c_str(),
                       set_str(st.departure).c_str());
    }
    out += "\n";
  }
  return out;
}

Result<InaccessibleResult> FindInaccessible(
    const MultilevelLocationGraph& graph, LocationId scope,
    SubjectId subject, const AuthorizationDatabase& auth_db,
    const InaccessibleOptions& options) {
  LTAM_ASSIGN_OR_RETURN(Work w, BuildWork(graph, scope, subject, auth_db));
  std::vector<TraceRow> trace;
  std::vector<TraceRow>* trace_ptr = options.capture_trace ? &trace : nullptr;
  size_t updates = 0;

  CaptureRow(w, "Initiation", trace_ptr);

  if (options.algorithm == InaccessibleAlgorithm::kWorklist) {
    std::deque<size_t> queue;
    Initiate(&w, graph, trace_ptr, &queue);
    while (!queue.empty()) {
      size_t i = queue.front();
      queue.pop_front();
      w.flag[i] = 0;
      bool changed = UpdateLocation(&w, i);
      ++updates;
      if (changed) {
        for (size_t nb : w.adj[i]) {
          if (!w.flag[nb]) {
            w.flag[nb] = 1;
            queue.push_back(nb);
          }
        }
      }
      CaptureRow(w, "Update " + graph.location(w.analyzed[i]).name,
                 trace_ptr);
    }
  } else {
    // Faithful sweep: while any flag is set, process every flagged
    // location (ascending id), setting neighbor flags on departure-time
    // change; newly flagged locations are handled in the next sweep.
    Initiate(&w, graph, trace_ptr, nullptr);
    while (true) {
      std::vector<size_t> flagged;
      for (size_t i = 0; i < w.flag.size(); ++i) {
        if (w.flag[i]) flagged.push_back(i);
      }
      if (flagged.empty()) break;
      for (size_t i : flagged) {
        w.flag[i] = 0;
        bool changed = UpdateLocation(&w, i);
        ++updates;
        if (changed) {
          for (size_t nb : w.adj[i]) w.flag[nb] = 1;
        }
        CaptureRow(w, "Update " + graph.location(w.analyzed[i]).name,
                   trace_ptr);
      }
    }
  }
  return Finish(w, options, updates, std::move(trace));
}

IncrementalInaccessibleAnalyzer::IncrementalInaccessibleAnalyzer(
    const MultilevelLocationGraph* graph, LocationId scope,
    const AuthorizationDatabase* auth_db, InaccessibleOptions options)
    : graph_(graph), scope_(scope), auth_db_(auth_db), options_(options) {
  LTAM_CHECK(graph != nullptr);
  LTAM_CHECK(auth_db != nullptr);
}

Result<const InaccessibleResult*> IncrementalInaccessibleAnalyzer::Freshen(
    SubjectId subject, bool* recomputed) {
  uint64_t current = auth_db_->SubjectVersion(subject);
  auto it = cache_.find(subject);
  if (it != cache_.end() && it->second.version == current) {
    if (recomputed != nullptr) *recomputed = false;
    return &it->second.result;
  }
  LTAM_ASSIGN_OR_RETURN(
      InaccessibleResult result,
      FindInaccessible(*graph_, scope_, subject, *auth_db_, options_));
  Entry& entry = cache_[subject];
  entry.version = current;
  entry.result = std::move(result);
  if (recomputed != nullptr) *recomputed = true;
  return &entry.result;
}

Result<const InaccessibleResult*> IncrementalInaccessibleAnalyzer::Analyze(
    SubjectId subject) {
  return Freshen(subject, nullptr);
}

Result<IncrementalInaccessibleAnalyzer::RefreshReport>
IncrementalInaccessibleAnalyzer::Refresh(
    const std::vector<SubjectId>& subjects) {
  RefreshReport report;
  for (SubjectId s : subjects) {
    bool recomputed = false;
    LTAM_ASSIGN_OR_RETURN(const InaccessibleResult* unused,
                          Freshen(s, &recomputed));
    (void)unused;
    if (recomputed) {
      ++report.recomputed;
    } else {
      ++report.reused;
    }
  }
  return report;
}

Result<std::vector<LocationId>> HierarchicalInaccessiblePrune(
    const MultilevelLocationGraph& graph, SubjectId subject,
    const AuthorizationDatabase& auth_db) {
  std::unordered_set<LocationId> pruned;
  for (LocationId c : graph.Composites()) {
    // Lemma 1: a location inaccessible considering only the entry
    // locations of its own composite is inaccessible from every entry of
    // the containing multilevel graph.
    LTAM_ASSIGN_OR_RETURN(
        InaccessibleResult local,
        FindInaccessible(graph, c, subject, auth_db, InaccessibleOptions{}));
    pruned.insert(local.inaccessible.begin(), local.inaccessible.end());
  }
  std::vector<LocationId> out(pruned.begin(), pruned.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ltam
