// Copyright 2026 The LTAM Authors.
// Durable LTAM runtime: Figure 3's databases with crash recovery.
//
// Wraps the enforcement engine so that every event (entry request, exit,
// presence observation, patrol tick) is appended to a write-ahead log
// before it is applied. `Checkpoint()` persists the whole system as a
// snapshot and truncates the log; `Open()` recovers by loading the last
// snapshot and replaying the log tail through a fresh engine.
//
// The log is a ShardLog (storage/log_pipeline.h) — the same machinery
// the sharded runtime runs per shard — so the pipelined and interval
// sync modes get a real log thread here too: appends return
// immediately, the thread batches fsyncs per DurabilityOptions, and an
// idle runtime converges durable == applied on its own cadence. The
// sequential instance differs from the sharded ones in two deliberate
// ways: rotation is disabled (one `events.wal`, no manifest to commit
// segment names into) and failed fsyncs RETRY instead of sticky-failing
// the log (one producer, one file — a failed barrier leaves no hole).
//
// Recovery semantics: the authorization ledger, movement history, and
// profile/layout state are restored exactly. The engine's in-memory
// notion of *which authorization granted each currently-open stay* is
// rebuilt by re-matching each inside subject against their active
// authorizations for the current location (first match wins) — the same
// choice CheckAccess would make; overstay alerts therefore survive
// recovery.

#ifndef LTAM_STORAGE_DURABLE_SYSTEM_H_
#define LTAM_STORAGE_DURABLE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/access_control_engine.h"
#include "storage/log_pipeline.h"
#include "storage/snapshot.h"

namespace ltam {

/// A crash-safe enforcement runtime rooted at one directory containing
/// `state.snap` (snapshot) and `events.wal` (log tail).
class DurableSystem {
 public:
  /// Opens (or creates) the runtime in `dir`. When `dir` has no
  /// snapshot, starts from `initial` (e.g. a freshly parsed policy
  /// script); otherwise `initial` is ignored and state is recovered.
  /// `engine_options` tune the wrapped engine; they affect decisions,
  /// so recovery must reopen with the options the log was written under.
  /// `durability` picks the sync mode/cadence (segment rotation is
  /// force-disabled; failed fsyncs retry — see file comment);
  /// `sync_every_batch` only matters in kBatch mode (false = page-cache
  /// boundary, no automatic fsync at BatchBoundary).
  static Result<std::unique_ptr<DurableSystem>> Open(
      const std::string& dir, SystemState initial,
      EngineOptions engine_options = {}, DurabilityOptions durability = {},
      bool sync_every_batch = true);

  /// Canonical file names inside a sequential durable directory (used by
  /// callers that need to sniff what kind of runtime a directory holds).
  static const char* SnapshotFileName();
  static const char* WalFileName();

  // --- Logged event entry points -------------------------------------------

  /// Logs and applies one AccessEvent with the uniform decision mapping
  /// of ApplyAccessEvent (entries verbatim; exits grant or
  /// Deny(kExitRejected); observations grant or
  /// Deny(kObservationRejected) when refused outright) — the entry
  /// point batch-shaped callers (the AccessRuntime facade) use so
  /// decisions compare byte-identically across backends. Non-OK only
  /// when the event could not be logged (it is then not applied; only
  /// kBatch mode can refuse — pipelined appends never fail).
  Result<Decision> Apply(const AccessEvent& event);

  /// Logs and applies an access request.
  Result<Decision> RequestEntry(Chronon t, SubjectId s, LocationId l);

  /// Logs and applies a site exit.
  Status RequestExit(Chronon t, SubjectId s);

  /// Logs and applies a tracking observation.
  Status ObservePresence(Chronon t, SubjectId s, LocationId l);

  /// Logs and applies a patrol tick.
  Status Tick(Chronon t);

  // --- Durability ------------------------------------------------------------

  /// Marks a batch boundary on the log (the group-commit point):
  /// kBatch+sync_every_batch fsyncs now; pipelined modes count one
  /// pipeline group for the log thread. A non-OK return means applied
  /// events' durability is in doubt (they were applied).
  Status BatchBoundary();

  /// Persists the full state and truncates the log. Subsequent recovery
  /// starts from here.
  Status Checkpoint();

  /// Durability barrier: blocks until every accepted record is durable,
  /// forcing an fsync if need be.
  Status Sync();

  /// Number of events appended to the current log tail.
  size_t wal_events() const;

  /// The durability watermark's inputs, monotonic across checkpoints:
  /// records accepted into the log vs records made crash-proof (by an
  /// fsync or by a checkpoint's snapshot, which supersedes the log).
  uint64_t total_appended() const;
  uint64_t total_synced() const;

  /// Physical log failures observed since Open: appends that refused an
  /// event, fsyncs that failed (each retried fsync attempt counts).
  uint64_t wal_append_failures() const;
  uint64_t wal_sync_failures() const;

  // --- Introspection -----------------------------------------------------------

  const SystemState& state() const { return state_; }
  SystemState& mutable_state() { return state_; }
  const AccessControlEngine& engine() const { return *engine_; }
  AccessControlEngine& engine() { return *engine_; }

 private:
  DurableSystem(std::string dir, SystemState state,
                EngineOptions engine_options, DurabilityOptions durability,
                bool sync_every_batch);

  Status InitEngine();
  Status ReplayLogTail();
  void RebuildActiveStays();
  Status Log(const Record& record);
  /// Opens `events.wal` and wraps it in a fresh ShardLog (rotation
  /// disabled, fsync retry on).
  Result<std::unique_ptr<ShardLog>> MakeLog();

  std::string dir_;
  SystemState state_;
  EngineOptions engine_options_;
  DurabilityOptions durability_;
  bool sync_every_batch_;
  std::unique_ptr<AccessControlEngine> engine_;
  std::unique_ptr<ShardLog> log_;
  // Totals retired from log generations a checkpoint superseded, so the
  // monotonic counters survive the log_ swap (a snapshot makes every
  // retired record durable by definition).
  uint64_t retired_records_ = 0;
  uint64_t retired_append_failures_ = 0;
  uint64_t retired_sync_failures_ = 0;
  bool replaying_ = false;
};

}  // namespace ltam

#endif  // LTAM_STORAGE_DURABLE_SYSTEM_H_
