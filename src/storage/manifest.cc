// Copyright 2026 The LTAM Authors.

#include "storage/manifest.h"

#include <cstdio>
#include <fstream>
#include <limits>

#include "storage/codec.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace ltam {

namespace {

constexpr uint32_t kFormatVersion = 1;
/// Generous ceiling; a corrupted shard count must not drive allocation.
constexpr uint32_t kMaxShards = 4096;
/// Ceiling on rotated WAL segments named by one shard record — far
/// above anything rotation produces between checkpoints, small enough
/// that a corrupt record cannot drive allocation.
constexpr size_t kMaxWalSegments = 65536;
/// Same role for a shard's sealed cold-segment list (compaction keeps
/// real lists near compaction_fanin).
constexpr size_t kMaxColdSegments = 65536;

Result<int64_t> Field(const Record& rec, size_t i) {
  if (i >= rec.fields.size()) {
    return Status::ParseError("manifest record '" + rec.type +
                              "' missing field " + std::to_string(i));
  }
  return ParseInt64(rec.fields[i]);
}

/// Segment names must be plain file names: recovery joins them onto the
/// durable directory, and a corrupted manifest must not escape it.
Status CheckFileName(const std::string& name) {
  if (name.empty()) {
    return Status::ParseError("manifest names an empty file");
  }
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name == "." || name == "..") {
    return Status::ParseError("manifest file name '" + name +
                              "' is not a plain file name");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> SerializeManifest(const ShardManifest& manifest) {
  if (manifest.num_shards == 0 || manifest.num_shards > kMaxShards) {
    return Status::InvalidArgument("manifest num_shards out of range");
  }
  if (manifest.shards.size() != manifest.num_shards) {
    return Status::InvalidArgument("manifest shard list size mismatch");
  }
  LTAM_RETURN_IF_ERROR(CheckFileName(manifest.base_snapshot));
  for (const ShardManifest::ShardFiles& files : manifest.shards) {
    LTAM_RETURN_IF_ERROR(CheckFileName(files.snapshot));
    if (files.wals.empty()) {
      return Status::InvalidArgument("manifest shard has no WAL segments");
    }
    for (const std::string& wal : files.wals) {
      LTAM_RETURN_IF_ERROR(CheckFileName(wal));
    }
    for (const std::string& seg : files.cold) {
      LTAM_RETURN_IF_ERROR(CheckFileName(seg));
    }
  }

  std::string bytes;
  size_t records = 0;
  auto emit = [&bytes, &records](const Record& rec) {
    bytes += EncodeRecord(rec);
    bytes += '\n';
    ++records;
  };
  emit({"manifest",
        {std::to_string(kFormatVersion), std::to_string(manifest.epoch),
         std::to_string(manifest.num_shards)}});
  emit({"base", {manifest.base_snapshot}});
  for (uint32_t k = 0; k < manifest.num_shards; ++k) {
    std::vector<std::string> fields{std::to_string(k),
                                    manifest.shards[k].snapshot};
    fields.insert(fields.end(), manifest.shards[k].wals.begin(),
                  manifest.shards[k].wals.end());
    emit({"shard", std::move(fields)});
    // Only shards with an actual cold tier emit a record: untiered
    // directories keep the pre-tiering serialization byte for byte.
    if (!manifest.shards[k].cold.empty() ||
        manifest.shards[k].dropped_events > 0) {
      std::vector<std::string> cold_fields{
          std::to_string(k), std::to_string(manifest.shards[k].dropped_events)};
      cold_fields.insert(cold_fields.end(), manifest.shards[k].cold.begin(),
                         manifest.shards[k].cold.end());
      emit({"cold", std::move(cold_fields)});
    }
  }
  emit({"commit", {std::to_string(records)}});
  return bytes;
}

namespace {

Status PublishManifestBytes(const std::string& bytes,
                            const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open manifest temp '" + tmp + "'");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError("manifest write failed");
    }
  }
  Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish manifest '" + path + "'");
  }
  // Make the rename itself durable.
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    LTAM_RETURN_IF_ERROR(SyncDir(path.substr(0, slash)));
  }
  return Status::OK();
}

}  // namespace

Status SaveManifest(const ShardManifest& manifest, const std::string& path) {
  LTAM_ASSIGN_OR_RETURN(std::string bytes, SerializeManifest(manifest));
  return PublishManifestBytes(bytes, path);
}

Result<bool> SaveManifestIfChanged(const ShardManifest& manifest,
                                   const std::string& path,
                                   std::string* last_serialized) {
  LTAM_ASSIGN_OR_RETURN(std::string bytes, SerializeManifest(manifest));
  if (last_serialized != nullptr && !last_serialized->empty() &&
      *last_serialized == bytes) {
    return false;
  }
  LTAM_RETURN_IF_ERROR(PublishManifestBytes(bytes, path));
  if (last_serialized != nullptr) *last_serialized = std::move(bytes);
  return true;
}

Result<ShardManifest> LoadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open manifest '" + path + "'");
  }
  ShardManifest out;
  bool saw_header = false;
  bool saw_base = false;
  bool committed = false;
  std::vector<bool> saw_shard;
  size_t records = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Result<Record> rec_or = DecodeRecord(line);
    if (!rec_or.ok()) {
      return rec_or.status().WithContext("manifest line " +
                                         std::to_string(line_no));
    }
    const Record& rec = *rec_or;
    if (committed) {
      return Status::ParseError("manifest has records after commit");
    }
    if (rec.type == "manifest") {
      if (saw_header) return Status::ParseError("duplicate manifest header");
      if (rec.fields.size() != 3) {
        return Status::ParseError("manifest header field count");
      }
      LTAM_ASSIGN_OR_RETURN(int64_t version, Field(rec, 0));
      if (version != kFormatVersion) {
        return Status::ParseError("unsupported manifest version " +
                                  std::to_string(version));
      }
      LTAM_ASSIGN_OR_RETURN(int64_t epoch, Field(rec, 1));
      if (epoch < 0) return Status::ParseError("negative manifest epoch");
      LTAM_ASSIGN_OR_RETURN(int64_t shards, Field(rec, 2));
      if (shards < 1 || shards > static_cast<int64_t>(kMaxShards)) {
        return Status::ParseError("manifest num_shards out of range: " +
                                  std::to_string(shards));
      }
      out.epoch = static_cast<uint64_t>(epoch);
      out.num_shards = static_cast<uint32_t>(shards);
      out.shards.resize(out.num_shards);
      saw_shard.assign(out.num_shards, false);
      saw_header = true;
      ++records;
      continue;
    }
    if (!saw_header) {
      return Status::ParseError("manifest must start with its header");
    }
    if (rec.type == "base") {
      if (saw_base) return Status::ParseError("duplicate base record");
      if (rec.fields.size() != 1) {
        return Status::ParseError("base record field count");
      }
      LTAM_RETURN_IF_ERROR(CheckFileName(rec.fields[0]));
      out.base_snapshot = rec.fields[0];
      saw_base = true;
      ++records;
      continue;
    }
    if (rec.type == "shard") {
      // <k> <snapshot> and at least one WAL segment; rotation may have
      // committed more (replayed in record order).
      if (rec.fields.size() < 3 || rec.fields.size() > 3 + kMaxWalSegments) {
        return Status::ParseError("shard record field count");
      }
      LTAM_ASSIGN_OR_RETURN(int64_t k, Field(rec, 0));
      if (k < 0 || k >= static_cast<int64_t>(out.num_shards)) {
        return Status::ParseError("shard index out of range: " +
                                  std::to_string(k));
      }
      if (saw_shard[static_cast<size_t>(k)]) {
        return Status::ParseError("duplicate shard record " +
                                  std::to_string(k));
      }
      LTAM_RETURN_IF_ERROR(CheckFileName(rec.fields[1]));
      ShardManifest::ShardFiles files;
      files.snapshot = rec.fields[1];
      for (size_t i = 2; i < rec.fields.size(); ++i) {
        LTAM_RETURN_IF_ERROR(CheckFileName(rec.fields[i]));
        files.wals.push_back(rec.fields[i]);
      }
      out.shards[static_cast<size_t>(k)] = std::move(files);
      saw_shard[static_cast<size_t>(k)] = true;
      ++records;
      continue;
    }
    if (rec.type == "cold") {
      // <k> <dropped-events> and any number of sealed segment files.
      if (rec.fields.size() < 2 || rec.fields.size() > 2 + kMaxColdSegments) {
        return Status::ParseError("cold record field count");
      }
      LTAM_ASSIGN_OR_RETURN(int64_t k, Field(rec, 0));
      if (k < 0 || k >= static_cast<int64_t>(out.num_shards)) {
        return Status::ParseError("cold record shard index out of range: " +
                                  std::to_string(k));
      }
      ShardManifest::ShardFiles& files = out.shards[static_cast<size_t>(k)];
      if (!files.cold.empty() || files.dropped_events > 0) {
        return Status::ParseError("duplicate cold record for shard " +
                                  std::to_string(k));
      }
      LTAM_ASSIGN_OR_RETURN(int64_t dropped, Field(rec, 1));
      if (dropped < 0) {
        return Status::ParseError("negative cold dropped-event count");
      }
      if (dropped == 0 && rec.fields.size() == 2) {
        return Status::ParseError("empty cold record for shard " +
                                  std::to_string(k));
      }
      files.dropped_events = static_cast<uint64_t>(dropped);
      for (size_t i = 2; i < rec.fields.size(); ++i) {
        LTAM_RETURN_IF_ERROR(CheckFileName(rec.fields[i]));
        files.cold.push_back(rec.fields[i]);
      }
      ++records;
      continue;
    }
    if (rec.type == "commit") {
      if (rec.fields.size() != 1) {
        return Status::ParseError("commit record field count");
      }
      LTAM_ASSIGN_OR_RETURN(int64_t count, Field(rec, 0));
      if (count != static_cast<int64_t>(records)) {
        return Status::ParseError("commit count mismatch: recorded " +
                                  std::to_string(count) + ", read " +
                                  std::to_string(records));
      }
      committed = true;
      continue;
    }
    return Status::ParseError("unknown manifest record '" + rec.type + "'");
  }
  if (!committed) {
    return Status::ParseError("manifest '" + path +
                              "' has no commit record (torn write?)");
  }
  if (!saw_base) return Status::ParseError("manifest has no base record");
  for (uint32_t k = 0; k < out.num_shards; ++k) {
    if (!saw_shard[k]) {
      return Status::ParseError("manifest missing shard record " +
                                std::to_string(k));
    }
  }
  return out;
}

}  // namespace ltam
