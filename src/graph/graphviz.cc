// Copyright 2026 The LTAM Authors.
// Graphviz DOT export mirroring the notation of Figure 2: composites as
// clusters, entry locations drawn with double lines (doublecircle).

#include <string>

#include "graph/multilevel_graph.h"

namespace ltam {

namespace {

std::string DotId(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

void EmitComposite(const MultilevelLocationGraph& g, LocationId id,
                   int depth, std::string* out) {
  const Location& loc = g.location(id);
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (depth > 0) {
    *out += indent + "subgraph \"cluster_" + loc.name + "\" {\n";
    *out += indent + "  label=" + DotId(loc.name) + ";\n";
    if (loc.is_entry) *out += indent + "  penwidth=2;\n";
  }
  for (LocationId c : loc.children) {
    const Location& child = g.location(c);
    if (child.IsComposite()) {
      EmitComposite(g, c, depth + 1, out);
    } else {
      *out += indent + "  " + DotId(child.name) + " [shape=" +
              (child.is_entry ? "doublecircle" : "ellipse") + "];\n";
    }
  }
  if (depth > 0) *out += indent + "}\n";
}

}  // namespace

std::string MultilevelLocationGraph::ToDot() const {
  std::string out = "graph " + DotId(location(root()).name) + " {\n";
  out += "  compound=true;\n";
  EmitComposite(*this, root(), 0, &out);
  // Edges: sibling edges between primitives connect nodes directly;
  // edges with a composite endpoint are drawn between representative
  // entry primitives with cluster anchors.
  for (const auto& [a, b] : edges_) {
    std::vector<LocationId> pa = EntryPrimitives(a);
    std::vector<LocationId> pb = EntryPrimitives(b);
    if (pa.empty() || pb.empty()) continue;
    out += "  " + DotId(location(pa.front()).name) + " -- " +
           DotId(location(pb.front()).name);
    std::string attrs;
    if (location(a).IsComposite()) {
      attrs += "ltail=\"cluster_" + location(a).name + "\"";
    }
    if (location(b).IsComposite()) {
      if (!attrs.empty()) attrs += ", ";
      attrs += "lhead=\"cluster_" + location(b).name + "\"";
    }
    if (!attrs.empty()) out += " [" + attrs + "]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ltam
