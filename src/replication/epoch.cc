// Copyright 2026 The LTAM Authors.

#include "replication/epoch.h"

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "storage/wal.h"
#include "util/string_util.h"

namespace ltam {

Result<uint64_t> LoadReplicationEpoch(const std::string& dir) {
  const std::string path = dir + "/" + ReplicationEpochFileName();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    // Never persisted: pre-replication directory, epoch 0.
    return static_cast<uint64_t>(0);
  }
  std::string line;
  if (!std::getline(in, line) || line.empty()) {
    return Status::ParseError("replication epoch file '" + path +
                              "' is empty");
  }
  Result<int64_t> parsed = ParseInt64(line);
  if (!parsed.ok() || *parsed < 0) {
    return Status::ParseError("replication epoch file '" + path +
                              "' is corrupt: '" + line + "'");
  }
  return static_cast<uint64_t>(*parsed);
}

Status StoreReplicationEpoch(const std::string& dir, uint64_t epoch) {
  const std::string path = dir + "/" + ReplicationEpochFileName();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open epoch temp '" + tmp + "'");
    }
    out << epoch << '\n';
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError("epoch write failed");
    }
  }
  Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish epoch '" + path + "'");
  }
  return SyncDir(dir);
}

Status CheckSubscriptionEpoch(uint64_t local_epoch, uint64_t hello_epoch) {
  if (hello_epoch > local_epoch) {
    return Status::FailedPrecondition(
        "fenced: replica is at epoch " + std::to_string(hello_epoch) +
        ", this primary at " + std::to_string(local_epoch) +
        " has been superseded by a promotion");
  }
  return Status::OK();
}

Status CheckStreamEpoch(uint64_t local_epoch, uint64_t frame_epoch) {
  if (frame_epoch < local_epoch) {
    return Status::FailedPrecondition(
        "fenced: frame from epoch " + std::to_string(frame_epoch) +
        " rejected, this replica is at epoch " +
        std::to_string(local_epoch));
  }
  return Status::OK();
}

}  // namespace ltam
