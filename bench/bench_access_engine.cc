// Copyright 2026 The LTAM Authors.
//
// Enforcement-path benchmarks (Figure 3): Definition-7 decision latency
// as the authorization database grows, full engine request throughput
// including adjacency checks, ledger, and movement recording, and the
// AccessRuntime facade against the raw engines it wraps.
//
// The harness drives the production surface (AccessRuntime) wherever a
// workload is measured end to end; the raw-engine benchmarks that remain
// (BM_BatchDecision*, BM_MergedMovementsCopy) are kept deliberately as
// the direct-engine baselines the facade numbers are compared against.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "engine/access_control_engine.h"
#include "engine/sharded_engine.h"
#include "query/movement_view.h"
#include "runtime/access_runtime.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "storage/durable_sharded_system.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
  std::vector<AccessRequest> requests;
};

World MakeWorld(uint32_t side, uint32_t subjects, uint32_t auths_per_loc) {
  World w;
  w.graph = MakeGridGraph(side, side).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, subjects);
  Rng rng(99);
  AuthWorkloadOptions opt;
  opt.auths_per_location = auths_per_loc;
  opt.horizon = 500;
  opt.min_len = 50;
  opt.max_len = 200;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  w.requests = GenerateRequests(w.graph, w.subjects, 4096, 500, &rng);
  return w;
}

/// Pure Definition-7 checks against a database of state.range(0) total
/// authorizations (16 subjects x grid x per-loc factor).
void BM_CheckAccess(benchmark::State& state) {
  World w = MakeWorld(16, 16, static_cast<uint32_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const AccessRequest& req = w.requests[i++ % w.requests.size()];
    benchmark::DoNotOptimize(
        w.auth_db.CheckAccess(req.time, req.subject, req.location));
  }
  state.counters["auths"] = static_cast<double>(w.auth_db.active_size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckAccess)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Full engine path with adjacency off (card-reader-comparable).
void BM_EngineRequestNoAdjacency(benchmark::State& state) {
  World w = MakeWorld(16, 16, 2);
  MovementDatabase movements;
  EngineOptions options;
  options.enforce_adjacency = false;
  options.alert_on_denial = false;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles,
                             options);
  Chronon t = 0;
  size_t i = 0;
  for (auto _ : state) {
    // Strictly increasing time keeps the movement database happy.
    const AccessRequest& req = w.requests[i++ % w.requests.size()];
    benchmark::DoNotOptimize(engine.RequestEntry(++t, req.subject,
                                                 req.location));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineRequestNoAdjacency);

/// Full engine path with adjacency enforcement: subjects walk neighbor to
/// neighbor, the common production pattern.
void BM_EngineRequestWalk(benchmark::State& state) {
  World w = MakeWorld(16, 4, 1);
  // Blanket authorizations so the walk is never policy-blocked.
  for (SubjectId s : w.subjects) {
    for (LocationId l : w.graph.Primitives()) {
      w.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(0, kChrononMax),
                        TimeInterval(0, kChrononMax),
                        LocationAuthorization{s, l}, kUnlimitedEntries)
                        .ValueOrDie());
    }
  }
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  Rng rng(5);
  Chronon t = 0;
  // Enter everyone through the door first.
  std::vector<LocationId> doors = w.graph.EntryPrimitives(w.graph.root());
  for (SubjectId s : w.subjects) engine.RequestEntry(++t, s, doors[0]);
  for (auto _ : state) {
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    LocationId cur = movements.CurrentLocation(s);
    const std::vector<LocationId>& adj = w.graph.EffectiveNeighbors(cur);
    LocationId next = adj[rng.Uniform(adj.size())];
    benchmark::DoNotOptimize(engine.RequestEntry(++t, s, next));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineRequestWalk);

/// Ledger update cost.
void BM_CheckAndRecord(benchmark::State& state) {
  World w = MakeWorld(8, 8, 1);
  // Unlimited-entry blanket auth for one subject/location pair.
  AuthId id = w.auth_db.Add(
      LocationTemporalAuthorization::Make(
          TimeInterval(0, kChrononMax), TimeInterval(0, kChrononMax),
          LocationAuthorization{w.subjects[0], w.graph.Primitives()[0]},
          kUnlimitedEntries)
          .ValueOrDie());
  (void)id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.auth_db.CheckAndRecordAccess(
        100, w.subjects[0], w.graph.Primitives()[0]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckAndRecord);

// --- Batched multi-shard pipeline (campus workload) ------------------------
//
// The same pre-generated event batches are replayed through (a) one
// sequential AccessControlEngine event-by-event and (b) the
// ShardedDecisionEngine at 1..N shards. Decisions are identical by the
// equivalence property (tests/sharded_engine_test.cc); these benchmarks
// measure the throughput gap. On multicore hardware the sharded path
// should clear 2x the sequential items/sec at 4+ shards; on a single
// core it degenerates to the cv-handoff overhead.

struct BatchWorld {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
  std::vector<std::vector<AccessEvent>> batches;
  size_t total_events = 0;
};

BatchWorld MakeBatchWorld(size_t batch_size = 2048,
                          size_t total_events = 16384,
                          double exit_fraction = 0.1) {
  BatchWorld w;
  // Campus of 16 buildings x 12 rooms, 256 subjects, dense coverage —
  // the "whole campus under tracking" shape of Section 1.
  w.graph = MakeCampusGraph(16, 12).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 256);
  Rng rng(2026);
  AuthWorkloadOptions auth_opt;
  auth_opt.auths_per_location = 2;
  auth_opt.coverage = 0.7;
  auth_opt.horizon = 4000;
  auth_opt.min_len = 100;
  auth_opt.max_len = 800;
  auth_opt.max_entries = 0;  // Unlimited: keeps replays ledger-independent.
  GenerateAuthorizations(w.graph, w.subjects, auth_opt, &rng, &w.auth_db);
  BatchWorkloadOptions batch_opt;
  batch_opt.batch_size = batch_size;
  batch_opt.exit_fraction = exit_fraction;
  batch_opt.observe_fraction = 0.1;
  batch_opt.max_step = 3;
  w.batches = GenerateEventBatches(w.graph, w.subjects, total_events,
                                   batch_opt, &rng);
  for (const auto& b : w.batches) w.total_events += b.size();
  return w;
}

EngineOptions QuietEngineOptions() {
  EngineOptions opt;
  opt.alert_on_denial = false;  // Keep alert buffers flat across replays.
  return opt;
}

/// Sequential baseline: the full batch stream through one engine.
void BM_BatchDecisionSequential(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  for (auto _ : state) {
    state.PauseTiming();
    MovementDatabase movements;
    AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles,
                               QuietEngineOptions());
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      for (const AccessEvent& e : batch) {
        benchmark::DoNotOptimize(ApplyAccessEvent(&engine, e));
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
BENCHMARK(BM_BatchDecisionSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Sharded pipeline at state.range(0) shards over the same stream.
void BM_BatchDecisionSharded(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  ShardedEngineOptions opt;
  opt.num_shards = static_cast<uint32_t>(state.range(0));
  opt.engine = QuietEngineOptions();
  for (auto _ : state) {
    // Engine construction (thread spawn) and destruction (stop + join)
    // both stay outside the timed region; only EvaluateBatch is measured.
    state.PauseTiming();
    auto engine = std::make_unique<ShardedDecisionEngine>(
        &w.graph, &w.auth_db, &w.profiles, opt);
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      benchmark::DoNotOptimize(engine->EvaluateBatch(batch));
    }
    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["shards"] = static_cast<double>(opt.num_shards);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
// Real time, not CPU time: the work happens on the shard workers, and
// the speedup claim is wall-clock throughput vs the sequential path.
BENCHMARK(BM_BatchDecisionSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- AccessRuntime facade (in-memory) ---------------------------------------
//
// The same stream as BM_BatchDecision*, but through the AccessRuntime
// facade. The gap between BM_BatchDecision{Sequential,Sharded} (direct
// engine) and BM_FacadeBatch{Sequential,Sharded} is the facade overhead:
// one virtual dispatch + alert drain per batch.

SystemState InitStateOf(const BatchWorld& w) {
  SystemState init;
  init.graph = w.graph;
  init.profiles = w.profiles;
  init.auth_db = w.auth_db;
  return init;
}

void RunFacadeBatches(benchmark::State& state, RuntimeOptions options,
                      const BatchWorld& w) {
  for (auto _ : state) {
    state.PauseTiming();
    auto rt = AccessRuntime::Open(InitStateOf(w), options).ValueOrDie();
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      benchmark::DoNotOptimize(rt->ApplyBatch(batch));
    }
    state.PauseTiming();
    rt.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}

void BM_FacadeBatchSequential(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  RuntimeOptions options;
  options.engine = QuietEngineOptions();
  RunFacadeBatches(state, options, w);
}
BENCHMARK(BM_FacadeBatchSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FacadeBatchSharded(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  RuntimeOptions options;
  options.num_shards = static_cast<uint32_t>(state.range(0));
  options.engine = QuietEngineOptions();
  state.counters["shards"] = static_cast<double>(options.num_shards);
  RunFacadeBatches(state, options, w);
}
BENCHMARK(BM_FacadeBatchSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Durable batch pipeline (WAL + group commit), via the facade ------------
//
// The same stream as the in-memory benchmarks, but crash-safe: every
// event is appended to a write-ahead log before it is applied, with one
// group-commit fsync per runtime (per shard, sharded) per batch. The gap
// between BM_FacadeBatch* and BM_DurableBatch* is the price of
// durability.

std::string MakeBenchDir() {
  std::string tmpl = std::filesystem::temp_directory_path().string() +
                     "/ltam_bench_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  LTAM_CHECK(made != nullptr) << "mkdtemp failed";
  return tmpl;
}

void RunDurableBatches(benchmark::State& state, RuntimeOptions options,
                       const BatchWorld& w) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = MakeBenchDir();
    options.durable_dir = dir;
    auto rt = AccessRuntime::Open(InitStateOf(w), options).ValueOrDie();
    state.ResumeTiming();
    for (const auto& batch : w.batches) {
      benchmark::DoNotOptimize(rt->ApplyBatch(batch));
    }
    // Same durability for every mode: a pipelined run must land its
    // in-flight fsyncs inside the timed region, or the comparison
    // against sync mode would be flattering fiction.
    Status durable = rt->WaitDurable();
    benchmark::DoNotOptimize(durable);
    state.PauseTiming();
    rt.reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}

void BM_DurableBatchSequential(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld();
  RuntimeOptions options;
  options.engine = QuietEngineOptions();
  RunDurableBatches(state, options, w);
}
BENCHMARK(BM_DurableBatchSequential)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Args: {shards, batch_size}. The 2048-event batches are the
// compute-bound shape (a handful of fsyncs per run); the 128-event
// batches are the fsync-bound shape — 128 batches, each paying one
// group commit per shard in sync mode — where the sync discipline is
// what the benchmark measures.

void BM_DurableBatchSharded(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld(static_cast<size_t>(state.range(1)));
  RuntimeOptions options;
  options.num_shards = static_cast<uint32_t>(state.range(0));
  options.engine = QuietEngineOptions();
  state.counters["shards"] = static_cast<double>(options.num_shards);
  RunDurableBatches(state, options, w);
}
BENCHMARK(BM_DurableBatchSharded)
    ->Args({1, 2048})
    ->Args({4, 2048})
    ->Args({1, 128})
    ->Args({4, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Commit pipelining: same stream, same crash-safety data path, but the
// per-shard fsync moves off the batch's critical path onto a dedicated
// log thread (kPipelined: bounded by pipeline_depth/max_unsynced_bytes;
// kInterval: timed). Every iteration ends with WaitDurable(), so the
// measured work includes full durability — the win is amortizing fsyncs
// across batches and overlapping them with the next batch's appends,
// and it shows on the fsync-bound (small-batch) configurations.

void BM_DurableBatchShardedPipelined(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld(static_cast<size_t>(state.range(1)));
  RuntimeOptions options;
  options.num_shards = static_cast<uint32_t>(state.range(0));
  options.engine = QuietEngineOptions();
  options.durability.mode = SyncMode::kPipelined;
  state.counters["shards"] = static_cast<double>(options.num_shards);
  RunDurableBatches(state, options, w);
}
BENCHMARK(BM_DurableBatchShardedPipelined)
    ->Args({1, 2048})
    ->Args({4, 2048})
    ->Args({1, 128})
    ->Args({4, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DurableBatchShardedInterval(benchmark::State& state) {
  BatchWorld w = MakeBatchWorld(static_cast<size_t>(state.range(1)));
  RuntimeOptions options;
  options.num_shards = static_cast<uint32_t>(state.range(0));
  options.engine = QuietEngineOptions();
  options.durability.mode = SyncMode::kInterval;
  options.durability.sync_interval_ms = 5;
  state.counters["shards"] = static_cast<double>(options.num_shards);
  RunDurableBatches(state, options, w);
}
BENCHMARK(BM_DurableBatchShardedInterval)
    ->Args({1, 2048})
    ->Args({4, 2048})
    ->Args({1, 128})
    ->Args({4, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Checkpoint latency: full rewrite vs incremental + tiered ---------------
//
// Arg: history length (events applied before the measured checkpoints).
// Each timed iteration is exactly one Checkpoint() after one small
// (untimed) dirtying batch, so the work a checkpoint SHOULD do is
// constant across history lengths. The full variant dirties every
// shard each round, so every snapshot is rewritten and checkpoint
// latency grows linearly with history. The incremental variant dirties
// a single shard with the cold tier enabled (max_hot_events bounds the
// hot snapshot; sealed segments are immutable and never rewritten), so
// the checkpoint rewrites one bounded snapshot plus the manifest and
// its latency plateaus — the O(events since last checkpoint) claim.

void RunCheckpointBench(benchmark::State& state, bool incremental) {
  const size_t history = static_cast<size_t>(state.range(0));
  // Exit-heavy stream: sealing moves only COMPLETED stays cold, so the
  // tiered variant needs most stays closed to keep its hot tier small.
  BatchWorld w = MakeBatchWorld(2048, history, /*exit_fraction=*/0.5);
  RuntimeOptions options;
  options.num_shards = 4;
  options.engine = QuietEngineOptions();
  if (incremental) {
    options.retention.max_hot_events = 2048;
  }
  std::string dir = MakeBenchDir();
  options.durable_dir = dir;
  auto rt = AccessRuntime::Open(InitStateOf(w), options).ValueOrDie();
  for (const auto& batch : w.batches) {
    benchmark::DoNotOptimize(rt->ApplyBatch(batch));
  }
  // Baseline epoch: the measured rounds start from a committed
  // checkpoint (and, tiered, from a sealed cold tier), so each timed
  // Checkpoint() pays only for what the dirtying batch touched.
  LTAM_CHECK(rt->Checkpoint().ok());

  // Dirtying stream past every pre-applied per-subject clock. The full
  // variant touches enough subjects to hit all 4 shards; the
  // incremental variant touches exactly one.
  const size_t touched = incremental ? 1 : 16;
  Chronon t = static_cast<Chronon>(history) * 8 + 1'000'000;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<AccessEvent> dirty;
    for (size_t i = 0; i < touched; ++i) {
      dirty.push_back(AccessEvent::Observe(t, w.subjects[i],
                                           w.graph.Primitives()[0]));
    }
    ++t;
    benchmark::DoNotOptimize(
        rt->ApplyBatch(Span<const AccessEvent>(dirty.data(), dirty.size())));
    state.ResumeTiming();
    Status st = rt->Checkpoint();
    benchmark::DoNotOptimize(st);
    state.PauseTiming();
    LTAM_CHECK(st.ok()) << st.ToString();
    state.ResumeTiming();
  }
  state.counters["history_events"] = static_cast<double>(w.total_events);
  rt.reset();
  std::filesystem::remove_all(dir);
}

void BM_CheckpointFull(benchmark::State& state) {
  RunCheckpointBench(state, /*incremental=*/false);
}
BENCHMARK(BM_CheckpointFull)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CheckpointIncremental(benchmark::State& state) {
  RunCheckpointBench(state, /*incremental=*/true);
}
BENCHMARK(BM_CheckpointIncremental)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Cross-shard queries: MovementView fan-out vs MergedMovements copy ------
//
// Answering movement queries over a sharded runtime used to require
// materializing one merged MovementDatabase (cost linear in the whole
// history) before the first answer. The MovementView fans each query out
// over the per-shard views instead. Both benchmarks run the identical
// query mix over identical state; the copy side pays the merge on every
// refresh (any batch in between invalidates a cached copy).

size_t RunQueryMix(const MovementView& view, const BatchWorld& w) {
  size_t sink = 0;
  for (size_t i = 0; i < w.subjects.size(); i += 7) {
    SubjectId s = w.subjects[i];
    sink += view.CurrentLocation(s);
    sink += view.LocationAt(s, 2000);
    sink += view.StaysOf(s).size();
  }
  const std::vector<LocationId> prims = w.graph.Primitives();
  for (size_t i = 0; i < prims.size(); i += 17) {
    sink += view.OccupantsAt(prims[i], 2000).size();
    sink += view.CurrentOccupants(prims[i]).size();
  }
  sink += view.ContactsOf(w.subjects[0], TimeInterval(0, 4000), 1).size();
  return sink;
}

struct QueryBenchWorld {
  BatchWorld batch;
  std::string dir;
  std::unique_ptr<DurableShardedSystem> sys;

  static std::unique_ptr<QueryBenchWorld> Make(uint32_t shards) {
    auto q = std::make_unique<QueryBenchWorld>();
    q->batch = MakeBatchWorld();
    q->dir = MakeBenchDir();
    DurableShardedOptions opt;
    opt.num_shards = shards;
    opt.engine = QuietEngineOptions();
    opt.sync_every_batch = false;  // Query benchmarks, not durability.
    SystemState init;
    init.graph = q->batch.graph;
    init.profiles = q->batch.profiles;
    init.auth_db = q->batch.auth_db;
    q->sys = DurableShardedSystem::Open(q->dir, std::move(init), opt)
                 .ValueOrDie();
    for (const auto& b : q->batch.batches) {
      q->sys->EvaluateBatch(b).ValueOrDie();
    }
    return q;
  }

  ~QueryBenchWorld() {
    sys.reset();
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }
};

/// The stopgap this PR retires from the query path: merge-copy the full
/// history, then answer.
void BM_MergedMovementsCopy(benchmark::State& state) {
  std::unique_ptr<QueryBenchWorld> q =
      QueryBenchWorld::Make(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    MovementDatabase merged = q->sys->MergedMovements();
    MovementDatabaseView view(&merged);
    benchmark::DoNotOptimize(RunQueryMix(view, q->batch));
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["history"] =
      static_cast<double>(q->sys->MergedMovements().history().size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MergedMovementsCopy)->Arg(4)->Unit(benchmark::kMicrosecond);

/// The replacement: fan the same queries out over the live shard views.
void BM_MovementViewFanout(benchmark::State& state) {
  std::unique_ptr<QueryBenchWorld> q =
      QueryBenchWorld::Make(static_cast<uint32_t>(state.range(0)));
  std::vector<const MovementDatabase*> shards;
  const uint32_t n = q->sys->num_shards();
  for (uint32_t k = 0; k < n; ++k) {
    shards.push_back(&q->sys->shard_movements(k));
  }
  ShardedMovementView view(std::move(shards), [n](SubjectId s) {
    return ShardedDecisionEngine::ShardOfSubject(s, n);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQueryMix(view, q->batch));
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MovementViewFanout)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
