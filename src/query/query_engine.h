// Copyright 2026 The LTAM Authors.
// The query engine (Figure 3).
//
// "The query engine evaluates queries by the system administrators and
// the access control engine based on the information stored in all of the
// databases." This class is the structured API; query_language.h adds the
// textual front-end (the query language the paper lists as future work).

#ifndef LTAM_QUERY_QUERY_ENGINE_H_
#define LTAM_QUERY_QUERY_ENGINE_H_

#include <optional>
#include <vector>

#include "core/auth_database.h"
#include "core/inaccessible.h"
#include "engine/movement_db.h"
#include "graph/multilevel_graph.h"
#include "profile/user_profile.h"
#include "query/movement_view.h"

namespace ltam {

/// An authorized route (Section 6): the route plus the grant/departure
/// window chain that certifies it.
struct AuthorizedRoute {
  std::vector<LocationId> route;
  /// Grant duration per step (same length as route).
  std::vector<TimeInterval> grants;
  /// Departure duration per step (last step may be the full exit set or
  /// empty if never needed).
  std::vector<TimeInterval> departures;
};

/// Read-only analytical queries over the four stores of Figure 3.
///
/// Movement questions are answered through a MovementView, so the same
/// engine serves a single sequential MovementDatabase or a sharded
/// runtime's per-shard views (fan-out, no merged copy) unchanged.
class QueryEngine {
 public:
  /// Over an explicit movement view (borrowed; must outlive the engine).
  QueryEngine(const MultilevelLocationGraph* graph,
              const AuthorizationDatabase* auth_db,
              const MovementView* movements,
              const UserProfileDatabase* profiles);

  /// Convenience: over one concrete movement database (wrapped in an
  /// internally owned sequential view).
  QueryEngine(const MultilevelLocationGraph* graph,
              const AuthorizationDatabase* auth_db,
              const MovementDatabase* movement_db,
              const UserProfileDatabase* profiles);

  // --- Authorization queries ----------------------------------------------

  /// Definition-7 check (pure).
  Decision CanAccess(SubjectId s, LocationId l, Chronon t) const;

  /// Active authorizations of a subject.
  std::vector<AuthId> AuthorizationsOf(SubjectId s) const;

  /// Subjects holding an active authorization on `l` whose entry duration
  /// overlaps `window`.
  std::vector<SubjectId> WhoCanAccess(LocationId l,
                                      const TimeInterval& window) const;

  // --- Reachability queries (Section 6) -----------------------------------

  /// Inaccessible primitive locations for `s` within `scope` (default:
  /// the whole site), per Definition 9.
  Result<std::vector<LocationId>> InaccessibleLocations(
      SubjectId s, std::optional<LocationId> scope = std::nullopt) const;

  /// The complement: analyzed primitives that are accessible.
  Result<std::vector<LocationId>> AccessibleLocations(
      SubjectId s, std::optional<LocationId> scope = std::nullopt) const;

  /// The *overall grant time* of `l` for `s` (Section 6): the set of
  /// instants at which s could be inside l via some authorized route from
  /// the entry locations of `scope`. Empty iff l is inaccessible.
  Result<IntervalSet> AccessWindows(
      SubjectId s, LocationId l,
      std::optional<LocationId> scope = std::nullopt) const;

  /// Checks one concrete route against the authorized-route conditions of
  /// Section 6 for access request duration `window`; returns the
  /// certified windows or NotFound when the route is not authorized.
  Result<AuthorizedRoute> CheckRoute(SubjectId s,
                                     const std::vector<LocationId>& route,
                                     const TimeInterval& window) const;

  /// Searches for an authorized route from src to dst within `window`
  /// (tries enumerated routes in BFS-shortest-first order).
  Result<AuthorizedRoute> FindAuthorizedRoute(
      SubjectId s, LocationId src, LocationId dst, const TimeInterval& window,
      size_t max_routes = 64, size_t max_length = 32) const;

  // --- Movement queries -----------------------------------------------------

  /// Where `s` was at `t` (kInvalidLocation = outside).
  LocationId WhereWas(SubjectId s, Chronon t) const;

  /// Subjects inside `l` at `t`.
  std::vector<SubjectId> Occupants(LocationId l, Chronon t) const;

  /// Co-location contacts (Section 1's SARS tracing scenario).
  std::vector<MovementDatabase::Contact> Contacts(
      SubjectId s, const TimeInterval& window, Chronon min_overlap = 1) const;

  /// Subjects currently inside some location after every applicable exit
  /// window has closed (overstay candidates at time `t`).
  std::vector<SubjectId> OverstayingAt(Chronon t) const;

 private:
  /// The active view: the external one when set, else the internal
  /// wrapper (kept copy-safe by resolving at call time).
  const MovementView& movements() const {
    return external_view_ != nullptr ? *external_view_ : local_view_;
  }

  const MultilevelLocationGraph* graph_;
  const AuthorizationDatabase* auth_db_;
  MovementDatabaseView local_view_;
  const MovementView* external_view_ = nullptr;
  const UserProfileDatabase* profiles_;
};

}  // namespace ltam

#endif  // LTAM_QUERY_QUERY_ENGINE_H_
