// Copyright 2026 The LTAM Authors.
// The location & movements database (Figure 3).
//
// "The location & movements database stores the location layout, as well
// as users' movements. These data are then used for authorization
// validation, system status checking, etc." The layout lives in
// MultilevelLocationGraph; this class stores the movement side: the
// current location of every subject plus an append-only movement history
// supporting temporal queries (where was s at t, who was in l at t,
// co-location/contact queries).

#ifndef LTAM_ENGINE_MOVEMENT_DB_H_
#define LTAM_ENGINE_MOVEMENT_DB_H_

#include <unordered_map>
#include <vector>

#include "engine/events.h"
#include "time/interval.h"
#include "util/result.h"

namespace ltam {

/// An interval a subject spent inside one location.
struct Stay {
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;
  Chronon enter_time = 0;
  /// kChrononMax while the stay is still open.
  Chronon exit_time = kChrononMax;
};

/// Indexed store of user movements.
class MovementDatabase {
 public:
  MovementDatabase() = default;

  /// Records that `s` moved to `to` at `time` (kInvalidLocation = left the
  /// site). Events must arrive in nondecreasing time order per subject;
  /// out-of-order events are rejected.
  Status RecordMovement(Chronon time, SubjectId s, LocationId to);

  /// Current location of `s`; kInvalidLocation when outside/unknown.
  LocationId CurrentLocation(SubjectId s) const;

  /// Time `s` entered their current location; NotFound when outside.
  Result<Chronon> CurrentStaySince(SubjectId s) const;

  /// Where `s` was at time `t`; kInvalidLocation when outside.
  LocationId LocationAt(SubjectId s, Chronon t) const;

  /// Subjects inside `l` at time `t`.
  std::vector<SubjectId> OccupantsAt(LocationId l, Chronon t) const;

  /// Subjects currently inside `l`.
  std::vector<SubjectId> CurrentOccupants(LocationId l) const;

  /// Every completed and open stay of `s`, in time order.
  std::vector<Stay> StaysOf(SubjectId s) const;

  /// Every stay in `l`, in time order.
  std::vector<Stay> StaysIn(LocationId l) const;

  /// Borrowed view of the per-location stay index (an empty vector when
  /// `l` has no stays) — the allocation-free counterpart of StaysIn for
  /// hot read paths like the cross-shard contact fan-out. Valid until
  /// the next RecordMovement.
  const std::vector<Stay>& StaysInIndex(LocationId l) const;

  /// Contact query (the SARS scenario of Section 1): every (subject,
  /// location, overlap) triple where `other` shared a location with `s`
  /// for at least `min_overlap` chronons during `window`.
  struct Contact {
    SubjectId other = kInvalidSubject;
    LocationId location = kInvalidLocation;
    Chronon overlap_start = 0;
    Chronon overlap_end = 0;
  };
  std::vector<Contact> ContactsOf(SubjectId s, const TimeInterval& window,
                                  Chronon min_overlap = 1) const;

  /// Raw movement log, in arrival order.
  const std::vector<MovementEvent>& history() const { return history_; }

  /// Number of subjects currently inside some location.
  size_t tracked_subjects() const { return current_.size(); }

 private:
  std::vector<MovementEvent> history_;
  /// Completed + open stays per subject, in time order.
  std::unordered_map<SubjectId, std::vector<Stay>> stays_by_subject_;
  /// Stay indices (into stays_by_subject_) are implicit; per-location we
  /// keep copies for fast location scans (building-scale data).
  std::unordered_map<LocationId, std::vector<Stay>> stays_by_location_;
  std::unordered_map<SubjectId, LocationId> current_;

  /// Patches the open stay copy in stays_by_location_ when it closes.
  void CloseLocationStay(SubjectId s, LocationId l, Chronon exit_time);
};

/// Appends to `out` every contact between `mine` (one stay of the probe
/// subject, clipped to `window`) and the stays in `candidates` that share
/// its location for at least `min_overlap` chronons. Candidates of the
/// probe subject itself are skipped. Shared by MovementDatabase::ContactsOf
/// and the sharded MovementView fan-out so both produce identical
/// contact sets.
void AppendStayContacts(const Stay& mine, const TimeInterval& window,
                        Chronon min_overlap,
                        const std::vector<Stay>& candidates,
                        std::vector<MovementDatabase::Contact>* out);

/// Deterministic contact ordering: (overlap_start, other, location,
/// overlap_end). Shared final sort of every ContactsOf implementation.
void SortContacts(std::vector<MovementDatabase::Contact>* contacts);

}  // namespace ltam

#endif  // LTAM_ENGINE_MOVEMENT_DB_H_
