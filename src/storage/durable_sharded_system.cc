// Copyright 2026 The LTAM Authors.

#include "storage/durable_sharded_system.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "storage/event_log.h"
#include "util/logging.h"

namespace ltam {

namespace {

Result<uint64_t> SizeOfFile(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat '" + path + "'");
  }
  return static_cast<uint64_t>(st.st_size);
}

/// True when the file is empty or ends with a newline — i.e. no torn
/// final record. Non-final rotated segments were fully fsynced before
/// their successor existed, so a torn tail there is data loss, not a
/// crash window.
Result<bool> SegmentEndsClean(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open segment '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek segment '" + path + "'");
  }
  long size = std::ftell(f);
  if (size <= 0) {
    std::fclose(f);
    return size == 0 ? Result<bool>(true)
                     : Result<bool>(Status::IOError("cannot size segment '" +
                                                    path + "'"));
  }
  if (std::fseek(f, -1, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek segment '" + path + "'");
  }
  int last = std::fgetc(f);
  std::fclose(f);
  return last == '\n';
}

}  // namespace

DurableShardedSystem::DurableShardedSystem(std::string dir,
                                           DurableShardedOptions options)
    : dir_(std::move(dir)), options_(options) {}

DurableShardedSystem::~DurableShardedSystem() {
  // Join the workers before the logs they append through go away; the
  // log destructors then drain + best-effort-sync their queues.
  engine_.reset();
  logs_.clear();
}

std::string DurableShardedSystem::FilePath(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string DurableShardedSystem::BaseSnapName(uint64_t epoch) const {
  return "base-" + std::to_string(epoch) + ".snap";
}

std::string DurableShardedSystem::ShardSnapName(uint32_t shard,
                                                uint64_t epoch) const {
  return "shard-" + std::to_string(shard) + "-" + std::to_string(epoch) +
         ".snap";
}

std::string DurableShardedSystem::ShardWalName(uint32_t shard, uint64_t epoch,
                                               uint32_t segment) const {
  std::string name =
      "events-" + std::to_string(shard) + "-" + std::to_string(epoch);
  if (segment > 0) name += "-" + std::to_string(segment);
  return name + ".wal";
}

void DurableShardedSystem::InitEngine(uint32_t num_shards) {
  ShardedEngineOptions opt;
  opt.num_shards = num_shards;
  opt.engine = options_.engine;
  engine_ = std::make_unique<ShardedDecisionEngine>(
      &base_.graph, &base_.auth_db, &base_.profiles, opt);
}

Status DurableShardedSystem::PartitionBaseMovements() {
  MovementDatabase seed = std::move(base_.movements);
  base_.movements = MovementDatabase();
  return PartitionMovementsIntoShards(seed, engine_.get());
}

void DurableShardedSystem::RebuildShardStays(uint32_t k) {
  // Each inside subject resumes their stay under the first active
  // in-window authorization for (s, current location) — the same choice
  // CheckAccess (and the sequential DurableSystem's recovery) makes.
  ResumeOpenStays(&engine_->shard_engine(k), engine_->shard_movements(k),
                  base_.auth_db,
                  SubjectsOnShard(base_.profiles, *engine_, k));
}

Result<WalWriter> DurableShardedSystem::RotateShardSegment(
    uint32_t shard, uint32_t next_segment) {
  // Serialized against rotations on other shards' log threads and
  // against Checkpoint's WriteEpoch (all republish the shared
  // manifest). Ordering makes the overlap with Checkpoint unreachable
  // anyway: a log finishes rotating before its sync advertises
  // durability, so a barrier-woken Checkpoint never finds a rotation
  // mid-flight — the mutex keeps the MANIFEST path single-writer even
  // if that reasoning ever rots.
  std::lock_guard<std::mutex> lock(manifest_mu_);
  const std::string name = ShardWalName(shard, manifest_.epoch, next_segment);
  LTAM_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Create(FilePath(name)));
  LTAM_RETURN_IF_ERROR(SyncDir(dir_));
  // Commit the extended segment list BEFORE any append reaches the new
  // file: a record in a segment the manifest does not name would be
  // durable on disk yet invisible to recovery. A retried rotation whose
  // previous attempt already committed this segment (the manifest save
  // failed after the list grew, or the retry re-created an empty tail)
  // leaves the list unchanged — and then the republish below is
  // byte-identical and skipped, sparing the rewrite + three fsyncs.
  ShardManifest next = manifest_;
  if (next.shards[shard].wals.empty() ||
      next.shards[shard].wals.back() != name) {
    next.shards[shard].wals.push_back(name);
  }
  LTAM_ASSIGN_OR_RETURN(
      bool published,
      SaveManifestIfChanged(next, FilePath(ManifestFileName()),
                            &published_manifest_bytes_));
  if (published) {
    ++manifest_publishes_;
  } else {
    ++manifest_publish_skips_;
  }
  manifest_ = std::move(next);
  return writer;
}

std::unique_ptr<ShardLog> DurableShardedSystem::MakeShardLog(
    uint32_t shard, WalWriter writer, uint64_t writer_bytes,
    uint32_t segment_index) {
  return std::make_unique<ShardLog>(
      std::move(writer), writer_bytes, segment_index, options_.durability,
      options_.sync_every_batch,
      [this, shard](uint32_t next_segment) {
        return RotateShardSegment(shard, next_segment);
      });
}

Status DurableShardedSystem::ReplayShardLogs(const ShardManifest& manifest) {
  const uint32_t n = engine_->num_shards();
  std::vector<Status> results(n, Status::OK());
  std::vector<std::thread> replayers;
  replayers.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    const std::vector<std::string>& segments = manifest.shards[k].wals;
    Status prepared;
    for (size_t s = 0; s < segments.size() && prepared.ok(); ++s) {
      const std::string path = FilePath(segments[s]);
      if (!FileExists(path)) {
        // Every committed segment was created (and the directory
        // fsynced) before the manifest named it, so a committed cut
        // whose log vanished is data loss, not a crash window — refuse
        // to silently drop the shard's tail.
        prepared = Status::IOError("shard WAL segment '" + path +
                                   "' named by the manifest is missing");
        break;
      }
      if (s + 1 < segments.size()) {
        // Rotation fsyncs a segment before its successor exists, so a
        // non-final segment must end on a record boundary.
        Result<bool> clean = SegmentEndsClean(path);
        if (!clean.ok()) {
          prepared = clean.status();
        } else if (!*clean) {
          prepared = Status::IOError(
              "rotated WAL segment '" + path +
              "' has a torn tail but is not the final segment (data loss)");
        }
      } else {
        // Repair the final segment's torn record now, before replay and
        // before any new append lands on the same line as the torn
        // bytes.
        Result<size_t> dropped = TruncateTornWalTail(path);
        if (!dropped.ok()) prepared = dropped.status();
      }
    }
    if (!prepared.ok()) {
      results[k] = std::move(prepared);
      continue;
    }
    // Parallel replay across shards is safe under the live pipeline's
    // discipline: each log holds only its own shard's subjects
    // (validated below), so no two replayers ever touch the same
    // subject's records. Within a shard, segments replay incrementally
    // in committed order.
    replayers.emplace_back([this, k, segments, &results] {
      AccessControlEngine& shard_engine = engine_->shard_engine(k);
      for (const std::string& segment : segments) {
        results[k] =
            ReplayWal(FilePath(segment), [&](const Record& rec) -> Status {
              LTAM_ASSIGN_OR_RETURN(LoggedEvent event, DecodeEventRecord(rec));
              if (!event.is_tick &&
                  engine_->ShardOf(event.event.subject) != k) {
                return Status::ParseError(
                    "log for shard " + std::to_string(k) +
                    " contains foreign subject " +
                    std::to_string(event.event.subject));
              }
              ApplyLoggedEvent(&shard_engine, event);
              return Status::OK();
            });
        if (!results[k].ok()) return;
      }
    });
  }
  for (std::thread& t : replayers) t.join();
  for (uint32_t k = 0; k < n; ++k) {
    if (!results[k].ok()) {
      return results[k].WithContext("replaying shard " + std::to_string(k));
    }
  }
  return Status::OK();
}

Status DurableShardedSystem::WriteEpoch(uint64_t epoch) {
  const uint32_t n = engine_->num_shards();
  ShardManifest m;
  m.epoch = epoch;
  m.num_shards = n;
  m.base_snapshot = BaseSnapName(epoch);
  LTAM_RETURN_IF_ERROR(SaveSnapshot(base_, FilePath(m.base_snapshot)));
  LTAM_RETURN_IF_ERROR(SyncFile(FilePath(m.base_snapshot)));
  for (uint32_t k = 0; k < n; ++k) {
    ShardManifest::ShardFiles files;
    files.snapshot = ShardSnapName(k, epoch);
    files.wals = {ShardWalName(k, epoch)};
    LTAM_RETURN_IF_ERROR(
        SaveMovements(engine_->shard_movements(k), FilePath(files.snapshot)));
    LTAM_RETURN_IF_ERROR(SyncFile(FilePath(files.snapshot)));
    m.shards.push_back(std::move(files));
  }
  // Fresh, empty logs for the new epoch (truncating any orphan a crashed
  // earlier attempt at this epoch left behind).
  std::vector<WalWriter> fresh;
  fresh.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    LTAM_ASSIGN_OR_RETURN(WalWriter wal,
                          WalWriter::Create(FilePath(m.shards[k].wals[0])));
    fresh.push_back(std::move(wal));
  }
  // The commit point: everything above becomes the recovered state the
  // instant this rename lands. Published under manifest_mu_ so it can
  // never interleave with a rotation's republication on a log thread
  // (rotation also completes before a sync advertises durability, so a
  // barrier-woken Checkpoint cannot overlap one — the lock is
  // belt-and-braces for the shared MANIFEST/MANIFEST.tmp path).
  std::vector<std::unique_ptr<ShardLog>> retiring;
  {
    std::lock_guard<std::mutex> lock(manifest_mu_);
    LTAM_ASSIGN_OR_RETURN(
        bool published,
        SaveManifestIfChanged(m, FilePath(ManifestFileName()),
                              &published_manifest_bytes_));
    if (published) {
      ++manifest_publishes_;
    } else {
      ++manifest_publish_skips_;  // Unreachable: the epoch advanced.
    }
    manifest_ = std::move(m);
    // Retire the old log generation: everything it accepted is durable
    // now (the snapshot carries the live state, lost pipelined tails
    // included), and its counters must survive the swap. The floor and
    // the logs_ vector swap under manifest_mu_ so a shipper thread
    // snapshotting its read position never sees a half-retired shard.
    retired_records_per_shard_.resize(logs_.size(), 0);
    for (size_t k = 0; k < logs_.size(); ++k) {
      const std::unique_ptr<ShardLog>& log = logs_[k];
      retired_records_ += log->appended_seq();
      retired_records_per_shard_[k] += log->appended_seq();
      retired_append_failures_ += log->append_failures();
      retired_sync_failures_ += log->sync_failures();
    }
    retiring.swap(logs_);
    for (uint32_t k = 0; k < n; ++k) {
      logs_.push_back(MakeShardLog(k, std::move(fresh[k]), /*writer_bytes=*/0,
                                   /*segment_index=*/0));
    }
  }
  // Joins the old log threads before their files go — outside
  // manifest_mu_, which a log thread takes to rotate.
  retiring.clear();
  return Status::OK();
}

void DurableShardedSystem::RemoveEpochFiles(const ShardManifest& old_manifest) {
  std::remove(FilePath(old_manifest.base_snapshot).c_str());
  for (const ShardManifest::ShardFiles& files : old_manifest.shards) {
    std::remove(FilePath(files.snapshot).c_str());
    for (const std::string& wal : files.wals) {
      std::remove(FilePath(wal).c_str());
    }
  }
}

void DurableShardedSystem::InstallHooks() {
  ShardHooks hooks;
  hooks.before_apply = [this](uint32_t shard, const AccessEvent& event) {
    return logs_[shard]->Append(EncodeEventRecord(event));
  };
  hooks.after_batch = [this](uint32_t shard) {
    return logs_[shard]->BatchBoundary();
  };
  engine_->SetShardHooks(std::move(hooks));
}

Result<std::unique_ptr<DurableShardedSystem>> DurableShardedSystem::Open(
    const std::string& dir, SystemState initial,
    DurableShardedOptions options) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("'" + dir + "' is not a directory");
  }
  options.num_shards = std::max<uint32_t>(1, options.num_shards);
  std::unique_ptr<DurableShardedSystem> sys(
      new DurableShardedSystem(dir, options));
  sys->requested_shards_ = options.num_shards;
  const std::string manifest_path = sys->FilePath(ManifestFileName());
  if (FileExists(manifest_path)) {
    LTAM_ASSIGN_OR_RETURN(ShardManifest manifest,
                          LoadManifest(manifest_path));
    if (manifest.num_shards != options.num_shards) {
      // The on-disk partition always wins — the logged subjects were
      // routed under it — but callers asked for something else, so say
      // so explicitly instead of letting them guess from behavior.
      sys->shard_count_overridden_ = true;
      LTAM_LOG_WARNING << "durable directory '" << dir << "' pins "
                       << manifest.num_shards << " shards; requested "
                       << options.num_shards
                       << " ignored (partition is fixed at creation)";
    }
    LTAM_ASSIGN_OR_RETURN(SystemState recovered,
                          LoadSnapshot(sys->FilePath(manifest.base_snapshot)));
    if (!recovered.movements.history().empty()) {
      return Status::ParseError(
          "sharded base snapshot must not carry movement records "
          "(movements live in the per-shard segments)");
    }
    sys->base_ = std::move(recovered);
    sys->InitEngine(manifest.num_shards);
    for (uint32_t k = 0; k < manifest.num_shards; ++k) {
      LTAM_ASSIGN_OR_RETURN(
          MovementDatabase segment,
          LoadMovements(sys->FilePath(manifest.shards[k].snapshot)));
      for (const MovementEvent& ev : segment.history()) {
        if (sys->engine_->ShardOf(ev.subject) != k) {
          return Status::ParseError(
              "segment for shard " + std::to_string(k) +
              " contains foreign subject " + std::to_string(ev.subject));
        }
      }
      sys->engine_->mutable_shard_movements(k) = std::move(segment);
      sys->RebuildShardStays(k);
    }
    LTAM_RETURN_IF_ERROR(sys->ReplayShardLogs(manifest));
    sys->epoch_ = manifest.epoch;
    sys->manifest_ = std::move(manifest);
    // Appends resume on each shard's final committed segment.
    for (uint32_t k = 0; k < sys->manifest_.num_shards; ++k) {
      const std::vector<std::string>& segments = sys->manifest_.shards[k].wals;
      const std::string tail = sys->FilePath(segments.back());
      LTAM_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(tail));
      LTAM_ASSIGN_OR_RETURN(uint64_t bytes, SizeOfFile(tail));
      sys->logs_.push_back(sys->MakeShardLog(
          k, std::move(wal), bytes,
          static_cast<uint32_t>(segments.size() - 1)));
    }
  } else {
    sys->base_ = std::move(initial);
    sys->InitEngine(options.num_shards);
    LTAM_RETURN_IF_ERROR(sys->PartitionBaseMovements());
    for (uint32_t k = 0; k < sys->num_shards(); ++k) {
      sys->RebuildShardStays(k);
    }
    // Checkpoint the seed immediately: recovery never needs `initial`.
    LTAM_RETURN_IF_ERROR(sys->WriteEpoch(0));
    sys->epoch_ = 0;
  }
  sys->InstallHooks();
  return sys;
}

std::vector<Decision> DurableShardedSystem::EvaluateBatchWithStatus(
    Span<const AccessEvent> batch, Status* durability) {
  std::vector<Decision> decisions = engine_->EvaluateBatch(batch);
  *durability = engine_->TakeBatchError();
  return decisions;
}

Result<std::vector<Decision>> DurableShardedSystem::EvaluateBatch(
    Span<const AccessEvent> batch) {
  Status durability;
  std::vector<Decision> decisions = EvaluateBatchWithStatus(batch, &durability);
  if (!durability.ok()) {
    return durability.WithContext("durable batch");
  }
  return decisions;
}

Status DurableShardedSystem::Tick(Chronon t) {
  const Record record = EncodeTickRecord(t);
  Status first_error;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Result<CommitTicket> appended = logs_[k]->Append(record);
    if (!appended.ok()) {
      // Write-ahead per shard: a shard whose tick could not be logged is
      // not ticked, so its live state never diverges from what recovery
      // would replay (pipelined logs never refuse here).
      if (first_error.ok()) first_error = appended.status();
      continue;
    }
    engine_->TickShard(k, t);
    Result<CommitTicket> boundary = logs_[k]->BatchBoundary();
    // A failed boundary leaves the tick appended and applied
    // (consistent); only its durability is in doubt — report it.
    if (!boundary.ok() && first_error.ok()) first_error = boundary.status();
  }
  return first_error;
}

Status DurableShardedSystem::WaitDurable() {
  Status first_error;
  for (const std::unique_ptr<ShardLog>& log : logs_) {
    Status flushed = log->Flush();
    if (!flushed.ok() && first_error.ok()) first_error = std::move(flushed);
  }
  return first_error;
}

DurabilityWatermark DurableShardedSystem::Watermark() const {
  DurabilityWatermark mark;
  mark.applied = retired_records_;
  mark.durable = retired_records_;
  for (const std::unique_ptr<ShardLog>& log : logs_) {
    mark.applied += log->appended_seq();
    mark.durable += log->durable_seq();
  }
  return mark;
}

DurabilityWatermark DurableShardedSystem::ShardWatermark(
    uint32_t shard) const {
  const uint64_t retired = shard < retired_records_per_shard_.size()
                               ? retired_records_per_shard_[shard]
                               : 0;
  DurabilityWatermark mark;
  mark.applied = retired + logs_[shard]->appended_seq();
  mark.durable = retired + logs_[shard]->durable_seq();
  return mark;
}

uint64_t DurableShardedSystem::wal_append_failures() const {
  uint64_t total = retired_append_failures_;
  for (const std::unique_ptr<ShardLog>& log : logs_) {
    total += log->append_failures();
  }
  return total;
}

uint64_t DurableShardedSystem::wal_sync_failures() const {
  uint64_t total = retired_sync_failures_;
  for (const std::unique_ptr<ShardLog>& log : logs_) {
    total += log->sync_failures();
  }
  return total;
}

Status DurableShardedSystem::Checkpoint() {
  // Quiesce the write path. A sticky-failed pipelined log cannot flush,
  // but the checkpoint REPAIRS it: the snapshot persists the live state
  // (which includes every event whose log bytes were lost), and the new
  // epoch starts with fresh, healthy logs.
  Status flushed = WaitDurable();
  if (!flushed.ok()) {
    LTAM_LOG_WARNING << "checkpoint proceeding over a failed log flush "
                        "(the snapshot supersedes the lost tail): "
                     << flushed.ToString();
  }
  ShardManifest old_manifest;
  {
    std::lock_guard<std::mutex> lock(manifest_mu_);
    old_manifest = manifest_;
  }
  LTAM_RETURN_IF_ERROR(WriteEpoch(epoch_ + 1));
  epoch_ += 1;
  RemoveEpochFiles(old_manifest);
  return Status::OK();
}

size_t DurableShardedSystem::wal_events() const {
  size_t total = 0;
  for (const std::unique_ptr<ShardLog>& log : logs_) {
    total += static_cast<size_t>(log->appended());
  }
  return total;
}

uint64_t DurableShardedSystem::manifest_publishes() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return manifest_publishes_;
}

uint64_t DurableShardedSystem::manifest_publish_skips() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return manifest_publish_skips_;
}

namespace {

/// Streams a WAL segment's raw lines to `fn` (return false to stop).
Status ForEachWalLine(const std::string& path,
                      const std::function<bool(std::string&&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open segment '" + path + "'");
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!fn(std::move(line))) break;
    line.clear();
  }
  return Status::OK();
}

}  // namespace

Result<DurableShardedSystem::ReplicationSlice>
DurableShardedSystem::ReadShardRecords(uint32_t shard, uint64_t from,
                                       size_t max_records) {
  if (shard >= num_shards()) {
    return Status::InvalidArgument("replication read from shard " +
                                   std::to_string(shard) + " of " +
                                   std::to_string(num_shards()));
  }
  // Two passes: a checkpoint may sweep the chain we snapshotted out
  // from under the file reads; the second pass sees the fresh cut (and
  // its higher retired floor turns the race into "resync required").
  Status last_read = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    uint64_t retired = 0;
    uint64_t durable = 0;
    uint64_t appended = 0;
    std::vector<std::string> segments;
    {
      std::lock_guard<std::mutex> lock(manifest_mu_);
      retired = shard < retired_records_per_shard_.size()
                    ? retired_records_per_shard_[shard]
                    : 0;
      durable = retired + logs_[shard]->durable_seq();
      appended = retired + logs_[shard]->appended_seq();
      segments = manifest_.shards[shard].wals;
    }
    if (from < retired) {
      return Status::FailedPrecondition(
          "resync required: shard " + std::to_string(shard) + " position " +
          std::to_string(from) + " precedes the retained log floor " +
          std::to_string(retired) + " (a checkpoint retired it)");
    }
    if (from > appended) {
      return Status::FailedPrecondition(
          "replica ahead of primary: shard " + std::to_string(shard) +
          " position " + std::to_string(from) + " exceeds the log end " +
          std::to_string(appended) + " (diverged history, resync required)");
    }
    ReplicationSlice slice;
    slice.durable = durable;
    slice.next = from;
    if (from >= durable) return slice;  // Nothing durable to ship yet.
    const uint64_t want =
        std::min<uint64_t>(durable - from, static_cast<uint64_t>(max_records));
    uint64_t skip = from - retired;
    last_read = Status::OK();
    for (const std::string& segment : segments) {
      if (slice.records.size() >= want) break;
      last_read =
          ForEachWalLine(FilePath(segment), [&](std::string&& line) {
            if (skip > 0) {
              --skip;
              return true;
            }
            if (slice.records.size() >= want) return false;
            slice.records.push_back(std::move(line));
            return true;
          });
      if (!last_read.ok()) break;
    }
    if (last_read.ok() && slice.records.size() == want) {
      slice.next = from + want;
      return slice;
    }
  }
  if (!last_read.ok()) return last_read;
  return Status::IOError("shard " + std::to_string(shard) +
                         " chain is shorter than its durable watermark");
}

Result<DurableShardedSystem::ReplicationApply>
DurableShardedSystem::ApplyReplicatedRecords(
    uint32_t shard, uint64_t start, const std::vector<std::string>& records) {
  if (shard >= num_shards()) {
    return Status::InvalidArgument("replicated chunk for shard " +
                                   std::to_string(shard) + " of " +
                                   std::to_string(num_shards()));
  }
  const uint64_t retired = shard < retired_records_per_shard_.size()
                               ? retired_records_per_shard_[shard]
                               : 0;
  ReplicationApply out;
  out.position = retired + logs_[shard]->appended_seq();
  if (start > out.position) {
    return Status::FailedPrecondition(
        "replication gap: chunk for shard " + std::to_string(shard) +
        " starts at " + std::to_string(start) + ", shard is at " +
        std::to_string(out.position));
  }
  AccessControlEngine& shard_engine = engine_->shard_engine(shard);
  uint64_t at = start;
  for (const std::string& line : records) {
    if (at++ < out.position) continue;  // Reconnect overlap: applied.
    LTAM_ASSIGN_OR_RETURN(Record rec, DecodeRecord(line));
    LTAM_ASSIGN_OR_RETURN(LoggedEvent event, DecodeEventRecord(rec));
    if (!event.is_tick && engine_->ShardOf(event.event.subject) != shard) {
      return Status::ParseError(
          "replicated record for shard " + std::to_string(shard) +
          " carries foreign subject " +
          std::to_string(event.event.subject));
    }
    // Write-ahead on the replica too: the record lands in this
    // directory's own log before it applies, so a replica restart — or
    // this replica's own promotion — replays the identical stream.
    Result<CommitTicket> appended = logs_[shard]->Append(rec);
    if (!appended.ok()) {
      return appended.status().WithContext("replica log append");
    }
    if (event.is_tick) {
      engine_->TickShard(shard, event.tick_time);
    } else {
      out.decisions.push_back(ApplyAccessEvent(&shard_engine, event.event));
    }
    out.position += 1;
  }
  Result<CommitTicket> boundary = logs_[shard]->BatchBoundary();
  if (!boundary.ok()) {
    return boundary.status().WithContext("replica commit boundary");
  }
  out.alerts = engine_->DrainAlerts();
  return out;
}

MovementDatabase DurableShardedSystem::MergedMovements() const {
  std::vector<MovementEvent> all;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const std::vector<MovementEvent>& history =
        engine_->shard_movements(k).history();
    all.insert(all.end(), history.begin(), history.end());
  }
  // Stable by time: a subject's events sit on one shard in order, so the
  // per-subject nondecreasing invariant survives the merge.
  std::stable_sort(all.begin(), all.end(),
                   [](const MovementEvent& a, const MovementEvent& b) {
                     return a.time < b.time;
                   });
  MovementDatabase merged;
  for (const MovementEvent& ev : all) {
    Status recorded = merged.RecordMovement(ev.time, ev.subject, ev.to);
    (void)recorded;  // Invariant: cannot fail; shards preserve order.
  }
  return merged;
}

}  // namespace ltam
