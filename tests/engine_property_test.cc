// Copyright 2026 The LTAM Authors.
// Property tests for the enforcement engine under randomized event
// streams: whatever the input, the security invariants must hold.

#include <gtest/gtest.h>

#include <map>

#include "engine/access_control_engine.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

World MakeWorld(uint64_t seed) {
  World w;
  Rng rng(seed);
  w.graph = MakeGridGraph(4 + static_cast<uint32_t>(rng.Uniform(3)),
                          4 + static_cast<uint32_t>(rng.Uniform(3)))
                .ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 6);
  AuthWorkloadOptions opt;
  opt.coverage = 0.6;
  opt.horizon = 100;
  opt.min_len = 30;
  opt.max_len = 120;
  opt.max_slack = 40;
  opt.max_entries = 3;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, InvariantsUnderRandomEventStream) {
  World w = MakeWorld(GetParam());
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  Rng rng(GetParam() * 7919 + 13);
  std::vector<LocationId> prims = w.graph.Primitives();

  Chronon t = 0;
  for (int step = 0; step < 400; ++step) {
    t += static_cast<Chronon>(rng.Uniform(3));
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    LocationId l = prims[rng.Uniform(prims.size())];
    switch (rng.Uniform(5)) {
      case 0:
      case 1: {
        Decision d = engine.RequestEntry(t, s, l);
        if (d.granted) {
          // A granted request immediately reflects in the movement DB.
          EXPECT_EQ(movements.CurrentLocation(s), l);
          // ... and was justified by an active, in-window authorization.
          const AuthRecord& rec = w.auth_db.record(d.auth);
          EXPECT_FALSE(rec.revoked);
          EXPECT_TRUE(rec.auth.entry_duration().Contains(t));
          EXPECT_EQ(rec.auth.subject(), s);
          EXPECT_EQ(rec.auth.location(), l);
        }
        break;
      }
      case 2:
        engine.ObservePresence(t, s, l);
        // Observation always wins: the DB reflects physical reality.
        EXPECT_EQ(movements.CurrentLocation(s), l);
        break;
      case 3: {
        Status st = engine.RequestExit(t, s);
        if (st.ok()) {
          EXPECT_EQ(movements.CurrentLocation(s), kInvalidLocation);
        }
        break;
      }
      case 4:
        engine.Tick(t);
        break;
    }
  }

  // Ledger safety: no authorization is ever over-consumed.
  for (AuthId id = 0; id < w.auth_db.size(); ++id) {
    const AuthRecord& rec = w.auth_db.record(id);
    if (rec.auth.max_entries() != kUnlimitedEntries) {
      EXPECT_LE(rec.entries_used, rec.auth.max_entries());
    }
    EXPECT_GE(rec.entries_used, 0);
  }
  // Counter sanity.
  EXPECT_LE(engine.requests_granted(), engine.requests_processed());
  // Alerts are time-ordered because the stream was.
  for (size_t i = 1; i < engine.alerts().size(); ++i) {
    EXPECT_LE(engine.alerts()[i - 1].time, engine.alerts()[i].time);
  }
}

TEST_P(EnginePropertyTest, CheckAccessIsPure) {
  World w = MakeWorld(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Chronon t = rng.UniformRange(0, 200);
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    LocationId l =
        w.graph.Primitives()[rng.Uniform(w.graph.Primitives().size())];
    Decision first = w.auth_db.CheckAccess(t, s, l);
    Decision second = w.auth_db.CheckAccess(t, s, l);
    EXPECT_EQ(first.granted, second.granted);
    EXPECT_EQ(first.auth, second.auth);
    EXPECT_EQ(static_cast<int>(first.reason),
              static_cast<int>(second.reason));
  }
}

TEST_P(EnginePropertyTest, MovementHistoryConsistent) {
  // Whatever the engine recorded, the movement DB's history, stays, and
  // point queries must agree with each other.
  World w = MakeWorld(GetParam());
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  Rng rng(GetParam() + 5);
  std::vector<LocationId> prims = w.graph.Primitives();
  Chronon t = 0;
  for (int step = 0; step < 200; ++step) {
    t += 1 + static_cast<Chronon>(rng.Uniform(2));
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    engine.ObservePresence(t, s, prims[rng.Uniform(prims.size())]);
  }
  for (SubjectId s : w.subjects) {
    std::vector<Stay> stays = movements.StaysOf(s);
    for (size_t i = 0; i < stays.size(); ++i) {
      // Stays are well-formed and non-overlapping in time order.
      EXPECT_LE(stays[i].enter_time, stays[i].exit_time);
      if (i > 0) {
        EXPECT_LE(stays[i - 1].exit_time, stays[i].enter_time);
      }
      // Point queries agree with the stay.
      if (stays[i].exit_time > stays[i].enter_time) {
        EXPECT_EQ(movements.LocationAt(s, stays[i].enter_time),
                  stays[i].location);
      }
      // Location-indexed copies agree.
      bool found = false;
      for (const Stay& loc_stay : movements.StaysIn(stays[i].location)) {
        if (loc_stay.subject == s &&
            loc_stay.enter_time == stays[i].enter_time &&
            loc_stay.exit_time == stays[i].exit_time) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "stay missing from the location index";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EnginePropertyTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace ltam
