// Copyright 2026 The LTAM Authors.
// The durable sharded runtime: lifecycle, checkpoint/epoch rotation, and
// the crash-injection recovery matrix (the PR's acceptance criterion):
// truncate each shard's WAL at randomized byte offsets after a random
// workload, reopen, and assert the recovered ledger/movement/alert state
// equals a sequential replay of the surviving log prefix. Run under ASan
// and TSan via ci.sh (recovery replays shard logs in parallel).

#include "storage/durable_sharded_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "storage/event_log.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "telemetry/metrics.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kShards = 4;

/// A reproducible world: grid graph, subjects, random authorizations.
SystemState MakeInitialState(uint64_t seed, uint32_t subjects = 24,
                             std::vector<SubjectId>* out_subjects = nullptr) {
  SystemState state;
  state.graph = MakeGridGraph(6, 6).ValueOrDie();
  std::vector<SubjectId> ids = GenerateSubjects(&state.profiles, subjects);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.6;
  opt.horizon = 400;
  opt.min_len = 20;
  opt.max_len = 120;
  opt.max_entries = 3;
  GenerateAuthorizations(state.graph, ids, opt, &rng, &state.auth_db);
  if (out_subjects != nullptr) *out_subjects = ids;
  return state;
}

std::vector<std::vector<AccessEvent>> MakeBatches(
    const SystemState& state, const std::vector<SubjectId>& subjects,
    size_t total_events, size_t batch_size, uint64_t seed) {
  Rng rng(seed);
  BatchWorkloadOptions opt;
  opt.batch_size = batch_size;
  opt.exit_fraction = 0.15;
  opt.observe_fraction = 0.15;
  return GenerateEventBatches(state.graph, subjects, total_events, opt, &rng);
}

using AlertKey = std::tuple<Chronon, SubjectId, LocationId, int, std::string>;

AlertKey KeyOf(const Alert& a) {
  return std::make_tuple(a.time, a.subject, a.location,
                         static_cast<int>(a.type), a.detail);
}

std::multiset<AlertKey> AlertMultiset(const std::vector<Alert>& alerts) {
  std::multiset<AlertKey> out;
  for (const Alert& a : alerts) out.insert(KeyOf(a));
  return out;
}

std::string MovementKey(const MovementEvent& ev) { return ev.ToString(); }

/// A reference "recovered" runtime built from first principles: one
/// sequential AccessControlEngine per shard over a shared ledger, with
/// the recovery spec's open-stay rebuild (first in-window authorization
/// wins) applied at the cut.
struct ReferenceShards {
  SystemState state;  // Holds graph/profiles/auth_db; movements unused.
  std::vector<std::unique_ptr<MovementDatabase>> movements;
  std::vector<std::unique_ptr<AccessControlEngine>> engines;

  explicit ReferenceShards(SystemState s) : state(std::move(s)) {
    for (uint32_t k = 0; k < kShards; ++k) {
      movements.push_back(std::make_unique<MovementDatabase>());
      engines.push_back(std::make_unique<AccessControlEngine>(
          &state.graph, &state.auth_db, movements[k].get(), &state.profiles));
    }
  }

  static uint32_t ShardOf(SubjectId s) {
    return ShardedDecisionEngine::ShardOfSubject(s, kShards);
  }

  /// Applies one live event stream position (entry/exit/observe to its
  /// owning shard, ticks to every shard).
  void ApplyEvent(const AccessEvent& e) {
    Decision ignored =
        ApplyAccessEvent(engines[ShardOf(e.subject)].get(), e);
    (void)ignored;
  }
  void ApplyTick(Chronon t) {
    for (auto& engine : engines) engine->Tick(t);
  }

  /// Replays shard k's surviving WAL prefix (file already truncated).
  Status ReplaySurvivingLog(uint32_t k, const std::string& path) {
    return ReplayWal(path, [&](const Record& rec) {
      return ApplyLoggedRecord(engines[k].get(), rec);
    });
  }

  /// The recovery spec's stay rebuild: drop all in-memory stay state and
  /// re-match every inside subject, exactly like DurableShardedSystem
  /// (and the sequential DurableSystem) at Open.
  void RebuildStaysAtCut() {
    for (uint32_t k = 0; k < kShards; ++k) {
      // Fresh engine, same stores: forgets active-stay bookkeeping but
      // keeps ledger + movements (what a snapshot persists).
      engines[k] = std::make_unique<AccessControlEngine>(
          &state.graph, &state.auth_db, movements[k].get(), &state.profiles);
      for (SubjectId s : state.profiles.AllSubjects()) {
        if (ShardOf(s) != k) continue;
        LocationId cur = movements[k]->CurrentLocation(s);
        if (cur == kInvalidLocation) continue;
        Result<Chronon> since = movements[k]->CurrentStaySince(s);
        if (!since.ok()) continue;
        AuthId chosen = kInvalidAuth;
        for (AuthId id : state.auth_db.ForSubjectLocation(s, cur)) {
          if (state.auth_db.record(id).auth.entry_duration().Contains(
                  *since)) {
            chosen = id;
            break;
          }
        }
        engines[k]->ResumeStay(s, cur, chosen, *since);
      }
    }
  }

  std::vector<Alert> MergedAlerts() const {
    std::vector<Alert> out;
    for (const auto& engine : engines) {
      out.insert(out.end(), engine->alerts().begin(), engine->alerts().end());
    }
    return out;
  }
  void ClearAlerts() {
    for (auto& engine : engines) engine->ClearAlerts();
  }
};

/// Asserts the recovered system's state equals the reference's:
/// per-shard movement histories, the shared ledger, and (optionally)
/// alerts raised since the cut.
void ExpectStateEquals(const DurableShardedSystem& recovered,
                       const ReferenceShards& reference,
                       const char* context) {
  ASSERT_EQ(recovered.num_shards(), kShards) << context;
  for (uint32_t k = 0; k < kShards; ++k) {
    const auto& got = recovered.shard_movements(k).history();
    const auto& want = reference.movements[k]->history();
    ASSERT_EQ(got.size(), want.size()) << context << ", shard " << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(MovementKey(got[i]), MovementKey(want[i]))
          << context << ", shard " << k << ", movement " << i;
    }
  }
  const AuthorizationDatabase& got_db = recovered.base().auth_db;
  const AuthorizationDatabase& want_db = reference.state.auth_db;
  ASSERT_EQ(got_db.size(), want_db.size()) << context;
  for (AuthId id = 0; id < got_db.size(); ++id) {
    EXPECT_EQ(got_db.record(id).entries_used, want_db.record(id).entries_used)
        << context << ", auth " << id;
    EXPECT_EQ(got_db.record(id).revoked, want_db.record(id).revoked)
        << context << ", auth " << id;
  }
}

std::vector<fs::path> ShardWalPaths(const std::string& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("events-", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".wal") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Shard index parsed from "events-<k>-<epoch>.wal".
uint32_t ShardIndexOf(const fs::path& wal) {
  const std::string name = wal.filename().string();
  size_t start = std::string("events-").size();
  size_t end = name.find('-', start);
  return static_cast<uint32_t>(std::stoul(name.substr(start, end - start)));
}

class DurableShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ltam_dsh_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DurableShardedOptions Options() {
    DurableShardedOptions opt;
    opt.num_shards = kShards;
    return opt;
  }

  std::string dir_;
};

TEST_F(DurableShardedTest, FreshOpenWritesEpochZeroCut) {
  std::vector<SubjectId> subjects;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(7, 16, &subjects),
                                 Options()));
  EXPECT_EQ(sys->epoch(), 0u);
  EXPECT_EQ(sys->num_shards(), kShards);
  EXPECT_EQ(sys->wal_events(), 0u);
  EXPECT_TRUE(fs::exists(dir_ + "/MANIFEST"));
  EXPECT_TRUE(fs::exists(dir_ + "/base-0.snap"));
  EXPECT_EQ(ShardWalPaths(dir_).size(), kShards);

  auto batches = MakeBatches(sys->base(), subjects, 120, 40, 11);
  size_t fed = 0;
  for (const auto& batch : batches) {
    ASSERT_OK_AND_ASSIGN(std::vector<Decision> decisions,
                         sys->EvaluateBatch(batch));
    EXPECT_EQ(decisions.size(), batch.size());
    fed += batch.size();
  }
  EXPECT_EQ(sys->wal_events(), fed);
}

TEST_F(DurableShardedTest, RecoveryReplaysEveryShardTail) {
  std::vector<SubjectId> subjects;
  SystemState init = MakeInitialState(7, 16, &subjects);
  std::vector<std::vector<AccessEvent>> batches;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, MakeInitialState(7, 16), Options()));
    batches = MakeBatches(sys->base(), subjects, 200, 50, 13);
    for (const auto& batch : batches) {
      ASSERT_OK(sys->EvaluateBatch(batch).status());
    }
    ASSERT_OK(sys->Tick(500));
    // "Crash": no checkpoint, the object goes away.
  }
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(7, 16), Options()));

  ReferenceShards reference(MakeInitialState(7, 16));
  for (const auto& batch : batches) {
    for (const AccessEvent& e : batch) reference.ApplyEvent(e);
  }
  reference.ApplyTick(500);
  ExpectStateEquals(*sys, reference, "full-tail recovery");
  EXPECT_EQ(AlertMultiset(sys->DrainAlerts()),
            AlertMultiset(reference.MergedAlerts()));
}

TEST_F(DurableShardedTest, CheckpointRotatesEpochAndTruncatesLogs) {
  std::vector<SubjectId> subjects;
  SystemState init = MakeInitialState(21, 16, &subjects);
  auto batches = MakeBatches(init, subjects, 160, 40, 23);
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, std::move(init), Options()));
    ASSERT_OK(sys->EvaluateBatch(batches[0]).status());
    ASSERT_OK(sys->Checkpoint());
    EXPECT_EQ(sys->epoch(), 1u);
    EXPECT_EQ(sys->wal_events(), 0u);
    // Old epoch's files are swept.
    EXPECT_FALSE(fs::exists(dir_ + "/base-0.snap"));
    EXPECT_TRUE(fs::exists(dir_ + "/base-1.snap"));
    ASSERT_OK(sys->EvaluateBatch(batches[1]).status());
    EXPECT_EQ(sys->wal_events(), batches[1].size());
  }
  // Recovery = snapshot cut + replay of the post-checkpoint tail only.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(21, 16), Options()));
  EXPECT_EQ(sys->epoch(), 1u);

  ReferenceShards reference(MakeInitialState(21, 16));
  for (const AccessEvent& e : batches[0]) reference.ApplyEvent(e);
  reference.RebuildStaysAtCut();
  reference.ClearAlerts();
  for (const AccessEvent& e : batches[1]) reference.ApplyEvent(e);
  ExpectStateEquals(*sys, reference, "post-checkpoint recovery");
  EXPECT_EQ(AlertMultiset(sys->DrainAlerts()),
            AlertMultiset(reference.MergedAlerts()));
}

TEST_F(DurableShardedTest, OverstayDetectionSurvivesRecovery) {
  // Alice enters a room whose exit window closes at 40, the runtime
  // checkpoints with the stay open, crashes, recovers — the resumed stay
  // must still trip the overstay patrol.
  SystemState init;
  init.graph = MakeFig4Graph().ValueOrDie();
  SubjectId alice = init.profiles.AddSubject("Alice").ValueOrDie();
  LocationId a = init.graph.Find("A").ValueOrDie();
  init.auth_db.Add(LocationTemporalAuthorization::Make(
                       TimeInterval(0, 30), TimeInterval(0, 40),
                       LocationAuthorization{alice, a}, 3)
                       .ValueOrDie());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, std::move(init), Options()));
    ASSERT_OK_AND_ASSIGN(
        std::vector<Decision> decisions,
        sys->EvaluateBatch({AccessEvent::Entry(10, alice, a)}));
    ASSERT_TRUE(decisions[0].granted);
    ASSERT_OK(sys->Checkpoint());
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableShardedSystem> sys,
                       DurableShardedSystem::Open(dir_, SystemState(),
                                                  Options()));
  ASSERT_OK(sys->Tick(50));  // Past the exit window.
  bool overstay = false;
  for (const Alert& alert : sys->DrainAlerts()) {
    if (alert.type == AlertType::kOverstay && alert.subject == alice) {
      overstay = true;
    }
  }
  EXPECT_TRUE(overstay)
      << "resumed stay lost its exit-window tracking across recovery";
}

TEST_F(DurableShardedTest, RecoveryIgnoresFreshOptionsShardCount) {
  std::vector<SubjectId> subjects;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, MakeInitialState(3, 12, &subjects),
                                   Options()));
    auto batches = MakeBatches(sys->base(), subjects, 80, 40, 5);
    for (const auto& batch : batches) {
      ASSERT_OK(sys->EvaluateBatch(batch).status());
    }
  }
  DurableShardedOptions other;
  other.num_shards = 9;  // Must be overridden by the manifest's count.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(3, 12), other));
  EXPECT_EQ(sys->num_shards(), kShards);
}

TEST_F(DurableShardedTest, OpenRejectsMissingDirectory) {
  EXPECT_TRUE(DurableShardedSystem::Open("/nonexistent/ltam", SystemState(),
                                         DurableShardedOptions{})
                  .status()
                  .IsIOError());
}

TEST_F(DurableShardedTest, MergedMovementsUnifiesShardViews) {
  std::vector<SubjectId> subjects;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(31, 20, &subjects),
                                 Options()));
  auto batches = MakeBatches(sys->base(), subjects, 200, 50, 37);
  for (const auto& batch : batches) {
    ASSERT_OK(sys->EvaluateBatch(batch).status());
  }
  MovementDatabase merged = sys->MergedMovements();
  size_t shard_total = 0;
  for (uint32_t k = 0; k < sys->num_shards(); ++k) {
    shard_total += sys->shard_movements(k).history().size();
    for (SubjectId s : subjects) {
      if (sys->ShardOf(s) != k) continue;
      EXPECT_EQ(merged.CurrentLocation(s),
                sys->shard_movements(k).CurrentLocation(s));
    }
  }
  EXPECT_EQ(merged.history().size(), shard_total);
}

/// The acceptance criterion: truncate each shard's WAL at randomized
/// byte offsets (simulating a crash with partially-durable logs), reopen,
/// and assert the recovered state equals a sequential replay of the
/// surviving per-shard prefixes — including alerts.
TEST_F(DurableShardedTest, CrashInjectionRecoveryMatrix) {
  const uint64_t kWorldSeed = 97;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kWorldSeed, 24, &subjects);
  const std::string golden = dir_ + "/golden";
  fs::create_directories(golden);
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(golden, MakeInitialState(kWorldSeed),
                                   Options()));
    auto batches = MakeBatches(probe, subjects, 600, 100, 101);
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_OK(sys->EvaluateBatch(batches[i]).status());
      if (i == batches.size() / 2) ASSERT_OK(sys->Tick(250));
    }
    ASSERT_OK(sys->Tick(600));
    // Crash without checkpoint: the whole stream lives in the WALs.
  }

  Rng rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string trial_dir = dir_ + "/trial" + std::to_string(trial);
    fs::remove_all(trial_dir);
    fs::copy(golden, trial_dir);

    // Truncate every shard WAL at an independent random offset. Trials 0
    // and 1 pin the boundary cases: everything lost / nothing lost.
    std::vector<fs::path> wals = ShardWalPaths(trial_dir);
    ASSERT_EQ(wals.size(), kShards);
    for (const fs::path& wal : wals) {
      uintmax_t size = fs::file_size(wal);
      uintmax_t keep = trial == 0   ? 0
                       : trial == 1 ? size
                                    : rng.Uniform(size + 1);
      fs::resize_file(wal, keep);
    }

    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(trial_dir, MakeInitialState(kWorldSeed),
                                   Options()));

    // Reference: sequential replay of exactly the surviving prefixes.
    ReferenceShards reference(MakeInitialState(kWorldSeed));
    for (const fs::path& wal : wals) {
      ASSERT_OK(reference.ReplaySurvivingLog(ShardIndexOf(wal),
                                             wal.string()));
    }
    ExpectStateEquals(*sys, reference, "crash trial");
    EXPECT_EQ(AlertMultiset(sys->DrainAlerts()),
              AlertMultiset(reference.MergedAlerts()));

    // The recovered runtime must remain live: a probe batch and a patrol
    // tick behave exactly like the reference.
    reference.ClearAlerts();
    auto probe_batches = MakeBatches(probe, subjects, 60, 60, 777);
    ASSERT_EQ(probe_batches.size(), 1u);
    // Probe events must be later than anything replayed.
    std::vector<AccessEvent> late;
    for (AccessEvent e : probe_batches[0]) {
      e.time += 10000;
      late.push_back(e);
    }
    ASSERT_OK_AND_ASSIGN(std::vector<Decision> got_decisions,
                         sys->EvaluateBatch(late));
    std::vector<Decision> want_decisions;
    for (const AccessEvent& e : late) {
      want_decisions.push_back(
          ApplyAccessEvent(reference.engines[ReferenceShards::ShardOf(
                               e.subject)].get(),
                           e));
    }
    ASSERT_EQ(got_decisions.size(), want_decisions.size());
    for (size_t i = 0; i < got_decisions.size(); ++i) {
      EXPECT_EQ(got_decisions[i].ToString(), want_decisions[i].ToString())
          << "probe event " << i;
    }
    ASSERT_OK(sys->Tick(20000));
    reference.ApplyTick(20000);
    EXPECT_EQ(AlertMultiset(sys->DrainAlerts()),
              AlertMultiset(reference.MergedAlerts()));

    // Torn-tail hygiene: the first recovery truncated any torn record,
    // so the probe appends landed on fresh lines — a second recovery of
    // the same directory must succeed and reach the same state.
    sys.reset();
    ASSERT_OK_AND_ASSIGN(
        sys, DurableShardedSystem::Open(trial_dir, MakeInitialState(kWorldSeed),
                                        Options()));
    ExpectStateEquals(*sys, reference, "second recovery after probe");
  }
}

/// WriteEpoch creates every WAL before the manifest commit, so a cut
/// whose log vanished is data loss — recovery must refuse, not silently
/// drop the shard's tail.
TEST_F(DurableShardedTest, MissingShardWalIsARecoveryError) {
  std::vector<SubjectId> subjects;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, MakeInitialState(41, 12, &subjects),
                                   Options()));
    auto batches = MakeBatches(sys->base(), subjects, 80, 40, 43);
    for (const auto& batch : batches) {
      ASSERT_OK(sys->EvaluateBatch(batch).status());
    }
  }
  std::vector<fs::path> wals = ShardWalPaths(dir_);
  ASSERT_EQ(wals.size(), kShards);
  fs::remove(wals[1]);
  Result<std::unique_ptr<DurableShardedSystem>> reopened =
      DurableShardedSystem::Open(dir_, MakeInitialState(41, 12), Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsIOError()) << reopened.status().ToString();
}

DurableShardedOptions PipelinedOptions(SyncMode mode,
                                       size_t segment_max_bytes = 0) {
  DurableShardedOptions opt;
  opt.num_shards = kShards;
  opt.durability.mode = mode;
  opt.durability.pipeline_depth = 3;
  opt.durability.sync_interval_ms = 1;
  if (segment_max_bytes > 0) {
    opt.durability.segment_max_bytes = segment_max_bytes;
  }
  return opt;
}

/// The tentpole equivalence gate: the pipelined and interval write
/// paths must produce decision streams (and alerts) byte-identical to
/// the synchronous group-commit mode — durability timing is the ONLY
/// difference — and a reopened directory must recover the same state.
TEST_F(DurableShardedTest, PipelinedDecisionStreamMatchesSyncMode) {
  const uint64_t kWorldSeed = 211;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kWorldSeed, 24, &subjects);
  auto batches = MakeBatches(probe, subjects, 500, 80, 223);

  struct ModeRun {
    const char* name;
    DurableShardedOptions options;
    std::vector<std::string> decisions;
    std::multiset<AlertKey> alerts;
  };
  std::vector<ModeRun> runs;
  runs.push_back({"sync", Options(), {}, {}});
  // Tiny segments so the pipelined run also exercises rotation.
  runs.push_back(
      {"pipelined", PipelinedOptions(SyncMode::kPipelined, 4096), {}, {}});
  runs.push_back({"interval", PipelinedOptions(SyncMode::kInterval), {}, {}});

  for (ModeRun& run : runs) {
    SCOPED_TRACE(run.name);
    const std::string mode_dir = dir_ + "/" + run.name;
    fs::create_directories(mode_dir);
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(mode_dir, MakeInitialState(kWorldSeed),
                                   run.options));
    for (const auto& batch : batches) {
      Status durability;
      std::vector<Decision> decisions =
          sys->EvaluateBatchWithStatus(batch, &durability);
      ASSERT_OK(durability);
      for (const Decision& d : decisions) {
        run.decisions.push_back(d.ToString());
      }
    }
    ASSERT_OK(sys->Tick(500));
    run.alerts = AlertMultiset(sys->DrainAlerts());
    // The durability barrier closes the watermark gap in every mode.
    ASSERT_OK(sys->WaitDurable());
    DurabilityWatermark mark = sys->Watermark();
    EXPECT_EQ(mark.durable, mark.applied) << "barrier left a gap";
    EXPECT_EQ(sys->wal_append_failures(), 0u);
    EXPECT_EQ(sys->wal_sync_failures(), 0u);
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE(runs[i].name);
    ASSERT_EQ(runs[0].decisions.size(), runs[i].decisions.size());
    for (size_t d = 0; d < runs[0].decisions.size(); ++d) {
      ASSERT_EQ(runs[0].decisions[d], runs[i].decisions[d])
          << "decision " << d << " diverged from sync mode";
    }
    EXPECT_TRUE(runs[0].alerts == runs[i].alerts) << "alert sets diverged";
  }

  // Recovery equivalence: every directory reopens (in plain sync mode —
  // the log format is mode-independent) to the same state.
  std::unique_ptr<DurableShardedSystem> reference;
  for (const ModeRun& run : runs) {
    SCOPED_TRACE(std::string("reopen ") + run.name);
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_ + "/" + run.name,
                                   MakeInitialState(kWorldSeed), Options()));
    if (reference == nullptr) {
      reference = std::move(sys);
      continue;
    }
    for (uint32_t k = 0; k < kShards; ++k) {
      const auto& got = sys->shard_movements(k).history();
      const auto& want = reference->shard_movements(k).history();
      ASSERT_EQ(got.size(), want.size()) << "shard " << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(MovementKey(got[i]), MovementKey(want[i]))
            << "shard " << k << ", movement " << i;
      }
    }
  }
}

/// Crash injection across rotated segments: a pipelined run with tiny
/// segments leaves a multi-segment WAL chain per shard; a simulated
/// crash (directory copy + truncation of each shard's FINAL segment —
/// rotation fsyncs a segment before its successor exists, so only the
/// final one can tear) must recover exactly the surviving prefix, and
/// never less than the reported durable watermark.
TEST_F(DurableShardedTest, CrashInjectionAcrossRotatedSegments) {
  const uint64_t kWorldSeed = 307;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kWorldSeed, 24, &subjects);
  const std::string golden = dir_ + "/golden";
  fs::create_directories(golden);
  DurabilityWatermark watermark;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(
            golden, MakeInitialState(kWorldSeed),
            PipelinedOptions(SyncMode::kPipelined, /*segment_max_bytes=*/2048)));
    auto batches = MakeBatches(probe, subjects, 600, 100, 311);
    for (const auto& batch : batches) {
      Status durability;
      (void)sys->EvaluateBatchWithStatus(batch, &durability);
      ASSERT_OK(durability);
    }
    ASSERT_OK(sys->Tick(600));
    ASSERT_OK(sys->WaitDurable());
    watermark = sys->Watermark();
    ASSERT_EQ(watermark.durable, watermark.applied);
    // Rotation must actually have happened for this test to bite.
    size_t total_segments = 0;
    for (uint32_t k = 0; k < kShards; ++k) {
      total_segments += sys->shard_log(k).segment_index() + 1;
    }
    ASSERT_GT(total_segments, kShards)
        << "no shard rotated; shrink segment_max_bytes";
    // "Crash": the object goes away without a checkpoint.
  }

  Rng rng(6464);
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string trial_dir = dir_ + "/rot" + std::to_string(trial);
    fs::remove_all(trial_dir);
    fs::copy(golden, trial_dir);

    ASSERT_OK_AND_ASSIGN(ShardManifest manifest,
                         LoadManifest(trial_dir + "/MANIFEST"));
    ASSERT_EQ(manifest.num_shards, kShards);
    // Trial 0 pins the no-loss boundary case; the rest tear the final
    // segment at random offsets (earlier segments are durable by
    // construction: rotation synced them before their successor
    // existed).
    uint64_t surviving_records = 0;
    for (uint32_t k = 0; k < kShards; ++k) {
      ASSERT_GE(manifest.shards[k].wals.size(), 1u);
      const fs::path tail =
          fs::path(trial_dir) / manifest.shards[k].wals.back();
      uintmax_t size = fs::file_size(tail);
      if (trial > 0) {
        fs::resize_file(tail, rng.Uniform(size + 1));
      }
      for (const std::string& wal : manifest.shards[k].wals) {
        // Count whole surviving records for the watermark check.
        Status counted =
            ReplayWal((fs::path(trial_dir) / wal).string(),
                      [&surviving_records](const Record&) {
                        ++surviving_records;
                        return Status::OK();
                      });
        ASSERT_OK(counted);
      }
    }
    if (trial == 0) {
      // Everything was durable at the crash: nothing may be missing.
      EXPECT_GE(surviving_records, watermark.durable);
    }

    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(trial_dir, MakeInitialState(kWorldSeed),
                                   Options()));

    // Reference: sequential replay of exactly the surviving segment
    // chains, in committed order.
    ReferenceShards reference(MakeInitialState(kWorldSeed));
    for (uint32_t k = 0; k < kShards; ++k) {
      for (const std::string& wal : manifest.shards[k].wals) {
        ASSERT_OK(reference.ReplaySurvivingLog(
            k, (fs::path(trial_dir) / wal).string()));
      }
    }
    ExpectStateEquals(*sys, reference, "rotated-segment crash trial");
    EXPECT_EQ(AlertMultiset(sys->DrainAlerts()),
              AlertMultiset(reference.MergedAlerts()));
  }
}

/// A mid-chain segment with a torn tail is data loss (rotation synced
/// it before its successor existed) — recovery must refuse, not replay
/// around the hole.
TEST_F(DurableShardedTest, TornNonFinalSegmentIsARecoveryError) {
  const uint64_t kWorldSeed = 331;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kWorldSeed, 24, &subjects);
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(
            dir_, MakeInitialState(kWorldSeed),
            PipelinedOptions(SyncMode::kPipelined, /*segment_max_bytes=*/1024)));
    auto batches = MakeBatches(probe, subjects, 600, 100, 337);
    for (const auto& batch : batches) {
      Status durability;
      (void)sys->EvaluateBatchWithStatus(batch, &durability);
      ASSERT_OK(durability);
    }
    ASSERT_OK(sys->WaitDurable());
  }
  ASSERT_OK_AND_ASSIGN(ShardManifest manifest,
                       LoadManifest(dir_ + "/MANIFEST"));
  uint32_t victim = kShards;
  for (uint32_t k = 0; k < kShards; ++k) {
    if (manifest.shards[k].wals.size() >= 2) {
      victim = k;
      break;
    }
  }
  ASSERT_LT(victim, kShards) << "no shard rotated; shrink segment_max_bytes";
  const fs::path mid = fs::path(dir_) / manifest.shards[victim].wals[0];
  uintmax_t size = fs::file_size(mid);
  ASSERT_GT(size, 2u);
  fs::resize_file(mid, size - 1);  // Chop the trailing newline: torn.
  Result<std::unique_ptr<DurableShardedSystem>> reopened =
      DurableShardedSystem::Open(dir_, MakeInitialState(kWorldSeed),
                                 Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsIOError()) << reopened.status().ToString();
}

/// Fault injection on the pipelined path: failing the Nth append (and
/// every fsync after it) must never change a single decision — the
/// failure surfaces exclusively through the batch durability status,
/// the frozen watermark, and the failure counters — and a checkpoint
/// repairs the log (the snapshot supersedes the lost tail).
TEST_F(DurableShardedTest, PipelinedFaultsSurfaceInWatermarkNotDecisions) {
  const uint64_t kWorldSeed = 401;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kWorldSeed, 24, &subjects);
  auto batches = MakeBatches(probe, subjects, 400, 80, 409);

  // Healthy sync-mode reference.
  std::vector<std::string> want_decisions;
  {
    const std::string ref_dir = dir_ + "/ref";
    fs::create_directories(ref_dir);
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(ref_dir, MakeInitialState(kWorldSeed),
                                   Options()));
    for (const auto& batch : batches) {
      Status durability;
      for (const Decision& d :
           sys->EvaluateBatchWithStatus(batch, &durability)) {
        want_decisions.push_back(d.ToString());
      }
      ASSERT_OK(durability);
    }
  }

  const std::string faulty_dir = dir_ + "/faulty";
  fs::create_directories(faulty_dir);
  DurableShardedOptions faulty = PipelinedOptions(SyncMode::kPipelined);
  // Every shard log fails its 20th append and every subsequent one.
  faulty.durability.fault_injector = [](const char* op, uint64_t count) {
    if (std::string(op) == "append" && count >= 20) {
      return Status::IOError("injected append failure");
    }
    return Status::OK();
  };
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(faulty_dir, MakeInitialState(kWorldSeed),
                                 faulty));
  std::vector<std::string> got_decisions;
  bool saw_durability_error = false;
  for (const auto& batch : batches) {
    Status durability;
    for (const Decision& d :
         sys->EvaluateBatchWithStatus(batch, &durability)) {
      got_decisions.push_back(d.ToString());
    }
    if (!durability.ok()) saw_durability_error = true;
  }
  ASSERT_EQ(want_decisions.size(), got_decisions.size());
  for (size_t i = 0; i < want_decisions.size(); ++i) {
    ASSERT_EQ(want_decisions[i], got_decisions[i])
        << "decision " << i << " changed under fault injection";
  }
  EXPECT_FALSE(sys->WaitDurable().ok()) << "the barrier must report the loss";
  saw_durability_error =
      saw_durability_error || !sys->WaitDurable().ok();
  EXPECT_TRUE(saw_durability_error);
  DurabilityWatermark frozen = sys->Watermark();
  EXPECT_LT(frozen.durable, frozen.applied) << "watermark must freeze";
  EXPECT_GT(sys->wal_append_failures(), 0u);

  // Checkpoint repairs: the snapshot persists the live state (including
  // every event whose log bytes were lost) and fresh logs start clean —
  // but only until the injector trips again, so drop it first the way a
  // recovered disk would. The sticky-failed log threads are still
  // counting refusals while their queues drain in the background, so
  // settle the counter before pinning it (two equal reads an interval
  // apart) — otherwise this races and flakes under load.
  uint64_t failures_before = sys->wal_append_failures();
  for (int settle = 0; settle < 400; ++settle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const uint64_t now_failures = sys->wal_append_failures();
    if (now_failures == failures_before) break;
    failures_before = now_failures;
  }
  ASSERT_OK(sys->Checkpoint());
  EXPECT_EQ(sys->wal_append_failures(), failures_before)
      << "failure history must survive the checkpoint";
  DurabilityWatermark repaired = sys->Watermark();
  EXPECT_EQ(repaired.durable, repaired.applied)
      << "checkpoint must restore durable == applied";

  // And the checkpointed state equals the healthy reference's.
  sys.reset();
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> recovered,
      DurableShardedSystem::Open(faulty_dir, MakeInitialState(kWorldSeed),
                                 Options()));
  ReferenceShards reference(MakeInitialState(kWorldSeed));
  for (const auto& batch : batches) {
    for (const AccessEvent& e : batch) reference.ApplyEvent(e);
  }
  ExpectStateEquals(*recovered, reference,
                    "post-checkpoint fault recovery");
}

/// Crash injection across a checkpoint: pre-checkpoint state comes from
/// the snapshot cut, only the tail is at the mercy of the truncation.
TEST_F(DurableShardedTest, CrashInjectionAfterCheckpoint) {
  const uint64_t kWorldSeed = 131;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kWorldSeed, 24, &subjects);
  const std::string golden = dir_ + "/golden";
  fs::create_directories(golden);
  auto batches = MakeBatches(probe, subjects, 400, 100, 151);
  const size_t cut = batches.size() / 2;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(golden, MakeInitialState(kWorldSeed),
                                   Options()));
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_OK(sys->EvaluateBatch(batches[i]).status());
    }
    ASSERT_OK(sys->Checkpoint());
    for (size_t i = cut; i < batches.size(); ++i) {
      ASSERT_OK(sys->EvaluateBatch(batches[i]).status());
    }
  }

  Rng rng(5353);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string trial_dir = dir_ + "/ckpt" + std::to_string(trial);
    fs::remove_all(trial_dir);
    fs::copy(golden, trial_dir);
    std::vector<fs::path> wals = ShardWalPaths(trial_dir);
    ASSERT_EQ(wals.size(), kShards);
    for (const fs::path& wal : wals) {
      fs::resize_file(wal, rng.Uniform(fs::file_size(wal) + 1));
    }

    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(trial_dir, MakeInitialState(kWorldSeed),
                                   Options()));

    ReferenceShards reference(MakeInitialState(kWorldSeed));
    for (size_t i = 0; i < cut; ++i) {
      for (const AccessEvent& e : batches[i]) reference.ApplyEvent(e);
    }
    reference.RebuildStaysAtCut();
    reference.ClearAlerts();
    for (const fs::path& wal : wals) {
      ASSERT_OK(reference.ReplaySurvivingLog(ShardIndexOf(wal),
                                             wal.string()));
    }
    ExpectStateEquals(*sys, reference, "checkpointed crash trial");
    EXPECT_EQ(AlertMultiset(sys->DrainAlerts()),
              AlertMultiset(reference.MergedAlerts()));
  }
}

/// SaveManifestIfChanged is rotation's no-op detector: a republish whose
/// serialized cut equals the previously published bytes must skip the
/// write + three fsyncs, and anything else must publish.
TEST_F(DurableShardedTest, ManifestRepublishSkipsByteIdenticalRewrites) {
  ShardManifest m;
  m.epoch = 3;
  m.num_shards = 2;
  m.base_snapshot = "base-3.snap";
  m.shards.resize(2);
  m.shards[0].snapshot = "movements-0-3.snap";
  m.shards[0].wals = {"events-0-3.wal"};
  m.shards[1].snapshot = "movements-1-3.snap";
  m.shards[1].wals = {"events-1-3.wal"};
  const std::string path = dir_ + "/MANIFEST";
  std::string cache;

  // An empty cache always publishes.
  ASSERT_OK_AND_ASSIGN(bool published, SaveManifestIfChanged(m, path, &cache));
  EXPECT_TRUE(published);
  ASSERT_OK_AND_ASSIGN(std::string bytes, SerializeManifest(m));
  EXPECT_EQ(cache, bytes);

  // The same cut again: byte-identical, skipped, cache untouched.
  ASSERT_OK_AND_ASSIGN(bool again, SaveManifestIfChanged(m, path, &cache));
  EXPECT_FALSE(again);
  EXPECT_EQ(cache, bytes);

  // A rotation that actually commits a new segment republishes, and the
  // published file is the new cut.
  m.shards[1].wals.push_back("events-1-3-1.wal");
  ASSERT_OK_AND_ASSIGN(bool changed, SaveManifestIfChanged(m, path, &cache));
  EXPECT_TRUE(changed);
  ASSERT_OK_AND_ASSIGN(ShardManifest loaded, LoadManifest(path));
  ASSERT_EQ(loaded.shards[1].wals.size(), 2u);
  EXPECT_EQ(loaded.shards[1].wals[1], "events-1-3-1.wal");
}

/// The system-level counters: every happy-path rotation commits a NEW
/// segment, so it publishes; the skip path is reserved for retried
/// republishes of an unchanged cut (exercised directly above).
TEST_F(DurableShardedTest, RotationPublishesManifestOncePerNewSegment) {
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(401, 24, &subjects);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(
          dir_, MakeInitialState(401),
          PipelinedOptions(SyncMode::kPipelined, /*segment_max_bytes=*/2048)));
  auto batches = MakeBatches(probe, subjects, 600, 100, 409);
  for (const auto& batch : batches) {
    Status durability;
    (void)sys->EvaluateBatchWithStatus(batch, &durability);
    ASSERT_OK(durability);
  }
  ASSERT_OK(sys->WaitDurable());
  size_t rotations = 0;
  for (uint32_t k = 0; k < kShards; ++k) {
    rotations += sys->shard_log(k).segment_index();
  }
  ASSERT_GT(rotations, 0u) << "no shard rotated; shrink segment_max_bytes";
  // One publish for the fresh directory's epoch-0 cut, one per rotated
  // segment — and never a skipped rewrite on this path.
  EXPECT_EQ(sys->manifest_publishes(), rotations + 1);
  EXPECT_EQ(sys->manifest_publish_skips(), 0u);
}

// --- Cold tier: incremental checkpoints, retention, recovery ---------------

std::vector<fs::path> ColdSegPaths(const std::string& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("cold-", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".seg") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST_F(DurableShardedTest, IncrementalCheckpointRewritesOnlyDirtyShards) {
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(211, 24, &subjects);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(211, 24), Options()));

  // Traffic to every shard: the first checkpoint rewrites all of them.
  auto batches = MakeBatches(probe, subjects, 200, 100, 223);
  for (const auto& batch : batches) {
    ASSERT_OK(sys->EvaluateBatch(batch).status());
  }
  ASSERT_OK(sys->Checkpoint());
  EXPECT_EQ(sys->last_checkpoint_dirty_segments(), kShards);
  ASSERT_OK_AND_ASSIGN(ShardManifest after_full,
                       LoadManifest(dir_ + "/MANIFEST"));

  // No traffic at all: the next cut rewrites nothing and re-references
  // every shard snapshot by name.
  ASSERT_OK(sys->Checkpoint());
  EXPECT_EQ(sys->last_checkpoint_dirty_segments(), 0u);
  ASSERT_OK_AND_ASSIGN(ShardManifest after_idle,
                       LoadManifest(dir_ + "/MANIFEST"));
  EXPECT_EQ(after_idle.epoch, after_full.epoch + 1);
  for (uint32_t k = 0; k < kShards; ++k) {
    EXPECT_EQ(after_idle.shards[k].snapshot, after_full.shards[k].snapshot)
        << "idle checkpoint rewrote shard " << k;
    EXPECT_TRUE(fs::exists(dir_ + "/" + after_idle.shards[k].snapshot));
  }

  // Traffic confined to one subject: exactly its shard is rewritten.
  const SubjectId lone = subjects[0];
  const uint32_t lone_shard = sys->ShardOf(lone);
  ASSERT_OK(
      sys->EvaluateBatch({AccessEvent::Observe(450, lone, 0)}).status());
  ASSERT_OK(sys->Checkpoint());
  EXPECT_EQ(sys->last_checkpoint_dirty_segments(), 1u);
  ASSERT_OK_AND_ASSIGN(ShardManifest after_lone,
                       LoadManifest(dir_ + "/MANIFEST"));
  for (uint32_t k = 0; k < kShards; ++k) {
    if (k == lone_shard) {
      EXPECT_NE(after_lone.shards[k].snapshot, after_idle.shards[k].snapshot);
    } else {
      EXPECT_EQ(after_lone.shards[k].snapshot, after_idle.shards[k].snapshot)
          << "clean shard " << k << " was rewritten";
    }
  }
}

/// Regression: a checkpoint whose retention pass dropped NOTHING used to
/// leave cold_files_ full of moved-from entries (the survivors vector
/// was only written back when something dropped), so persisting the
/// sealed segments dereferenced null — this exact configuration (a
/// horizon far wider than the data) crashed the soak server.
TEST_F(DurableShardedTest, CheckpointPersistsColdFilesWhenHorizonDropsNothing) {
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(229, 24, &subjects);
  DurableShardedOptions opt = Options();
  opt.retention.max_hot_events = 4;
  opt.retention.horizon = Chronon{1} << 40;  // Keeps everything.
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, MakeInitialState(229, 24), opt));
    auto batches = MakeBatches(probe, subjects, 300, 60, 233);
    for (const auto& batch : batches) {
      ASSERT_OK(sys->EvaluateBatch(batch).status());
      ASSERT_OK(sys->Checkpoint());
    }
    EXPECT_GT(sys->cold_segment_count(), 0u);
    EXPECT_EQ(sys->retention_dropped_segments(), 0u);
    EXPECT_EQ(sys->dropped_events(), 0u);
    EXPECT_FALSE(ColdSegPaths(dir_).empty());
  }
  // The committed cut names those segment files; recovery loads them.
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(229, 24), opt));
  EXPECT_GT(sys->cold_segment_count(), 0u);
  EXPECT_EQ(sys->dropped_events(), 0u);
}

TEST_F(DurableShardedTest, RetentionTierSealsCompactsAndDrops) {
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(239, 24, &subjects);
  DurableShardedOptions opt = Options();
  opt.retention.max_hot_events = 8;
  opt.retention.horizon = 40;
  opt.retention.compaction_fanin = 3;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(239, 24), opt));
  auto batches = MakeBatches(probe, subjects, 600, 50, 241);
  uint64_t total_fed = 0;
  for (const auto& batch : batches) {
    ASSERT_OK(sys->EvaluateBatch(batch).status());
    total_fed += batch.size();
    ASSERT_OK(sys->Checkpoint());
  }
  EXPECT_GT(sys->cold_segment_count(), 0u);
  EXPECT_GT(sys->cold_bytes(), 0u);
  EXPECT_GT(sys->compaction_runs(), 0u);
  EXPECT_GT(sys->retention_dropped_segments(), 0u);
  EXPECT_GT(sys->dropped_events(), 0u);
  // Compaction keeps every shard's tier below the fanin.
  for (uint32_t k = 0; k < kShards; ++k) {
    EXPECT_LT(sys->shard_movements(k).cold_segments().size(),
              static_cast<size_t>(opt.retention.compaction_fanin));
  }
  // Dropped events left the store but not the ledger arithmetic:
  // total_events still counts them.
  uint64_t total_recorded = 0;
  for (uint32_t k = 0; k < kShards; ++k) {
    total_recorded += sys->shard_movements(k).total_events();
  }
  uint64_t hot = 0;
  for (uint32_t k = 0; k < kShards; ++k) {
    hot += sys->shard_movements(k).history().size();
  }
  EXPECT_LT(hot, total_recorded) << "nothing was ever sealed or dropped";
}

/// The tentpole equivalence: with tiering + retention on, every answer
/// inside the retained window matches a runtime that never seals or
/// drops — decision streams included — live AND after a crash-recovery.
TEST_F(DurableShardedTest, TieredAnswersMatchUnboundedWithinRetainedWindow) {
  const uint64_t kSeed = 251;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(kSeed, 24, &subjects);
  const std::string tiered_dir = dir_ + "/tiered";
  const std::string unbounded_dir = dir_ + "/unbounded";
  fs::create_directories(tiered_dir);
  fs::create_directories(unbounded_dir);

  DurableShardedOptions tiered_opt = Options();
  tiered_opt.retention.max_hot_events = 8;
  tiered_opt.retention.horizon = 120;
  tiered_opt.retention.compaction_fanin = 3;

  auto batches = MakeBatches(probe, subjects, 600, 60, 257);
  Chronon newest = 0;
  for (const auto& batch : batches) {
    for (const AccessEvent& e : batch) newest = std::max(newest, e.time);
  }

  auto compare_windows = [&](DurableShardedSystem* tiered,
                             DurableShardedSystem* unbounded,
                             const char* context) {
    uint64_t tiered_total = 0;
    uint64_t unbounded_total = 0;
    for (uint32_t k = 0; k < kShards; ++k) {
      tiered_total += tiered->shard_movements(k).total_events();
      unbounded_total += unbounded->shard_movements(k).total_events();
    }
    EXPECT_EQ(tiered_total, unbounded_total) << context;
    const Chronon cutoff = newest - tiered_opt.retention.horizon;
    for (SubjectId s : subjects) {
      const uint32_t k = tiered->ShardOf(s);
      for (Chronon t = cutoff; t <= newest; t += 7) {
        EXPECT_EQ(tiered->shard_movements(k).LocationAt(s, t),
                  unbounded->shard_movements(k).LocationAt(s, t))
            << context << ": subject " << s << " at t=" << t;
      }
      EXPECT_EQ(tiered->shard_movements(k).CurrentLocation(s),
                unbounded->shard_movements(k).CurrentLocation(s))
          << context << ": subject " << s;
    }
  };

  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> tiered,
        DurableShardedSystem::Open(tiered_dir, MakeInitialState(kSeed, 24),
                                   tiered_opt));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> unbounded,
        DurableShardedSystem::Open(unbounded_dir, MakeInitialState(kSeed, 24),
                                   Options()));
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(std::vector<Decision> tiered_decisions,
                           tiered->EvaluateBatch(batches[i]));
      ASSERT_OK_AND_ASSIGN(std::vector<Decision> unbounded_decisions,
                           unbounded->EvaluateBatch(batches[i]));
      ASSERT_EQ(tiered_decisions.size(), unbounded_decisions.size());
      for (size_t j = 0; j < tiered_decisions.size(); ++j) {
        EXPECT_EQ(tiered_decisions[j].granted, unbounded_decisions[j].granted)
            << "batch " << i << ", event " << j;
      }
      // Checkpoint mid-stream (not after the last batch) so the tiered
      // directory crashes with BOTH sealed segments and a live WAL tail.
      if (i + 1 == batches.size() / 2) {
        ASSERT_OK(tiered->Checkpoint());
        ASSERT_OK(tiered->Checkpoint());  // Second cut: seals + compacts.
        ASSERT_OK(unbounded->Checkpoint());
      }
    }
    ASSERT_GT(tiered->cold_segment_count(), 0u);
    compare_windows(tiered.get(), unbounded.get(), "live");
    // "Crash": destroy without a final checkpoint.
  }
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> tiered,
      DurableShardedSystem::Open(tiered_dir, MakeInitialState(kSeed, 24),
                                 tiered_opt));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> unbounded,
      DurableShardedSystem::Open(unbounded_dir, MakeInitialState(kSeed, 24),
                                 Options()));
  EXPECT_GT(tiered->cold_segment_count(), 0u);
  compare_windows(tiered.get(), unbounded.get(), "recovered");
}

/// Crash-matrix extension for the cold tier: a committed cut that names
/// a segment file the directory lost (or holds only a torn prefix of)
/// must refuse to open — never recover a shorter history silently.
TEST_F(DurableShardedTest, TornOrMissingColdSegmentFailsRecovery) {
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(263, 24, &subjects);
  DurableShardedOptions opt = Options();
  opt.retention.max_hot_events = 4;
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<DurableShardedSystem> sys,
        DurableShardedSystem::Open(dir_, MakeInitialState(263, 24), opt));
    auto batches = MakeBatches(probe, subjects, 300, 60, 269);
    for (const auto& batch : batches) {
      ASSERT_OK(sys->EvaluateBatch(batch).status());
      ASSERT_OK(sys->Checkpoint());
    }
    ASSERT_GT(sys->cold_segment_count(), 0u);
  }
  std::vector<fs::path> cold = ColdSegPaths(dir_);
  ASSERT_FALSE(cold.empty());
  const fs::path victim = cold.front();
  std::string original;
  {
    std::ifstream in(victim, std::ios::binary);
    original.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(original.size(), 2u);

  // Torn at every-other byte offset: always a hard error.
  for (size_t len = 0; len < original.size(); len += 2) {
    {
      std::ofstream out(victim, std::ios::binary | std::ios::trunc);
      out.write(original.data(), static_cast<std::streamsize>(len));
    }
    EXPECT_FALSE(DurableShardedSystem::Open(dir_, MakeInitialState(263, 24),
                                            opt)
                     .ok())
        << "opened with cold segment torn at " << len << " bytes";
  }
  // Missing outright: also a hard error.
  fs::remove(victim);
  EXPECT_FALSE(
      DurableShardedSystem::Open(dir_, MakeInitialState(263, 24), opt).ok());
  // Restored byte-exact: opens again.
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(original.data(), static_cast<std::streamsize>(original.size()));
  }
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(263, 24), opt));
  EXPECT_GT(sys->cold_segment_count(), 0u);
}

/// checkpoint.dirty_segments must count exactly the snapshot rewrites,
/// and the tier counters/gauges must agree with the accessors — the
/// same reconciliation ci.sh's soak scrape asserts over the wire.
TEST_F(DurableShardedTest, RetentionTelemetryReconciles) {
  MetricsRegistry registry;
  std::vector<SubjectId> subjects;
  SystemState probe = MakeInitialState(271, 24, &subjects);
  DurableShardedOptions opt = Options();
  opt.retention.max_hot_events = 8;
  opt.retention.horizon = 40;
  opt.retention.compaction_fanin = 3;
  opt.durability.metrics = &registry;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableShardedSystem> sys,
      DurableShardedSystem::Open(dir_, MakeInitialState(271, 24), opt));

  Counter* dirty = registry.GetCounter("checkpoint.dirty_segments");
  // The fresh directory's epoch-0 cut wrote every shard.
  uint64_t expected_dirty = dirty->value();
  EXPECT_EQ(expected_dirty, sys->last_checkpoint_dirty_segments());

  auto batches = MakeBatches(probe, subjects, 600, 50, 277);
  for (const auto& batch : batches) {
    ASSERT_OK(sys->EvaluateBatch(batch).status());
    ASSERT_OK(sys->Checkpoint());
    expected_dirty += sys->last_checkpoint_dirty_segments();
  }
  // An idle checkpoint rewrites nothing and must not move the counter.
  const uint64_t before_idle = dirty->value();
  ASSERT_OK(sys->Checkpoint());
  EXPECT_EQ(sys->last_checkpoint_dirty_segments(), 0u);
  EXPECT_EQ(dirty->value(), before_idle);

  EXPECT_EQ(dirty->value(), expected_dirty);
  EXPECT_EQ(registry.GetCounter("compaction.runs")->value(),
            sys->compaction_runs());
  EXPECT_GT(sys->compaction_runs(), 0u);
  EXPECT_EQ(registry.GetCounter("retention.dropped_segments")->value(),
            sys->retention_dropped_segments());
  EXPECT_EQ(
      static_cast<uint64_t>(registry.GetGauge("storage.cold_segments")->value()),
      sys->cold_segment_count());
  EXPECT_EQ(
      static_cast<uint64_t>(registry.GetGauge("storage.cold_bytes")->value()),
      sys->cold_bytes());
#if defined(__linux__)
  EXPECT_GT(registry.GetGauge("storage.resident_bytes")->value(), 0);
#endif
}

}  // namespace
}  // namespace ltam
