// Copyright 2026 The LTAM Authors.
// Tests for the movement simulator and the LTAM-vs-baseline detection
// comparison (the measurable form of the paper's Section 1 claims).

#include "sim/movement_sim.h"

#include <gtest/gtest.h>

#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"

namespace ltam {
namespace {

struct SimWorld {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

SimWorld MakeWorld(uint64_t seed, uint32_t subjects, Chronon max_slack = 40) {
  SimWorld w;
  w.graph = MakeGridGraph(4, 4).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, subjects);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.7;
  // Windows start early and stay open long relative to the walk length,
  // so subjects actually get through the door.
  opt.horizon = 40;
  opt.min_len = 80;
  opt.max_len = 200;
  opt.max_slack = max_slack;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

TEST(MovementSimTest, DeterministicScenario) {
  SimWorld w = MakeWorld(11, 4);
  SimOptions opt;
  opt.steps_per_subject = 16;
  opt.tailgate_prob = 0.2;
  Rng rng1(77);
  Rng rng2(77);
  Scenario s1 = SimulateMovement(w.graph, w.auth_db, w.subjects, opt, &rng1);
  Scenario s2 = SimulateMovement(w.graph, w.auth_db, w.subjects, opt, &rng2);
  ASSERT_EQ(s1.events.size(), s2.events.size());
  for (size_t i = 0; i < s1.events.size(); ++i) {
    EXPECT_EQ(s1.events[i].time, s2.events[i].time);
    EXPECT_EQ(static_cast<int>(s1.events[i].kind),
              static_cast<int>(s2.events[i].kind));
    EXPECT_EQ(s1.events[i].subject, s2.events[i].subject);
    EXPECT_EQ(s1.events[i].location, s2.events[i].location);
  }
  EXPECT_EQ(s1.ground_truth.size(), s2.ground_truth.size());
}

TEST(MovementSimTest, EventsAreTimeSorted) {
  SimWorld w = MakeWorld(13, 6);
  SimOptions opt;
  opt.tailgate_prob = 0.3;
  opt.overstay_prob = 0.2;
  Rng rng(5);
  Scenario s = SimulateMovement(w.graph, w.auth_db, w.subjects, opt, &rng);
  for (size_t i = 1; i < s.events.size(); ++i) {
    EXPECT_LE(s.events[i - 1].time, s.events[i].time);
  }
}

TEST(MovementSimTest, NoViolationsWhenProbabilitiesZero) {
  SimWorld w = MakeWorld(17, 4);
  SimOptions opt;
  Rng rng(1);
  Scenario s = SimulateMovement(w.graph, w.auth_db, w.subjects, opt, &rng);
  EXPECT_TRUE(s.ground_truth.empty());
  // A clean scenario produces no violation alerts on the LTAM engine
  // (denied requests can still occur in principle but the simulator only
  // requests authorized moves).
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  ReplayOnEngine(s, &engine);
  for (const Alert& a : engine.alerts()) {
    EXPECT_NE(a.type, AlertType::kUnauthorizedPresence) << a.ToString();
  }
}

TEST(MovementSimTest, TailgatingProducesGroundTruthAndLtamCatchesIt) {
  SimWorld w = MakeWorld(19, 8);
  SimOptions opt;
  opt.steps_per_subject = 24;
  opt.tailgate_prob = 0.4;
  Rng rng(3);
  Scenario s = SimulateMovement(w.graph, w.auth_db, w.subjects, opt, &rng);
  ASSERT_GT(s.ground_truth.size(), 0u);

  MovementDatabase movements;
  AccessControlEngine ltam(&w.graph, &w.auth_db, &movements, &w.profiles);
  ReplayOnEngine(s, &ltam);
  DetectionStats ltam_stats = ScoreDetections(s, ltam.alerts());
  EXPECT_GT(ltam_stats.recall(), 0.9);

  CardReaderBaseline card(&w.auth_db);
  ReplayOnBaseline(s, &card);
  DetectionStats card_stats = ScoreDetections(s, card.alerts());
  EXPECT_EQ(card_stats.detected, 0u);
}

TEST(MovementSimTest, OverstaysDetectedByLtamOnly) {
  SimWorld w = MakeWorld(23, 6, /*max_slack=*/20);
  SimOptions opt;
  opt.steps_per_subject = 20;
  opt.overstay_prob = 0.5;
  Rng rng(9);
  Scenario s = SimulateMovement(w.graph, w.auth_db, w.subjects, opt, &rng);
  size_t overstays = 0;
  for (const GroundTruthViolation& gt : s.ground_truth) {
    if (gt.type == AlertType::kOverstay) ++overstays;
  }
  ASSERT_GT(overstays, 0u);

  MovementDatabase movements;
  AccessControlEngine ltam(&w.graph, &w.auth_db, &movements, &w.profiles);
  ReplayOnEngine(s, &ltam);
  size_t ltam_overstay_alerts = 0;
  for (const Alert& a : ltam.alerts()) {
    if (a.type == AlertType::kOverstay) ++ltam_overstay_alerts;
  }
  EXPECT_GT(ltam_overstay_alerts, 0u);

  CardReaderBaseline card(&w.auth_db);
  ReplayOnBaseline(s, &card);
  for (const Alert& a : card.alerts()) {
    EXPECT_NE(a.type, AlertType::kOverstay);
  }
}

TEST(MovementSimTest, ScoreDetectionsMatching) {
  Scenario s;
  s.ground_truth.push_back({AlertType::kUnauthorizedPresence, 100, 1, 5});
  s.ground_truth.push_back({AlertType::kOverstay, 200, 2, 6});
  std::vector<Alert> alerts;
  alerts.push_back({101, 1, 5, AlertType::kUnauthorizedPresence, ""});
  alerts.push_back({500, 3, 7, AlertType::kOverstay, ""});  // Wrong subject.
  DetectionStats stats = ScoreDetections(s, alerts, 50);
  EXPECT_EQ(stats.ground_truth, 2u);
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.false_alarms, 1u);
  EXPECT_DOUBLE_EQ(stats.recall(), 0.5);
  // Impossible-movement alerts count for unauthorized-presence truths.
  alerts[0].type = AlertType::kImpossibleMovement;
  stats = ScoreDetections(s, alerts, 50);
  EXPECT_EQ(stats.detected, 1u);
  // Denied requests are never false alarms.
  alerts.push_back({10, 9, 9, AlertType::kAccessDenied, ""});
  stats = ScoreDetections(s, alerts, 50);
  EXPECT_EQ(stats.false_alarms, 1u);
  // Empty ground truth: recall defined as 1.
  Scenario clean;
  EXPECT_DOUBLE_EQ(ScoreDetections(clean, {}).recall(), 1.0);
}

}  // namespace
}  // namespace ltam
