// Copyright 2026 The LTAM Authors.
// Tests for the card-reader baseline: it grants like Definition 7 at the
// door but is blind to everything the paper says existing systems miss.

#include "engine/baseline.h"

#include <gtest/gtest.h>

#include "engine/access_control_engine.h"
#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

LocationTemporalAuthorization MakeAuth(SubjectId s, LocationId l, Chronon es,
                                       Chronon ee, Chronon xs, Chronon xe,
                                       int64_t n = kUnlimitedEntries) {
  return LocationTemporalAuthorization::Make(TimeInterval(es, ee),
                                             TimeInterval(xs, xe),
                                             LocationAuthorization{s, l}, n)
      .ValueOrDie();
}

TEST(BaselineTest, GrantsAndDeniesLikeDefinition7) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 5, 10, 20, 10, 50, 1));
  CardReaderBaseline baseline(&db);
  EXPECT_FALSE(baseline.RequestEntry(5, 0, 5).granted);
  EXPECT_TRUE(baseline.RequestEntry(15, 0, 5).granted);
  // n = 1: second swipe denied.
  EXPECT_FALSE(baseline.RequestEntry(16, 0, 5).granted);
  EXPECT_EQ(baseline.requests_processed(), 3u);
  EXPECT_EQ(baseline.requests_granted(), 1u);
  // Denials are logged.
  EXPECT_EQ(baseline.alerts().size(), 2u);
  EXPECT_EQ(baseline.alerts()[0].type, AlertType::kAccessDenied);
}

TEST(BaselineTest, BlindToTailgatingAndOverstay) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 5, 0, 30, 0, 40));
  CardReaderBaseline baseline(&db);
  ASSERT_TRUE(baseline.RequestEntry(10, 0, 5).granted);
  // Tailgater observed; overstay tick fired — the baseline sees nothing.
  baseline.ObservePresence(10, 1, 5);
  baseline.Tick(200);
  EXPECT_OK(baseline.RequestExit(200, 0));
  EXPECT_TRUE(baseline.alerts().empty());
}

TEST(BaselineTest, SideBySideWithLtamEngine) {
  // Same stream: Alice swipes into A, Bob tailgates, both linger past the
  // exit window. LTAM raises two alerts; the baseline raises none.
  Result<MultilevelLocationGraph> g = MakeFig4Graph();
  ASSERT_TRUE(g.ok());
  MultilevelLocationGraph graph = std::move(g).ValueOrDie();
  UserProfileDatabase profiles;
  ASSERT_OK_AND_ASSIGN(SubjectId alice, profiles.AddSubject("Alice"));
  ASSERT_OK_AND_ASSIGN(SubjectId bob, profiles.AddSubject("Bob"));
  ASSERT_OK_AND_ASSIGN(LocationId a, graph.Find("A"));

  AuthorizationDatabase ltam_db;
  ltam_db.Add(MakeAuth(alice, a, 0, 30, 0, 40));
  AuthorizationDatabase card_db;
  card_db.Add(MakeAuth(alice, a, 0, 30, 0, 40));

  MovementDatabase movements;
  AccessControlEngine ltam(&graph, &ltam_db, &movements, &profiles);
  CardReaderBaseline card(&card_db);

  // t=10: Alice swipes; Bob slips in behind her.
  ASSERT_TRUE(ltam.RequestEntry(10, alice, a).granted);
  ASSERT_TRUE(card.RequestEntry(10, alice, a).granted);
  ltam.ObservePresence(10, bob, a);
  card.ObservePresence(10, bob, a);
  // t=50: both systems tick; Alice is past her exit window.
  ltam.Tick(50);
  card.Tick(50);

  size_t ltam_tailgate = 0;
  size_t ltam_overstay = 0;
  for (const Alert& al : ltam.alerts()) {
    if (al.type == AlertType::kUnauthorizedPresence) ++ltam_tailgate;
    if (al.type == AlertType::kOverstay) ++ltam_overstay;
  }
  EXPECT_EQ(ltam_tailgate, 1u);
  EXPECT_EQ(ltam_overstay, 1u);
  EXPECT_TRUE(card.alerts().empty());
}

}  // namespace
}  // namespace ltam
