// Copyright 2026 The LTAM Authors.
// Shared fixtures for the LTAM test suite.

#ifndef LTAM_TESTS_TEST_UTIL_H_
#define LTAM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/auth_database.h"
#include "graph/multilevel_graph.h"
#include "profile/user_profile.h"
#include "sim/graph_gen.h"

// Gtest-friendly status assertions.
#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const ::ltam::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (false)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const ::ltam::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                     \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                         \
  auto LTAM_CONCAT_(_test_result_, __LINE__) = (rexpr);          \
  ASSERT_TRUE(LTAM_CONCAT_(_test_result_, __LINE__).ok())        \
      << LTAM_CONCAT_(_test_result_, __LINE__).status().ToString(); \
  lhs = std::move(LTAM_CONCAT_(_test_result_, __LINE__)).ValueOrDie()

namespace ltam {
namespace testing_util {

/// The Figure 4 / Table 1 setup: graph A-B-C-D (A entry), Alice, and the
/// four authorizations of Table 1.
struct Fig4Fixture {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  SubjectId alice = kInvalidSubject;
  LocationId a = kInvalidLocation;
  LocationId b = kInvalidLocation;
  LocationId c = kInvalidLocation;
  LocationId d = kInvalidLocation;

  static Fig4Fixture Make() {
    Fig4Fixture f;
    Result<MultilevelLocationGraph> g = MakeFig4Graph();
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    f.graph = std::move(g).ValueOrDie();
    f.a = f.graph.Find("A").ValueOrDie();
    f.b = f.graph.Find("B").ValueOrDie();
    f.c = f.graph.Find("C").ValueOrDie();
    f.d = f.graph.Find("D").ValueOrDie();
    f.alice = f.profiles.AddSubject("Alice").ValueOrDie();
    auto add = [&f](LocationId l, Chronon es, Chronon ee, Chronon xs,
                    Chronon xe) {
      Result<LocationTemporalAuthorization> auth =
          LocationTemporalAuthorization::Make(
              TimeInterval(es, ee), TimeInterval(xs, xe),
              LocationAuthorization{f.alice, l}, 1);
      EXPECT_TRUE(auth.ok()) << auth.status().ToString();
      f.auth_db.Add(*auth);
    };
    // Table 1.
    add(f.a, 2, 35, 20, 50);
    add(f.b, 40, 60, 55, 80);
    add(f.c, 38, 45, 70, 90);
    add(f.d, 5, 25, 10, 30);
    return f;
  }
};

/// Resolves a list of location ids to names for readable assertions.
inline std::vector<std::string> Names(const MultilevelLocationGraph& graph,
                                      const std::vector<LocationId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (LocationId id : ids) out.push_back(graph.location(id).name);
  return out;
}

}  // namespace testing_util
}  // namespace ltam

#endif  // LTAM_TESTS_TEST_UTIL_H_
