// Copyright 2026 The LTAM Authors.

#include "core/conflict.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace ltam {

const char* ConflictKindToString(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::kOverlapping:
      return "overlapping";
    case ConflictKind::kAdjacent:
      return "adjacent";
    case ConflictKind::kContainment:
      return "containment";
  }
  return "unknown";
}

std::string Conflict::ToString() const {
  return StrFormat("conflict(#%u, #%u, %s)", first, second,
                   ConflictKindToString(kind));
}

namespace {

/// Classifies the interaction of two entry durations, if any.
std::optional<ConflictKind> Classify(const TimeInterval& a,
                                     const TimeInterval& b) {
  if (a.Contains(b) || b.Contains(a)) return ConflictKind::kContainment;
  if (a.Overlaps(b)) return ConflictKind::kOverlapping;
  if (a.Mergeable(b)) return ConflictKind::kAdjacent;
  return std::nullopt;
}

std::vector<Conflict> DetectWithin(const AuthorizationDatabase& db,
                                   const std::vector<AuthId>& group) {
  std::vector<Conflict> out;
  for (size_t i = 0; i < group.size(); ++i) {
    for (size_t j = i + 1; j < group.size(); ++j) {
      const TimeInterval& a = db.record(group[i]).auth.entry_duration();
      const TimeInterval& b = db.record(group[j]).auth.entry_duration();
      std::optional<ConflictKind> kind = Classify(a, b);
      if (kind.has_value()) {
        out.push_back(Conflict{std::min(group[i], group[j]),
                               std::max(group[i], group[j]), *kind});
      }
    }
  }
  return out;
}

/// Groups active authorization ids by (subject, location).
std::map<std::pair<SubjectId, LocationId>, std::vector<AuthId>> GroupActive(
    const AuthorizationDatabase& db) {
  std::map<std::pair<SubjectId, LocationId>, std::vector<AuthId>> groups;
  for (AuthId id : db.Active()) {
    const AuthRecord& rec = db.record(id);
    groups[{rec.auth.subject(), rec.auth.location()}].push_back(id);
  }
  return groups;
}

}  // namespace

std::vector<Conflict> DetectConflicts(const AuthorizationDatabase& db) {
  std::vector<Conflict> out;
  for (const auto& [key, group] : GroupActive(db)) {
    std::vector<Conflict> part = DetectWithin(db, group);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<Conflict> DetectConflicts(const AuthorizationDatabase& db,
                                      SubjectId s, LocationId l) {
  return DetectWithin(db, db.ForSubjectLocation(s, l));
}

Result<ConflictResolutionReport> ResolveConflicts(
    AuthorizationDatabase* db, ConflictResolution policy) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  ConflictResolutionReport report;

  for (const auto& [key, group] : GroupActive(*db)) {
    std::vector<Conflict> conflicts = DetectWithin(*db, group);
    if (conflicts.empty()) continue;
    report.conflicts_found += conflicts.size();

    if (policy == ConflictResolution::kKeepEarlier ||
        policy == ConflictResolution::kKeepLater) {
      std::set<AuthId> to_revoke;
      for (const Conflict& c : conflicts) {
        // Ids ascend with creation time, so "earlier" = lower id.
        to_revoke.insert(policy == ConflictResolution::kKeepEarlier
                             ? c.second
                             : c.first);
      }
      // Never revoke every member of the group: keep at least the policy's
      // preferred record. (With pairwise conflicts among >= 2 records the
      // preferred extreme is never selected for revocation, so this is
      // automatic.)
      for (AuthId id : to_revoke) {
        LTAM_RETURN_IF_ERROR(db->Revoke(id));
        ++report.revoked;
      }
      continue;
    }

    // kMerge: union-find over conflicting pairs, then coalesce each
    // connected component whose durations merge cleanly.
    std::map<AuthId, AuthId> parent;
    for (AuthId id : group) parent[id] = id;
    std::function<AuthId(AuthId)> find = [&](AuthId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (const Conflict& c : conflicts) {
      parent[find(c.first)] = find(c.second);
    }
    std::map<AuthId, std::vector<AuthId>> components;
    for (AuthId id : group) components[find(id)].push_back(id);

    for (const auto& [rootid, members] : components) {
      if (members.size() < 2) continue;
      // Merge entry and exit durations; refuse when either union is not a
      // single interval (that would silently widen privileges).
      IntervalSet entry_union;
      IntervalSet exit_union;
      int64_t n = 1;
      for (AuthId id : members) {
        const LocationTemporalAuthorization& a = db->record(id).auth;
        entry_union.Add(a.entry_duration());
        exit_union.Add(a.exit_duration());
        n = std::max(n, a.max_entries());
      }
      if (entry_union.size() != 1 || exit_union.size() != 1) {
        continue;  // Unsafe to merge; leave for the administrator.
      }
      const AuthRecord& first_rec = db->record(members.front());
      Result<LocationTemporalAuthorization> merged =
          LocationTemporalAuthorization::Make(
              entry_union.intervals().front(), exit_union.intervals().front(),
              first_rec.auth.auth(), n);
      if (!merged.ok()) continue;  // Def-4 violation after union; skip.
      for (AuthId id : members) {
        LTAM_RETURN_IF_ERROR(db->Revoke(id));
        ++report.revoked;
      }
      db->Add(*merged);
      ++report.merged_added;
    }
  }
  return report;
}

}  // namespace ltam
