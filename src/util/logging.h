// Copyright 2026 The LTAM Authors.
// Minimal leveled logging and check macros for internal diagnostics.

#ifndef LTAM_UTIL_LOGGING_H_
#define LTAM_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

#include "util/result.h"

namespace ltam {

/// Severity of a log line.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum severity; lines below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" | "info" | "warning" | "error" (the --log-level flag
/// vocabulary; kFatal is not settable — fatal lines always print).
Result<LogLevel> ParseLogLevel(const std::string& name);

namespace internal {

/// Stream-style log line emitter; writes on destruction. Fatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ltam

#define LTAM_LOG_DEBUG \
  ::ltam::internal::LogMessage(::ltam::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define LTAM_LOG_INFO \
  ::ltam::internal::LogMessage(::ltam::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define LTAM_LOG_WARNING \
  ::ltam::internal::LogMessage(::ltam::LogLevel::kWarning, __FILE__, __LINE__).stream()
#define LTAM_LOG_ERROR \
  ::ltam::internal::LogMessage(::ltam::LogLevel::kError, __FILE__, __LINE__).stream()
#define LTAM_LOG_FATAL \
  ::ltam::internal::LogMessage(::ltam::LogLevel::kFatal, __FILE__, __LINE__).stream()

/// Aborts with a diagnostic when `cond` is false. Active in all builds:
/// LTAM is a security model, internal invariant violations must not be
/// silently ignored in release binaries.
#define LTAM_CHECK(cond)                                      \
  if (!(cond)) LTAM_LOG_FATAL << "Check failed: " #cond " "

#endif  // LTAM_UTIL_LOGGING_H_
