// Copyright 2026 The LTAM Authors.

#include "spatial/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace ltam {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
}  // namespace

BoundingBox::BoundingBox() : lo_{kInf, kInf}, hi_{-kInf, -kInf} {}

BoundingBox::BoundingBox(Point lo, Point hi) : lo_(lo), hi_(hi) {}

bool BoundingBox::empty() const { return lo_.x > hi_.x || lo_.y > hi_.y; }

void BoundingBox::Expand(const Point& p) {
  lo_.x = std::min(lo_.x, p.x);
  lo_.y = std::min(lo_.y, p.y);
  hi_.x = std::max(hi_.x, p.x);
  hi_.y = std::max(hi_.y, p.y);
}

void BoundingBox::Expand(const BoundingBox& other) {
  if (other.empty()) return;
  Expand(other.lo_);
  Expand(other.hi_);
}

bool BoundingBox::Contains(const Point& p) const {
  return p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  if (empty() || other.empty()) return false;
  return lo_.x <= other.hi_.x && other.lo_.x <= hi_.x &&
         lo_.y <= other.hi_.y && other.lo_.y <= hi_.y;
}

std::string BoundingBox::ToString() const {
  if (empty()) return "bbox(empty)";
  return StrFormat("bbox(%.3f,%.3f -> %.3f,%.3f)", lo_.x, lo_.y, hi_.x,
                   hi_.y);
}

Polygon::Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {
  for (const Point& p : ring_) bbox_.Expand(p);
}

Result<Polygon> Polygon::Make(std::vector<Point> ring) {
  if (ring.size() < 3) {
    return Status::InvalidArgument("polygon ring needs at least 3 vertices");
  }
  // Drop a duplicated closing vertex if the caller supplied one.
  if (ring.size() > 3 && ring.front() == ring.back()) ring.pop_back();
  Polygon poly(std::move(ring));
  if (poly.Area() < kEps) {
    return Status::InvalidArgument("polygon is degenerate (zero area)");
  }
  return poly;
}

Polygon Polygon::Rect(double x0, double y0, double x1, double y1) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

double Polygon::SignedArea() const {
  double twice = 0.0;
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice / 2.0;
}

Point Polygon::Centroid() const {
  double a = SignedArea();
  const size_t n = ring_.size();
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& p = ring_[i];
    const Point& q = ring_[(i + 1) % n];
    double cross = p.x * q.y - q.x * p.y;
    cx += (p.x + q.x) * cross;
    cy += (p.y + q.y) * cross;
  }
  return {cx / (6.0 * a), cy / (6.0 * a)};
}

bool Polygon::Contains(const Point& p) const {
  if (!bbox_.Contains(p)) return false;
  const size_t n = ring_.size();
  // Edge test first: on-boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    if (DistanceToSegment(p, ring_[i], ring_[(i + 1) % n]) < kEps) {
      return true;
    }
  }
  // Ray cast to +x.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    double x_at = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
    if (x_at > p.x) inside = !inside;
  }
  return inside;
}

std::string Polygon::ToString() const {
  std::string out = "polygon(";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i > 0) out += "; ";
    out += StrFormat("%.3f,%.3f", ring_[i].x, ring_[i].y);
  }
  out += ")";
  return out;
}

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double DistanceToSegment(const Point& p, const Point& a, const Point& b) {
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double len2 = dx * dx + dy * dy;
  if (len2 < kEps) return Distance(p, a);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point proj{a.x + t * dx, a.y + t * dy};
  return Distance(p, proj);
}

}  // namespace ltam
