// Copyright 2026 The LTAM Authors.
// AccessRuntime: the one front door over every LTAM enforcement engine.
//
// The repo grew four ways to "apply LTAM events" — AccessControlEngine
// (per-event, in-memory), ShardedDecisionEngine (batch, in-memory),
// DurableSystem (per-event, crash-safe), DurableShardedSystem (batch,
// crash-safe) — each with its own construction dance, alert draining,
// mutation-window fine print, and error conventions. This facade selects
// one of them from RuntimeOptions and exposes a single uniform,
// Result/Status-only surface, in the spirit of the paper's layered
// Figure-3 architecture: callers program against the model, not against
// a particular scaling/durability point.
//
// Uniformity contract (equivalence-tested across all four backends by
// tests/access_runtime_test.cc):
//  - Apply/ApplyBatch produce byte-identical decision streams for the
//    same event stream, whatever the backend;
//  - ApplyBatch returns decisions + drained alerts + durability outcome
//    in one BatchResult (no separate TakeAlerts/TakeBatchError calls);
//  - alerts are deterministically ordered by (time, subject, location,
//    type) on every backend;
//  - Mutate() is the only door to the mutable stores, so the "mutations
//    only between batches" rule is enforced, not documented: applying
//    events from inside Mutate fails with kFailedPrecondition, and
//    shared caches (the graph's flattened adjacency) are re-warmed when
//    the mutation ends;
//  - the read side is a MovementView: sequential backends expose their
//    one database, sharded backends fan queries out over the per-shard
//    views — no merged full copy — and the built-in QueryEngine answers
//    over it.

#ifndef LTAM_RUNTIME_ACCESS_RUNTIME_H_
#define LTAM_RUNTIME_ACCESS_RUNTIME_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/access_control_engine.h"
#include "engine/events.h"
#include "engine/location_resolver.h"
#include "query/movement_view.h"
#include "query/query_engine.h"
#include "storage/log_pipeline.h"
#include "storage/snapshot.h"
#include "util/result.h"
#include "util/span.h"

namespace ltam {

/// Which engine the facade runs on and how.
struct RuntimeOptions {
  /// 1 = the sequential engine; >1 = the subject-sharded batch pipeline
  /// with one worker thread per shard.
  uint32_t num_shards = 1;
  /// When set, the runtime is crash-safe and rooted at this existing
  /// directory (write-ahead logging + snapshots/checkpoints). When the
  /// directory already holds a committed state, that state wins over
  /// `initial` — and a sharded directory's pinned shard count wins over
  /// `num_shards` (see RuntimeStats::shard_count_overridden).
  std::optional<std::string> durable_dir;
  /// Per-engine decision/monitoring knobs.
  EngineOptions engine;
  /// Durable backends, SyncMode::kBatch only: fsync the log(s) once per
  /// Apply/ApplyBatch/Tick (group commit). Disable only where the OS
  /// page cache is an acceptable durability boundary. Pipelined modes
  /// ignore it — their cadence comes from `durability`.
  bool sync_every_batch = true;
  /// Durable backends: the write path's sync mode and pipelining
  /// bounds. kBatch (the default) keeps the fsync on each batch's
  /// critical path and is byte-identical to the pre-pipelining
  /// behavior; kPipelined/kInterval move it to per-shard log threads —
  /// ApplyBatch then returns before its fsync lands, and callers choose
  /// latency vs durability per call via BatchResult::watermark and
  /// WaitDurable(). Also carries the WAL segment rotation threshold.
  /// The sequential durable backend runs the identical ShardLog
  /// machinery on its single log (rotation disabled; failed fsyncs
  /// retried instead of sticky — see storage/durable_system.h), so the
  /// idle-convergence guarantees match the sharded log threads': an
  /// idle kInterval runtime still syncs within `sync_interval_ms`, and
  /// an idle kPipelined one converges to durable == applied.
  DurabilityOptions durability;
  /// Ceiling on events per ApplyBatch call (0 = unlimited). An oversized
  /// batch is rejected whole with kInvalidArgument — nothing is applied —
  /// and counted in RuntimeStats::batches_rejected. Network front ends
  /// set this so a remote client cannot stall every shard with one
  /// giant frame.
  size_t max_batch_events = 0;
  /// Durable backends: Checkpoint() automatically after every Mutate()
  /// — even one whose callback failed, since mutations are applied in
  /// place and a partial mutation is still the live state. Mutations
  /// are not write-ahead logged, so without a checkpoint a crash would
  /// replay the log against the pre-mutation stores and recover a state
  /// that diverges from the live one. Disable only to batch several
  /// mutation windows per checkpoint — an explicit Checkpoint() before
  /// relying on recovery is then on the caller.
  bool checkpoint_after_mutate = true;
  /// Telemetry (may be null; borrowed, must outlive the runtime). When
  /// set, the facade records "runtime.apply_batch" and
  /// "runtime.checkpoint" duration histograms, and the registry flows
  /// into durability.metrics (the "wal.sync" histogram) unless the
  /// caller pointed that at a different registry already.
  MetricsRegistry* metrics = nullptr;
  /// Movement-history tiering + retention (engine/movement_db.h):
  /// checkpoints seal oversized hot shards into columnar cold segments,
  /// drop segments past the horizon, and compact the rest. Durable
  /// sharded backends only — Open() rejects a non-default value on any
  /// other backend with kInvalidArgument rather than silently keeping
  /// unbounded history.
  RetentionOptions retention;
};

/// Everything one ApplyBatch call produced.
struct BatchResult {
  /// One decision per event, in input order. An event the durable layer
  /// refused to log is Deny(kWalError) and was never applied.
  std::vector<Decision> decisions;
  /// Every alert pending after the batch (including ones buffered by
  /// earlier Apply/Tick calls), ordered by (time, subject, location,
  /// type). Draining is built in — there is no separate TakeAlerts.
  std::vector<Alert> alerts;
  /// Durability outcome. OK on in-memory backends. The two failure
  /// classes are decoupled: refused events are ALWAYS identifiable by
  /// their Deny(kWalError) decisions (never applied — resubmitting them
  /// is safe), while a non-OK status of IO kind signals a failed
  /// group-commit fsync — every applied event's durability is in doubt,
  /// so do NOT resubmit those. When both happen in one batch the fsync
  /// failure wins the status (with the append error in its context), so
  /// the more severe outcome is never masked.
  Status durability;
  /// The runtime's durability position after this batch: log records
  /// accepted (events applied) vs fsynced. In-memory backends and
  /// kBatch+sync_every_batch report durable == applied; pipelined modes
  /// may trail until the log threads catch up (or WaitDurable forces
  /// it).
  DurabilityWatermark watermark;
};

/// A point-in-time snapshot of runtime counters and configuration.
struct RuntimeStats {
  /// Shards actually in effect (1 = sequential backend).
  uint32_t num_shards = 1;
  /// Shards the caller asked for.
  uint32_t requested_shards = 1;
  /// True when the backend persists (durable_dir was set).
  bool durable = false;
  /// True when the durable directory's committed state pinned a shard
  /// count different from the requested one (the directory wins).
  bool shard_count_overridden = false;
  /// Durable backends: committed checkpoint epoch (sharded only) and
  /// events appended to the current log tail(s).
  uint64_t epoch = 0;
  size_t wal_events = 0;
  /// Engine counters, aggregated across shards.
  size_t requests_processed = 0;
  size_t requests_granted = 0;
  /// Facade ingest counters. Every front end (the library caller, the
  /// ltam-serve /stats endpoint, the shell) reports these same numbers —
  /// there is no side channel to count ingestion twice.
  size_t batches_applied = 0;
  size_t events_applied = 0;
  /// Events the durability layer refused (their decisions carry
  /// Deny(kWalError); they were never applied).
  size_t events_refused = 0;
  /// ApplyBatch calls rejected whole before application: oversized per
  /// RuntimeOptions::max_batch_events, or issued inside Mutate().
  size_t batches_rejected = 0;
  /// Alerts raised but not yet drained.
  size_t pending_alerts = 0;
  /// The durability watermark: records accepted (events applied) vs
  /// fsynced. Equal on in-memory backends and in sync-every-batch mode;
  /// durable trails applied while pipelined fsyncs are in flight.
  uint64_t applied_offset = 0;
  uint64_t durable_offset = 0;
  /// Physical log failures observed (see BatchResult::durability for
  /// the per-batch view): appends that refused or lost records, fsyncs
  /// that failed. Zero on in-memory backends.
  uint64_t wal_append_failures = 0;
  uint64_t wal_sync_failures = 0;
  /// Durable backends: one (applied, durable) watermark per shard log,
  /// monotonic across checkpoints — the aggregate applied/durable_offset
  /// above is their sum, so a single stuck shard log is visible here
  /// rather than drowned in global lag. Sequential durable backends
  /// report one entry; in-memory backends report none. Carried over the
  /// wire verbatim (protocol v3).
  std::vector<DurabilityWatermark> shard_watermarks;
  /// Replication role and promotion epoch (replication/epoch.h): a
  /// replica refuses writes and applies shipped records instead.
  /// Carried over the wire since protocol v4.
  bool replica = false;
  uint64_t replication_epoch = 0;
  /// Movement-history tiering (durable sharded backends; zero
  /// elsewhere). Carried over the wire since protocol v6.
  uint64_t cold_segments = 0;     ///< Sealed segments currently live.
  uint64_t cold_bytes = 0;        ///< Approx bytes held by cold columns.
  uint64_t dropped_events = 0;    ///< Events dropped past the horizon.
  uint64_t compaction_runs = 0;   ///< Segment merges since Open.
  /// Shard snapshots rewritten by checkpoints since Open — the
  /// incremental-checkpoint pin (clean shards re-reference their file).
  uint64_t checkpoint_dirty_segments = 0;
};

/// The mutable stores handed to Mutate() callbacks. Movement state is
/// deliberately absent: it belongs to the engines (and, sharded, to the
/// per-shard views); mutating it out from under them would corrupt
/// enforcement. Read it through movements().
struct MutableStores {
  MultilevelLocationGraph& graph;
  UserProfileDatabase& profiles;
  AuthorizationDatabase& auth_db;
  std::vector<AuthorizationRule>& rules;
};

/// One backend-polymorphic enforcement runtime. All methods must be
/// called from one control thread (the same discipline every underlying
/// engine already required); sharded backends parallelize internally.
class AccessRuntime {
 public:
  /// Opens a runtime over `initial` (graph, profiles, authorizations,
  /// rules, and optionally pre-seeded movement history — open stays are
  /// resumed exactly as durable recovery would). With durable_dir set,
  /// an existing committed state in the directory supersedes `initial`.
  static Result<std::unique_ptr<AccessRuntime>> Open(
      SystemState initial, RuntimeOptions options = {});

  ~AccessRuntime();
  AccessRuntime(const AccessRuntime&) = delete;
  AccessRuntime& operator=(const AccessRuntime&) = delete;

  // --- Event surface -------------------------------------------------------

  /// Applies one event (logged first on durable backends) and returns
  /// its decision. Alerts it raises stay buffered for the next
  /// ApplyBatch/DrainAlerts. Non-OK when the event was refused by the
  /// durability layer (not applied — safe to resubmit), when a
  /// group-commit fsync failed (applied, durability in doubt — the
  /// message says do not resubmit), or when called from inside Mutate.
  Result<Decision> Apply(const AccessEvent& event);

  /// Applies a batch (fanned out across shards on sharded backends;
  /// events of one subject must be in nondecreasing time order) and
  /// returns decisions, drained alerts, and the durability outcome in
  /// one struct. Non-OK only for contract violations (inside Mutate).
  Result<BatchResult> ApplyBatch(Span<const AccessEvent> batch);

  /// Resolves a raw position fix through the graph's boundary polygons
  /// (the resolver is built lazily and rebuilt after Mutate) and applies
  /// the resulting event: an observation when the fix lands inside some
  /// boundary, a site exit when it lands outside while the subject is
  /// recorded inside, nothing otherwise. A refused observation or exit
  /// surfaces as kFailedPrecondition carrying the deny reason in its
  /// message (the uniform event path folds the engine's finer-grained
  /// refusal codes into the decision, unlike the raw
  /// AccessControlEngine::HandlePositionFix).
  Status ApplyFix(const PositionFix& fix);

  /// Patrol tick on every shard (logged on durable backends): raises
  /// overstay alerts into the pending buffer.
  Status Tick(Chronon t);

  /// Pending alerts in deterministic (time, subject, location, type)
  /// order, clearing the buffer. Per-event flows use this; ApplyBatch
  /// drains implicitly.
  std::vector<Alert> DrainAlerts();

  // --- Control surface -----------------------------------------------------

  /// Runs `fn` over the mutable stores between batches — the only legal
  /// mutation window, now enforced: event application from inside `fn`
  /// fails, reentrant Mutate fails, and shared read caches are re-warmed
  /// after `fn` returns. Durable backends do not write-ahead log
  /// mutations, so a successful `fn` is followed by an automatic
  /// Checkpoint() (see RuntimeOptions::checkpoint_after_mutate) to keep
  /// recovery equivalent to the live state.
  Status Mutate(const std::function<Status(const MutableStores&)>& fn);

  /// Durability barrier: blocks until every accepted log record is
  /// fsynced (forcing the flush on pipelined backends), or returns the
  /// log's sticky error. In-memory backends and kBatch+sync_every_batch
  /// runtimes return OK immediately. Checkpoint() is the stronger
  /// barrier (it also persists snapshots and truncates the logs).
  Status WaitDurable();

  /// The current durability position (see BatchResult::watermark).
  /// In-memory backends report durable == applied.
  DurabilityWatermark Watermark() const;

  /// Durable backends: persist the full state (a new epoch on sharded
  /// directories) and truncate the log(s). In-memory backends: a no-op
  /// returning OK.
  Status Checkpoint();

  /// Counters and effective configuration.
  RuntimeStats Stats() const;

  // --- Replication surface -------------------------------------------------
  // Only the durable sharded backend replicates: the unit of shipping
  // is the per-shard WAL record stream, and the replication position in
  // shard k is the monotonic record count ShardWatermark(k) reports
  // (retired generations + current log). Epoch semantics live in
  // replication/epoch.h (promotion counter, persisted as REPL_EPOCH in
  // the durable directory; fencing gates compare it).

  /// True when this runtime refuses writes and applies shipped records
  /// instead (DemoteToReplica).
  bool is_replica() const { return replica_; }

  /// The persisted replication epoch (0 when never promoted, and always
  /// 0 on in-memory runtimes — they have nowhere to persist one).
  uint64_t replication_epoch() const { return replication_epoch_; }

  /// Turns this runtime into a read-only replica: Apply/ApplyBatch/
  /// ApplyFix/Tick/Mutate fail with kFailedPrecondition from here on;
  /// ApplyReplicated becomes the only write path. Requires the durable
  /// sharded backend. Demotion is a boot-time decision (after the
  /// policy-script mutation window) — there is no demote-back except
  /// reopening the directory.
  Status DemoteToReplica();

  /// Failover: durably bumps the replication epoch (persisted BEFORE a
  /// single write is accepted) and re-enables writes. Returns the new
  /// epoch. Legal on a primary too — the bump fences any stream the old
  /// epoch could still ship.
  Result<uint64_t> Promote();

  /// Replica-side: adopts a higher epoch observed on a valid stream
  /// (the replica lagged a promotion). A lower epoch is a fencing error;
  /// equal is a no-op.
  Status AdoptReplicationEpoch(uint64_t epoch);

  /// Where a replica believes the primary lives ("host:port"). When
  /// set, write refusals carry a structured ` [primary=host:port]`
  /// token so clients can re-dial instead of guessing; empty (the
  /// default) keeps the bare refusal. The serving shell owns this hint
  /// — it tracks --replica-of and every repoint.
  void SetPrimaryRedirect(std::string endpoint) {
    primary_redirect_ = std::move(endpoint);
  }
  const std::string& primary_redirect() const { return primary_redirect_; }

  /// Per-shard replication positions (monotonic durable record counts)
  /// — what a replica reports in its subscription hello so the primary
  /// resumes shipping exactly past the last durable record.
  Result<std::vector<uint64_t>> ReplicationPositions() const;

  /// A slice of shard `shard`'s committed WAL record stream starting at
  /// position `from` (primary side of the shipper). Only durable
  /// records ship; `next` is the position after the last returned
  /// record, `durable` the shard's current durable position. A `from`
  /// below the retained floor (a checkpoint retired it) fails:
  /// the replica must resync from a snapshot.
  struct ReplicationSlice {
    std::vector<std::string> records;
    uint64_t next = 0;
    uint64_t durable = 0;
  };
  Result<ReplicationSlice> ReadReplicationSlice(uint32_t shard,
                                                uint64_t from,
                                                size_t max_records);

  /// Replica side: write-ahead logs and applies shipped records for
  /// `shard` starting at position `start` (records below the current
  /// position are skipped — reconnect overlap is idempotent; a gap is
  /// an error). Returns the decisions the events produced (byte-
  /// identical to the primary's), alerts raised, and the new position.
  struct ReplicationApplyResult {
    std::vector<Decision> decisions;
    std::vector<Alert> alerts;
    uint64_t position = 0;
  };
  Result<ReplicationApplyResult> ApplyReplicated(
      uint32_t shard, uint64_t start, const std::vector<std::string>& records);

  // --- Read surface --------------------------------------------------------

  const MultilevelLocationGraph& graph() const;
  const UserProfileDatabase& profiles() const;
  const AuthorizationDatabase& auth_db() const;
  /// The movement read side: one database sequentially, per-shard
  /// fan-out on sharded backends. Valid between event applications.
  const MovementView& movements() const { return *view_; }
  /// A query engine wired over this runtime's stores and movement view.
  const QueryEngine& query() const { return *query_; }

 private:
  class Backend;
  class SequentialBackend;
  class ShardedBackend;
  class DurableSequentialBackend;
  class DurableShardedBackend;

  explicit AccessRuntime(RuntimeOptions options);

  /// Collects + deterministically orders the backend's pending alerts.
  std::vector<Alert> TakePendingAlerts();

  /// The kFailedPrecondition every write path returns while demoted;
  /// appends the structured primary token when the hint is set.
  Status ReplicaRefusal(const char* op) const;

  RuntimeOptions options_;
  std::unique_ptr<Backend> backend_;
  std::unique_ptr<MovementView> view_;
  std::unique_ptr<QueryEngine> query_;
  /// Lazily built from the graph's boundaries; reset by Mutate.
  std::optional<LocationResolver> resolver_;
  bool in_mutate_ = false;
  bool replica_ = false;
  uint64_t replication_epoch_ = 0;
  /// Advertised in write refusals when non-empty (SetPrimaryRedirect).
  std::string primary_redirect_;
  size_t batches_applied_ = 0;
  size_t events_applied_ = 0;
  size_t events_refused_ = 0;
  size_t batches_rejected_ = 0;
  /// Resolved once in the ctor from options_.metrics (null when
  /// uninstrumented).
  Histogram* apply_histogram_ = nullptr;
  Histogram* checkpoint_histogram_ = nullptr;
};

/// Renders stats as aligned "name: value" lines — the one rendering the
/// shell uses for both a local runtime's Stats() and a remote server's
/// (the wire carries the struct verbatim, so the reports match).
std::string RuntimeStatsToString(const RuntimeStats& stats);

/// Registers the runtime's scripted rules (SystemState::rules, e.g. from
/// a policy script) with a RuleEngine and derives the implied
/// authorizations, inside one Mutate window. `derived`, when non-null,
/// receives the number of derived authorizations. Shared by every host
/// that boots a runtime from a policy script.
Status RegisterAndDeriveScriptedRules(AccessRuntime* runtime,
                                      size_t* derived = nullptr);

}  // namespace ltam

#endif  // LTAM_RUNTIME_ACCESS_RUNTIME_H_
