// Copyright 2026 The LTAM Authors.
//
// Quickstart: the smallest useful LTAM deployment, through the unified
// AccessRuntime facade.
//
// Builds a two-room site, grants the Section 5 authorizations
//   A1: ([10, 20], [10, 50], (Alice, CAIS), 2)
//   A2: ([5, 35], [20, 100], (Bob, CHIPES), 1)
// and replays the paper's request timeline, printing each decision, then
// shows an overstay alert being raised by the monitor. Switching this
// deployment to a sharded or crash-safe runtime is a RuntimeOptions
// change, not a rewrite.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "runtime/access_runtime.h"
#include "util/logging.h"

namespace {

void Print(const char* what, const ltam::Decision& d) {
  std::printf("  %-28s -> %s\n", what, d.ToString().c_str());
}

}  // namespace

int main() {
  using namespace ltam;  // NOLINT: example brevity.

  // 1. Describe the system state: the location layout (Definition 1),
  //    the subjects, and the location-temporal authorizations
  //    (Definition 4).
  SystemState state;
  state.graph = MultilevelLocationGraph("Lab");
  LocationId cais =
      state.graph.AddPrimitive("CAIS", state.graph.root()).ValueOrDie();
  LocationId chipes =
      state.graph.AddPrimitive("CHIPES", state.graph.root()).ValueOrDie();
  LTAM_CHECK(state.graph.AddEdge(cais, chipes).ok());
  LTAM_CHECK(state.graph.SetEntry(cais).ok());
  LTAM_CHECK(state.graph.Validate().ok());

  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  SubjectId bob = state.profiles.AddSubject("Bob").ValueOrDie();

  state.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(10, 20), TimeInterval(10, 50),
                        LocationAuthorization{alice, cais}, 2)
                        .ValueOrDie());
  state.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(5, 35), TimeInterval(20, 100),
                        LocationAuthorization{bob, chipes}, 1)
                        .ValueOrDie());

  // 2. Open the enforcement runtime (Figure 3) over that state. CHIPES
  //    is not a site door, so Bob walks in through CAIS's door... but he
  //    holds no CAIS authorization: his direct request would be denied
  //    twice over. Disable adjacency for the paper-faithful timeline.
  RuntimeOptions options;
  options.engine.enforce_adjacency = false;
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(state), options);
  LTAM_CHECK(opened.ok()) << opened.status().ToString();
  std::unique_ptr<AccessRuntime> runtime = std::move(opened).ValueOrDie();

  std::printf("Section 5 request timeline:\n");
  auto apply = [&](const char* label, const AccessEvent& e) {
    Result<Decision> d = runtime->Apply(e);
    LTAM_CHECK(d.ok()) << d.status().ToString();
    Print(label, *d);
  };
  apply("(10, Alice, CAIS)", AccessEvent::Entry(10, alice, cais));
  apply("(15, Bob,   CAIS)", AccessEvent::Entry(15, bob, cais));
  apply("(16, Bob,   CHIPES)", AccessEvent::Entry(16, bob, chipes));
  apply("(20, Bob exits)", AccessEvent::Exit(20, bob));
  apply("(30, Bob,   CHIPES)", AccessEvent::Entry(30, bob, chipes));

  // 3. Continuous monitoring: Alice must leave CAIS by t=50.
  std::printf("\nMonitoring:\n");
  LTAM_CHECK(runtime->Tick(60).ok());
  for (const Alert& alert : runtime->DrainAlerts()) {
    if (alert.type != AlertType::kAccessDenied) {
      std::printf("  ALERT %s\n", alert.ToString().c_str());
    }
  }

  // 4. The read side: movement history through the MovementView.
  std::printf("\nMovement record of Alice:\n");
  for (const Stay& stay : runtime->movements().StaysOf(alice)) {
    std::printf("  in %s from t=%lld%s\n",
                runtime->graph().location(stay.location).name.c_str(),
                static_cast<long long>(stay.enter_time),
                stay.exit_time == kChrononMax ? " (still inside)" : "");
  }
  return 0;
}
