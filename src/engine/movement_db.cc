// Copyright 2026 The LTAM Authors.

#include "engine/movement_db.h"

#include <algorithm>

#include "engine/cold_segment.h"
#include "time/interval.h"
#include "util/string_util.h"

namespace ltam {

Status MovementDatabase::RecordMovement(Chronon time, SubjectId s,
                                        LocationId to) {
  if (s == kInvalidSubject) {
    return Status::InvalidArgument("movement for invalid subject");
  }
  auto cur_it = current_.find(s);
  LocationId from =
      cur_it == current_.end() ? kInvalidLocation : cur_it->second;
  if (from == to) {
    return Status::InvalidArgument(
        "movement to the current location is a no-op");
  }
  // Per-subject monotonicity. The hot stays carry the constraint while
  // any exist; a subject whose stays were all sealed falls back to the
  // sealed floor, so sealing never loosens the ordering contract.
  auto& stays = stays_by_subject_[s];
  if (!stays.empty()) {
    const Stay& last = stays.back();
    Chronon last_time =
        last.exit_time == kChrononMax ? last.enter_time : last.exit_time;
    if (time < last_time) {
      return Status::FailedPrecondition(StrFormat(
          "out-of-order movement for subject s%u: t=%lld before t=%lld", s,
          static_cast<long long>(time), static_cast<long long>(last_time)));
    }
  } else {
    auto floor_it = sealed_floor_.find(s);
    if (floor_it != sealed_floor_.end() && time < floor_it->second) {
      return Status::FailedPrecondition(StrFormat(
          "out-of-order movement for subject s%u: t=%lld before t=%lld", s,
          static_cast<long long>(time),
          static_cast<long long>(floor_it->second)));
    }
  }
  // Close the open stay, if any.
  if (from != kInvalidLocation) {
    Stay& open = stays.back();
    open.exit_time = time;
    CloseLocationStay(s, from, time);
  }
  // Open the new stay.
  if (to != kInvalidLocation) {
    Stay stay{s, to, time, kChrononMax};
    stays.push_back(stay);
    stays_by_location_[to].push_back(stay);
    current_[s] = to;
  } else {
    current_.erase(s);
  }
  history_.push_back(MovementEvent{time, s, from, to});
  return Status::OK();
}

void MovementDatabase::CloseLocationStay(SubjectId s, LocationId l,
                                         Chronon exit_time) {
  auto it = stays_by_location_.find(l);
  if (it == stays_by_location_.end()) return;
  // The open stay of s in l is the last one for s (stays are appended in
  // time order).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->subject == s && rit->exit_time == kChrononMax) {
      rit->exit_time = exit_time;
      return;
    }
  }
}

LocationId MovementDatabase::CurrentLocation(SubjectId s) const {
  auto it = current_.find(s);
  return it == current_.end() ? kInvalidLocation : it->second;
}

Result<Chronon> MovementDatabase::CurrentStaySince(SubjectId s) const {
  auto it = current_.find(s);
  if (it == current_.end()) {
    return Status::NotFound("subject is not inside any location");
  }
  const auto& stays = stays_by_subject_.at(s);
  return stays.back().enter_time;
}

LocationId MovementDatabase::LocationAt(SubjectId s, Chronon t) const {
  auto it = stays_by_subject_.find(s);
  if (it != stays_by_subject_.end() && !it->second.empty()) {
    // Stays are sorted by enter_time; find the last stay starting <= t.
    const std::vector<Stay>& stays = it->second;
    auto pos = std::upper_bound(
        stays.begin(), stays.end(), t,
        [](Chronon v, const Stay& s2) { return v < s2.enter_time; });
    if (pos != stays.begin()) {
      --pos;
      // Inside iff t before the (exclusive) exit time; a subject who
      // moved at time x is in the new location at x. Some hot stay
      // started at or before t, and every sealed stay ended before the
      // first hot one began, so the hot candidate is the only one.
      if (t < pos->exit_time) return pos->location;
      return kInvalidLocation;
    }
  }
  // t precedes the subject's hot stays (or there are none): the answer,
  // if any, is sealed. Segments are oldest-first and a subject's stays
  // are time-ordered across them, so scan newest-first for the last
  // sealed stay starting <= t.
  for (auto seg_it = cold_.rbegin(); seg_it != cold_.rend(); ++seg_it) {
    const ColdSegment& seg = **seg_it;
    size_t first = 0;
    size_t last = 0;
    seg.SubjectRange(s, &first, &last);
    if (first == last) continue;
    auto begin = seg.enters.begin() + static_cast<ptrdiff_t>(first);
    auto end = seg.enters.begin() + static_cast<ptrdiff_t>(last);
    auto pos = std::upper_bound(begin, end, t);
    if (pos == begin) continue;  // All of this segment starts after t.
    size_t row = static_cast<size_t>(pos - seg.enters.begin()) - 1;
    if (t < seg.exits[row]) return seg.locations[row];
    return kInvalidLocation;
  }
  return kInvalidLocation;
}

std::vector<SubjectId> MovementDatabase::OccupantsAt(LocationId l,
                                                     Chronon t) const {
  std::vector<SubjectId> out;
  for (const auto& seg_ptr : cold_) {
    const ColdSegment& seg = *seg_ptr;
    if (seg.empty() || t < seg.min_enter || t >= seg.max_exit) continue;
    for (size_t i = 0; i < seg.rows(); ++i) {
      if (seg.locations[i] == l && seg.enters[i] <= t && t < seg.exits[i]) {
        out.push_back(seg.subjects[i]);
      }
    }
  }
  auto it = stays_by_location_.find(l);
  if (it != stays_by_location_.end()) {
    for (const Stay& stay : it->second) {
      if (stay.enter_time <= t && t < stay.exit_time) {
        out.push_back(stay.subject);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SubjectId> MovementDatabase::CurrentOccupants(
    LocationId l) const {
  std::vector<SubjectId> out;
  auto it = stays_by_location_.find(l);
  if (it == stays_by_location_.end()) return out;
  for (const Stay& stay : it->second) {
    if (stay.exit_time == kChrononMax) out.push_back(stay.subject);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Stay> MovementDatabase::StaysOf(SubjectId s) const {
  std::vector<Stay> out;
  for (const auto& seg_ptr : cold_) {
    const ColdSegment& seg = *seg_ptr;
    size_t first = 0;
    size_t last = 0;
    seg.SubjectRange(s, &first, &last);
    for (size_t i = first; i < last; ++i) out.push_back(seg.RowStay(i));
  }
  auto it = stays_by_subject_.find(s);
  if (it != stays_by_subject_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<Stay> MovementDatabase::StaysIn(LocationId l) const {
  if (cold_.empty()) return StaysInIndex(l);
  std::vector<Stay> out;
  for (const auto& seg_ptr : cold_) {
    const ColdSegment& seg = *seg_ptr;
    for (size_t i = 0; i < seg.rows(); ++i) {
      if (seg.locations[i] == l) out.push_back(seg.RowStay(i));
    }
  }
  const std::vector<Stay>& hot = StaysInIndex(l);
  out.insert(out.end(), hot.begin(), hot.end());
  // Arrival interleaving does not survive sealing; normalize exactly as
  // the sharded view does.
  std::sort(out.begin(), out.end(), [](const Stay& a, const Stay& b) {
    if (a.enter_time != b.enter_time) return a.enter_time < b.enter_time;
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.exit_time != b.exit_time) return a.exit_time < b.exit_time;
    return a.location < b.location;
  });
  return out;
}

const std::vector<Stay>& MovementDatabase::StaysInIndex(LocationId l) const {
  static const std::vector<Stay> kEmpty;
  auto it = stays_by_location_.find(l);
  return it == stays_by_location_.end() ? kEmpty : it->second;
}

std::vector<MovementDatabase::Contact> MovementDatabase::ContactsOf(
    SubjectId s, const TimeInterval& window, Chronon min_overlap) const {
  std::vector<Contact> out;
  for (const Stay& mine : StaysOf(s)) {
    AppendContactsForStay(mine, window, min_overlap, &out);
  }
  SortContacts(&out);
  return out;
}

void MovementDatabase::AppendContactsForStay(
    const Stay& mine, const TimeInterval& window, Chronon min_overlap,
    std::vector<Contact>* out) const {
  // Clip my stay once (the same arithmetic AppendStayContacts applies).
  Chronon my_start = std::max(mine.enter_time, window.start());
  Chronon my_end = std::min(
      mine.exit_time == kChrononMax ? kChrononMax
                                    : ChrononSub(mine.exit_time, 1),
      window.end());
  if (my_start > my_end) return;
  for (const auto& seg_ptr : cold_) {
    const ColdSegment& seg = *seg_ptr;
    if (seg.empty() || ChrononSub(seg.max_exit, 1) < my_start ||
        seg.min_enter > my_end) {
      continue;
    }
    for (size_t i = 0; i < seg.rows(); ++i) {
      if (seg.locations[i] != mine.location) continue;
      if (seg.subjects[i] == mine.subject) continue;
      // Sealed stays are always completed, so their inclusive end is
      // exit - 1 — the matcher's closed-overlap arithmetic, inlined over
      // the columns so no Stay objects materialize.
      Chronon their_end = ChrononSub(seg.exits[i], 1);
      Chronon ov_start = std::max(my_start, seg.enters[i]);
      Chronon ov_end = std::min(my_end, their_end);
      if (ov_start > ov_end) continue;
      Chronon overlap = ChrononAdd(ChrononSub(ov_end, ov_start), 1);
      if (overlap < min_overlap) continue;
      out->push_back(Contact{seg.subjects[i], mine.location, ov_start,
                             ov_end});
    }
  }
  AppendStayContacts(mine, window, min_overlap, StaysInIndex(mine.location),
                     out);
}

// --- Cold tier ---------------------------------------------------------------

std::shared_ptr<const ColdSegment> MovementDatabase::SealCompletedStays() {
  auto seg = std::make_shared<ColdSegment>();
  // Collect every completed stay (only a subject's last stay can be
  // open) and advance the sealed floors.
  std::vector<Stay> open_stays;
  for (auto& entry : stays_by_subject_) {
    std::vector<Stay>& stays = entry.second;
    size_t completed = stays.size();
    bool has_open = !stays.empty() && stays.back().exit_time == kChrononMax;
    if (has_open) --completed;
    for (size_t i = 0; i < completed; ++i) {
      const Stay& stay = stays[i];
      seg->subjects.push_back(stay.subject);
      seg->locations.push_back(stay.location);
      seg->enters.push_back(stay.enter_time);
      seg->exits.push_back(stay.exit_time);
    }
    if (completed > 0) {
      Chronon& floor = sealed_floor_[entry.first];
      floor = std::max(floor, stays[completed - 1].exit_time);
    }
    if (has_open) open_stays.push_back(stays.back());
  }
  if (seg->empty()) {
    // No completed stays: the hot tier is already minimal (every event
    // opens a still-open stay).
    return nullptr;
  }
  // Canonical column order: (subject, enter, exit, location).
  std::vector<size_t> order(seg->rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&seg](size_t a, size_t b) {
    if (seg->subjects[a] != seg->subjects[b]) {
      return seg->subjects[a] < seg->subjects[b];
    }
    if (seg->enters[a] != seg->enters[b]) {
      return seg->enters[a] < seg->enters[b];
    }
    if (seg->exits[a] != seg->exits[b]) return seg->exits[a] < seg->exits[b];
    return seg->locations[a] < seg->locations[b];
  });
  auto permute = [&order](auto& column) {
    auto sorted = column;
    for (size_t i = 0; i < order.size(); ++i) sorted[i] = column[order[i]];
    column.swap(sorted);
  };
  permute(seg->subjects);
  permute(seg->locations);
  permute(seg->enters);
  permute(seg->exits);
  seg->RecomputeBounds();

  // Shrink the hot tier: each open stay survives with one synthetic
  // opening event (from = kInvalidLocation) so replaying history()
  // rebuilds exactly this state. Deterministic (enter, subject) order.
  std::sort(open_stays.begin(), open_stays.end(),
            [](const Stay& a, const Stay& b) {
              if (a.enter_time != b.enter_time) {
                return a.enter_time < b.enter_time;
              }
              return a.subject < b.subject;
            });
  seg->sealed_events = history_.size() - open_stays.size();
  cold_events_ += seg->sealed_events;
  history_.clear();
  stays_by_subject_.clear();
  stays_by_location_.clear();
  for (const Stay& open : open_stays) {
    history_.push_back(MovementEvent{open.enter_time, open.subject,
                                     kInvalidLocation, open.location});
    stays_by_subject_[open.subject].push_back(open);
    stays_by_location_[open.location].push_back(open);
  }
  history_.shrink_to_fit();
  cold_.push_back(seg);
  return seg;
}

void MovementDatabase::AttachColdTier(
    std::vector<std::shared_ptr<const ColdSegment>> segments,
    uint64_t dropped_events) {
  cold_ = std::move(segments);
  cold_events_ = 0;
  dropped_events_ = dropped_events;
  sealed_floor_.clear();
  for (const auto& seg : cold_) {
    cold_events_ += seg->sealed_events;
    for (size_t i = 0; i < seg->rows(); ++i) {
      Chronon& floor = sealed_floor_[seg->subjects[i]];
      floor = std::max(floor, seg->exits[i]);
    }
  }
}

void MovementDatabase::ReplaceColdSegments(
    std::vector<std::shared_ptr<const ColdSegment>> segments,
    uint64_t dropped_events) {
  cold_ = std::move(segments);
  cold_events_ = 0;
  for (const auto& seg : cold_) cold_events_ += seg->sealed_events;
  dropped_events_ = dropped_events;
  // sealed_floor_ deliberately kept: retention drops data, not the
  // ordering contract.
}

size_t MovementDatabase::ColdBytes() const {
  size_t total = 0;
  for (const auto& seg : cold_) total += seg->ApproxBytes();
  return total;
}

void AppendStayContacts(const Stay& mine, const TimeInterval& window,
                        Chronon min_overlap,
                        const std::vector<Stay>& candidates,
                        std::vector<MovementDatabase::Contact>* out) {
  // Clip my stay to the query window. Stays are [enter, exit) but we
  // treat the closed overlap on chronons.
  Chronon my_start = std::max(mine.enter_time, window.start());
  Chronon my_end = std::min(
      mine.exit_time == kChrononMax ? kChrononMax
                                    : ChrononSub(mine.exit_time, 1),
      window.end());
  if (my_start > my_end) return;
  for (const Stay& theirs : candidates) {
    if (theirs.subject == mine.subject) continue;
    if (theirs.location != mine.location) continue;
    Chronon their_end = theirs.exit_time == kChrononMax
                            ? kChrononMax
                            : ChrononSub(theirs.exit_time, 1);
    Chronon ov_start = std::max(my_start, theirs.enter_time);
    Chronon ov_end = std::min(my_end, their_end);
    if (ov_start > ov_end) continue;
    Chronon overlap = ChrononAdd(ChrononSub(ov_end, ov_start), 1);
    if (overlap < min_overlap) continue;
    out->push_back(MovementDatabase::Contact{theirs.subject, mine.location,
                                             ov_start, ov_end});
  }
}

void SortContacts(std::vector<MovementDatabase::Contact>* contacts) {
  std::sort(contacts->begin(), contacts->end(),
            [](const MovementDatabase::Contact& a,
               const MovementDatabase::Contact& b) {
              if (a.overlap_start != b.overlap_start) {
                return a.overlap_start < b.overlap_start;
              }
              if (a.other != b.other) return a.other < b.other;
              if (a.location != b.location) return a.location < b.location;
              return a.overlap_end < b.overlap_end;
            });
}

}  // namespace ltam
