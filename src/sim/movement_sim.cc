// Copyright 2026 The LTAM Authors.

#include "sim/movement_sim.h"

#include <algorithm>

#include "runtime/access_runtime.h"
#include "util/logging.h"

namespace ltam {

namespace {

/// Picks a uniformly random element; kInvalidLocation when empty.
LocationId PickRandom(const std::vector<LocationId>& options, Rng* rng) {
  if (options.empty()) return kInvalidLocation;
  return options[rng->Uniform(options.size())];
}

}  // namespace

Scenario SimulateMovement(const MultilevelLocationGraph& graph,
                          const AuthorizationDatabase& db,
                          const std::vector<SubjectId>& subjects,
                          const SimOptions& options, Rng* rng) {
  LTAM_CHECK(rng != nullptr);
  Scenario out;
  const std::vector<LocationId> doors = graph.EntryPrimitives(graph.root());

  for (SubjectId s : subjects) {
    Chronon t = static_cast<Chronon>(rng->Uniform(options.step_gap) + 1);
    LocationId cur = kInvalidLocation;
    for (uint32_t step = 0; step < options.steps_per_subject; ++step) {
      // Candidate next locations: site doors from outside, flattened
      // neighbors from inside.
      std::vector<LocationId> candidates =
          cur == kInvalidLocation ? doors : graph.EffectiveNeighbors(cur);
      // Split into authorized and unauthorized at time t.
      std::vector<LocationId> authorized;
      std::vector<LocationId> unauthorized;
      for (LocationId c : candidates) {
        if (db.CheckAccess(t, s, c).granted) {
          authorized.push_back(c);
        } else {
          unauthorized.push_back(c);
        }
      }

      bool tailgate =
          !unauthorized.empty() && rng->Bernoulli(options.tailgate_prob);
      if (tailgate && cur != kInvalidLocation) {
        // Sneak into an unauthorized room behind someone else.
        LocationId next = PickRandom(unauthorized, rng);
        out.events.push_back(
            {SimEvent::Kind::kSneak, t, s, next});
        if (options.emit_observations) {
          out.events.push_back({SimEvent::Kind::kObserve, t, s, next});
        }
        out.ground_truth.push_back(
            {AlertType::kUnauthorizedPresence, t, s, next});
        cur = next;
      } else if (!authorized.empty()) {
        LocationId next = PickRandom(authorized, rng);
        out.events.push_back({SimEvent::Kind::kRequest, t, s, next});
        if (options.emit_observations) {
          out.events.push_back({SimEvent::Kind::kObserve, t, s, next});
        }
        // Overstay: wait beyond the exit window of the authorization that
        // granted this entry before the next step.
        Decision d = db.CheckAccess(t, s, next);
        cur = next;
        if (d.granted && rng->Bernoulli(options.overstay_prob)) {
          const TimeInterval& exit_window =
              db.record(d.auth).auth.exit_duration();
          if (exit_window.end() != kChrononMax) {
            Chronon linger = ChrononAdd(exit_window.end(),
                                        1 + static_cast<Chronon>(
                                                rng->Uniform(5)));
            if (linger > t) {
              out.ground_truth.push_back(
                  {AlertType::kOverstay, linger, s, next});
              if (options.emit_ticks) {
                out.events.push_back(
                    {SimEvent::Kind::kTick, linger, s, next});
              }
              t = linger;
            }
          }
        }
      } else if (cur != kInvalidLocation) {
        // Nowhere authorized to go: leave the site if standing at a door,
        // otherwise wait in place.
        if (std::find(doors.begin(), doors.end(), cur) != doors.end()) {
          out.events.push_back(
              {SimEvent::Kind::kExit, t, s, kInvalidLocation});
          cur = kInvalidLocation;
        }
      }
      t = ChrononAdd(t, options.step_gap);
    }
    if (cur != kInvalidLocation) {
      out.events.push_back({SimEvent::Kind::kExit, t, s, kInvalidLocation});
    }
  }

  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const SimEvent& a, const SimEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     // Requests before observations before ticks at equal
                     // times, so engines see causes before effects.
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  std::sort(out.ground_truth.begin(), out.ground_truth.end(),
            [](const GroundTruthViolation& a, const GroundTruthViolation& b) {
              return a.time < b.time;
            });
  return out;
}

void ReplayOnEngine(const Scenario& scenario, AccessControlEngine* engine) {
  LTAM_CHECK(engine != nullptr);
  for (const SimEvent& ev : scenario.events) {
    switch (ev.kind) {
      case SimEvent::Kind::kRequest:
        engine->RequestEntry(ev.time, ev.subject, ev.location);
        break;
      case SimEvent::Kind::kSneak:
        // A sneak is invisible to the engine at the door; the subsequent
        // observation (if tracking is on) reveals it.
        break;
      case SimEvent::Kind::kObserve:
        engine->ObservePresence(ev.time, ev.subject, ev.location);
        break;
      case SimEvent::Kind::kExit: {
        Status st = engine->RequestExit(ev.time, ev.subject);
        (void)st;  // Exits of subjects the engine never admitted fail;
                   // that mismatch is part of the measurement.
        break;
      }
      case SimEvent::Kind::kTick:
        engine->Tick(ev.time);
        break;
    }
  }
}

std::vector<Alert> ReplayOnRuntime(const Scenario& scenario,
                                   AccessRuntime* runtime) {
  LTAM_CHECK(runtime != nullptr);
  for (const SimEvent& ev : scenario.events) {
    switch (ev.kind) {
      case SimEvent::Kind::kRequest: {
        Result<Decision> d =
            runtime->Apply(AccessEvent::Entry(ev.time, ev.subject,
                                              ev.location));
        (void)d;  // Denials are part of the measurement.
        break;
      }
      case SimEvent::Kind::kSneak:
        // Invisible at the door; the subsequent observation (if tracking
        // is on) reveals it.
        break;
      case SimEvent::Kind::kObserve: {
        Result<Decision> d = runtime->Apply(
            AccessEvent::Observe(ev.time, ev.subject, ev.location));
        (void)d;
        break;
      }
      case SimEvent::Kind::kExit: {
        Result<Decision> d =
            runtime->Apply(AccessEvent::Exit(ev.time, ev.subject));
        (void)d;  // Exits of subjects never admitted are refused; that
                  // mismatch is part of the measurement.
        break;
      }
      case SimEvent::Kind::kTick: {
        Status ticked = runtime->Tick(ev.time);
        (void)ticked;
        break;
      }
    }
  }
  return runtime->DrainAlerts();
}

void ReplayOnBaseline(const Scenario& scenario,
                      CardReaderBaseline* baseline) {
  LTAM_CHECK(baseline != nullptr);
  for (const SimEvent& ev : scenario.events) {
    switch (ev.kind) {
      case SimEvent::Kind::kRequest:
        baseline->RequestEntry(ev.time, ev.subject, ev.location);
        break;
      case SimEvent::Kind::kSneak:
        break;  // By definition invisible to card readers.
      case SimEvent::Kind::kObserve:
        baseline->ObservePresence(ev.time, ev.subject, ev.location);
        break;
      case SimEvent::Kind::kExit: {
        Status st = baseline->RequestExit(ev.time, ev.subject);
        (void)st;
        break;
      }
      case SimEvent::Kind::kTick:
        baseline->Tick(ev.time);
        break;
    }
  }
}

DetectionStats ScoreDetections(const Scenario& scenario,
                               const std::vector<Alert>& alerts,
                               Chronon slack) {
  DetectionStats stats;
  stats.ground_truth = scenario.ground_truth.size();
  std::vector<char> alert_used(alerts.size(), 0);
  auto compatible = [](AlertType truth, AlertType alert) {
    if (truth == AlertType::kUnauthorizedPresence) {
      return alert == AlertType::kUnauthorizedPresence ||
             alert == AlertType::kImpossibleMovement;
    }
    return truth == alert;
  };
  for (const GroundTruthViolation& gt : scenario.ground_truth) {
    for (size_t i = 0; i < alerts.size(); ++i) {
      if (alert_used[i]) continue;
      const Alert& a = alerts[i];
      if (a.subject != gt.subject) continue;
      if (!compatible(gt.type, a.type)) continue;
      Chronon dt = a.time > gt.time ? a.time - gt.time : gt.time - a.time;
      if (dt > slack) continue;
      alert_used[i] = 1;
      ++stats.detected;
      break;
    }
  }
  for (size_t i = 0; i < alerts.size(); ++i) {
    if (alert_used[i]) continue;
    // Denied requests are expected operation, not false alarms.
    if (alerts[i].type == AlertType::kAccessDenied) continue;
    ++stats.false_alarms;
  }
  return stats;
}

}  // namespace ltam
