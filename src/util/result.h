// Copyright 2026 The LTAM Authors.
// Result<T>: a value or an error Status (Arrow-style).

#ifndef LTAM_UTIL_RESULT_H_
#define LTAM_UTIL_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ltam {

/// Holds either a successfully produced `T` or an error `Status`.
///
/// Typical use:
/// ```
/// Result<LocationId> r = graph.Find("CAIS");
/// if (!r.ok()) return r.status();
/// LocationId id = *r;
/// ```
/// Or, inside a function returning Status/Result:
/// ```
/// LTAM_ASSIGN_OR_RETURN(LocationId id, graph.Find("CAIS"));
/// ```
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      Die("Result constructed from OK status without a value");
    }
  }

  /// Constructs a success result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status, or OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; abort with the carried status when called on an
  /// error result (in every build mode — access-control code must not
  /// limp on with garbage).
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  static void Die(const char* message) {
    std::fprintf(stderr, "Result: %s\n", message);
    std::abort();
  }

  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace ltam

#endif  // LTAM_UTIL_RESULT_H_
