// Copyright 2026 The LTAM Authors.
// Keeps README.md honest: the quickstart snippet, compiled and executed
// as written (modulo assertions replacing the comments).

#include <gtest/gtest.h>

#include "core/auth_database.h"
#include "engine/access_control_engine.h"
#include "graph/multilevel_graph.h"
#include "test_util.h"

namespace ltam {
namespace {

TEST(ReadmeSnippetTest, QuickstartCompilesAndBehaves) {
  // Layout (Definition 1): two rooms, CAIS is the entry location.
  MultilevelLocationGraph graph("Lab");
  LocationId cais = graph.AddPrimitive("CAIS", graph.root()).ValueOrDie();
  LocationId chipes = graph.AddPrimitive("CHIPES", graph.root()).ValueOrDie();
  ASSERT_OK(graph.AddEdge(cais, chipes));
  ASSERT_OK(graph.SetEntry(cais));

  // Subjects and a location-temporal authorization (Definition 4).
  UserProfileDatabase profiles;
  SubjectId alice = profiles.AddSubject("Alice").ValueOrDie();
  AuthorizationDatabase auth_db;
  auth_db.Add(LocationTemporalAuthorization::Make(
                  TimeInterval(10, 20), TimeInterval(10, 50),
                  LocationAuthorization{alice, cais}, 2)
                  .ValueOrDie());

  // Enforcement (Figure 3).
  MovementDatabase movements;
  AccessControlEngine engine(&graph, &auth_db, &movements, &profiles);
  Decision d = engine.RequestEntry(/*t=*/10, alice, cais);
  EXPECT_TRUE(d.granted);  // "granted"

  engine.Tick(/*t=*/60);  // "Alice overstayed -> kOverstay alert"
  bool overstay = false;
  for (const Alert& alert : engine.alerts()) {
    if (alert.type == AlertType::kOverstay) overstay = true;
  }
  EXPECT_TRUE(overstay);
}

}  // namespace
}  // namespace ltam
