// Copyright 2026 The LTAM Authors.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.h"

namespace ltam {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ltam_wal_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name() +
            ".log";
    std::remove(path_.c_str());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(WalTest, AppendAndReplay) {
  {
    ASSERT_OK_AND_ASSIGN(WalWriter wal, WalWriter::Open(path_));
    ASSERT_OK(wal.Append({"auth", {"1", "[5, 20]"}}));
    ASSERT_OK(wal.Append({"move", {"10", "0", "5"}}));
    ASSERT_OK(wal.Sync());
    EXPECT_EQ(wal.appended(), 2u);
  }
  std::vector<Record> replayed;
  ASSERT_OK(ReplayWal(path_, [&replayed](const Record& rec) {
    replayed.push_back(rec);
    return Status::OK();
  }));
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].type, "auth");
  EXPECT_EQ(replayed[1].type, "move");
  EXPECT_EQ(replayed[1].fields, (std::vector<std::string>{"10", "0", "5"}));
}

TEST_F(WalTest, AppendIsDurableAcrossReopen) {
  {
    ASSERT_OK_AND_ASSIGN(WalWriter wal, WalWriter::Open(path_));
    ASSERT_OK(wal.Append({"first", {}}));
  }
  {
    ASSERT_OK_AND_ASSIGN(WalWriter wal, WalWriter::Open(path_));
    ASSERT_OK(wal.Append({"second", {}}));
  }
  size_t count = 0;
  ASSERT_OK(ReplayWal(path_, [&count](const Record&) {
    ++count;
    return Status::OK();
  }));
  EXPECT_EQ(count, 2u);
}

TEST_F(WalTest, TornFinalLineIgnored) {
  {
    ASSERT_OK_AND_ASSIGN(WalWriter wal, WalWriter::Open(path_));
    ASSERT_OK(wal.Append({"good", {"1"}}));
  }
  {
    // Simulate a crash mid-append: no trailing newline.
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << "torn\trecord-without-newline";
  }
  std::vector<std::string> types;
  ASSERT_OK(ReplayWal(path_, [&types](const Record& rec) {
    types.push_back(rec.type);
    return Status::OK();
  }));
  EXPECT_EQ(types, std::vector<std::string>{"good"});
}

TEST_F(WalTest, ReplayPropagatesApplyErrors) {
  {
    ASSERT_OK_AND_ASSIGN(WalWriter wal, WalWriter::Open(path_));
    ASSERT_OK(wal.Append({"x", {}}));
  }
  Status st = ReplayWal(path_, [](const Record&) {
    return Status::Internal("apply failed");
  });
  EXPECT_TRUE(st.IsInternal());
}

TEST_F(WalTest, ReplayMissingFileFails) {
  EXPECT_TRUE(ReplayWal("/nonexistent/dir/wal.log", [](const Record&) {
                return Status::OK();
              }).IsIOError());
}

TEST_F(WalTest, OpenBadPathFails) {
  EXPECT_TRUE(WalWriter::Open("/nonexistent/dir/wal.log").status().IsIOError());
}

}  // namespace
}  // namespace ltam
