// Copyright 2026 The LTAM Authors.
// Structural validation of multilevel location graphs.
//
// Definition 1 & 2 requirements checked here:
//  - every composite contains at least one location;
//  - every composite designates at least one entry location ("Each
//    location graph or multilevel location graph must have at least one
//    location designated as entry location");
//  - each composite's sibling graph is connected ("Location graphs are
//    connected graphs");
//  - composite entry designations are *usable*: an entry that is itself
//    composite must recursively expand to at least one primitive door.
// Disjointness of nested graphs and sibling-only edges are enforced by
// construction.

#include <deque>
#include <unordered_set>

#include "graph/multilevel_graph.h"

namespace ltam {

Status MultilevelLocationGraph::Validate() const {
  for (const Location& loc : locations_) {
    if (!loc.IsComposite()) continue;
    if (loc.children.empty()) {
      return Status::FailedPrecondition("composite '" + loc.name +
                                        "' contains no locations");
    }
    // Entry requirement.
    std::vector<LocationId> entries = EntryLocations(loc.id);
    if (entries.empty()) {
      return Status::FailedPrecondition(
          "composite '" + loc.name + "' has no entry location");
    }
    for (LocationId e : entries) {
      if (EntryPrimitives(e).empty()) {
        return Status::FailedPrecondition(
            "entry location '" + locations_[e].name + "' of '" + loc.name +
            "' expands to no primitive door");
      }
    }
    // Connectedness of the sibling graph.
    if (loc.children.size() > 1) {
      std::unordered_set<LocationId> members(loc.children.begin(),
                                             loc.children.end());
      std::unordered_set<LocationId> seen;
      std::deque<LocationId> queue{loc.children.front()};
      seen.insert(loc.children.front());
      while (!queue.empty()) {
        LocationId cur = queue.front();
        queue.pop_front();
        for (LocationId nxt : locations_[cur].sibling_adj) {
          if (members.count(nxt) == 0 || seen.count(nxt) > 0) continue;
          seen.insert(nxt);
          queue.push_back(nxt);
        }
      }
      if (seen.size() != loc.children.size()) {
        return Status::FailedPrecondition(
            "the location graph of composite '" + loc.name +
            "' is not connected");
      }
    }
  }
  return Status::OK();
}

}  // namespace ltam
