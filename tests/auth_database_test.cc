// Copyright 2026 The LTAM Authors.
// Tests for the authorization database, including the exact Section 5
// grant/deny timeline (A1/A2, Alice/Bob).

#include "core/auth_database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

LocationTemporalAuthorization MakeAuth(SubjectId s, LocationId l, Chronon es,
                                       Chronon ee, Chronon xs, Chronon xe,
                                       int64_t n = kUnlimitedEntries) {
  return LocationTemporalAuthorization::Make(TimeInterval(es, ee),
                                             TimeInterval(xs, xe),
                                             LocationAuthorization{s, l}, n)
      .ValueOrDie();
}

TEST(AuthDatabaseTest, AddAndLookup) {
  AuthorizationDatabase db;
  AuthId a1 = db.Add(MakeAuth(0, 10, 0, 100, 0, 200));
  AuthId a2 = db.Add(MakeAuth(0, 11, 0, 100, 0, 200));
  AuthId a3 = db.Add(MakeAuth(1, 10, 0, 100, 0, 200));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.active_size(), 3u);
  EXPECT_EQ(db.ForSubjectLocation(0, 10), std::vector<AuthId>{a1});
  EXPECT_EQ(db.ForSubject(0), (std::vector<AuthId>{a1, a2}));
  EXPECT_EQ(db.ForLocation(10), (std::vector<AuthId>{a1, a3}));
  EXPECT_EQ(db.Active(), (std::vector<AuthId>{a1, a2, a3}));
  EXPECT_TRUE(db.ForSubjectLocation(9, 9).empty());
}

TEST(AuthDatabaseTest, RevokeHidesFromQueries) {
  AuthorizationDatabase db;
  AuthId a1 = db.Add(MakeAuth(0, 10, 0, 100, 0, 200));
  ASSERT_OK(db.Revoke(a1));
  EXPECT_TRUE(db.ForSubjectLocation(0, 10).empty());
  EXPECT_EQ(db.active_size(), 0u);
  EXPECT_TRUE(db.record(a1).revoked);
  // Idempotent; unknown ids rejected.
  ASSERT_OK(db.Revoke(a1));
  EXPECT_TRUE(db.Revoke(99).IsNotFound());
  // Revoked auths deny.
  EXPECT_FALSE(db.CheckAccess(50, 0, 10).granted);
}

TEST(AuthDatabaseTest, DerivedProvenanceAndBulkRevoke) {
  AuthorizationDatabase db;
  AuthId base = db.Add(MakeAuth(0, 10, 0, 100, 0, 200));
  AuthId d1 = db.AddDerived(MakeAuth(1, 10, 0, 100, 0, 200), 7);
  AuthId d2 = db.AddDerived(MakeAuth(2, 10, 0, 100, 0, 200), 7);
  AuthId d3 = db.AddDerived(MakeAuth(3, 10, 0, 100, 0, 200), 8);
  EXPECT_EQ(db.record(d1).origin, AuthOrigin::kDerived);
  EXPECT_EQ(db.record(d1).source_rule, 7u);
  EXPECT_EQ(db.record(base).origin, AuthOrigin::kExplicit);
  EXPECT_EQ(db.RevokeDerivedBy(7), 2u);
  EXPECT_TRUE(db.record(d1).revoked);
  EXPECT_TRUE(db.record(d2).revoked);
  EXPECT_FALSE(db.record(d3).revoked);
  // Second bulk revoke finds nothing.
  EXPECT_EQ(db.RevokeDerivedBy(7), 0u);
  EXPECT_EQ(db.RevokeDerivedBy(999), 0u);
}

TEST(AuthDatabaseTest, Definition7EntryWindow) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 10, 10, 20, 10, 50, 2));
  EXPECT_FALSE(db.CheckAccess(9, 0, 10).granted);
  EXPECT_EQ(db.CheckAccess(9, 0, 10).reason,
            DenyReason::kOutsideEntryDuration);
  EXPECT_TRUE(db.CheckAccess(10, 0, 10).granted);
  EXPECT_TRUE(db.CheckAccess(20, 0, 10).granted);
  EXPECT_FALSE(db.CheckAccess(21, 0, 10).granted);
  EXPECT_EQ(db.CheckAccess(50, 1, 10).reason, DenyReason::kNoAuthorization);
}

TEST(AuthDatabaseTest, Definition7EntryCountLedger) {
  AuthorizationDatabase db;
  AuthId a = db.Add(MakeAuth(0, 10, 0, 100, 0, 200, 2));
  Decision d1 = db.CheckAndRecordAccess(10, 0, 10);
  EXPECT_TRUE(d1.granted);
  EXPECT_EQ(d1.auth, a);
  EXPECT_EQ(db.record(a).entries_used, 1);
  EXPECT_TRUE(db.CheckAndRecordAccess(20, 0, 10).granted);
  // Third entry exceeds n=2.
  Decision d3 = db.CheckAndRecordAccess(30, 0, 10);
  EXPECT_FALSE(d3.granted);
  EXPECT_EQ(d3.reason, DenyReason::kEntriesExhausted);
}

TEST(AuthDatabaseTest, ExhaustedFallsBackToSecondAuthorization) {
  AuthorizationDatabase db;
  AuthId first = db.Add(MakeAuth(0, 10, 0, 100, 0, 200, 1));
  AuthId second = db.Add(MakeAuth(0, 10, 50, 150, 50, 250, 1));
  EXPECT_EQ(db.CheckAndRecordAccess(60, 0, 10).auth, first);
  // First is exhausted; the overlapping second should now grant.
  Decision d = db.CheckAndRecordAccess(70, 0, 10);
  EXPECT_TRUE(d.granted);
  EXPECT_EQ(d.auth, second);
  EXPECT_FALSE(db.CheckAccess(80, 0, 10).granted);
}

TEST(AuthDatabaseTest, RecordEntryGuards) {
  AuthorizationDatabase db;
  AuthId a = db.Add(MakeAuth(0, 10, 0, 100, 0, 200, 1));
  EXPECT_TRUE(db.RecordEntry(99).IsNotFound());
  ASSERT_OK(db.RecordEntry(a));
  EXPECT_TRUE(db.RecordEntry(a).IsFailedPrecondition());  // Exhausted.
  AuthId b = db.Add(MakeAuth(0, 11, 0, 100, 0, 200));
  ASSERT_OK(db.Revoke(b));
  EXPECT_TRUE(db.RecordEntry(b).IsFailedPrecondition());  // Revoked.
}

TEST(AuthDatabaseTest, Section5Timeline) {
  // A1: ([10,20],[10,50],(Alice,CAIS),2); A2: ([5,35],[20,100],(Bob,
  // CHIPES),1).
  AuthorizationDatabase db;
  const SubjectId alice = 0;
  const SubjectId bob = 1;
  const LocationId cais = 10;
  const LocationId chipes = 11;
  db.Add(MakeAuth(alice, cais, 10, 20, 10, 50, 2));
  db.Add(MakeAuth(bob, chipes, 5, 35, 20, 100, 1));

  // t=10: (10, Alice, CAIS) granted according to A1.
  EXPECT_TRUE(db.CheckAndRecordAccess(10, alice, cais).granted);
  // t=15: (15, Bob, CAIS) not authorized: no authorization for Bob@CAIS.
  Decision d = db.CheckAccess(15, bob, cais);
  EXPECT_FALSE(d.granted);
  EXPECT_EQ(d.reason, DenyReason::kNoAuthorization);
  // t=16: (16, Bob, CHIPES) authorized based on A2.
  EXPECT_TRUE(db.CheckAndRecordAccess(16, bob, chipes).granted);
  // t=20: Bob leaves CHIPES (no database change needed here).
  // t=30: (30, Bob, CHIPES) not authorized: only one entry allowed.
  Decision d30 = db.CheckAccess(30, bob, chipes);
  EXPECT_FALSE(d30.granted);
  EXPECT_EQ(d30.reason, DenyReason::kEntriesExhausted);
}

TEST(AuthDatabaseTest, DurationAggregates) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 10, 2, 35, 20, 50));
  db.Add(MakeAuth(0, 10, 40, 60, 55, 80));
  EXPECT_EQ(db.EntryDurations(0, 10).ToString(), "{[2, 35], [40, 60]}");
  EXPECT_EQ(db.ExitDurations(0, 10).ToString(), "{[20, 50], [55, 80]}");
  EXPECT_EQ(db.GrantDurations(0, 10, TimeInterval(30, 45)).ToString(),
            "{[30, 35], [40, 45]}");
  EXPECT_TRUE(db.EntryDurations(0, 99).empty());
}

TEST(AuthDatabaseTest, UnlimitedEntriesNeverExhaust) {
  AuthorizationDatabase db;
  db.Add(MakeAuth(0, 10, 0, 100, 0, 200));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(db.CheckAndRecordAccess(50, 0, 10).granted);
  }
}

}  // namespace
}  // namespace ltam
