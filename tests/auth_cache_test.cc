// Copyright 2026 The LTAM Authors.
// Regression tests for the derived-authorization candidate cache in
// AuthorizationDatabase: every mutation (explicit add, revoke, rule
// re-derivation) must invalidate cached candidate lists so a stale grant
// is never served, and the incremental inaccessible analyzer must
// recompute exactly the subjects whose authorizations changed.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/auth_database.h"
#include "core/inaccessible.h"
#include "core/rules/rule_engine.h"
#include "core/rules/subject_op.h"
#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

using testing_util::Fig4Fixture;

LocationTemporalAuthorization MakeAuth(SubjectId s, LocationId l, Chronon es,
                                       Chronon ee, Chronon xs, Chronon xe,
                                       int64_t n = kUnlimitedEntries) {
  return LocationTemporalAuthorization::Make(TimeInterval(es, ee),
                                             TimeInterval(xs, xe),
                                             LocationAuthorization{s, l}, n)
      .ValueOrDie();
}

TEST(AuthCacheTest, RepeatLookupsHitTheCache) {
  Fig4Fixture f = Fig4Fixture::Make();
  uint64_t misses_before = f.auth_db.cache_misses();
  EXPECT_TRUE(f.auth_db.CheckAccess(10, f.alice, f.a).granted);
  uint64_t misses_after_first = f.auth_db.cache_misses();
  EXPECT_GT(misses_after_first, misses_before);

  uint64_t hits_before = f.auth_db.cache_hits();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(f.auth_db.CheckAccess(10, f.alice, f.a).granted);
  }
  EXPECT_EQ(f.auth_db.cache_misses(), misses_after_first)
      << "repeat lookups must not re-derive";
  EXPECT_GE(f.auth_db.cache_hits(), hits_before + 10);
}

TEST(AuthCacheTest, RevocationInvalidatesCachedGrant) {
  Fig4Fixture f = Fig4Fixture::Make();
  // Warm the cache with a granted decision.
  Decision before = f.auth_db.CheckAccess(10, f.alice, f.a);
  ASSERT_TRUE(before.granted);

  // Revoke the very authorization that granted; the cached candidate
  // list must not serve the stale grant.
  ASSERT_OK(f.auth_db.Revoke(before.auth));
  Decision after = f.auth_db.CheckAccess(10, f.alice, f.a);
  EXPECT_FALSE(after.granted);
  EXPECT_EQ(after.reason, DenyReason::kNoAuthorization);
}

TEST(AuthCacheTest, AddInvalidatesCachedDenial) {
  Fig4Fixture f = Fig4Fixture::Make();
  SubjectId bob = f.profiles.AddSubject("Bob").ValueOrDie();
  // Warm the cache with a denial for Bob (no authorizations yet).
  EXPECT_FALSE(f.auth_db.CheckAccess(10, bob, f.a).granted);

  // Adding an authorization must be visible immediately.
  f.auth_db.Add(MakeAuth(bob, f.a, 0, 100, 0, 200));
  EXPECT_TRUE(f.auth_db.CheckAccess(10, bob, f.a).granted);
}

TEST(AuthCacheTest, LedgerExhaustionNeedsNoInvalidation) {
  Fig4Fixture f = Fig4Fixture::Make();
  SubjectId bob = f.profiles.AddSubject("Bob").ValueOrDie();
  AuthId id = f.auth_db.Add(MakeAuth(bob, f.a, 0, 100, 0, 200, /*n=*/2));

  // Two grants allowed; ledger state is read live, not cached.
  EXPECT_TRUE(f.auth_db.CheckAndRecordAccess(5, bob, f.a).granted);
  EXPECT_TRUE(f.auth_db.CheckAndRecordAccess(6, bob, f.a).granted);
  Decision third = f.auth_db.CheckAccess(7, bob, f.a);
  EXPECT_FALSE(third.granted);
  EXPECT_EQ(third.reason, DenyReason::kEntriesExhausted);
  EXPECT_EQ(f.auth_db.record(id).entries_used, 2);
}

TEST(AuthCacheTest, RuleRederivationInvalidatesDerivedGrants) {
  Fig4Fixture f = Fig4Fixture::Make();
  SubjectId bob = f.profiles.AddSubject("Bob").ValueOrDie();
  ASSERT_OK(f.profiles.SetSupervisor(f.alice, bob));

  // Base authorization for Alice at B; rule derives the same for her
  // supervisor (Example 1's shape).
  AuthId base = f.auth_db.Add(MakeAuth(f.alice, f.b, 0, 100, 0, 200));
  RuleEngine rules(&f.auth_db, &f.profiles, &f.graph);
  AuthorizationRule rule;
  rule.base = base;
  rule.op_subject = std::make_shared<SupervisorOfOp>();
  RuleId rid = rules.AddRule(rule).ValueOrDie();
  ASSERT_OK(rules.DeriveRule(rid).status());

  // Warm the cache: Bob (Alice's supervisor) is granted via derivation.
  ASSERT_TRUE(f.auth_db.CheckAccess(10, bob, f.b).granted);

  // Reassign the supervisor and re-derive: Bob's derived authorization is
  // revoked, Carol's is created. The cached grant for Bob must die.
  SubjectId carol = f.profiles.AddSubject("Carol").ValueOrDie();
  ASSERT_OK(f.profiles.SetSupervisor(f.alice, carol));
  ASSERT_OK(rules.DeriveRule(rid).status());

  EXPECT_FALSE(f.auth_db.CheckAccess(10, bob, f.b).granted)
      << "stale derived grant served from cache";
  EXPECT_TRUE(f.auth_db.CheckAccess(10, carol, f.b).granted);
}

TEST(AuthCacheTest, SubjectVersionTracksOnlyTouchedSubjects) {
  Fig4Fixture f = Fig4Fixture::Make();
  SubjectId bob = f.profiles.AddSubject("Bob").ValueOrDie();
  uint64_t alice_v = f.auth_db.SubjectVersion(f.alice);
  uint64_t bob_v = f.auth_db.SubjectVersion(bob);

  f.auth_db.Add(MakeAuth(bob, f.a, 0, 10, 0, 20));
  EXPECT_EQ(f.auth_db.SubjectVersion(f.alice), alice_v);
  EXPECT_GT(f.auth_db.SubjectVersion(bob), bob_v);

  // Revoking one of Alice's records bumps only Alice.
  bob_v = f.auth_db.SubjectVersion(bob);
  ASSERT_OK(f.auth_db.Revoke(f.auth_db.ForSubject(f.alice)[0]));
  EXPECT_GT(f.auth_db.SubjectVersion(f.alice), alice_v);
  EXPECT_EQ(f.auth_db.SubjectVersion(bob), bob_v);
}

TEST(AuthCacheTest, MoveAndCopyStartWithColdCacheButFreshData) {
  Fig4Fixture f = Fig4Fixture::Make();
  ASSERT_TRUE(f.auth_db.CheckAccess(10, f.alice, f.a).granted);

  AuthorizationDatabase copy = f.auth_db;
  EXPECT_TRUE(copy.CheckAccess(10, f.alice, f.a).granted);
  // The copy answers mutations independently of the original's cache.
  ASSERT_OK(copy.Revoke(copy.ForSubjectLocation(f.alice, f.a)[0]));
  EXPECT_FALSE(copy.CheckAccess(10, f.alice, f.a).granted);
  EXPECT_TRUE(f.auth_db.CheckAccess(10, f.alice, f.a).granted);

  // Warm the source's cache, then move it out: the moved-from database
  // must answer reads from its (now empty) indexes, never from stale
  // cache entries pointing at records it no longer holds.
  ASSERT_TRUE(f.auth_db.CheckAccess(10, f.alice, f.a).granted);
  AuthorizationDatabase moved = std::move(f.auth_db);
  EXPECT_TRUE(moved.CheckAccess(10, f.alice, f.a).granted);
  Decision from_husk = f.auth_db.CheckAccess(10, f.alice, f.a);
  EXPECT_FALSE(from_husk.granted);
  EXPECT_EQ(from_husk.reason, DenyReason::kNoAuthorization);
  EXPECT_EQ(f.auth_db.size(), 0u);
}

TEST(IncrementalInaccessibleTest, RecomputesOnlyChangedSubjects) {
  Fig4Fixture f = Fig4Fixture::Make();
  SubjectId bob = f.profiles.AddSubject("Bob").ValueOrDie();
  f.auth_db.Add(MakeAuth(bob, f.a, 2, 35, 20, 50));

  IncrementalInaccessibleAnalyzer analyzer(&f.graph, f.graph.root(),
                                           &f.auth_db);
  std::vector<SubjectId> everyone = {f.alice, bob};

  auto first = analyzer.Refresh(everyone).ValueOrDie();
  EXPECT_EQ(first.recomputed, 2u);
  EXPECT_EQ(first.reused, 0u);

  // Nothing changed: everything reused.
  auto second = analyzer.Refresh(everyone).ValueOrDie();
  EXPECT_EQ(second.recomputed, 0u);
  EXPECT_EQ(second.reused, 2u);

  // Touch only Bob: exactly one recompute.
  f.auth_db.Add(MakeAuth(bob, f.b, 40, 60, 55, 80));
  auto third = analyzer.Refresh(everyone).ValueOrDie();
  EXPECT_EQ(third.recomputed, 1u);
  EXPECT_EQ(third.reused, 1u);

  // And the recomputed result reflects the new authorization: B becomes
  // reachable for Bob (A's departure window overlaps B's entry window).
  const InaccessibleResult* bob_result = analyzer.Analyze(bob).ValueOrDie();
  EXPECT_FALSE(bob_result->IsInaccessible(f.b));
}

TEST(IncrementalInaccessibleTest, MatchesFromScratchAnalysis) {
  Fig4Fixture f = Fig4Fixture::Make();
  IncrementalInaccessibleAnalyzer analyzer(&f.graph, f.graph.root(),
                                           &f.auth_db);

  const InaccessibleResult* cached = analyzer.Analyze(f.alice).ValueOrDie();
  InaccessibleResult fresh =
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db)
          .ValueOrDie();
  EXPECT_EQ(cached->inaccessible, fresh.inaccessible);

  // Revoke everything for Alice; the incremental answer must flip to
  // all-inaccessible, same as from scratch.
  for (AuthId id : f.auth_db.ForSubject(f.alice)) {
    ASSERT_OK(f.auth_db.Revoke(id));
  }
  cached = analyzer.Analyze(f.alice).ValueOrDie();
  fresh = FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db)
              .ValueOrDie();
  EXPECT_EQ(cached->inaccessible, fresh.inaccessible);
  EXPECT_EQ(cached->inaccessible.size(), cached->analyzed.size());

  // InvalidateAll drops the cache; next Analyze recomputes.
  analyzer.InvalidateAll();
  EXPECT_EQ(analyzer.cached_subjects(), 0u);
  EXPECT_EQ(analyzer.Analyze(f.alice).ValueOrDie()->inaccessible,
            fresh.inaccessible);
}

}  // namespace
}  // namespace ltam
