// Copyright 2026 The LTAM Authors.
// The authorization database (Figure 3) with the Definition-7 decision
// procedure and the per-authorization entry-count ledger.

#ifndef LTAM_CORE_AUTH_DATABASE_H_
#define LTAM_CORE_AUTH_DATABASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/authorization.h"
#include "core/decision.h"
#include "time/interval_set.h"
#include "util/result.h"

namespace ltam {

/// Where an authorization record came from.
enum class AuthOrigin : uint8_t {
  kExplicit = 0,  ///< Created directly by a security officer.
  kDerived = 1,   ///< Produced by an authorization rule (Section 4).
};

/// A stored authorization with provenance and lifecycle state.
struct AuthRecord {
  AuthId id = kInvalidAuth;
  LocationTemporalAuthorization auth;
  AuthOrigin origin = AuthOrigin::kExplicit;
  /// Rule that derived this record; kInvalidRule for explicit records.
  RuleId source_rule = kInvalidRule;
  /// Revoked records are kept for audit but ignored by every query.
  bool revoked = false;
  /// Number of entries exercised against this authorization.
  int64_t entries_used = 0;
};

/// Indexed in-memory store of location-temporal authorizations.
///
/// Supports the access-control engine (Definition 7 checks + entry
/// ledger), the rule engine (provenance-tracked derived records with bulk
/// revocation), and the reachability analysis of Section 6 (per-location
/// authorization scans).
class AuthorizationDatabase {
 public:
  AuthorizationDatabase() = default;

  // --- Mutation ------------------------------------------------------------

  /// Adds an explicit authorization; returns its id.
  AuthId Add(const LocationTemporalAuthorization& auth);

  /// Adds a rule-derived authorization; returns its id.
  AuthId AddDerived(const LocationTemporalAuthorization& auth, RuleId rule);

  /// Marks a record revoked. Idempotent.
  Status Revoke(AuthId id);

  /// Revokes every active record derived by `rule`; returns the count.
  size_t RevokeDerivedBy(RuleId rule);

  /// Records that the subject exercised one entry under `id`
  /// (FailedPrecondition when the record is revoked or exhausted).
  Status RecordEntry(AuthId id);

  // --- Lookup --------------------------------------------------------------

  /// True iff `id` denotes an existing (possibly revoked) record.
  bool Exists(AuthId id) const { return id < records_.size(); }

  /// Borrowing accessor; `id` must exist.
  const AuthRecord& record(AuthId id) const;

  /// Total records ever added (including revoked).
  size_t size() const { return records_.size(); }

  /// Number of non-revoked records.
  size_t active_size() const { return active_count_; }

  /// Active authorization ids for a (subject, location) pair.
  std::vector<AuthId> ForSubjectLocation(SubjectId s, LocationId l) const;

  /// Active authorization ids mentioning subject `s`.
  std::vector<AuthId> ForSubject(SubjectId s) const;

  /// Active authorization ids mentioning location `l`.
  std::vector<AuthId> ForLocation(LocationId l) const;

  /// Every active authorization id, ascending.
  std::vector<AuthId> Active() const;

  // --- Decision procedure (Definition 7) -----------------------------------

  /// Evaluates an access request: granted iff some active authorization
  /// for (s, l) has t inside its entry duration and fewer than n entries
  /// used. Pure: does not touch the ledger.
  Decision CheckAccess(Chronon t, SubjectId s, LocationId l) const;

  /// CheckAccess + RecordEntry on the granting authorization.
  Decision CheckAndRecordAccess(Chronon t, SubjectId s, LocationId l);

  // --- Aggregates for Section 6 --------------------------------------------

  /// Union of entry durations of active authorizations for (s, l) — the
  /// raw material of the overall grant time.
  IntervalSet EntryDurations(SubjectId s, LocationId l) const;

  /// Union of exit durations of active authorizations for (s, l).
  IntervalSet ExitDurations(SubjectId s, LocationId l) const;

  /// Chronons at which s could enter l, honoring the request window:
  /// union over authorizations of GrantDuration(window).
  IntervalSet GrantDurations(SubjectId s, LocationId l,
                             const TimeInterval& window) const;

 private:
  static uint64_t Key(SubjectId s, LocationId l) {
    return (static_cast<uint64_t>(s) << 32) | l;
  }

  std::vector<AuthRecord> records_;
  std::unordered_map<uint64_t, std::vector<AuthId>> by_subject_location_;
  std::unordered_map<SubjectId, std::vector<AuthId>> by_subject_;
  std::unordered_map<LocationId, std::vector<AuthId>> by_location_;
  std::unordered_map<RuleId, std::vector<AuthId>> by_rule_;
  size_t active_count_ = 0;
};

}  // namespace ltam

#endif  // LTAM_CORE_AUTH_DATABASE_H_
