// Copyright 2026 The LTAM Authors.
// Logged-event codec shared by every durable runtime.
//
// The write-ahead logs (the sequential runtime's `events.wal` and the
// sharded runtime's per-shard `events-<k>-<epoch>.wal`) persist the
// enforcement event stream as codec records:
//
//   ev-entry <t> <s> <l>   access request (Definition 6)
//   ev-exit  <t> <s>       site exit
//   ev-obs   <t> <s> <l>   tracking observation
//   ev-tick  <t>           patrol tick
//
// Decoding is strict: field counts, integer syntax, and id ranges are all
// validated, so a corrupted or torn log surfaces as a ParseError instead
// of wrapping ids into nonsense (a negative subject must never become
// 4294967295). Applying a decoded event to an engine is deterministic —
// replaying the same prefix always rebuilds the same state.

#ifndef LTAM_STORAGE_EVENT_LOG_H_
#define LTAM_STORAGE_EVENT_LOG_H_

#include "engine/access_control_engine.h"
#include "engine/events.h"
#include "storage/codec.h"
#include "util/result.h"

namespace ltam {

/// One decoded log entry: either a patrol tick or an access event.
struct LoggedEvent {
  bool is_tick = false;
  /// Tick time when `is_tick`; otherwise unset.
  Chronon tick_time = 0;
  /// The access event when `!is_tick`.
  AccessEvent event;
};

/// Encodes an access event as its WAL record.
Record EncodeEventRecord(const AccessEvent& event);

/// Encodes a patrol tick as its WAL record.
Record EncodeTickRecord(Chronon t);

/// Decodes a WAL record. ParseError on unknown types, missing/extra
/// fields, non-numeric fields, or ids outside their 32-bit ranges.
Result<LoggedEvent> DecodeEventRecord(const Record& record);

/// Applies a decoded event to `engine` (the replay step). The decision
/// outcome is discarded: replay re-applies the historical stream, and
/// failures (e.g. an exit that was rejected live) repeat deterministically.
void ApplyLoggedEvent(AccessControlEngine* engine, const LoggedEvent& event);

/// Decode + apply in one step — the replay callback body.
Status ApplyLoggedRecord(AccessControlEngine* engine, const Record& record);

}  // namespace ltam

#endif  // LTAM_STORAGE_EVENT_LOG_H_
