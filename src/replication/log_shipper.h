// Copyright 2026 The LTAM Authors.
// Primary-side log shipper: one subscription, one thread.
//
// A LogShipper is born when a kReplicaHello lands on a server
// connection. It owns the replica's per-shard replication positions
// (seeded from the hello) and streams forward from them: each sweep it
// reads the committed suffix of every shard's WAL chain through
// AccessRuntime::ReadReplicationSlice — under the server's SHARED
// runtime lock, so a checkpoint can never swap segment files out from
// under a read — and pushes the records as server-initiated
// kSegmentChunk frames (request_id 0), followed by one
// kWatermarkAdvance whenever the primary's durable positions moved.
//
// Only durable records ship. The primary's (applied, durable) watermark
// is the replication position space — the same count the replica
// reports back in its next hello — so a reconnect resumes exactly at
// the last record the replica made crash-proof, never before (duplicate
// frames are dropped replica-side by the overlap-skip in
// ApplyReplicated) and never after (no holes).
//
// Every frame is stamped with the primary's current replication epoch;
// a replica that has seen a newer promotion drops the frame (the
// fencing rule — see replication/epoch.h).
//
// The shipper cannot serve a replica whose position predates the
// primary's retired floor (a checkpoint truncated the records away):
// that subscription gets one structured kError frame ("resync
// required") and the shipper parks. Seeding such a replica from a
// snapshot copy is the operator's move; the stream only carries deltas.

#ifndef LTAM_REPLICATION_LOG_SHIPPER_H_
#define LTAM_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/access_runtime.h"
#include "service/protocol.h"
#include "telemetry/metrics.h"

namespace ltam {

struct LogShipperOptions {
  /// Records per kSegmentChunk frame. Bounds both the frame size and
  /// how long one slice read holds the shared runtime lock.
  uint32_t max_records_per_chunk = 2048;

  /// Idle poll cadence: how often the shipper re-checks the shards for
  /// new durable records when the last sweep moved nothing.
  uint32_t poll_interval_ms = 20;

  /// Telemetry (may be null). When set, the shipper maintains the gauge
  /// "replication.replica.<subscriber_id>.lag_records" — the sum over
  /// shards of (primary durable − shipped position), i.e. how many
  /// durable records this subscriber has not yet been sent — updated at
  /// the end of every sweep and unregistered when the shipper stops.
  MetricsRegistry* metrics = nullptr;
  uint64_t subscriber_id = 0;
};

/// Ships one subscriber's stream. Start() spawns the thread; Stop()
/// (idempotent, also run by the destructor) joins it. The shipper never
/// owns the socket — it emits frames through `send`, which returns
/// false once the connection is gone and thereby retires the shipper.
class LogShipper {
 public:
  /// Enqueues one server-initiated frame (request_id 0) on the
  /// subscriber's connection. Must be thread-safe; returns false when
  /// the connection is dead.
  using SendFn = std::function<bool(MessageType, const std::string&)>;

  LogShipper(AccessRuntime* runtime, std::shared_mutex* runtime_mu,
             std::vector<uint64_t> start_positions, SendFn send,
             LogShipperOptions options = {});
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  void Start();
  void Stop();

  /// Total records shipped since Start (all shards).
  uint64_t records_shipped() const;

 private:
  void Run();
  /// One sweep over all shards; returns whether anything shipped, or
  /// false with *fatal set when the subscription cannot continue.
  bool SweepOnce(bool* fatal);

  AccessRuntime* const runtime_;
  std::shared_mutex* const runtime_mu_;
  const SendFn send_;
  const LogShipperOptions options_;

  std::vector<uint64_t> positions_;     // Thread-only after Start.
  std::vector<uint64_t> sent_durable_;  // Last kWatermarkAdvance payload.
  std::atomic<uint64_t> records_shipped_{0};

  /// Resolved at Start when options_.metrics is set; written by the
  /// shipper thread only, removed from the registry by Stop (after the
  /// join, so no write can race the removal).
  Gauge* lag_gauge_ = nullptr;
  std::string gauge_name_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
};

}  // namespace ltam

#endif  // LTAM_REPLICATION_LOG_SHIPPER_H_
