// Copyright 2026 The LTAM Authors.
// Location entities (Section 3.1).
//
// "A location can be primitive or composite. A primitive location is a
// location that cannot be further divided into other smaller locations. A
// composite location is a collection of related primitive, composite, or a
// mix of both locations."

#ifndef LTAM_GRAPH_LOCATION_H_
#define LTAM_GRAPH_LOCATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spatial/geometry.h"

namespace ltam {

/// Dense identifier of a location inside a MultilevelLocationGraph.
using LocationId = uint32_t;

/// Sentinel for "no location" (e.g. the parent of the root, or a subject
/// currently outside the site).
inline constexpr LocationId kInvalidLocation = UINT32_MAX;

/// Primitive vs composite (Definition 1 / Definition 2).
enum class LocationKind : uint8_t {
  kPrimitive = 0,
  kComposite = 1,
};

/// Returns "primitive" or "composite".
inline const char* LocationKindToString(LocationKind kind) {
  return kind == LocationKind::kPrimitive ? "primitive" : "composite";
}

/// A node in the multilevel location graph.
///
/// Semantic identity is the globally unique `name` (the paper uses
/// qualified names such as "SCE.GO"); physical identity is the optional
/// `boundary` polygon used by the tracking substrate to resolve position
/// fixes ("locations in LTAM are both semantic and physical").
struct Location {
  LocationId id = kInvalidLocation;
  std::string name;
  LocationKind kind = LocationKind::kPrimitive;
  /// Composite this location directly belongs to; kInvalidLocation only
  /// for the root composite.
  LocationId parent = kInvalidLocation;
  /// Entry-location designation within the parent's graph: "An entry
  /// location serves as the first location a user must visit before
  /// visiting other locations within the graph [and] also serves as the
  /// last location where the user may visit before his/her exit."
  bool is_entry = false;
  /// Children (only for composites), in insertion order.
  std::vector<LocationId> children;
  /// Direct siblings connected by an edge in the parent's graph.
  std::vector<LocationId> sibling_adj;
  /// Optional physical boundary.
  std::optional<Polygon> boundary;
  /// Free-form description (floor, purpose, ...).
  std::string description;

  bool IsPrimitive() const { return kind == LocationKind::kPrimitive; }
  bool IsComposite() const { return kind == LocationKind::kComposite; }
};

}  // namespace ltam

#endif  // LTAM_GRAPH_LOCATION_H_
