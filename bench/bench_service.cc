// Copyright 2026 The LTAM Authors.
// ltam-serve overhead: the same event stream (a) directly through the
// AccessRuntime facade and (b) through a loopback TCP server with N
// concurrent pipelined client connections. The gap is the price of the
// network front end — framing, socket hops, queueing — minus whatever
// the ingest coalescer claws back by merging connections' frames into
// shared runtime batches (one sharded fan-out and, durable, one
// group-commit per merged batch instead of per frame). CI captures both
// series in BENCH_pr6.json so the overhead is tracked PR over PR.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/access_runtime.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace ltam {
namespace {

struct ServiceWorld {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
  /// streams[c] is connection c's batch sequence (disjoint subjects).
  std::vector<std::vector<std::vector<AccessEvent>>> streams;
  size_t total_events = 0;
};

constexpr size_t kStreams = 4;

ServiceWorld MakeServiceWorld() {
  ServiceWorld w;
  w.graph = MakeCampusGraph(8, 8).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 128);
  Rng rng(2026);
  AuthWorkloadOptions auth_opt;
  auth_opt.auths_per_location = 2;
  auth_opt.coverage = 0.7;
  auth_opt.horizon = 4000;
  auth_opt.min_len = 100;
  auth_opt.max_len = 800;
  auth_opt.max_entries = 0;
  GenerateAuthorizations(w.graph, w.subjects, auth_opt, &rng, &w.auth_db);
  w.streams.resize(kStreams);
  for (size_t c = 0; c < kStreams; ++c) {
    std::vector<SubjectId> mine;
    for (size_t i = c; i < w.subjects.size(); i += kStreams) {
      mine.push_back(w.subjects[i]);
    }
    BatchWorkloadOptions batch_opt;
    batch_opt.batch_size = 256;
    batch_opt.exit_fraction = 0.1;
    batch_opt.observe_fraction = 0.1;
    batch_opt.max_step = 3;
    w.streams[c] = GenerateEventBatches(w.graph, mine,
                                        /*total_events=*/4096, batch_opt,
                                        &rng);
    for (const auto& b : w.streams[c]) w.total_events += b.size();
  }
  return w;
}

SystemState InitStateOf(const ServiceWorld& w) {
  SystemState init;
  init.graph = w.graph;
  init.profiles = w.profiles;
  init.auth_db = w.auth_db;
  return init;
}

RuntimeOptions QuietOptions(uint32_t shards) {
  RuntimeOptions options;
  options.num_shards = shards;
  options.engine.alert_on_denial = false;
  return options;
}

/// Direct baseline: the same per-stream batches straight into the
/// facade, round-robin (exactly the interleaving the server's coalescer
/// reproduces).
void BM_FacadeBatch(benchmark::State& state) {
  ServiceWorld w = MakeServiceWorld();
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  state.counters["shards"] = static_cast<double>(shards);
  size_t max_batches = 0;
  for (const auto& s : w.streams) {
    max_batches = std::max(max_batches, s.size());
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto rt =
        AccessRuntime::Open(InitStateOf(w), QuietOptions(shards)).ValueOrDie();
    state.ResumeTiming();
    for (size_t k = 0; k < max_batches; ++k) {
      for (size_t c = 0; c < w.streams.size(); ++c) {
        if (k >= w.streams[c].size()) continue;
        benchmark::DoNotOptimize(rt->ApplyBatch(w.streams[c][k]));
      }
    }
    state.PauseTiming();
    rt.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
}
BENCHMARK(BM_FacadeBatch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The same streams through a loopback server: kStreams concurrent
/// connections, each pipelining its whole stream so the coalescer has
/// frames from many connections in flight at once. Args: {shards,
/// io_threads} — the second axis spreads the connections over per-thread
/// epoll loops (a wash on 1-core CI, a read-path win with real cores).
/// With `instrumented` a MetricsRegistry is wired through both the
/// server and runtime options, so every per-stage histogram and counter
/// records on the hot path — the telemetry-overhead series CI compares
/// against the null-registry baseline.
void RunServiceLoopback(benchmark::State& state, bool instrumented) {
  ServiceWorld w = MakeServiceWorld();
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const uint32_t io_threads = static_cast<uint32_t>(state.range(1));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["io_threads"] = static_cast<double>(io_threads);
  state.counters["connections"] = static_cast<double>(kStreams);
  ServerOptions server_options;
  server_options.io_threads = io_threads;
  size_t merged_batches = 0;
  size_t merged_frames = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MetricsRegistry metrics;
    RuntimeOptions runtime_options = QuietOptions(shards);
    if (instrumented) {
      runtime_options.metrics = &metrics;
      server_options.metrics = &metrics;
    }
    auto rt =
        AccessRuntime::Open(InitStateOf(w), runtime_options).ValueOrDie();
    ServiceServer server(rt.get(), server_options);
    if (!server.Start().ok()) {
      state.SkipWithError("server failed to start");
      return;
    }
    std::vector<std::unique_ptr<ServiceClient>> clients;
    for (size_t c = 0; c < w.streams.size(); ++c) {
      auto client = ServiceClient::Connect("127.0.0.1", server.bound_port());
      if (!client.ok()) {
        state.SkipWithError("client failed to connect");
        return;
      }
      clients.push_back(std::move(client).ValueOrDie());
    }
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(clients.size());
    for (size_t c = 0; c < clients.size(); ++c) {
      threads.emplace_back([&, c] {
        ServiceClient* client = clients[c].get();
        size_t submitted = 0;
        for (const auto& batch : w.streams[c]) {
          if (client->SubmitBatch(batch).ok()) ++submitted;
        }
        if (!client->Flush().ok()) return;
        for (size_t i = 0; i < submitted; ++i) {
          if (!client->ReceiveBatchResult().ok()) return;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.PauseTiming();
    CoalescerStats stats = server.coalescer_stats();
    merged_batches += stats.merged_batches;
    merged_frames += stats.merged_frames;
    server.Stop();
    clients.clear();
    rt.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
  if (merged_batches > 0) {
    state.counters["frames_per_merge"] =
        static_cast<double>(merged_frames) /
        static_cast<double>(merged_batches);
  }
}

void BM_ServiceLoopbackBatch(benchmark::State& state) {
  RunServiceLoopback(state, /*instrumented=*/false);
}
BENCHMARK(BM_ServiceLoopbackBatch)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The telemetry tax: identical to BM_ServiceLoopbackBatch except every
/// stage histogram and counter records. ci.sh compares this row against
/// the {4,1} baseline row — the gap must stay within run-to-run noise.
void BM_ServiceLoopbackBatchInstrumented(benchmark::State& state) {
  RunServiceLoopback(state, /*instrumented=*/true);
}
BENCHMARK(BM_ServiceLoopbackBatchInstrumented)
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Durable serving: group commit on vs off the critical path --------------
//
// The same loopback flood against a crash-safe runtime. In batch mode
// every merged batch pays its per-shard fsync before the ack; in
// pipelined mode the coalescer acks as soon as the decisions are out
// and merges the next round while the log threads fsync the last one.
// Each iteration ends with a Checkpoint-free WaitDurable barrier via
// server Stop + runtime reset (the log destructors drain and sync), so
// both modes deliver identical durability.

std::string MakeServiceBenchDir() {
  std::string tmpl = std::filesystem::temp_directory_path().string() +
                     "/ltam_svc_bench_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  if (made == nullptr) std::abort();
  return tmpl;
}

void RunServiceLoopbackDurable(benchmark::State& state, SyncMode mode) {
  ServiceWorld w = MakeServiceWorld();
  const uint32_t shards = 4;
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["connections"] = static_cast<double>(kStreams);
  size_t merged_batches = 0;
  size_t merged_frames = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = MakeServiceBenchDir();
    RuntimeOptions options = QuietOptions(shards);
    options.durable_dir = dir;
    options.durability.mode = mode;
    auto rt = AccessRuntime::Open(InitStateOf(w), options).ValueOrDie();
    ServiceServer server(rt.get(), ServerOptions{});
    if (!server.Start().ok()) {
      state.SkipWithError("server failed to start");
      return;
    }
    std::vector<std::unique_ptr<ServiceClient>> clients;
    for (size_t c = 0; c < w.streams.size(); ++c) {
      auto client = ServiceClient::Connect("127.0.0.1", server.bound_port());
      if (!client.ok()) {
        state.SkipWithError("client failed to connect");
        return;
      }
      clients.push_back(std::move(client).ValueOrDie());
    }
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(clients.size());
    for (size_t c = 0; c < clients.size(); ++c) {
      threads.emplace_back([&, c] {
        ServiceClient* client = clients[c].get();
        size_t submitted = 0;
        for (const auto& batch : w.streams[c]) {
          if (client->SubmitBatch(batch).ok()) ++submitted;
        }
        if (!client->Flush().ok()) return;
        for (size_t i = 0; i < submitted; ++i) {
          if (!client->ReceiveBatchResult().ok()) return;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    // Equalize durability across modes before the clock stops.
    benchmark::DoNotOptimize(rt->WaitDurable());
    state.PauseTiming();
    CoalescerStats stats = server.coalescer_stats();
    merged_batches += stats.merged_batches;
    merged_frames += stats.merged_frames;
    server.Stop();
    clients.clear();
    rt.reset();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * w.total_events));
  if (merged_batches > 0) {
    state.counters["frames_per_merge"] =
        static_cast<double>(merged_frames) /
        static_cast<double>(merged_batches);
  }
}

void BM_ServiceLoopbackBatchDurable(benchmark::State& state) {
  RunServiceLoopbackDurable(state, SyncMode::kBatch);
}
BENCHMARK(BM_ServiceLoopbackBatchDurable)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceLoopbackBatchPipelined(benchmark::State& state) {
  RunServiceLoopbackDurable(state, SyncMode::kPipelined);
}
BENCHMARK(BM_ServiceLoopbackBatchPipelined)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ltam

BENCHMARK_MAIN();
