// Copyright 2026 The LTAM Authors.
// ltam-serve client library.
//
// Two usage styles over one blocking TCP connection:
//
//  - Synchronous: every call sends one request frame and blocks until
//    its response arrives. One outstanding request at a time; a server
//    error response surfaces as the decoded Status.
//  - Pipelined batches: SubmitBatch() buffers request frames locally,
//    Flush() writes them all, ReceiveBatchResult() reads responses in
//    submission order (the server's ingest path is FIFO per
//    connection). Keeping several frames in flight is what feeds the
//    server's ingest coalescer from a single connection.
//
// Do not interleave synchronous calls with unreceived pipelined
// submissions — the synchronous call would consume the pipelined
// responses. A ServiceClient is not thread-safe; use one per thread
// (many connections is the point of the server).

#ifndef LTAM_SERVICE_CLIENT_H_
#define LTAM_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/result.h"

namespace ltam {

class ServiceClient {
 public:
  /// Connects to an ltam-serve endpoint ("127.0.0.1", 7447).
  static Result<std::unique_ptr<ServiceClient>> Connect(
      const std::string& host, uint16_t port);

  /// Redirect bookkeeping (see the write-call docs below): how often
  /// this client re-dialed a primary named in a replica's refusal, and
  /// how often that re-dial itself failed (the original refusal is
  /// returned then).
  struct ClientStats {
    uint64_t redirects_followed = 0;
    uint64_t redirect_dial_failures = 0;
  };
  const ClientStats& client_stats() const { return client_stats_; }

  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // --- Synchronous calls -----------------------------------------------------

  /// Round-trip liveness check (answered on the server's I/O thread,
  /// so it succeeds even while ingestion is busy).
  Status Ping();

  /// One event through the server's ingest path. The result carries the
  /// decision (decisions.size() == 1), the alerts the server attributed
  /// to this frame, and the durability outcome.
  ///
  /// Write calls auto-follow a replica's structured refusal: when the
  /// server answers kFailedPrecondition carrying a `[primary=host:port]`
  /// token (a demoted runtime that knows its primary), the client
  /// re-dials that endpoint once, adopts the new connection, and
  /// retries the call once. An unparseable token, a failed re-dial, or
  /// a second refusal surfaces the server's error unchanged; follows
  /// and failed dials are counted in client_stats().
  Result<WireBatchResult> Apply(const AccessEvent& event);

  /// One batch (at most kMaxWireBatchEvents events, per-subject
  /// nondecreasing time order within the batch). Auto-follows a
  /// structured replica refusal like Apply().
  Result<WireBatchResult> ApplyBatch(Span<const AccessEvent> events);

  /// One raw position fix, resolved server-side. Auto-follows a
  /// structured replica refusal like Apply().
  Result<WireFixResult> ApplyFix(const PositionFix& fix);

  /// A query-language statement, answered over the server runtime's
  /// MovementView.
  Result<QueryResult> Query(const std::string& statement);

  /// Persists the server runtime (a no-op for in-memory servers).
  Status Checkpoint();

  /// The server runtime's own counters — byte-identical to what a local
  /// Stats() call on the server's runtime returns.
  Result<RuntimeStats> Stats();

  /// The server's telemetry registry as a structured snapshot. Fails
  /// with kFailedPrecondition when the server runs uninstrumented
  /// (no registry attached).
  Result<MetricsSnapshot> Metrics();

  /// The same registry as Prometheus text exposition, rendered
  /// server-side so any scraper can consume it verbatim.
  Result<std::string> MetricsText();

  /// Promotes a replica server to primary; returns the new replication
  /// epoch. Legal against a primary too (an epoch bump that fences any
  /// stream still flowing from an older-epoch node).
  Result<uint64_t> Promote();

  /// Re-targets a replica server's upstream — the survivor-reconnect
  /// step of a failover.
  Status Repoint(const std::string& host, uint16_t port);

  // --- Raw frame surface (replication links) ---------------------------------

  /// Sends one frame verbatim, flushing any pipelined backlog first.
  /// The replica link uses this for its kReplicaHello subscription.
  Status SendRawFrame(MessageType type, uint32_t request_id,
                      const std::string& payload);

  /// Blocks until the next complete frame — server-initiated frames
  /// (kSegmentChunk, kWatermarkAdvance, kAlertPush) included, nothing
  /// stashed or skipped. The replica link's receive loop lives here.
  Result<Frame> ReceiveRaw();

  /// Half-closes the socket from another thread so a blocked
  /// ReceiveRaw() returns ("server closed the connection"). The only
  /// member safe to call concurrently — it is how a replica link is
  /// stopped.
  void ShutdownSocket();

  // --- Pipelined batches -----------------------------------------------------

  /// Buffers an ApplyBatch frame locally and returns its request id.
  /// Nothing is written until Flush().
  Result<uint32_t> SubmitBatch(Span<const AccessEvent> events);

  /// Writes every buffered frame to the socket.
  Status Flush();

  /// One pipelined response. NOTE: responses are NOT in submission
  /// order when the server refuses a frame at an ingest quota — the
  /// refusal is generated at dispatch and overtakes accepted frames
  /// still in the coalescer — so pipelined consumers must match
  /// responses to submissions by request_id, never by position.
  struct PipelinedBatch {
    uint32_t request_id = 0;
    /// kFailedPrecondition when the server refused this frame at a
    /// quota (PollBatchResult only; `result` is empty then). OK for an
    /// accepted frame.
    Status refusal = Status::OK();
    WireBatchResult result;
  };

  /// Blocks for the next pipelined batch response. Flush() first; a
  /// server-refused frame surfaces as the decoded error Status.
  Result<PipelinedBatch> ReceiveBatchResult();

  /// Like ReceiveBatchResult, but waits at most `timeout_ms` for a
  /// complete response frame and returns nullopt if none arrives in
  /// time (timeout_ms == 0 is a non-blocking drain attempt). Lets an
  /// open-loop sender harvest in-flight responses while idling until
  /// its next scheduled arrival instead of parking in recv(). Unlike
  /// ReceiveBatchResult, an in-band kFailedPrecondition refusal is
  /// returned as a value (refusal set, request_id identifying WHICH
  /// frame was refused) so overload shows up as data, not as a dead
  /// connection; every other error frame is still a failed Result.
  Result<std::optional<PipelinedBatch>> PollBatchResult(int timeout_ms);

  // --- Server-pushed alerts --------------------------------------------------

  /// A server shutting down pushes alerts it could not attach to any
  /// response as kAlertPush frames (request_id 0). The receive loops
  /// above stash such frames instead of failing; this returns (and
  /// clears) the stash.
  std::vector<Alert> TakePushedAlerts();

  /// Blocks until one kAlertPush frame arrives (or returns the stash if
  /// one already did). For clients that expect the shutdown drain.
  Result<std::vector<Alert>> ReceiveAlertPush();

 private:
  explicit ServiceClient(int fd);

  /// Sends one frame immediately (flushing any pipelined backlog first,
  /// which is why sync calls must not run with unreceived submissions).
  Status SendFrame(MessageType type, uint32_t request_id,
                   const std::string& payload);

  /// Blocks until one complete frame arrives, kAlertPush included.
  Result<Frame> ReceiveFrameRaw();

  /// Blocks until one complete frame arrives. kAlertPush frames are
  /// stashed in pushed_alerts_ and skipped — callers only ever see
  /// request/response traffic.
  Result<Frame> ReceiveFrame();

  /// Blocks for the response to `request_id`; decodes kError frames
  /// into their carried Status. Any other request id on the wire is a
  /// protocol violation (sync discipline: one outstanding request).
  Result<Frame> ReceiveResponse(uint32_t request_id,
                                MessageType expected_type);

  /// Single-shot bodies behind the redirect-following write calls.
  Result<WireBatchResult> ApplyOnce(const AccessEvent& event);
  Result<WireBatchResult> ApplyBatchOnce(Span<const AccessEvent> events);
  Result<WireFixResult> ApplyFixOnce(const PositionFix& fix);

  /// When `refusal` is a replica refusal naming a primary, re-dials it
  /// and swaps this client onto the new connection (old socket closed,
  /// assembler reset, pushed-alert stash kept). Returns true when the
  /// caller should retry its request once; false leaves the connection
  /// untouched so the original error can surface.
  bool FollowPrimaryRedirect(const Status& refusal);

  int fd_;
  uint32_t next_request_id_ = 1;
  std::string send_buffer_;
  FrameAssembler assembler_;
  std::vector<Alert> pushed_alerts_;
  ClientStats client_stats_;
};

}  // namespace ltam

#endif  // LTAM_SERVICE_CLIENT_H_
