// Copyright 2026 The LTAM Authors.
//
// Query-engine and query-language benchmarks (the Figure 3 query engine
// plus the future-work textual front end): parse+evaluate latency for
// each statement family over a populated system.

#include <benchmark/benchmark.h>

#include "query/query_language.h"
#include "sim/graph_gen.h"
#include "sim/movement_sim.h"
#include "sim/workload.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  MovementDatabase movements;
  std::vector<SubjectId> subjects;

  World() {
    graph = MakeCampusGraph(4, 8).ValueOrDie();
    subjects = GenerateSubjects(&profiles, 16);
    Rng rng(21);
    AuthWorkloadOptions opt;
    opt.coverage = 0.8;
    opt.horizon = 50;
    opt.min_len = 100;
    opt.max_len = 250;
    opt.max_slack = 50;
    GenerateAuthorizations(graph, subjects, opt, &rng, &auth_db);
    // Deterministic corridor rights for u0 so the ROUTE query always has
    // an authorized answer to find.
    for (uint32_t r = 0; r < 8; ++r) {
      auth_db.Add(LocationTemporalAuthorization::Make(
                      TimeInterval(0, 300), TimeInterval(0, 400),
                      LocationAuthorization{
                          subjects[0],
                          graph.Find("B0.R" + std::to_string(r)).ValueOrDie()},
                      kUnlimitedEntries)
                      .ValueOrDie());
    }
    // Populate movement history through the engine.
    SimOptions sim;
    sim.steps_per_subject = 32;
    Scenario day = SimulateMovement(graph, auth_db, subjects, sim, &rng);
    AccessControlEngine engine(&graph, &auth_db, &movements, &profiles);
    ReplayOnEngine(day, &engine);
  }
};

void RunQuery(benchmark::State& state, const std::string& query) {
  World w;
  QueryEngine qe(&w.graph, &w.auth_db, &w.movements, &w.profiles);
  QueryInterpreter interp(&qe, &w.graph, &w.profiles, &w.movements,
                          &w.auth_db);
  // Sanity: the query must evaluate.
  Result<QueryResult> check = interp.Run(query);
  if (!check.ok()) {
    state.SkipWithError(check.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Run(query));
  }
  state.SetLabel(query);
}

void BM_QueryCanAccess(benchmark::State& state) {
  RunQuery(state, "CAN u3 ACCESS B1.R4 AT 30");
}
BENCHMARK(BM_QueryCanAccess);

void BM_QueryWhoCanAccess(benchmark::State& state) {
  RunQuery(state, "WHO CAN ACCESS B2.R3 DURING [0, 200]");
}
BENCHMARK(BM_QueryWhoCanAccess);

void BM_QueryInaccessible(benchmark::State& state) {
  RunQuery(state, "INACCESSIBLE FOR u0");
}
BENCHMARK(BM_QueryInaccessible);

void BM_QueryRoute(benchmark::State& state) {
  RunQuery(state, "ROUTE FOR u0 FROM B0.R0 TO B0.R7 DURING [0, 300]");
}
BENCHMARK(BM_QueryRoute);

void BM_QueryWhereWas(benchmark::State& state) {
  RunQuery(state, "WHERE WAS u5 AT 40");
}
BENCHMARK(BM_QueryWhereWas);

void BM_QueryContacts(benchmark::State& state) {
  RunQuery(state, "CONTACTS OF u1 DURING [0, 200]");
}
BENCHMARK(BM_QueryContacts);

void BM_QueryHistory(benchmark::State& state) {
  RunQuery(state, "HISTORY OF u2");
}
BENCHMARK(BM_QueryHistory);

}  // namespace

BENCHMARK_MAIN();
