// Copyright 2026 The LTAM Authors.

#include "core/auth_database.h"

#include "util/logging.h"

namespace ltam {

AuthId AuthorizationDatabase::Add(const LocationTemporalAuthorization& auth) {
  AuthId id = static_cast<AuthId>(records_.size());
  records_.push_back(AuthRecord{id, auth, AuthOrigin::kExplicit,
                                kInvalidRule, false, 0});
  by_subject_location_[Key(auth.subject(), auth.location())].push_back(id);
  by_subject_[auth.subject()].push_back(id);
  by_location_[auth.location()].push_back(id);
  ++active_count_;
  return id;
}

AuthId AuthorizationDatabase::AddDerived(
    const LocationTemporalAuthorization& auth, RuleId rule) {
  AuthId id = Add(auth);
  records_[id].origin = AuthOrigin::kDerived;
  records_[id].source_rule = rule;
  by_rule_[rule].push_back(id);
  return id;
}

Status AuthorizationDatabase::Revoke(AuthId id) {
  if (!Exists(id)) return Status::NotFound("no such authorization");
  if (!records_[id].revoked) {
    records_[id].revoked = true;
    --active_count_;
  }
  return Status::OK();
}

size_t AuthorizationDatabase::RevokeDerivedBy(RuleId rule) {
  auto it = by_rule_.find(rule);
  if (it == by_rule_.end()) return 0;
  size_t revoked = 0;
  for (AuthId id : it->second) {
    if (!records_[id].revoked) {
      records_[id].revoked = true;
      --active_count_;
      ++revoked;
    }
  }
  return revoked;
}

Status AuthorizationDatabase::RecordEntry(AuthId id) {
  if (!Exists(id)) return Status::NotFound("no such authorization");
  AuthRecord& rec = records_[id];
  if (rec.revoked) {
    return Status::FailedPrecondition("authorization is revoked");
  }
  if (rec.auth.max_entries() != kUnlimitedEntries &&
      rec.entries_used >= rec.auth.max_entries()) {
    return Status::FailedPrecondition("authorization entries exhausted");
  }
  ++rec.entries_used;
  return Status::OK();
}

const AuthRecord& AuthorizationDatabase::record(AuthId id) const {
  LTAM_CHECK(Exists(id)) << "authorization id " << id << " out of range";
  return records_[id];
}

namespace {
std::vector<AuthId> FilterActive(
    const std::vector<AuthRecord>& records,
    const std::vector<AuthId>* ids) {
  std::vector<AuthId> out;
  if (ids == nullptr) return out;
  out.reserve(ids->size());
  for (AuthId id : *ids) {
    if (!records[id].revoked) out.push_back(id);
  }
  return out;
}
}  // namespace

std::vector<AuthId> AuthorizationDatabase::ForSubjectLocation(
    SubjectId s, LocationId l) const {
  auto it = by_subject_location_.find(Key(s, l));
  return FilterActive(records_,
                      it == by_subject_location_.end() ? nullptr : &it->second);
}

std::vector<AuthId> AuthorizationDatabase::ForSubject(SubjectId s) const {
  auto it = by_subject_.find(s);
  return FilterActive(records_, it == by_subject_.end() ? nullptr : &it->second);
}

std::vector<AuthId> AuthorizationDatabase::ForLocation(LocationId l) const {
  auto it = by_location_.find(l);
  return FilterActive(records_,
                      it == by_location_.end() ? nullptr : &it->second);
}

std::vector<AuthId> AuthorizationDatabase::Active() const {
  std::vector<AuthId> out;
  out.reserve(active_count_);
  for (const AuthRecord& rec : records_) {
    if (!rec.revoked) out.push_back(rec.id);
  }
  return out;
}

Decision AuthorizationDatabase::CheckAccess(Chronon t, SubjectId s,
                                            LocationId l) const {
  std::vector<AuthId> candidates = ForSubjectLocation(s, l);
  if (candidates.empty()) {
    return Decision::Deny(DenyReason::kNoAuthorization);
  }
  bool any_in_window = false;
  for (AuthId id : candidates) {
    const AuthRecord& rec = records_[id];
    if (!rec.auth.entry_duration().Contains(t)) continue;
    any_in_window = true;
    // Definition 7: "s has entered l during [tis, tie] for less than n
    // times."
    if (rec.auth.max_entries() == kUnlimitedEntries ||
        rec.entries_used < rec.auth.max_entries()) {
      return Decision::Grant(id);
    }
  }
  return Decision::Deny(any_in_window ? DenyReason::kEntriesExhausted
                                      : DenyReason::kOutsideEntryDuration);
}

Decision AuthorizationDatabase::CheckAndRecordAccess(Chronon t, SubjectId s,
                                                     LocationId l) {
  Decision d = CheckAccess(t, s, l);
  if (d.granted) {
    Status st = RecordEntry(d.auth);
    LTAM_CHECK(st.ok()) << "ledger update failed after grant: "
                        << st.ToString();
  }
  return d;
}

IntervalSet AuthorizationDatabase::EntryDurations(SubjectId s,
                                                  LocationId l) const {
  IntervalSet out;
  for (AuthId id : ForSubjectLocation(s, l)) {
    out.Add(records_[id].auth.entry_duration());
  }
  return out;
}

IntervalSet AuthorizationDatabase::ExitDurations(SubjectId s,
                                                 LocationId l) const {
  IntervalSet out;
  for (AuthId id : ForSubjectLocation(s, l)) {
    out.Add(records_[id].auth.exit_duration());
  }
  return out;
}

IntervalSet AuthorizationDatabase::GrantDurations(
    SubjectId s, LocationId l, const TimeInterval& window) const {
  IntervalSet out;
  for (AuthId id : ForSubjectLocation(s, l)) {
    std::optional<TimeInterval> g = records_[id].auth.GrantDuration(window);
    if (g.has_value()) out.Add(*g);
  }
  return out;
}

}  // namespace ltam
