// Copyright 2026 The LTAM Authors.

#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/query_language.h"
#include "service/protocol.h"
#include "util/logging.h"

namespace ltam {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One accepted connection. The I/O thread owns the socket and the
/// frame assembler; worker threads only append response bytes under
/// out_mu and never touch the fd.
struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  FrameAssembler assembler;  // I/O thread only.
  std::mutex out_mu;
  std::string out;               // Guarded by out_mu.
  bool close_after_flush = false;  // Guarded by out_mu.
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// One frame bound for the coalescer.
struct IngestJob {
  ConnectionPtr conn;
  uint32_t request_id = 0;
  MessageType type = MessageType::kApply;
  std::vector<AccessEvent> events;  // kApply (size 1) / kApplyBatch.
  PositionFix fix;                  // kApplyFix.
};

/// One frame bound for the read pool.
struct ReadJob {
  ConnectionPtr conn;
  uint32_t request_id = 0;
  MessageType type = MessageType::kQuery;
  std::string statement;  // kQuery.
};

}  // namespace

class ServiceServer::Impl {
 public:
  Impl(AccessRuntime* runtime, ServerOptions options)
      : runtime_(runtime), options_(options) {}

  ~Impl() { Stop(); }

  Status Start() {
    if (started_) return Status::FailedPrecondition("server already started");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      CloseListen();
      return Status::InvalidArgument("unparseable listen host '" +
                                     options_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status st = Errno("bind");
      CloseListen();
      return st;
    }
    if (::listen(listen_fd_, options_.listen_backlog) != 0) {
      Status st = Errno("listen");
      CloseListen();
      return st;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      Status st = Errno("getsockname");
      CloseListen();
      return st;
    }
    bound_port_ = ntohs(addr.sin_port);
    if (!SetNonBlocking(listen_fd_)) {
      Status st = Errno("fcntl(listen)");
      CloseListen();
      return st;
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      Status st = Errno("pipe");
      CloseListen();
      return st;
    }
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    SetNonBlocking(wake_read_fd_);
    SetNonBlocking(wake_write_fd_);

    // The one interpreter every read worker shares: its referents (the
    // runtime's stores and MovementView) are stable for the runtime's
    // lifetime, and workers only run it under the shared runtime lock.
    interpreter_ = std::make_unique<QueryInterpreter>(
        &runtime_->query(), &runtime_->graph(), &runtime_->profiles(),
        &runtime_->movements(), &runtime_->auth_db());

    stopping_ = false;
    started_ = true;
    io_thread_ = std::thread([this] { IoLoop(); });
    coalescer_thread_ = std::thread([this] { CoalescerLoop(); });
    const uint32_t workers = std::max(1u, options_.read_workers);
    read_threads_.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      read_threads_.emplace_back([this] { ReadLoop(); });
    }
    return Status::OK();
  }

  void Stop() {
    if (!started_) return;
    stopping_ = true;
    Wake();
    io_thread_.join();
    {
      std::lock_guard<std::mutex> lock(queues_mu_);
      queues_cv_.notify_all();
    }
    coalescer_thread_.join();
    for (std::thread& t : read_threads_) t.join();
    read_threads_.clear();
    connections_.clear();
    ingest_queue_.clear();
    read_queue_.clear();
    queued_units_ = 0;
    conn_queued_units_.clear();
    CloseListen();
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
    started_ = false;
  }

  uint16_t bound_port() const { return bound_port_; }

  CoalescerStats coalescer_stats() const {
    std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
    return coalescer_stats_;
  }

 private:
  void CloseListen() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
  }

  /// Nudges the I/O thread out of poll() (worker enqueued output, or
  /// Stop() was called).
  void Wake() {
    char byte = 1;
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }

  // --- I/O thread ------------------------------------------------------------

  void IoLoop() {
    std::vector<pollfd> fds;
    std::vector<ConnectionPtr> polled;
    while (!stopping_) {
      fds.clear();
      polled.clear();
      fds.push_back({wake_read_fd_, POLLIN, 0});
      fds.push_back({listen_fd_, POLLIN, 0});
      for (auto& [fd, conn] : connections_) {
        short events = 0;
        {
          std::lock_guard<std::mutex> lock(conn->out_mu);
          if (!conn->close_after_flush) events |= POLLIN;
          if (!conn->out.empty()) events |= POLLOUT;
        }
        fds.push_back({fd, events, 0});
        polled.push_back(conn);
      }
      if (::poll(fds.data(), fds.size(), /*timeout_ms=*/200) < 0) {
        if (errno == EINTR) continue;
        LTAM_LOG_ERROR << "server poll failed: " << std::strerror(errno);
        break;
      }
      if (fds[0].revents & POLLIN) DrainWakePipe();
      if (fds[1].revents & POLLIN) AcceptPending();
      for (size_t i = 0; i < polled.size(); ++i) {
        const pollfd& pfd = fds[i + 2];
        ConnectionPtr conn = polled[i];
        bool drop = false;
        {
          std::lock_guard<std::mutex> lock(conn->out_mu);
          // A client that writes requests but never reads responses
          // cannot buffer without bound; and a connection marked for
          // close whose output already drained is done.
          if (conn->out.size() > options_.max_connection_backlog_bytes ||
              (conn->close_after_flush && conn->out.empty())) {
            drop = true;
          }
        }
        if (!drop && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL))) {
          drop = true;
        }
        if (!drop && (pfd.revents & POLLIN)) drop = !ReadFrom(conn);
        if (!drop && (pfd.revents & POLLOUT)) drop = !FlushTo(conn);
        if (drop) connections_.erase(conn->fd);
      }
    }
    // Closing the sockets here (not in Stop) keeps all socket access on
    // this thread; queued responses for these connections are dropped.
    connections_.clear();
  }

  void DrainWakePipe() {
    char buf[256];
    while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
    }
  }

  void AcceptPending() {
    while (true) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      connections_.emplace(fd, std::make_shared<Connection>(fd));
    }
  }

  /// Reads everything available; false when the connection is done.
  bool ReadFrom(const ConnectionPtr& conn) {
    char buf[64 * 1024];
    while (true) {
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->assembler.Append(buf, static_cast<size_t>(n));
        if (!DrainFrames(conn)) return false;
        continue;
      }
      if (n == 0) return false;  // Peer closed.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Extracts complete frames and dispatches them; false to drop the
  /// connection (unframeable stream).
  bool DrainFrames(const ConnectionPtr& conn) {
    while (true) {
      Result<std::optional<Frame>> next = conn->assembler.Next();
      if (!next.ok()) {
        // The stream can no longer be framed: queue one final error
        // (request id 0 — no frame to attribute it to) and mark the
        // connection close-after-flush, so the error actually reaches
        // the peer before the close instead of being dropped when the
        // socket buffer is momentarily full.
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (!conn->close_after_flush) {
          conn->out += EncodeFrame(MessageType::kError, 0,
                                   EncodeErrorResult(next.status()));
          conn->close_after_flush = true;
        }
        return true;
      }
      if (!next->has_value()) return true;
      Dispatch(conn, **next);
    }
  }

  void Dispatch(const ConnectionPtr& conn, Frame frame) {
    const uint32_t id = frame.header.request_id;
    switch (frame.header.type) {
      case MessageType::kPing:
        // No runtime state involved: answered inline on the I/O thread.
        Respond(conn, MessageType::kPong, id, "");
        return;
      case MessageType::kApply: {
        Result<AccessEvent> event = DecodeApplyRequest(frame.payload);
        if (!event.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(event.status()));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kApply;
        job.events.push_back(*event);
        EnqueueIngest(std::move(job));
        return;
      }
      case MessageType::kApplyBatch: {
        Result<std::vector<AccessEvent>> events =
            DecodeApplyBatchRequest(frame.payload);
        if (!events.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(events.status()));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kApplyBatch;
        job.events = std::move(*events);
        EnqueueIngest(std::move(job));
        return;
      }
      case MessageType::kApplyFix: {
        Result<PositionFix> fix = DecodeApplyFixRequest(frame.payload);
        if (!fix.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(fix.status()));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kApplyFix;
        job.fix = *fix;
        EnqueueIngest(std::move(job));
        return;
      }
      case MessageType::kCheckpoint: {
        if (!frame.payload.empty()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(Status::ParseError(
                      "checkpoint: unexpected payload")));
          return;
        }
        IngestJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kCheckpoint;
        EnqueueIngest(std::move(job));
        return;
      }
      case MessageType::kQuery: {
        Result<std::string> statement = DecodeQueryRequest(frame.payload);
        if (!statement.ok()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(statement.status()));
          return;
        }
        ReadJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kQuery;
        job.statement = std::move(*statement);
        EnqueueRead(std::move(job));
        return;
      }
      case MessageType::kStats: {
        if (!frame.payload.empty()) {
          Respond(conn, MessageType::kError, id,
                  EncodeErrorResult(
                      Status::ParseError("stats: unexpected payload")));
          return;
        }
        ReadJob job;
        job.conn = conn;
        job.request_id = id;
        job.type = MessageType::kStats;
        EnqueueRead(std::move(job));
        return;
      }
      default:
        Respond(conn, MessageType::kError, id,
                EncodeErrorResult(Status::InvalidArgument(
                    std::string("server received a response frame (") +
                    MessageTypeToString(frame.header.type) + ")")));
        return;
    }
  }

  /// Flushes pending output; false when the connection is done.
  bool FlushTo(const ConnectionPtr& conn) {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    while (!conn->out.empty()) {
      ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                         MSG_NOSIGNAL);
      if (n > 0) {
        conn->out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return !conn->close_after_flush;
  }

  /// Appends one response frame to the connection's output buffer. Safe
  /// from any thread; the I/O thread performs the actual write. A
  /// payload over the wire ceiling (e.g. a query whose table outgrew
  /// 8 MiB) degrades to a structured error — it must never reach
  /// EncodeFrame's fatal check and take the whole service down.
  void Respond(const ConnectionPtr& conn, MessageType type, uint32_t id,
               const std::string& payload) {
    std::string frame;
    if (payload.size() > kMaxFramePayload) {
      frame = EncodeFrame(
          MessageType::kError, id,
          EncodeErrorResult(Status::OutOfRange(
              std::string(MessageTypeToString(type)) + " response of " +
              std::to_string(payload.size()) +
              " bytes exceeds the frame ceiling; narrow the request")));
    } else {
      frame = EncodeFrame(type, id, payload);
    }
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->out += frame;
    }
    Wake();
  }

  // --- Queues ----------------------------------------------------------------

  /// One queue unit per event, minimum one per frame — so event-free
  /// frames (Checkpoint, empty batches) are bounded too.
  static size_t UnitsOf(const IngestJob& job) {
    return std::max<size_t>(1, job.events.size());
  }

  void EnqueueIngest(IngestJob job) {
    const size_t units = UnitsOf(job);
    {
      std::lock_guard<std::mutex> lock(queues_mu_);
      if (queued_units_ + units > options_.max_queued_events) {
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(Status::FailedPrecondition(
                    "ingest queue full (" + std::to_string(queued_units_) +
                    " events queued); retry later")));
        return;
      }
      // Per-connection quota: one flooding client is refused on ITS
      // share long before it can exhaust the global budget and starve
      // every other connection.
      size_t& conn_units = conn_queued_units_[job.conn.get()];
      if (conn_units + units > options_.max_connection_queued_events) {
        if (conn_units == 0) conn_queued_units_.erase(job.conn.get());
        {
          std::lock_guard<std::mutex> stats_lock(coalescer_stats_mu_);
          ++coalescer_stats_.connection_quota_refusals;
        }
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(Status::FailedPrecondition(
                    "connection ingest quota full (" +
                    std::to_string(conn_units) +
                    " events queued on this connection); read responses or "
                    "retry later")));
        return;
      }
      conn_units += units;
      queued_units_ += units;
      ingest_queue_.push_back(std::move(job));
    }
    queues_cv_.notify_all();
  }

  /// Returns `units` of quota for `conn`. Caller holds queues_mu_.
  void ReleaseConnUnits(const Connection* conn, size_t units) {
    auto it = conn_queued_units_.find(conn);
    if (it == conn_queued_units_.end()) return;
    it->second -= std::min(it->second, units);
    if (it->second == 0) conn_queued_units_.erase(it);
  }

  void EnqueueRead(ReadJob job) {
    {
      std::lock_guard<std::mutex> lock(queues_mu_);
      if (read_queue_.size() >= options_.max_queued_reads) {
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(Status::FailedPrecondition(
                    "read queue full (" +
                    std::to_string(read_queue_.size()) +
                    " queries queued); retry later")));
        return;
      }
      read_queue_.push_back(std::move(job));
    }
    queues_cv_.notify_all();
  }

  // --- Ingest coalescer ------------------------------------------------------

  void CoalescerLoop() {
    while (true) {
      std::vector<IngestJob> group;
      {
        std::unique_lock<std::mutex> lock(queues_mu_);
        queues_cv_.wait(lock, [this] {
          return stopping_ || !ingest_queue_.empty();
        });
        if (ingest_queue_.empty()) {
          if (stopping_) return;  // Queue drained; done.
          continue;
        }
        // Coalescing selects at most ONE Apply/ApplyBatch frame per
        // connection per merged batch (the earliest queued), bounded by
        // max_coalesced_events. Merging across connections is the whole
        // point — it amortizes the sharded fan-out and group commit —
        // while one-frame-per-connection keeps batch-scoped alert
        // attribution exact: every alert a merged batch raises for a
        // connection's subjects was raised by that connection's one
        // frame in it. Per-connection FIFO is preserved (a connection's
        // later frames are skipped, never overtaken by its own), and
        // ApplyFix/Checkpoint act as per-connection barriers, applied
        // alone when they reach the front.
        IngestJob& front = ingest_queue_.front();
        if (front.type == MessageType::kApplyFix ||
            front.type == MessageType::kCheckpoint) {
          const size_t front_units = UnitsOf(front);
          queued_units_ -= front_units;
          ReleaseConnUnits(front.conn.get(), front_units);
          group.push_back(std::move(front));
          ingest_queue_.pop_front();
        } else {
          size_t events = 0;
          size_t units = 0;
          std::unordered_set<const Connection*> in_group;
          std::unordered_set<const Connection*> blocked;
          for (auto it = ingest_queue_.begin();
               it != ingest_queue_.end();) {
            const Connection* conn = it->conn.get();
            const bool barrier = it->type == MessageType::kApplyFix ||
                                 it->type == MessageType::kCheckpoint;
            if (barrier || blocked.count(conn) > 0 ||
                in_group.count(conn) > 0) {
              // This connection contributes nothing more this round.
              blocked.insert(conn);
              ++it;
              continue;
            }
            if (!group.empty() &&
                events + it->events.size() >
                    options_.max_coalesced_events) {
              break;
            }
            events += it->events.size();
            units += UnitsOf(*it);
            ReleaseConnUnits(conn, UnitsOf(*it));
            in_group.insert(conn);
            group.push_back(std::move(*it));
            it = ingest_queue_.erase(it);
          }
          queued_units_ -= units;
        }
      }
      const MessageType head = group.front().type;
      if (head == MessageType::kApplyFix) {
        ProcessFix(group.front());
      } else if (head == MessageType::kCheckpoint) {
        ProcessCheckpoint(group.front());
      } else {
        ProcessMergedBatch(&group);
      }
    }
  }

  void ProcessMergedBatch(std::vector<IngestJob>* group) {
    // Merge: each frame's events stay contiguous in arrival order, so
    // every connection's (hence every subject's, when subjects are not
    // shared across connections) time order is preserved.
    std::vector<AccessEvent> merged;
    std::vector<size_t> offsets;
    offsets.reserve(group->size());
    for (const IngestJob& job : *group) {
      offsets.push_back(merged.size());
      merged.insert(merged.end(), job.events.begin(), job.events.end());
    }

    Result<BatchResult> result = [&]() -> Result<BatchResult> {
      std::unique_lock<std::shared_mutex> lock(runtime_mu_);
      return runtime_->ApplyBatch(merged);
    }();
    {
      std::lock_guard<std::mutex> lock(coalescer_stats_mu_);
      ++coalescer_stats_.merged_batches;
      coalescer_stats_.merged_frames += group->size();
      coalescer_stats_.max_frames_per_batch = std::max(
          coalescer_stats_.max_frames_per_batch, group->size());
      coalescer_stats_.merged_events += merged.size();
    }
    if (!result.ok()) {
      // A whole-batch refusal: nothing was applied. A MERGED refusal can
      // be the coalescer's own doing (individually-legal frames summing
      // past the runtime's max_batch_events), so degrade to applying
      // each frame alone — every frame then gets its own accurate
      // verdict instead of inheriting its neighbors'. A single frame's
      // refusal is final.
      if (group->size() > 1) {
        for (IngestJob& job : *group) {
          std::vector<IngestJob> alone;
          alone.push_back(std::move(job));
          ProcessMergedBatch(&alone);
        }
        return;
      }
      const IngestJob& job = group->front();
      Respond(job.conn, MessageType::kError, job.request_id,
              EncodeErrorResult(result.status().WithContext(
                  "batch refused; nothing applied")));
      return;
    }

    // Demux decisions back to their frames by offset, and route alerts
    // by subject: an alert belongs to the first frame of this merge that
    // touched its subject. Alerts for subjects no frame touched (e.g.
    // raised by an earlier ApplyFix whose subject went quiet) wait in
    // pending_alerts_ for a later opportunity.
    std::unordered_map<SubjectId, size_t> owner;
    for (size_t i = 0; i < group->size(); ++i) {
      for (const AccessEvent& e : (*group)[i].events) {
        owner.emplace(e.subject, i);
      }
    }
    std::vector<std::vector<Alert>> routed(group->size());
    std::vector<Alert> still_pending;
    auto route = [&](std::vector<Alert>& alerts) {
      for (Alert& alert : alerts) {
        auto it = owner.find(alert.subject);
        if (it != owner.end()) {
          routed[it->second].push_back(std::move(alert));
        } else {
          still_pending.push_back(std::move(alert));
        }
      }
    };
    route(pending_alerts_);
    route(result->alerts);
    pending_alerts_ = std::move(still_pending);

    for (size_t i = 0; i < group->size(); ++i) {
      const IngestJob& job = (*group)[i];
      WireBatchResult wire;
      const size_t begin = offsets[i];
      const size_t end = begin + job.events.size();
      wire.decisions.assign(result->decisions.begin() + begin,
                            result->decisions.begin() + end);
      wire.alerts = std::move(routed[i]);
      SortAlerts(&wire.alerts);
      wire.durability = result->durability;
      wire.watermark = result->watermark;
      const MessageType type = job.type == MessageType::kApply
                                   ? MessageType::kApplyResult
                                   : MessageType::kBatchResult;
      Respond(job.conn, type, job.request_id, EncodeBatchResult(wire));
    }
  }

  void ProcessFix(const IngestJob& job) {
    WireFixResult wire;
    {
      std::unique_lock<std::shared_mutex> lock(runtime_mu_);
      wire.status = runtime_->ApplyFix(job.fix);
      std::vector<Alert> alerts = runtime_->DrainAlerts();
      for (Alert& alert : alerts) {
        if (alert.subject == job.fix.subject) {
          wire.alerts.push_back(std::move(alert));
        } else {
          pending_alerts_.push_back(std::move(alert));
        }
      }
    }
    Respond(job.conn, MessageType::kFixResult, job.request_id,
            EncodeFixResult(wire));
  }

  void ProcessCheckpoint(const IngestJob& job) {
    Status status;
    {
      std::unique_lock<std::shared_mutex> lock(runtime_mu_);
      status = runtime_->Checkpoint();
    }
    if (status.ok()) {
      Respond(job.conn, MessageType::kCheckpointResult, job.request_id, "");
    } else {
      Respond(job.conn, MessageType::kError, job.request_id,
              EncodeErrorResult(status));
    }
  }

  // --- Read workers ----------------------------------------------------------

  void ReadLoop() {
    while (true) {
      ReadJob job;
      {
        std::unique_lock<std::mutex> lock(queues_mu_);
        queues_cv_.wait(lock, [this] {
          return stopping_ || !read_queue_.empty();
        });
        if (read_queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        job = std::move(read_queue_.front());
        read_queue_.pop_front();
      }
      if (job.type == MessageType::kStats) {
        RuntimeStats stats;
        {
          std::shared_lock<std::shared_mutex> lock(runtime_mu_);
          stats = runtime_->Stats();
        }
        Respond(job.conn, MessageType::kStatsResult, job.request_id,
                EncodeStatsResult(stats));
        continue;
      }
      Result<QueryResult> result = [&]() -> Result<QueryResult> {
        std::shared_lock<std::shared_mutex> lock(runtime_mu_);
        return interpreter_->Run(job.statement);
      }();
      if (result.ok()) {
        Respond(job.conn, MessageType::kQueryResult, job.request_id,
                EncodeQueryResult(*result));
      } else {
        Respond(job.conn, MessageType::kError, job.request_id,
                EncodeErrorResult(result.status()));
      }
    }
  }

  AccessRuntime* const runtime_;
  const ServerOptions options_;
  std::unique_ptr<QueryInterpreter> interpreter_;

  bool started_ = false;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t bound_port_ = 0;

  std::thread io_thread_;
  std::thread coalescer_thread_;
  std::vector<std::thread> read_threads_;

  /// I/O-thread-only connection table.
  std::unordered_map<int, ConnectionPtr> connections_;

  /// Writers (coalescer) take it exclusive; readers (query/stats
  /// workers) take it shared. This is the entire concurrency contract
  /// between the runtime's single-control-thread discipline and the
  /// server's parallel read path.
  std::shared_mutex runtime_mu_;

  std::mutex queues_mu_;
  std::condition_variable queues_cv_;
  std::deque<IngestJob> ingest_queue_;
  std::deque<ReadJob> read_queue_;
  /// Queue units pending in ingest_queue_ (see UnitsOf).
  size_t queued_units_ = 0;
  /// Per-connection share of queued_units_, for the connection quota.
  /// Guarded by queues_mu_; keyed by raw pointer (jobs hold the
  /// ConnectionPtr alive until they leave the queue).
  std::unordered_map<const Connection*, size_t> conn_queued_units_;

  /// Coalescer-thread-only: alerts drained but not yet attributable to
  /// a frame (no frame in the merge touched their subject).
  std::vector<Alert> pending_alerts_;

  mutable std::mutex coalescer_stats_mu_;
  CoalescerStats coalescer_stats_;
};

ServiceServer::ServiceServer(AccessRuntime* runtime, ServerOptions options)
    : impl_(std::make_unique<Impl>(runtime, options)) {}

ServiceServer::~ServiceServer() = default;

Status ServiceServer::Start() { return impl_->Start(); }

void ServiceServer::Stop() { impl_->Stop(); }

uint16_t ServiceServer::bound_port() const { return impl_->bound_port(); }

CoalescerStats ServiceServer::coalescer_stats() const {
  return impl_->coalescer_stats();
}

}  // namespace ltam
