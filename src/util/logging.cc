// Copyright 2026 The LTAM Authors.

#include "util/logging.h"

#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

namespace ltam {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// A small stable per-thread id for log correlation. gettid(2) values
/// work too but are noisy (5-7 digits) and Linux-specific; a process-
/// local counter in order of first log line reads better.
uint32_t LogThreadId() {
  static std::atomic<uint32_t> next{1};
  static thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

Result<LogLevel> ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning" || name == "warn") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  return Status::InvalidArgument("unknown log level '" + name +
                                 "' (debug|info|warning|error)");
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_log_level.load(std::memory_order_relaxed)) {
    // Prefix is stamped at emit time, and the whole line goes out in ONE
    // fprintf so concurrent threads' lines interleave whole, never
    // character-by-character.
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    struct tm tm_buf;
    localtime_r(&tv.tv_sec, &tm_buf);
    char when[32];
    std::snprintf(when, sizeof(when), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                  tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                  tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                  static_cast<int>(tv.tv_usec / 1000));
    std::fprintf(stderr, "[%s %s t%u %s:%d] %s\n", LevelName(level_), when,
                 LogThreadId(), Basename(file_), line_,
                 stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace ltam
