// Copyright 2026 The LTAM Authors.
// Tests for the temporal operators of Definition 5.

#include "core/rules/temporal_op.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

TEST(WheneverTest, ReturnsInput) {
  WheneverOp op;
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(5, 20), 7));
  EXPECT_EQ(out, IntervalSet(TimeInterval(5, 20)));
  EXPECT_EQ(op.ToString(), "WHENEVER");
}

TEST(WheneverNotTest, ComplementWithinRuleValidity) {
  // "Given [t0, t1], returns [tr, t0-1] and [t1+1, inf]."
  WheneverNotOp op;
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(10, 20), 3));
  EXPECT_EQ(out.ToString(), "{[3, 9], [21, inf]}");
}

TEST(WheneverNotTest, EmptyLeftPieceDropped) {
  WheneverNotOp op;
  // tr = 10 == t0: no room before the interval.
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(10, 20), 10));
  EXPECT_EQ(out.ToString(), "{[21, inf]}");
  // tr inside the interval.
  ASSERT_OK_AND_ASSIGN(IntervalSet mid, op.Apply(TimeInterval(10, 20), 15));
  EXPECT_EQ(mid.ToString(), "{[21, inf]}");
}

TEST(WheneverNotTest, UnboundedInputLeavesOnlyLeftPiece) {
  WheneverNotOp op;
  ASSERT_OK_AND_ASSIGN(IntervalSet out,
                       op.Apply(TimeInterval::From(100), 0));
  EXPECT_EQ(out.ToString(), "{[0, 99]}");
  // Fully unbounded input complements to nothing.
  ASSERT_OK_AND_ASSIGN(IntervalSet none, op.Apply(TimeInterval::All(), 0));
  EXPECT_TRUE(none.empty());
}

TEST(UnionTest, MergesWhenOverlapping) {
  // "UNION returns [t0,t3] if t2 <= t1."
  UnionOp op(TimeInterval(15, 30));
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(5, 20), 0));
  EXPECT_EQ(out.ToString(), "{[5, 30]}");
  EXPECT_EQ(op.ToString(), "UNION([15, 30])");
}

TEST(UnionTest, KeepsBothWhenDisjoint) {
  // "... or [t0,t1] and [t2,t3] if t2 > t1."
  UnionOp op(TimeInterval(40, 50));
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(5, 20), 0));
  EXPECT_EQ(out.ToString(), "{[5, 20], [40, 50]}");
}

TEST(IntersectionTest, PaperExample2) {
  // INTERSECTION([10, 30]) applied to base entry [5, 20] yields [10, 20].
  IntersectionOp op(TimeInterval(10, 30));
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(5, 20), 0));
  EXPECT_EQ(out.ToString(), "{[10, 20]}");
  EXPECT_EQ(op.ToString(), "INTERSECTION([10, 30])");
}

TEST(IntersectionTest, DisjointYieldsNull) {
  IntersectionOp op(TimeInterval(30, 40));
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(5, 20), 0));
  EXPECT_TRUE(out.empty());
}

TEST(ShiftTest, TranslatesInterval) {
  ShiftOp op(10);
  ASSERT_OK_AND_ASSIGN(IntervalSet out, op.Apply(TimeInterval(5, 20), 0));
  EXPECT_EQ(out.ToString(), "{[15, 30]}");
  ShiftOp back(-5);
  ASSERT_OK_AND_ASSIGN(IntervalSet out2, back.Apply(TimeInterval(5, 20), 0));
  EXPECT_EQ(out2.ToString(), "{[0, 15]}");
  // Infinity stays infinity.
  ASSERT_OK_AND_ASSIGN(IntervalSet open, op.Apply(TimeInterval::From(5), 0));
  EXPECT_EQ(open.ToString(), "{[15, inf]}");
}

TEST(ParseTemporalOperatorTest, AllForms) {
  ASSERT_OK_AND_ASSIGN(TemporalOperatorPtr w,
                       ParseTemporalOperator("whenever"));
  EXPECT_EQ(w->ToString(), "WHENEVER");
  ASSERT_OK_AND_ASSIGN(TemporalOperatorPtr wn,
                       ParseTemporalOperator("WHENEVERNOT"));
  EXPECT_EQ(wn->ToString(), "WHENEVERNOT");
  ASSERT_OK_AND_ASSIGN(TemporalOperatorPtr u,
                       ParseTemporalOperator("UNION([1, 2])"));
  EXPECT_EQ(u->ToString(), "UNION([1, 2])");
  ASSERT_OK_AND_ASSIGN(TemporalOperatorPtr i,
                       ParseTemporalOperator("intersection([10, 30])"));
  EXPECT_EQ(i->ToString(), "INTERSECTION([10, 30])");
  ASSERT_OK_AND_ASSIGN(TemporalOperatorPtr s,
                       ParseTemporalOperator("SHIFT(5)"));
  EXPECT_EQ(s->ToString(), "SHIFT(5)");
}

TEST(ParseTemporalOperatorTest, Rejects) {
  EXPECT_TRUE(ParseTemporalOperator("never").status().IsParseError());
  EXPECT_TRUE(ParseTemporalOperator("UNION").status().IsParseError());
  EXPECT_TRUE(ParseTemporalOperator("UNION([2, 1])").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseTemporalOperator("SHIFT(x)").status().IsParseError());
}

}  // namespace
}  // namespace ltam
