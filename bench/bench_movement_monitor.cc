// Copyright 2026 The LTAM Authors.
//
// Monitoring-path benchmarks: position-fix resolution through the spatial
// index, presence-observation processing, overstay patrol ticks, and the
// contact-tracing query of the Section 1 scenario.

#include <benchmark/benchmark.h>

#include "engine/access_control_engine.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

/// A grid site with physical boundaries (10m rooms) and blanket access.
World MakeWorld(uint32_t side, uint32_t subjects) {
  World w;
  w.graph = MakeGridGraph(side, side).ValueOrDie();
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      LocationId room =
          w.graph.Find("R" + std::to_string(x) + "_" + std::to_string(y))
              .ValueOrDie();
      Status st = w.graph.SetBoundary(
          room, Polygon::Rect(x * 10.0, y * 10.0, x * 10.0 + 10, y * 10.0 + 10));
      (void)st;
    }
  }
  w.subjects = GenerateSubjects(&w.profiles, subjects);
  for (SubjectId s : w.subjects) {
    for (LocationId l : w.graph.Primitives()) {
      w.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(0, kChrononMax),
                        TimeInterval(0, kChrononMax),
                        LocationAuthorization{s, l}, kUnlimitedEntries)
                        .ValueOrDie());
    }
  }
  return w;
}

void BM_PositionFixResolution(benchmark::State& state) {
  World w = MakeWorld(static_cast<uint32_t>(state.range(0)), 1);
  LocationResolver resolver = LocationResolver::Build(w.graph).ValueOrDie();
  Rng rng(7);
  double extent = state.range(0) * 10.0;
  for (auto _ : state) {
    Point p{rng.UniformDouble() * extent, rng.UniformDouble() * extent};
    benchmark::DoNotOptimize(resolver.Resolve(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PositionFixResolution)->Arg(8)->Arg(32)->Arg(64);

void BM_EnginePositionFixPipeline(benchmark::State& state) {
  World w = MakeWorld(16, 8);
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  engine.AttachResolver(LocationResolver::Build(w.graph).ValueOrDie());
  Rng rng(8);
  Chronon t = 0;
  for (auto _ : state) {
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    Point p{rng.UniformDouble() * 160.0, rng.UniformDouble() * 160.0};
    engine.HandlePositionFix({++t, s, p});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["alerts"] = static_cast<double>(engine.alerts().size());
}
BENCHMARK(BM_EnginePositionFixPipeline);

void BM_OverstayPatrolTick(benchmark::State& state) {
  World w = MakeWorld(8, static_cast<uint32_t>(state.range(0)));
  MovementDatabase movements;
  AccessControlEngine engine(&w.graph, &w.auth_db, &movements, &w.profiles);
  // Everyone inside the entry room.
  Chronon t = 0;
  LocationId door = w.graph.EntryPrimitives(w.graph.root())[0];
  for (SubjectId s : w.subjects) engine.RequestEntry(++t, s, door);
  for (auto _ : state) {
    engine.Tick(++t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_OverstayPatrolTick)->Arg(16)->Arg(256)->Arg(1024);

void BM_ContactTracing(benchmark::State& state) {
  World w = MakeWorld(8, static_cast<uint32_t>(state.range(0)));
  MovementDatabase movements;
  // A day of random co-movement.
  Rng rng(11);
  Chronon t = 0;
  std::vector<LocationId> prims = w.graph.Primitives();
  for (int step = 0; step < 64; ++step) {
    for (SubjectId s : w.subjects) {
      Status st = movements.RecordMovement(
          ++t, s, prims[rng.Uniform(prims.size())]);
      (void)st;
    }
  }
  for (auto _ : state) {
    SubjectId s = w.subjects[rng.Uniform(w.subjects.size())];
    benchmark::DoNotOptimize(
        movements.ContactsOf(s, TimeInterval(0, t), 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ContactTracing)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
