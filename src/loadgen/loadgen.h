// Copyright 2026 The LTAM Authors.
// Open-loop load generator for ltam-serve.
//
// Closed-loop benchmarks (bench_service.cc) send the next request when
// the previous response returns, so a slow server silently slows the
// *offered* load and the measured latency distribution omits exactly
// the requests that would have hurt — coordinated omission. This
// harness is open-loop instead: every arrival has a pre-computed
// scheduled time drawn from a seeded Poisson process at the target
// rate, requests are sent as close to their schedule as the pipe
// allows, and latency is measured from the SCHEDULED arrival time, not
// the send time. A server that falls behind therefore accrues queueing
// delay in the recorded percentiles, exactly as a real arrival stream
// would experience it.
//
// One worker thread per connection, each owning a ServiceClient, the
// scenario's matching event stream (subjects are disjoint across
// streams, so coalesced server-side merges preserve per-subject time
// order), a deterministic arrival schedule, and a private
// LatencyHistogram — merged into the report when the run ends. Sends
// are pipelined up to max_in_flight frames; responses are harvested
// with PollBatchResult while idling until the next scheduled arrival.

#ifndef LTAM_LOADGEN_LOADGEN_H_
#define LTAM_LOADGEN_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/latency_histogram.h"
#include "sim/workload.h"
#include "util/result.h"

namespace ltam {

/// Parameters of one open-loop run against a live server.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 7447;
  /// When nonempty, the scenario's query mix is sent to this endpoint
  /// over a second per-worker connection instead of the ingest
  /// endpoint — point it at a read replica while ingest flows to the
  /// primary. Queries then overlap the pipelined ingest stream (no
  /// drain barrier), so read latency is measured without stalling the
  /// primary's pipe. Replica answers may trail ingest by replication
  /// lag; the harness measures latency, it does not assert answers.
  std::string query_host;
  uint16_t query_port = 0;
  /// Target event arrival rate, events/second summed over every
  /// connection. Arrival gaps are exponential (Poisson process) unless
  /// the scenario carries a burst shape (LoadScenario::burst_*), which
  /// confines arrivals to duty windows at compensated in-window rate.
  double rate = 2000.0;
  /// Worker threads = TCP connections. Must equal the scenario's
  /// stream count (each stream's subjects are private to one
  /// connection).
  uint32_t connections = 1;
  /// Pipelined frames in flight per connection before a send blocks on
  /// harvesting a response. The block shows up as schedule lag — and
  /// therefore in recorded latency — never as a reduced offered rate.
  size_t max_in_flight = 64;
  /// Seed for arrival-gap sampling and the query/ingest mix (distinct
  /// from the scenario seed: the same world can be driven by different
  /// arrival schedules).
  uint64_t schedule_seed = 1;
  /// When > 0, connection 0 drains its pipe and issues a Checkpoint
  /// before every N-th of its frames — the soak driver: retention and
  /// compaction run at checkpoint, so a long run needs periodic
  /// checkpoints to exhibit its plateau. 0 keeps checkpoints tied to
  /// the scenario's mutation schedule only.
  size_t checkpoint_every_frames = 0;
};

/// What one run measured. Histograms record nanoseconds from scheduled
/// arrival to response receipt.
struct LoadReport {
  LatencyHistogram ingest_latency;
  LatencyHistogram query_latency;

  uint64_t frames_sent = 0;
  uint64_t events_sent = 0;
  /// Events in frames the server accepted (decision received).
  uint64_t events_admitted = 0;
  uint64_t grants = 0;
  uint64_t denials = 0;
  /// Frames the server refused at its per-connection ingest quota
  /// (kFailedPrecondition) — the overload signal — and the events they
  /// carried.
  uint64_t quota_refused_frames = 0;
  uint64_t quota_refused_events = 0;
  uint64_t queries_sent = 0;
  uint64_t checkpoints = 0;
  uint64_t alerts = 0;
  /// Arrivals whose send started after their scheduled time (the
  /// open-loop lag signal) and the worst lag observed.
  uint64_t late_sends = 0;
  uint64_t max_sched_lag_ns = 0;

  double wall_seconds = 0.0;
  /// events_sent / wall_seconds — compare against the target rate to
  /// see whether the harness kept up with its own schedule.
  double achieved_event_rate = 0.0;
};

/// The deterministic arrival schedule: `arrivals` offsets in
/// nanoseconds from run start, strictly nondecreasing, exponential
/// gaps at `rate_per_sec`, reshaped into on/off bursts when
/// burst_period_ms > 0 and burst_duty < 1 (arrival mass is confined to
/// the first `burst_duty` of each period at compensated rate; the mean
/// rate is unchanged). Identical for identical arguments — across
/// processes and runs.
std::vector<uint64_t> BuildArrivalScheduleNs(size_t arrivals,
                                             double rate_per_sec,
                                             double burst_duty,
                                             uint64_t burst_period_ms,
                                             uint64_t seed);

/// Drives `scenario` against a live server per `options`, blocking
/// until every stream is drained and every in-flight response
/// harvested. Fails fast on connection errors; server quota refusals
/// are counted, not failed. options.connections must equal
/// scenario.streams.size().
Result<LoadReport> RunLoad(const LoadScenario& scenario,
                           const LoadGenOptions& options);

}  // namespace ltam

#endif  // LTAM_LOADGEN_LOADGEN_H_
