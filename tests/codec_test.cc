// Copyright 2026 The LTAM Authors.

#include "storage/codec.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ltam {
namespace {

TEST(CodecTest, EscapeRoundTrip) {
  std::string nasty = "a\tb\nc\rd\\e";
  std::string escaped = EscapeField(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  ASSERT_OK_AND_ASSIGN(std::string back, UnescapeField(escaped));
  EXPECT_EQ(back, nasty);
}

TEST(CodecTest, EscapePlainIsIdentity) {
  EXPECT_EQ(EscapeField("SCE.GO"), "SCE.GO");
  ASSERT_OK_AND_ASSIGN(std::string back, UnescapeField("SCE.GO"));
  EXPECT_EQ(back, "SCE.GO");
}

TEST(CodecTest, UnescapeRejectsBadEscapes) {
  EXPECT_TRUE(UnescapeField("abc\\").status().IsParseError());
  EXPECT_TRUE(UnescapeField("a\\qb").status().IsParseError());
}

TEST(CodecTest, RecordRoundTrip) {
  Record rec{"auth", {"1", "[5, 20]", "Alice\tBob", ""}};
  std::string line = EncodeRecord(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  ASSERT_OK_AND_ASSIGN(Record back, DecodeRecord(line));
  EXPECT_EQ(back.type, rec.type);
  EXPECT_EQ(back.fields, rec.fields);
}

TEST(CodecTest, RecordWithNoFields) {
  Record rec{"checkpoint", {}};
  ASSERT_OK_AND_ASSIGN(Record back, DecodeRecord(EncodeRecord(rec)));
  EXPECT_EQ(back.type, "checkpoint");
  EXPECT_TRUE(back.fields.empty());
}

TEST(CodecTest, DecodeRejectsEmptyLine) {
  EXPECT_TRUE(DecodeRecord("").status().IsParseError());
}

TEST(CodecTest, FieldsContainingEscapedTabsStaySeparate) {
  Record rec{"t", {"a\tb", "c"}};
  ASSERT_OK_AND_ASSIGN(Record back, DecodeRecord(EncodeRecord(rec)));
  ASSERT_EQ(back.fields.size(), 2u);
  EXPECT_EQ(back.fields[0], "a\tb");
  EXPECT_EQ(back.fields[1], "c");
}

}  // namespace
}  // namespace ltam
