// Copyright 2026 The LTAM Authors.

#include "time/interval.h"

#include <algorithm>

#include "util/string_util.h"

namespace ltam {

std::string ChrononToString(Chronon t) {
  if (t == kChrononMax) return "inf";
  if (t == kChrononMin) return "-inf";
  return std::to_string(t);
}

Result<Chronon> ParseChronon(const std::string& text) {
  std::string t = Trim(text);
  if (EqualsIgnoreCase(t, "inf") || EqualsIgnoreCase(t, "+inf") ||
      t == "oo" || t == "+oo") {
    return kChrononMax;
  }
  if (EqualsIgnoreCase(t, "-inf") || t == "-oo") return kChrononMin;
  LTAM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(t));
  return static_cast<Chronon>(v);
}

Result<TimeInterval> TimeInterval::Make(Chronon start, Chronon end) {
  if (start > end) {
    return Status::InvalidArgument(
        StrFormat("interval start %lld exceeds end %lld",
                  static_cast<long long>(start),
                  static_cast<long long>(end)));
  }
  return TimeInterval(start, end);
}

Chronon TimeInterval::size() const {
  if (!valid()) return 0;
  if (end_ == kChrononMax || start_ == kChrononMin) return kChrononMax;
  return ChrononAdd(ChrononSub(end_, start_), 1);
}

bool TimeInterval::Mergeable(const TimeInterval& other) const {
  if (Overlaps(other)) return true;
  // Adjacent integer intervals merge: [a,b] + [b+1,c].
  if (end_ != kChrononMax && ChrononAdd(end_, 1) == other.start_) return true;
  if (other.end_ != kChrononMax && ChrononAdd(other.end_, 1) == start_) {
    return true;
  }
  return false;
}

std::optional<TimeInterval> TimeInterval::Intersect(
    const TimeInterval& other) const {
  Chronon s = std::max(start_, other.start_);
  Chronon e = std::min(end_, other.end_);
  if (s > e) return std::nullopt;
  return TimeInterval(s, e);
}

std::optional<TimeInterval> TimeInterval::MergeWith(
    const TimeInterval& other) const {
  if (!Mergeable(other)) return std::nullopt;
  return TimeInterval(std::min(start_, other.start_),
                      std::max(end_, other.end_));
}

std::string TimeInterval::ToString() const {
  return "[" + ChrononToString(start_) + ", " + ChrononToString(end_) + "]";
}

Result<TimeInterval> TimeInterval::Parse(const std::string& text) {
  std::string t = Trim(text);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    return Status::ParseError("interval must look like '[a, b]': '" + t +
                              "'");
  }
  std::vector<std::string> parts = Split(t.substr(1, t.size() - 2), ',');
  if (parts.size() != 2) {
    return Status::ParseError("interval must have two endpoints: '" + t +
                              "'");
  }
  LTAM_ASSIGN_OR_RETURN(Chronon s, ParseChronon(parts[0]));
  LTAM_ASSIGN_OR_RETURN(Chronon e, ParseChronon(parts[1]));
  return Make(s, e);
}

}  // namespace ltam
