// Copyright 2026 The LTAM Authors.
// Recursive-descent parser and evaluator for entry-count expressions.

#include "core/rules/count_expr.h"

#include <cctype>

#include "core/authorization.h"
#include "util/string_util.h"

namespace ltam {

namespace {

/// Saturating arithmetic treating kUnlimitedEntries as +infinity.
int64_t SatAdd(int64_t a, int64_t b) {
  if (a == kUnlimitedEntries || b == kUnlimitedEntries) {
    return kUnlimitedEntries;
  }
  if (a > 0 && b > kUnlimitedEntries - a) return kUnlimitedEntries;
  if (a < 0 && b < INT64_MIN - a) return INT64_MIN;
  return a + b;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == kUnlimitedEntries || b == kUnlimitedEntries) {
    return kUnlimitedEntries;
  }
  if (a == 0 || b == 0) return 0;
  if (a > kUnlimitedEntries / b && b > 0 && a > 0) return kUnlimitedEntries;
  return a * b;
}

}  // namespace

struct CountExpr::Node {
  enum class Kind { kConst, kVar, kAdd, kSub, kMul, kDiv, kMin, kMax };
  Kind kind = Kind::kConst;
  int64_t value = 0;  // For kConst.
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;

  std::unique_ptr<Node> Clone() const {
    auto out = std::make_unique<Node>();
    out->kind = kind;
    out->value = value;
    if (lhs) out->lhs = lhs->Clone();
    if (rhs) out->rhs = rhs->Clone();
    return out;
  }

  int64_t Eval(int64_t n) const {
    switch (kind) {
      case Kind::kConst:
        return value;
      case Kind::kVar:
        return n;
      case Kind::kAdd:
        return SatAdd(lhs->Eval(n), rhs->Eval(n));
      case Kind::kSub: {
        int64_t r = rhs->Eval(n);
        if (r == kUnlimitedEntries) return 0;  // n - inf clamps low.
        return SatAdd(lhs->Eval(n), -r);
      }
      case Kind::kMul:
        return SatMul(lhs->Eval(n), rhs->Eval(n));
      case Kind::kDiv: {
        int64_t l = lhs->Eval(n);
        int64_t r = rhs->Eval(n);
        if (r == 0) return l;  // Clamped later anyway; avoid UB.
        if (l == kUnlimitedEntries) {
          return r == kUnlimitedEntries ? 1 : kUnlimitedEntries;
        }
        if (r == kUnlimitedEntries) return 0;
        return l / r;
      }
      case Kind::kMin: {
        int64_t l = lhs->Eval(n);
        int64_t r = rhs->Eval(n);
        return l < r ? l : r;
      }
      case Kind::kMax: {
        int64_t l = lhs->Eval(n);
        int64_t r = rhs->Eval(n);
        return l > r ? l : r;
      }
    }
    return 0;
  }
};

namespace {

/// Token-free recursive-descent parser over the raw string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::unique_ptr<CountExpr::Node>> Parse() {
    auto expr = ParseAddSub();
    if (!expr.ok()) return expr.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters in count expression: '" +
                                text_.substr(pos_) + "'");
    }
    return expr;
  }

 private:
  using NodePtr = std::unique_ptr<CountExpr::Node>;
  using Kind = CountExpr::Node::Kind;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static NodePtr MakeBinary(Kind kind, NodePtr lhs, NodePtr rhs) {
    auto node = std::make_unique<CountExpr::Node>();
    node->kind = kind;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<NodePtr> ParseAddSub() {
    auto lhs = ParseMulDiv();
    if (!lhs.ok()) return lhs.status();
    NodePtr node = std::move(lhs).ValueOrDie();
    while (true) {
      if (Consume('+')) {
        auto rhs = ParseMulDiv();
        if (!rhs.ok()) return rhs.status();
        node = MakeBinary(Kind::kAdd, std::move(node),
                          std::move(rhs).ValueOrDie());
      } else if (Consume('-')) {
        auto rhs = ParseMulDiv();
        if (!rhs.ok()) return rhs.status();
        node = MakeBinary(Kind::kSub, std::move(node),
                          std::move(rhs).ValueOrDie());
      } else {
        return node;
      }
    }
  }

  Result<NodePtr> ParseMulDiv() {
    auto lhs = ParseAtom();
    if (!lhs.ok()) return lhs.status();
    NodePtr node = std::move(lhs).ValueOrDie();
    while (true) {
      if (Consume('*')) {
        auto rhs = ParseAtom();
        if (!rhs.ok()) return rhs.status();
        node = MakeBinary(Kind::kMul, std::move(node),
                          std::move(rhs).ValueOrDie());
      } else if (Consume('/')) {
        auto rhs = ParseAtom();
        if (!rhs.ok()) return rhs.status();
        node = MakeBinary(Kind::kDiv, std::move(node),
                          std::move(rhs).ValueOrDie());
      } else {
        return node;
      }
    }
  }

  Result<NodePtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of count expression");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto inner = ParseAddSub();
      if (!inner.ok()) return inner.status();
      if (!Consume(')')) {
        return Status::ParseError("missing ')' in count expression");
      }
      return inner;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      LTAM_ASSIGN_OR_RETURN(int64_t v,
                            ParseInt64(text_.substr(start, pos_ - start)));
      auto node = std::make_unique<CountExpr::Node>();
      node->kind = Kind::kConst;
      node->value = v;
      return node;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      std::string word = ToLower(text_.substr(start, pos_ - start));
      if (word == "n") {
        auto node = std::make_unique<CountExpr::Node>();
        node->kind = Kind::kVar;
        return node;
      }
      if (word == "inf" || word == "oo") {
        auto node = std::make_unique<CountExpr::Node>();
        node->kind = Kind::kConst;
        node->value = kUnlimitedEntries;
        return node;
      }
      if (word == "min" || word == "max") {
        if (!Consume('(')) {
          return Status::ParseError("expected '(' after '" + word + "'");
        }
        auto a = ParseAddSub();
        if (!a.ok()) return a.status();
        if (!Consume(',')) {
          return Status::ParseError("expected ',' in '" + word + "(a, b)'");
        }
        auto b = ParseAddSub();
        if (!b.ok()) return b.status();
        if (!Consume(')')) {
          return Status::ParseError("missing ')' after '" + word + "(a, b'");
        }
        return MakeBinary(word == "min" ? Kind::kMin : Kind::kMax,
                          std::move(a).ValueOrDie(),
                          std::move(b).ValueOrDie());
      }
      return Status::ParseError("unknown identifier '" + word +
                                "' in count expression");
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in count expression");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

CountExpr::CountExpr(std::unique_ptr<Node> root, std::string text)
    : root_(std::move(root)), text_(std::move(text)) {}

CountExpr::CountExpr(const CountExpr& other)
    : root_(other.root_ ? other.root_->Clone() : nullptr),
      text_(other.text_) {}

CountExpr& CountExpr::operator=(const CountExpr& other) {
  if (this != &other) {
    root_ = other.root_ ? other.root_->Clone() : nullptr;
    text_ = other.text_;
  }
  return *this;
}

CountExpr::CountExpr(CountExpr&&) noexcept = default;
CountExpr& CountExpr::operator=(CountExpr&&) noexcept = default;
CountExpr::~CountExpr() = default;

Result<CountExpr> CountExpr::Parse(const std::string& text) {
  Parser parser(text);
  auto root = parser.Parse();
  if (!root.ok()) return root.status();
  return CountExpr(std::move(root).ValueOrDie(), text);
}

CountExpr CountExpr::Identity() {
  Result<CountExpr> r = Parse("n");
  return std::move(r).ValueOrDie();
}

int64_t CountExpr::Eval(int64_t n) const {
  int64_t v = root_->Eval(n);
  // Definition 4: the range of entry is [1, inf).
  return v < 1 ? 1 : v;
}

}  // namespace ltam
