// Copyright 2026 The LTAM Authors.

#include "profile/user_profile.h"

#include "util/logging.h"

namespace ltam {

Result<SubjectId> UserProfileDatabase::AddSubject(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("subject name must be nonempty");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("subject '" + name + "' already exists");
  }
  SubjectId id = static_cast<SubjectId>(subjects_.size());
  Subject s;
  s.id = id;
  s.name = name;
  subjects_.push_back(std::move(s));
  by_name_.emplace(name, id);
  ++version_;
  return id;
}

Result<SubjectId> UserProfileDatabase::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no subject named '" + name + "'");
  }
  return it->second;
}

const Subject& UserProfileDatabase::subject(SubjectId id) const {
  LTAM_CHECK(Exists(id)) << "subject id " << id << " out of range";
  return subjects_[id];
}

std::vector<SubjectId> UserProfileDatabase::AllSubjects() const {
  std::vector<SubjectId> out(subjects_.size());
  for (SubjectId i = 0; i < subjects_.size(); ++i) out[i] = i;
  return out;
}

Status UserProfileDatabase::SetSupervisor(SubjectId s, SubjectId supervisor) {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  if (supervisor != kInvalidSubject) {
    if (!Exists(supervisor)) {
      return Status::NotFound("supervisor does not exist");
    }
    if (supervisor == s) {
      return Status::InvalidArgument("subject cannot supervise themselves");
    }
    // Reject cycles: walking up from `supervisor` must not reach `s`.
    SubjectId cur = supervisor;
    while (cur != kInvalidSubject) {
      if (cur == s) {
        return Status::InvalidArgument(
            "supervision cycle: '" + subjects_[supervisor].name +
            "' is (transitively) supervised by '" + subjects_[s].name + "'");
      }
      cur = subjects_[cur].supervisor;
    }
  }
  subjects_[s].supervisor = supervisor;
  ++version_;
  return Status::OK();
}

Result<SubjectId> UserProfileDatabase::SupervisorOf(SubjectId s) const {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  if (subjects_[s].supervisor == kInvalidSubject) {
    return Status::NotFound("subject '" + subjects_[s].name +
                            "' has no supervisor");
  }
  return subjects_[s].supervisor;
}

std::vector<SubjectId> UserProfileDatabase::SubordinatesOf(
    SubjectId s) const {
  std::vector<SubjectId> out;
  for (const Subject& sub : subjects_) {
    if (sub.supervisor == s) out.push_back(sub.id);
  }
  return out;
}

std::vector<SubjectId> UserProfileDatabase::ManagementChain(
    SubjectId s) const {
  std::vector<SubjectId> out;
  if (!Exists(s)) return out;
  SubjectId cur = subjects_[s].supervisor;
  while (cur != kInvalidSubject) {
    out.push_back(cur);
    cur = subjects_[cur].supervisor;
  }
  return out;
}

Status UserProfileDatabase::AddToGroup(SubjectId s, const std::string& group) {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  if (group.empty()) return Status::InvalidArgument("group name empty");
  subjects_[s].groups.insert(group);
  group_members_[group].insert(s);
  ++version_;
  return Status::OK();
}

Status UserProfileDatabase::RemoveFromGroup(SubjectId s,
                                            const std::string& group) {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  subjects_[s].groups.erase(group);
  auto it = group_members_.find(group);
  if (it != group_members_.end()) it->second.erase(s);
  ++version_;
  return Status::OK();
}

std::vector<SubjectId> UserProfileDatabase::MembersOfGroup(
    const std::string& group) const {
  auto it = group_members_.find(group);
  if (it == group_members_.end()) return {};
  return std::vector<SubjectId>(it->second.begin(), it->second.end());
}

bool UserProfileDatabase::IsInGroup(SubjectId s,
                                    const std::string& group) const {
  return Exists(s) && subjects_[s].groups.count(group) > 0;
}

Status UserProfileDatabase::AssignRole(SubjectId s, const std::string& role) {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  if (role.empty()) return Status::InvalidArgument("role name empty");
  subjects_[s].roles.insert(role);
  role_members_[role].insert(s);
  ++version_;
  return Status::OK();
}

Status UserProfileDatabase::RevokeRole(SubjectId s, const std::string& role) {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  subjects_[s].roles.erase(role);
  auto it = role_members_.find(role);
  if (it != role_members_.end()) it->second.erase(s);
  ++version_;
  return Status::OK();
}

std::vector<SubjectId> UserProfileDatabase::SubjectsWithRole(
    const std::string& role) const {
  auto it = role_members_.find(role);
  if (it == role_members_.end()) return {};
  return std::vector<SubjectId>(it->second.begin(), it->second.end());
}

bool UserProfileDatabase::HasRole(SubjectId s, const std::string& role) const {
  return Exists(s) && subjects_[s].roles.count(role) > 0;
}

Status UserProfileDatabase::SetAttribute(SubjectId s, const std::string& key,
                                         const std::string& value) {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  if (key.empty()) return Status::InvalidArgument("attribute key empty");
  subjects_[s].attributes[key] = value;
  ++version_;
  return Status::OK();
}

Result<std::string> UserProfileDatabase::GetAttribute(
    SubjectId s, const std::string& key) const {
  if (!Exists(s)) return Status::NotFound("subject does not exist");
  auto it = subjects_[s].attributes.find(key);
  if (it == subjects_[s].attributes.end()) {
    return Status::NotFound("attribute '" + key + "' unset for '" +
                            subjects_[s].name + "'");
  }
  return it->second;
}

}  // namespace ltam
