// Copyright 2026 The LTAM Authors.

#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>

namespace ltam {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Extracts host/port from the ` [primary=host:port]` token a demoted
/// runtime appends to its write refusals (protocol v6). Strict: an
/// absent, unterminated, or malformed token returns false so the
/// caller surfaces the refusal instead of dialing garbage.
bool ParsePrimaryToken(const std::string& message, std::string* host,
                       uint16_t* port) {
  static constexpr char kToken[] = "[primary=";
  const size_t begin = message.rfind(kToken);
  if (begin == std::string::npos) return false;
  const size_t value = begin + sizeof(kToken) - 1;
  const size_t end = message.find(']', value);
  if (end == std::string::npos) return false;
  const std::string endpoint = message.substr(value, end - value);
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return false;
  }
  uint32_t parsed = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint32_t>(c - '0');
    if (parsed > 65535) return false;
  }
  if (parsed == 0) return false;
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

}  // namespace

ServiceClient::ServiceClient(int fd) : fd_(fd) {}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st.WithContext("connecting to " + host + ":" +
                          std::to_string(port));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ServiceClient>(new ServiceClient(fd));
}

Status ServiceClient::SendFrame(MessageType type, uint32_t request_id,
                                const std::string& payload) {
  // A sync call flushes any pipelined backlog first so frames leave in
  // submission order.
  send_buffer_ += EncodeFrame(type, request_id, payload);
  return Flush();
}

Result<Frame> ServiceClient::ReceiveFrameRaw() {
  while (true) {
    Result<std::optional<Frame>> next = assembler_.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) return std::move(**next);
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<Frame> ServiceClient::ReceiveFrame() {
  while (true) {
    LTAM_ASSIGN_OR_RETURN(Frame frame, ReceiveFrameRaw());
    if (frame.header.type != MessageType::kAlertPush) return frame;
    // A server-initiated alert push (its shutdown drain) can land
    // between any request and its response; stash it for
    // TakePushedAlerts instead of confusing the caller.
    LTAM_ASSIGN_OR_RETURN(std::vector<Alert> alerts,
                          DecodeAlertPush(frame.payload));
    pushed_alerts_.insert(pushed_alerts_.end(),
                          std::make_move_iterator(alerts.begin()),
                          std::make_move_iterator(alerts.end()));
  }
}

Result<Frame> ServiceClient::ReceiveResponse(uint32_t request_id,
                                             MessageType expected_type) {
  LTAM_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  if (frame.header.request_id != request_id) {
    return Status::Internal(
        "response for request " + std::to_string(frame.header.request_id) +
        " while waiting for " + std::to_string(request_id) +
        " (sync calls must not interleave with unreceived pipelined "
        "submissions)");
  }
  if (frame.header.type == MessageType::kError) {
    Status error;
    LTAM_RETURN_IF_ERROR(DecodeErrorResult(frame.payload, &error));
    return error;
  }
  if (frame.header.type != expected_type) {
    return Status::Internal(std::string("expected a ") +
                            MessageTypeToString(expected_type) +
                            " response, got " +
                            MessageTypeToString(frame.header.type));
  }
  return frame;
}

Status ServiceClient::Ping() {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(MessageType::kPing, id, ""));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kPong));
  if (!frame.payload.empty()) {
    return Status::ParseError("pong: unexpected payload");
  }
  return Status::OK();
}

Result<WireBatchResult> ServiceClient::ApplyOnce(const AccessEvent& event) {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(
      SendFrame(MessageType::kApply, id, EncodeApplyRequest(event)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kApplyResult));
  LTAM_ASSIGN_OR_RETURN(WireBatchResult result,
                        DecodeBatchResult(frame.payload));
  if (result.decisions.size() != 1) {
    return Status::ParseError("apply-result: expected exactly one decision");
  }
  return result;
}

Result<WireBatchResult> ServiceClient::Apply(const AccessEvent& event) {
  Result<WireBatchResult> first = ApplyOnce(event);
  if (first.ok() || !FollowPrimaryRedirect(first.status())) return first;
  return ApplyOnce(event);
}

Result<WireBatchResult> ServiceClient::ApplyBatchOnce(
    Span<const AccessEvent> events) {
  if (events.size() > kMaxWireBatchEvents) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(events.size()) + " events over the " +
        std::to_string(kMaxWireBatchEvents) + " per-frame wire ceiling");
  }
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(MessageType::kApplyBatch, id,
                                 EncodeApplyBatchRequest(events)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kBatchResult));
  LTAM_ASSIGN_OR_RETURN(WireBatchResult result,
                        DecodeBatchResult(frame.payload));
  if (result.decisions.size() != events.size()) {
    return Status::ParseError("batch-result: decision count mismatch");
  }
  return result;
}

Result<WireBatchResult> ServiceClient::ApplyBatch(
    Span<const AccessEvent> events) {
  Result<WireBatchResult> first = ApplyBatchOnce(events);
  if (first.ok() || !FollowPrimaryRedirect(first.status())) return first;
  return ApplyBatchOnce(events);
}

Result<WireFixResult> ServiceClient::ApplyFixOnce(const PositionFix& fix) {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(
      SendFrame(MessageType::kApplyFix, id, EncodeApplyFixRequest(fix)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kFixResult));
  return DecodeFixResult(frame.payload);
}

Result<WireFixResult> ServiceClient::ApplyFix(const PositionFix& fix) {
  Result<WireFixResult> first = ApplyFixOnce(fix);
  if (first.ok() || !FollowPrimaryRedirect(first.status())) return first;
  return ApplyFixOnce(fix);
}

bool ServiceClient::FollowPrimaryRedirect(const Status& refusal) {
  if (!refusal.IsFailedPrecondition()) return false;
  std::string host;
  uint16_t port = 0;
  if (!ParsePrimaryToken(refusal.message(), &host, &port)) return false;
  Result<std::unique_ptr<ServiceClient>> redialed = Connect(host, port);
  if (!redialed.ok()) {
    ++client_stats_.redirect_dial_failures;
    return false;
  }
  // Adopt the fresh connection. Redirects fire only from synchronous
  // write calls, so there is no pipelined backlog to preserve — but
  // alerts the replica already pushed stay in the stash.
  ::close(fd_);
  fd_ = (*redialed)->fd_;
  (*redialed)->fd_ = -1;
  assembler_ = FrameAssembler();
  send_buffer_.clear();
  ++client_stats_.redirects_followed;
  return true;
}

Result<QueryResult> ServiceClient::Query(const std::string& statement) {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(
      SendFrame(MessageType::kQuery, id, EncodeQueryRequest(statement)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kQueryResult));
  return DecodeQueryResult(frame.payload);
}

Status ServiceClient::Checkpoint() {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(MessageType::kCheckpoint, id, ""));
  LTAM_ASSIGN_OR_RETURN(
      Frame frame, ReceiveResponse(id, MessageType::kCheckpointResult));
  if (!frame.payload.empty()) {
    return Status::ParseError("checkpoint-result: unexpected payload");
  }
  return Status::OK();
}

Result<RuntimeStats> ServiceClient::Stats() {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(MessageType::kStats, id, ""));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kStatsResult));
  return DecodeStatsResult(frame.payload);
}

Result<MetricsSnapshot> ServiceClient::Metrics() {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(
      MessageType::kMetrics, id,
      EncodeMetricsRequest(kMetricsFormatStructured)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kMetricsResult));
  return DecodeMetricsResult(frame.payload);
}

Result<std::string> ServiceClient::MetricsText() {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(MessageType::kMetrics, id,
                                 EncodeMetricsRequest(kMetricsFormatText)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kMetricsResult));
  return frame.payload;
}

Result<uint64_t> ServiceClient::Promote() {
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(SendFrame(MessageType::kPromote, id, ""));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kPromoteResult));
  return DecodePromoteResult(frame.payload);
}

Status ServiceClient::Repoint(const std::string& host, uint16_t port) {
  RepointRequest req;
  req.host = host;
  req.port = port;
  const uint32_t id = next_request_id_++;
  LTAM_RETURN_IF_ERROR(
      SendFrame(MessageType::kRepoint, id, EncodeRepointRequest(req)));
  LTAM_ASSIGN_OR_RETURN(Frame frame,
                        ReceiveResponse(id, MessageType::kRepointResult));
  if (!frame.payload.empty()) {
    return Status::ParseError("repoint-result: unexpected payload");
  }
  return Status::OK();
}

Status ServiceClient::SendRawFrame(MessageType type, uint32_t request_id,
                                   const std::string& payload) {
  return SendFrame(type, request_id, payload);
}

Result<Frame> ServiceClient::ReceiveRaw() { return ReceiveFrameRaw(); }

void ServiceClient::ShutdownSocket() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<uint32_t> ServiceClient::SubmitBatch(Span<const AccessEvent> events) {
  if (events.size() > kMaxWireBatchEvents) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(events.size()) + " events over the " +
        std::to_string(kMaxWireBatchEvents) + " per-frame wire ceiling");
  }
  const uint32_t id = next_request_id_++;
  send_buffer_ += EncodeFrame(MessageType::kApplyBatch, id,
                              EncodeApplyBatchRequest(events));
  return id;
}

Status ServiceClient::Flush() {
  if (send_buffer_.empty()) return Status::OK();
  Status written = WriteAll(fd_, send_buffer_);
  send_buffer_.clear();
  return written;
}

Result<ServiceClient::PipelinedBatch> ServiceClient::ReceiveBatchResult() {
  LTAM_ASSIGN_OR_RETURN(Frame frame, ReceiveFrame());
  if (frame.header.type == MessageType::kError) {
    Status error;
    LTAM_RETURN_IF_ERROR(DecodeErrorResult(frame.payload, &error));
    return error.WithContext("request " +
                             std::to_string(frame.header.request_id));
  }
  if (frame.header.type != MessageType::kBatchResult) {
    return Status::Internal(std::string("expected a batch-result, got ") +
                            MessageTypeToString(frame.header.type));
  }
  PipelinedBatch out;
  out.request_id = frame.header.request_id;
  LTAM_ASSIGN_OR_RETURN(out.result, DecodeBatchResult(frame.payload));
  return out;
}

Result<std::optional<ServiceClient::PipelinedBatch>>
ServiceClient::PollBatchResult(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    // Drain frames the assembler already holds before touching the
    // socket — earlier reads may have pulled several responses at once.
    Result<std::optional<Frame>> next = assembler_.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) {
      Frame frame = std::move(**next);
      if (frame.header.type == MessageType::kAlertPush) {
        LTAM_ASSIGN_OR_RETURN(std::vector<Alert> alerts,
                              DecodeAlertPush(frame.payload));
        pushed_alerts_.insert(pushed_alerts_.end(),
                              std::make_move_iterator(alerts.begin()),
                              std::make_move_iterator(alerts.end()));
        continue;
      }
      if (frame.header.type == MessageType::kError) {
        Status error;
        LTAM_RETURN_IF_ERROR(DecodeErrorResult(frame.payload, &error));
        if (error.code() == StatusCode::kFailedPrecondition) {
          // A quota refusal: in-band data for a pipelined sender (it
          // identifies the refused frame by request_id), not a dead
          // connection.
          PipelinedBatch refused;
          refused.request_id = frame.header.request_id;
          refused.refusal = std::move(error);
          return std::optional<PipelinedBatch>(std::move(refused));
        }
        return error.WithContext("request " +
                                 std::to_string(frame.header.request_id));
      }
      if (frame.header.type != MessageType::kBatchResult) {
        return Status::Internal(std::string("expected a batch-result, got ") +
                                MessageTypeToString(frame.header.type));
      }
      PipelinedBatch out;
      out.request_id = frame.header.request_id;
      LTAM_ASSIGN_OR_RETURN(out.result, DecodeBatchResult(frame.payload));
      return std::optional<PipelinedBatch>(std::move(out));
    }
    const auto now = std::chrono::steady_clock::now();
    const int remaining =
        now >= deadline
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count()) +
                  1;
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) return std::optional<PipelinedBatch>();
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

std::vector<Alert> ServiceClient::TakePushedAlerts() {
  std::vector<Alert> out = std::move(pushed_alerts_);
  pushed_alerts_.clear();
  return out;
}

Result<std::vector<Alert>> ServiceClient::ReceiveAlertPush() {
  if (!pushed_alerts_.empty()) return TakePushedAlerts();
  LTAM_ASSIGN_OR_RETURN(Frame frame, ReceiveFrameRaw());
  if (frame.header.type != MessageType::kAlertPush) {
    return Status::Internal(std::string("expected an alert-push, got ") +
                            MessageTypeToString(frame.header.type));
  }
  return DecodeAlertPush(frame.payload);
}

}  // namespace ltam
