// Copyright 2026 The LTAM Authors.
// Temporal operators of authorization rules (Definition 5).
//
// `op_entry` and `op_exit` "take [tis,tie] and [tos,toe] of a as inputs,
// and generate the entry and exit durations for the derived
// authorizations". An operator may yield several disjoint intervals
// (WHENEVERNOT always does), in which case the rule engine derives one
// authorization per interval.

#ifndef LTAM_CORE_RULES_TEMPORAL_OP_H_
#define LTAM_CORE_RULES_TEMPORAL_OP_H_

#include <memory>
#include <string>

#include "time/interval_set.h"
#include "util/result.h"

namespace ltam {

/// Abstract temporal operator.
class TemporalOperator {
 public:
  virtual ~TemporalOperator() = default;

  /// Applies the operator to `input` (the base authorization's duration).
  /// `rule_valid_from` is tr, the time from when the rule is valid, which
  /// WHENEVERNOT uses as the lower bound of its left complement interval.
  virtual Result<IntervalSet> Apply(const TimeInterval& input,
                                    Chronon rule_valid_from) const = 0;

  /// Stable operator name for display and serialization.
  virtual std::string ToString() const = 0;
};

using TemporalOperatorPtr = std::shared_ptr<const TemporalOperator>;

/// WHENEVER: "a unary operator which returns the same time interval as
/// the input."
class WheneverOp : public TemporalOperator {
 public:
  Result<IntervalSet> Apply(const TimeInterval& input,
                            Chronon rule_valid_from) const override;
  std::string ToString() const override { return "WHENEVER"; }
};

/// WHENEVERNOT: "given an input time interval [t0, t1], returns
/// [tr, t0-1] and [t1+1, inf]" — the complement of the input within
/// [tr, inf). Either piece may be empty and is then dropped.
class WheneverNotOp : public TemporalOperator {
 public:
  Result<IntervalSet> Apply(const TimeInterval& input,
                            Chronon rule_valid_from) const override;
  std::string ToString() const override { return "WHENEVERNOT"; }
};

/// UNION: binary; combines the input with the operand interval. "Given
/// two input time intervals [t0,t1] and [t2,t3], UNION returns [t0,t3] if
/// t2 <= t1; or [t0,t1] and [t2,t3] if t2 > t1" — i.e. interval-set
/// union, which is how we implement it (also covering the symmetric cases
/// the paper leaves implicit).
class UnionOp : public TemporalOperator {
 public:
  explicit UnionOp(TimeInterval operand) : operand_(operand) {}
  Result<IntervalSet> Apply(const TimeInterval& input,
                            Chronon rule_valid_from) const override;
  std::string ToString() const override {
    return "UNION(" + operand_.ToString() + ")";
  }
  const TimeInterval& operand() const { return operand_; }

 private:
  TimeInterval operand_;
};

/// INTERSECTION: binary; "given [t0,t1] and [t2,t3], returns [t2,t1] if
/// t2 <= t1; otherwise NULL" — interval intersection. A NULL result means
/// the rule derives nothing for this duration (Example 2: the supervisor
/// may access CAIS during [10,30] only when Alice is also authorized,
/// yielding [10,20] from base [5,20]).
class IntersectionOp : public TemporalOperator {
 public:
  explicit IntersectionOp(TimeInterval operand) : operand_(operand) {}
  Result<IntervalSet> Apply(const TimeInterval& input,
                            Chronon rule_valid_from) const override;
  std::string ToString() const override {
    return "INTERSECTION(" + operand_.ToString() + ")";
  }
  const TimeInterval& operand() const { return operand_; }

 private:
  TimeInterval operand_;
};

/// SHIFT (extension): translates the input by a fixed offset — handy for
/// policies like "the cleaner may enter one hour after office staff".
class ShiftOp : public TemporalOperator {
 public:
  explicit ShiftOp(Chronon offset) : offset_(offset) {}
  Result<IntervalSet> Apply(const TimeInterval& input,
                            Chronon rule_valid_from) const override;
  std::string ToString() const override {
    return "SHIFT(" + std::to_string(offset_) + ")";
  }

 private:
  Chronon offset_;
};

/// Parses an operator spec: "WHENEVER", "WHENEVERNOT",
/// "UNION([a, b])", "INTERSECTION([a, b])", "SHIFT(k)".
Result<TemporalOperatorPtr> ParseTemporalOperator(const std::string& text);

}  // namespace ltam

#endif  // LTAM_CORE_RULES_TEMPORAL_OP_H_
