// Copyright 2026 The LTAM Authors.

#include "engine/sharded_engine.h"

#include <algorithm>

#include "util/logging.h"

namespace ltam {

Decision ApplyAccessEvent(AccessControlEngine* engine, const AccessEvent& e) {
  switch (e.kind) {
    case AccessEventKind::kRequestEntry:
      return engine->RequestEntry(e.time, e.subject, e.location);
    case AccessEventKind::kRequestExit: {
      Status st = engine->RequestExit(e.time, e.subject);
      return st.ok() ? Decision::Grant(kInvalidAuth)
                     : Decision::Deny(DenyReason::kExitRejected);
    }
    case AccessEventKind::kObserve: {
      Status st = engine->ObservePresence(e.time, e.subject, e.location);
      return st.ok() ? Decision::Grant(kInvalidAuth)
                     : Decision::Deny(DenyReason::kObservationRejected);
    }
  }
  return Decision::Deny(DenyReason::kNone);  // Unreachable.
}

ShardedDecisionEngine::Shard::Shard(uint32_t index,
                                    const MultilevelLocationGraph* graph,
                                    AuthorizationDatabase* auth_db,
                                    const UserProfileDatabase* profiles,
                                    const EngineOptions& options)
    : index(index),
      movements(),
      engine(graph, auth_db, &movements, profiles, options) {}

ShardedDecisionEngine::ShardedDecisionEngine(
    const MultilevelLocationGraph* graph, AuthorizationDatabase* auth_db,
    const UserProfileDatabase* profiles, ShardedEngineOptions options) {
  LTAM_CHECK(graph != nullptr);
  // Build the graph's lazy flattened-adjacency cache before any worker
  // exists; adjacency checks on the shards then only read it.
  graph->WarmEffectiveAdjacency();
  uint32_t n = std::max<uint32_t>(1, options.num_shards);
  shards_.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    shards_.push_back(
        std::make_unique<Shard>(k, graph, auth_db, profiles, options.engine));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

ShardedDecisionEngine::~ShardedDecisionEngine() {
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

uint32_t ShardedDecisionEngine::ShardOfSubject(SubjectId s,
                                               uint32_t num_shards) {
  LTAM_CHECK(num_shards > 0) << "partition needs at least one shard";
  // Fibonacci-style mix so consecutive subject ids spread across shards.
  uint64_t x = static_cast<uint64_t>(s) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 32;
  return static_cast<uint32_t>(x % num_shards);
}

uint32_t ShardedDecisionEngine::ShardOf(SubjectId s) const {
  return ShardOfSubject(s, static_cast<uint32_t>(shards_.size()));
}

const MovementDatabase& ShardedDecisionEngine::shard_movements(
    uint32_t shard) const {
  LTAM_CHECK(shard < shards_.size()) << "shard index out of range";
  return shards_[shard]->movements;
}

MovementDatabase& ShardedDecisionEngine::mutable_shard_movements(
    uint32_t shard) {
  LTAM_CHECK(shard < shards_.size()) << "shard index out of range";
  return shards_[shard]->movements;
}

AccessControlEngine& ShardedDecisionEngine::shard_engine(uint32_t shard) {
  LTAM_CHECK(shard < shards_.size()) << "shard index out of range";
  return shards_[shard]->engine;
}

const AccessControlEngine& ShardedDecisionEngine::shard_engine(
    uint32_t shard) const {
  LTAM_CHECK(shard < shards_.size()) << "shard index out of range";
  return shards_[shard]->engine;
}

void ShardedDecisionEngine::SetShardHooks(ShardHooks hooks) {
  hooks_ = std::move(hooks);
}

Status ComposeDurabilityError(Status append_error, Status sync_error) {
  if (!sync_error.ok()) {
    return append_error.ok()
               ? sync_error
               : sync_error.WithContext("batch also refused events (" +
                                        append_error.ToString() + ")");
  }
  return append_error;
}

Status ShardedDecisionEngine::TakeBatchError() {
  std::lock_guard<std::mutex> lock(done_mu_);
  Status append = std::move(batch_error_);
  batch_error_ = Status::OK();
  Status sync = std::move(sync_error_);
  sync_error_ = Status::OK();
  return ComposeDurabilityError(std::move(append), std::move(sync));
}

void ShardedDecisionEngine::RecordAppendError(Status status) {
  std::lock_guard<std::mutex> lock(done_mu_);
  if (batch_error_.ok()) batch_error_ = std::move(status);
}

void ShardedDecisionEngine::RecordSyncError(Status status) {
  std::lock_guard<std::mutex> lock(done_mu_);
  if (sync_error_.ok()) sync_error_ = std::move(status);
}

void ShardedDecisionEngine::Tick(Chronon t) {
  for (uint32_t k = 0; k < shards_.size(); ++k) TickShard(k, t);
}

void ShardedDecisionEngine::TickShard(uint32_t shard, Chronon t) {
  LTAM_CHECK(shard < shards_.size()) << "shard index out of range";
  // Control-phase: workers are parked between batches, so ticking the
  // shard's engine here cannot race a batch slice (the per-shard lock is
  // belt-and-braces, mirroring DrainAlerts).
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  shards_[shard]->engine.Tick(t);
}

void ShardedDecisionEngine::WorkerLoop(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->mu);
  while (true) {
    shard->cv.wait(lock, [shard] { return shard->has_work || shard->stop; });
    if (shard->stop && !shard->has_work) return;
    // Per-subject batch order is preserved: todo holds this shard's event
    // indices ascending, and every event of a given subject maps here.
    for (size_t i : shard->todo) {
      const AccessEvent& event = current_batch_[i];
      if (hooks_.before_apply) {
        Result<CommitTicket> logged = hooks_.before_apply(shard->index, event);
        if (!logged.ok()) {
          // Write-ahead contract: an event that could not be logged is
          // refused, never applied — state must not run ahead of the log.
          decisions_[i] = Decision::Deny(DenyReason::kWalError);
          RecordAppendError(logged.status());
          continue;
        }
      }
      decisions_[i] = ApplyAccessEvent(&shard->engine, event);
    }
    if (hooks_.after_batch) {
      Result<CommitTicket> boundary = hooks_.after_batch(shard->index);
      if (boundary.ok()) {
        batch_tickets_[shard->index] = *boundary;
      } else {
        RecordSyncError(boundary.status());
      }
    }
    shard->todo.clear();
    shard->has_work = false;
    {
      std::lock_guard<std::mutex> done_lock(done_mu_);
      if (--pending_shards_ == 0) done_cv_.notify_one();
    }
  }
}

std::vector<Decision> ShardedDecisionEngine::EvaluateBatch(
    Span<const AccessEvent> batch) {
  ++batches_evaluated_;
  decisions_.assign(batch.size(), Decision());
  batch_tickets_.assign(shards_.size(), CommitTicket{});
  current_batch_ = batch;

  std::vector<std::vector<size_t>> parts(shards_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    parts[ShardOf(batch[i].subject)].push_back(i);
  }
  size_t active = 0;
  for (const auto& p : parts) {
    if (!p.empty()) ++active;
  }
  {
    std::lock_guard<std::mutex> done_lock(done_mu_);
    pending_shards_ = active;
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (parts[k].empty()) continue;
    {
      std::lock_guard<std::mutex> lock(shards_[k]->mu);
      shards_[k]->todo = std::move(parts[k]);
      shards_[k]->has_work = true;
    }
    shards_[k]->cv.notify_one();
  }
  if (active > 0) {
    std::unique_lock<std::mutex> done_lock(done_mu_);
    done_cv_.wait(done_lock, [this] { return pending_shards_ == 0; });
  }
  current_batch_ = Span<const AccessEvent>();
  return std::move(decisions_);
}

std::vector<Alert> ShardedDecisionEngine::DrainAlerts() {
  std::vector<Alert> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const std::vector<Alert>& alerts = shard->engine.alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
    shard->engine.ClearAlerts();
  }
  SortAlerts(&out);
  return out;
}

size_t ShardedDecisionEngine::requests_processed() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.requests_processed();
  return total;
}

size_t ShardedDecisionEngine::requests_granted() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.requests_granted();
  return total;
}

Status PartitionMovementsIntoShards(const MovementDatabase& seed,
                                    ShardedDecisionEngine* engine) {
  for (const MovementEvent& ev : seed.history()) {
    uint32_t k = engine->ShardOf(ev.subject);
    Status recorded = engine->mutable_shard_movements(k).RecordMovement(
        ev.time, ev.subject, ev.to);
    if (!recorded.ok()) {
      return recorded.WithContext("partitioning initial movement history");
    }
  }
  return Status::OK();
}

std::vector<SubjectId> SubjectsOnShard(const UserProfileDatabase& profiles,
                                       const ShardedDecisionEngine& engine,
                                       uint32_t shard) {
  std::vector<SubjectId> owned;
  for (SubjectId s : profiles.AllSubjects()) {
    if (engine.ShardOf(s) == shard) owned.push_back(s);
  }
  return owned;
}

}  // namespace ltam
