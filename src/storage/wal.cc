// Copyright 2026 The LTAM Authors.

#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace ltam {

Result<WalWriter> WalWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return WalWriter(file);
}

Result<WalWriter> WalWriter::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return WalWriter(file);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_), appended_(other.appended_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    appended_ = other.appended_;
    other.file_ = nullptr;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(const Record& record) {
  std::string line = EncodeRecord(record);
  line += '\n';
  return AppendEncoded(line);
}

Status WalWriter::AppendEncoded(const std::string& line) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL moved-from");
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IOError("short WAL write");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed");
  }
  ++appended_;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL moved-from");
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status ReplayWal(const std::string& path,
                 const std::function<Status(const Record&)>& apply) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open WAL '" + path + "' for replay");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  size_t start = 0;
  while (start < contents.size()) {
    size_t nl = contents.find('\n', start);
    if (nl == std::string::npos) {
      // Torn final append (no trailing newline): ignore it; everything
      // before it replays normally.
      break;
    }
    std::string line = contents.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    Result<Record> rec = DecodeRecord(line);
    if (!rec.ok()) {
      return rec.status().WithContext("WAL replay of '" + path + "'");
    }
    LTAM_RETURN_IF_ERROR(apply(*rec));
  }
  return Status::OK();
}

Result<size_t> TruncateTornWalTail(const std::string& path) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IOError("cannot open WAL '" + path +
                             "' for tail repair");
    }
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  size_t last_nl = contents.find_last_of('\n');
  size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
  if (keep == contents.size()) return size_t{0};
  if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0) {
    return Status::IOError("cannot truncate torn tail of WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return contents.size() - keep;
}

namespace {

Status SyncFd(const std::string& path, int flags) {
  int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync '" + path +
                           "' failed: " + std::strerror(saved));
  }
  return Status::OK();
}

}  // namespace

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status SyncFile(const std::string& path) { return SyncFd(path, O_RDONLY); }

Status SyncDir(const std::string& path) {
  return SyncFd(path, O_RDONLY | O_DIRECTORY);
}

}  // namespace ltam
