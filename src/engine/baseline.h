// Copyright 2026 The LTAM Authors.
// Card-reader baseline (the comparison system of Section 1).
//
// "The existing systems only enforce access control upon access requests
// while LTAM monitors the user movement at all times." This baseline
// models exactly that: it evaluates card swipes (access requests) against
// the authorization database but is blind to movement — presence
// observations and clock ticks are no-ops, exit windows are never
// checked. Feeding the same event stream to both engines quantifies the
// paper's qualitative claims (missed tailgating and overstay detections).

#ifndef LTAM_ENGINE_BASELINE_H_
#define LTAM_ENGINE_BASELINE_H_

#include <vector>

#include "core/auth_database.h"
#include "engine/events.h"

namespace ltam {

/// Request-time-only enforcement.
class CardReaderBaseline {
 public:
  /// Borrows the authorization database; it must outlive the baseline.
  explicit CardReaderBaseline(AuthorizationDatabase* auth_db);

  /// Card swipe: Definition-7 check + ledger update. No adjacency or
  /// movement bookkeeping.
  Decision RequestEntry(Chronon t, SubjectId s, LocationId l);

  /// No-op: card readers do not track exits.
  Status RequestExit(Chronon t, SubjectId s);

  /// No-op: no continuous monitoring.
  void ObservePresence(Chronon t, SubjectId s, LocationId l);

  /// No-op: no patrols.
  void Tick(Chronon t);

  /// Alerts raised (denied swipes only — the baseline can detect nothing
  /// else).
  const std::vector<Alert>& alerts() const { return alerts_; }

  size_t requests_processed() const { return requests_processed_; }
  size_t requests_granted() const { return requests_granted_; }

 private:
  AuthorizationDatabase* auth_db_;
  std::vector<Alert> alerts_;
  size_t requests_processed_ = 0;
  size_t requests_granted_ = 0;
};

}  // namespace ltam

#endif  // LTAM_ENGINE_BASELINE_H_
