// Copyright 2026 The LTAM Authors.
// MovementView: the read side of the movement store, backend-agnostic.
//
// The query engine historically consumed one concrete MovementDatabase,
// which forced the sharded runtimes to materialize a full merged copy
// (`MergedMovements`) before answering any cross-shard question. This
// interface replaces that stopgap: a sequential deployment exposes its
// single database directly (MovementDatabaseView), a sharded deployment
// exposes its per-shard views behind a fan-out implementation
// (ShardedMovementView) that routes subject-keyed queries to the owning
// shard and merges location/contact queries across shards — no copy,
// answers always reflect the live per-shard state.
//
// Result contract: every query returns exactly what a single sequential
// MovementDatabase holding the union history would return, with one
// caveat — orderings that depend on cross-subject arrival interleaving
// (StaysIn ties at equal enter time) are normalized to a deterministic
// (enter_time, subject) order by the sharded view.

#ifndef LTAM_QUERY_MOVEMENT_VIEW_H_
#define LTAM_QUERY_MOVEMENT_VIEW_H_

#include <functional>
#include <vector>

#include "engine/movement_db.h"

namespace ltam {

/// Read-only query surface over one logical movement history.
class MovementView {
 public:
  virtual ~MovementView() = default;

  /// Current location of `s`; kInvalidLocation when outside/unknown.
  virtual LocationId CurrentLocation(SubjectId s) const = 0;
  /// Time `s` entered their current location; NotFound when outside.
  virtual Result<Chronon> CurrentStaySince(SubjectId s) const = 0;
  /// Where `s` was at time `t`; kInvalidLocation when outside.
  virtual LocationId LocationAt(SubjectId s, Chronon t) const = 0;
  /// Subjects inside `l` at time `t`, ascending, deduplicated.
  virtual std::vector<SubjectId> OccupantsAt(LocationId l,
                                             Chronon t) const = 0;
  /// Subjects currently inside `l`, ascending.
  virtual std::vector<SubjectId> CurrentOccupants(LocationId l) const = 0;
  /// Every completed and open stay of `s`, in time order.
  virtual std::vector<Stay> StaysOf(SubjectId s) const = 0;
  /// Every stay in `l`; sharded backends order by (enter_time, subject).
  virtual std::vector<Stay> StaysIn(LocationId l) const = 0;
  /// Contact query (the SARS scenario of Section 1), ordered by
  /// (overlap_start, other, location, overlap_end).
  virtual std::vector<MovementDatabase::Contact> ContactsOf(
      SubjectId s, const TimeInterval& window,
      Chronon min_overlap = 1) const = 0;
  /// Number of subjects currently inside some location.
  virtual size_t tracked_subjects() const = 0;
  /// Total movement events recorded.
  virtual size_t history_size() const = 0;
};

/// The sequential implementation: a thin forwarder over one borrowed
/// MovementDatabase (which must outlive the view).
class MovementDatabaseView final : public MovementView {
 public:
  explicit MovementDatabaseView(const MovementDatabase* db) : db_(db) {}

  LocationId CurrentLocation(SubjectId s) const override;
  Result<Chronon> CurrentStaySince(SubjectId s) const override;
  LocationId LocationAt(SubjectId s, Chronon t) const override;
  std::vector<SubjectId> OccupantsAt(LocationId l, Chronon t) const override;
  std::vector<SubjectId> CurrentOccupants(LocationId l) const override;
  std::vector<Stay> StaysOf(SubjectId s) const override;
  std::vector<Stay> StaysIn(LocationId l) const override;
  std::vector<MovementDatabase::Contact> ContactsOf(
      SubjectId s, const TimeInterval& window,
      Chronon min_overlap) const override;
  size_t tracked_subjects() const override;
  size_t history_size() const override;

 private:
  const MovementDatabase* db_;
};

/// The sharded implementation: fans queries out over N per-shard
/// movement databases (all borrowed; they must outlive the view) and
/// merges the answers. An optional `route` function maps a subject to
/// its owning shard; subject-keyed queries then touch exactly one shard
/// instead of all of them. Every subject must live on at most one shard
/// (the partition discipline of the sharded engines).
///
/// Thread-safety mirrors the engines' phase discipline: query only
/// while no batch is in flight.
class ShardedMovementView final : public MovementView {
 public:
  using ShardRouter = std::function<uint32_t(SubjectId)>;

  explicit ShardedMovementView(std::vector<const MovementDatabase*> shards,
                               ShardRouter route = nullptr);

  LocationId CurrentLocation(SubjectId s) const override;
  Result<Chronon> CurrentStaySince(SubjectId s) const override;
  LocationId LocationAt(SubjectId s, Chronon t) const override;
  std::vector<SubjectId> OccupantsAt(LocationId l, Chronon t) const override;
  std::vector<SubjectId> CurrentOccupants(LocationId l) const override;
  std::vector<Stay> StaysOf(SubjectId s) const override;
  std::vector<Stay> StaysIn(LocationId l) const override;
  std::vector<MovementDatabase::Contact> ContactsOf(
      SubjectId s, const TimeInterval& window,
      Chronon min_overlap) const override;
  size_t tracked_subjects() const override;
  size_t history_size() const override;

  /// Number of shards fanned over.
  size_t num_shards() const { return shards_.size(); }

 private:
  /// The shard owning `s` when a router is attached; nullptr means "scan
  /// every shard" (still correct — non-owners have no record of s).
  const MovementDatabase* OwnerShard(SubjectId s) const;

  std::vector<const MovementDatabase*> shards_;
  ShardRouter route_;
};

}  // namespace ltam

#endif  // LTAM_QUERY_MOVEMENT_VIEW_H_
