// Copyright 2026 The LTAM Authors.
// Whole-system snapshots.
//
// Serializes the four stores of Figure 3 (location layout, user profiles,
// authorizations, movements) plus the registered rules into one
// line-oriented codec file, and loads them back. Together with the WAL
// this gives the persistence story: snapshot periodically, replay the
// tail of the log on recovery.

#ifndef LTAM_STORAGE_SNAPSHOT_H_
#define LTAM_STORAGE_SNAPSHOT_H_

#include <string>
#include <vector>

#include "core/auth_database.h"
#include "core/rules/rule.h"
#include "engine/movement_db.h"
#include "graph/multilevel_graph.h"
#include "profile/user_profile.h"

namespace ltam {

/// Everything a snapshot round-trips.
struct SystemState {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  MovementDatabase movements;
  std::vector<AuthorizationRule> rules;
};

/// Serializes `state` to `path` (overwrites).
Status SaveSnapshot(const SystemState& state, const std::string& path);

/// Loads a snapshot. Rules are reconstructed through the *default*
/// operator registries; snapshots containing custom operators need the
/// overload taking explicit registries.
Result<SystemState> LoadSnapshot(const std::string& path);

/// Loads a snapshot resolving subject/location operators through the
/// given registries (for deployments with custom operators).
Result<SystemState> LoadSnapshot(const std::string& path,
                                 const SubjectOperatorRegistry& subject_ops,
                                 const LocationOperatorRegistry& location_ops);

/// Serializes one movement database to `path` (overwrites) as a stream
/// of `move` records — the per-shard snapshot segments of the sharded
/// durable runtime persist each shard's movement view this way.
Status SaveMovements(const MovementDatabase& movements,
                     const std::string& path);

/// Loads a movement segment written by SaveMovements.
Result<MovementDatabase> LoadMovements(const std::string& path);

}  // namespace ltam

#endif  // LTAM_STORAGE_SNAPSHOT_H_
