// Copyright 2026 The LTAM Authors.
//
// The paper's motivating scenario (Section 1): "Singapore has used RFIDs
// to track movements of hospital users during the outbreaks of SARS...
// users who were in contact with diagnosed SARS patients could be traced
// and placed in quarantine."
//
// This example builds a small hospital, feeds raw position fixes to an
// AccessRuntime (the facade resolves them through the room boundaries —
// the stand-in for the RFID substrate — and routes them down the uniform
// event path), then runs the contact-tracing query when one patient is
// diagnosed. The runtime here is sharded across 2 workers; the same
// program runs unchanged on any RuntimeOptions configuration.
//
// Run: ./build/examples/hospital_tracking

#include <cstdio>

#include "query/query_language.h"
#include "runtime/access_runtime.h"
#include "util/logging.h"

namespace {

using namespace ltam;  // NOLINT: example brevity.

/// Builds the hospital: lobby -> triage -> ward A / ward B -> ICU.
MultilevelLocationGraph BuildHospital() {
  MultilevelLocationGraph g("Hospital");
  LocationId lobby = g.AddPrimitive("Lobby", g.root()).ValueOrDie();
  LocationId triage = g.AddPrimitive("Triage", g.root()).ValueOrDie();
  LocationId ward_a = g.AddPrimitive("WardA", g.root()).ValueOrDie();
  LocationId ward_b = g.AddPrimitive("WardB", g.root()).ValueOrDie();
  LocationId icu = g.AddPrimitive("ICU", g.root()).ValueOrDie();
  LTAM_CHECK(g.AddEdge(lobby, triage).ok());
  LTAM_CHECK(g.AddEdge(triage, ward_a).ok());
  LTAM_CHECK(g.AddEdge(triage, ward_b).ok());
  LTAM_CHECK(g.AddEdge(ward_a, icu).ok());
  LTAM_CHECK(g.AddEdge(ward_b, icu).ok());
  LTAM_CHECK(g.SetEntry(lobby).ok());
  // Physical boundaries: a 50m x 20m floor plan.
  LTAM_CHECK(g.SetBoundary(lobby, Polygon::Rect(0, 0, 10, 20)).ok());
  LTAM_CHECK(g.SetBoundary(triage, Polygon::Rect(10, 0, 20, 20)).ok());
  LTAM_CHECK(g.SetBoundary(ward_a, Polygon::Rect(20, 0, 35, 10)).ok());
  LTAM_CHECK(g.SetBoundary(ward_b, Polygon::Rect(20, 10, 35, 20)).ok());
  LTAM_CHECK(g.SetBoundary(icu, Polygon::Rect(35, 0, 50, 20)).ok());
  LTAM_CHECK(g.Validate().ok());
  return g;
}

}  // namespace

int main() {
  SystemState state;
  state.graph = BuildHospital();
  SubjectId nurse = state.profiles.AddSubject("nurse.Tan").ValueOrDie();
  SubjectId doctor = state.profiles.AddSubject("dr.Lim").ValueOrDie();
  SubjectId patient1 = state.profiles.AddSubject("patient.Wong").ValueOrDie();
  SubjectId patient2 = state.profiles.AddSubject("patient.Ng").ValueOrDie();

  // Staff may go anywhere all day; patients only lobby/triage/their ward.
  auto grant = [&](SubjectId s, const char* room) {
    state.auth_db.Add(LocationTemporalAuthorization::Make(
                          TimeInterval(0, 480), TimeInterval(0, 540),
                          LocationAuthorization{
                              s, state.graph.Find(room).ValueOrDie()},
                          kUnlimitedEntries)
                          .ValueOrDie());
  };
  for (SubjectId staff : {nurse, doctor}) {
    for (const char* room : {"Lobby", "Triage", "WardA", "WardB", "ICU"}) {
      grant(staff, room);
    }
  }
  for (SubjectId p : {patient1, patient2}) {
    for (const char* room : {"Lobby", "Triage"}) grant(p, room);
  }
  grant(patient1, "WardA");
  grant(patient2, "WardB");

  RuntimeOptions options;
  options.num_shards = 2;  // Tracking fan-in sharded across 2 workers.
  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(state), options);
  LTAM_CHECK(opened.ok()) << opened.status().ToString();
  std::unique_ptr<AccessRuntime> runtime = std::move(opened).ValueOrDie();

  // A morning of position fixes from the tracking substrate (one chronon
  // = one minute). patient.Wong incubates in WardA; nurse.Tan overlaps
  // with him there, then moves on to WardB.
  struct Fix {
    Chronon t;
    SubjectId who;
    double x, y;
  };
  const Fix kFixes[] = {
      {0, patient1, 5, 10},    // Wong in the lobby.
      {5, patient1, 15, 10},   // ... triage.
      {20, patient1, 25, 5},   // ... admitted to WardA.
      {10, nurse, 5, 5},       // Tan arrives.
      {15, nurse, 15, 5},      // ... triage.
      {30, nurse, 27, 6},      // ... WardA rounds (overlap with Wong).
      {90, nurse, 27, 15},     // ... WardB rounds.
      {40, doctor, 5, 12},     // Lim arrives.
      {50, doctor, 30, 4},     // ... straight to WardA (overlap).
      {70, doctor, 40, 10},    // ... ICU.
      {60, patient2, 5, 8},    // Ng arrives.
      {75, patient2, 15, 12},  // ... triage.
      {95, patient2, 30, 16},  // ... WardB (overlaps nurse there).
  };
  for (const Fix& fix : kFixes) {
    Status applied = runtime->ApplyFix({fix.t, fix.who, {fix.x, fix.y}});
    LTAM_CHECK(applied.ok()) << applied.ToString();
  }
  std::printf("tracked %zu movements, %zu alerts pending\n",
              runtime->movements().history_size(),
              runtime->Stats().pending_alerts);

  // t=120: patient.Wong is diagnosed. Trace every contact of the morning
  // through the runtime's movement view (sharded fan-out, no copy).
  QueryInterpreter interp(&runtime->query(), &runtime->graph(),
                          &runtime->profiles(), &runtime->movements(),
                          &runtime->auth_db());
  std::printf("\n> CONTACTS OF patient.Wong DURING [0, 120]\n");
  std::printf("%s",
              interp.Run("CONTACTS OF patient.Wong DURING [0, 120]")
                  .ValueOrDie()
                  .ToString()
                  .c_str());

  // Second-order contacts: whoever met the nurse after her WardA round.
  std::printf("\n> CONTACTS OF nurse.Tan DURING [30, 120]\n");
  std::printf("%s", interp.Run("CONTACTS OF nurse.Tan DURING [30, 120]")
                        .ValueOrDie()
                        .ToString()
                        .c_str());

  std::printf("\n> WHERE WAS dr.Lim AT 55\n");
  std::printf("%s", interp.Run("WHERE WAS dr.Lim AT 55")
                        .ValueOrDie()
                        .ToString()
                        .c_str());

  std::printf("\n> OCCUPANTS OF WardA AT 50\n");
  std::printf("%s", interp.Run("OCCUPANTS OF WardA AT 50")
                        .ValueOrDie()
                        .ToString()
                        .c_str());
  return 0;
}
