// Copyright 2026 The LTAM Authors.

#include <gtest/gtest.h>

#include "graph/multilevel_graph.h"
#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

TEST(GraphvizTest, EmitsClustersAndDoubleCircledEntries) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeNtuCampusGraph());
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("graph \"NTU\" {"), std::string::npos);
  EXPECT_NE(dot.find("subgraph \"cluster_SCE\""), std::string::npos);
  EXPECT_NE(dot.find("subgraph \"cluster_EEE\""), std::string::npos);
  // Entry locations use doublecircle (Figure 2's double-line notation).
  EXPECT_NE(dot.find("\"SCE.GO\" [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("\"CAIS\" [shape=ellipse]"), std::string::npos);
  // Sibling primitive edge.
  EXPECT_NE(dot.find("\"SCE.SectionB\" -- \"CAIS\""), std::string::npos);
  // Composite-composite edges carry cluster anchors.
  EXPECT_NE(dot.find("ltail=\"cluster_SCE\""), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(GraphvizTest, EscapesQuotes) {
  MultilevelLocationGraph g("Root");
  ASSERT_OK_AND_ASSIGN(LocationId r,
                       g.AddPrimitive("Room \"A\"", g.root()));
  (void)r;
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("\"Room \\\"A\\\"\""), std::string::npos);
}

TEST(GraphvizTest, Fig4Shape) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeFig4Graph());
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("\"A\" [shape=doublecircle]"), std::string::npos);
  // Four edges.
  size_t count = 0;
  for (size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

}  // namespace
}  // namespace ltam
