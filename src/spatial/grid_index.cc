// Copyright 2026 The LTAM Authors.

#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ltam {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  LTAM_CHECK(cell_size > 0.0) << "grid cell size must be positive";
}

BoundaryId GridIndex::Add(Polygon polygon) {
  LTAM_CHECK(!built_) << "GridIndex::Add after Build";
  extent_.Expand(polygon.bbox());
  polygons_.push_back(std::move(polygon));
  return static_cast<BoundaryId>(polygons_.size() - 1);
}

Status GridIndex::Build() {
  if (polygons_.empty()) {
    return Status::FailedPrecondition("GridIndex has no polygons");
  }
  nx_ = std::max(1, static_cast<int>(std::ceil(extent_.width() / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(extent_.height() / cell_size_)));
  cells_.assign(static_cast<size_t>(nx_) * ny_, Cell{});
  for (BoundaryId id = 0; id < polygons_.size(); ++id) {
    const BoundingBox& bb = polygons_[id].bbox();
    int x0 = std::clamp(
        static_cast<int>((bb.lo().x - extent_.lo().x) / cell_size_), 0,
        nx_ - 1);
    int x1 = std::clamp(
        static_cast<int>((bb.hi().x - extent_.lo().x) / cell_size_), 0,
        nx_ - 1);
    int y0 = std::clamp(
        static_cast<int>((bb.lo().y - extent_.lo().y) / cell_size_), 0,
        ny_ - 1);
    int y1 = std::clamp(
        static_cast<int>((bb.hi().y - extent_.lo().y) / cell_size_), 0,
        ny_ - 1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        cells_[static_cast<size_t>(y) * nx_ + x].candidates.push_back(id);
      }
    }
  }
  built_ = true;
  return Status::OK();
}

int GridIndex::CellIndex(const Point& p) const {
  if (!extent_.Contains(p)) return -1;
  int x = std::clamp(static_cast<int>((p.x - extent_.lo().x) / cell_size_),
                     0, nx_ - 1);
  int y = std::clamp(static_cast<int>((p.y - extent_.lo().y) / cell_size_),
                     0, ny_ - 1);
  return y * nx_ + x;
}

std::vector<BoundaryId> GridIndex::FindContaining(const Point& p) const {
  LTAM_CHECK(built_) << "GridIndex queried before Build";
  std::vector<BoundaryId> out;
  int cell = CellIndex(p);
  if (cell < 0) return out;
  for (BoundaryId id : cells_[static_cast<size_t>(cell)].candidates) {
    if (polygons_[id].Contains(p)) out.push_back(id);
  }
  return out;
}

std::optional<BoundaryId> GridIndex::FindBest(const Point& p) const {
  std::vector<BoundaryId> hits = FindContaining(p);
  if (hits.empty()) return std::nullopt;
  BoundaryId best = hits[0];
  double best_area = polygons_[best].Area();
  for (size_t i = 1; i < hits.size(); ++i) {
    double a = polygons_[hits[i]].Area();
    if (a < best_area) {
      best = hits[i];
      best_area = a;
    }
  }
  return best;
}

}  // namespace ltam
