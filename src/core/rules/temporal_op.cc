// Copyright 2026 The LTAM Authors.

#include "core/rules/temporal_op.h"

#include "util/string_util.h"

namespace ltam {

Result<IntervalSet> WheneverOp::Apply(const TimeInterval& input,
                                      Chronon /*rule_valid_from*/) const {
  return IntervalSet(input);
}

Result<IntervalSet> WheneverNotOp::Apply(const TimeInterval& input,
                                         Chronon rule_valid_from) const {
  IntervalSet out;
  // Left piece [tr, t0 - 1].
  if (input.start() != kChrononMin) {
    Chronon left_end = ChrononSub(input.start(), 1);
    if (rule_valid_from <= left_end) {
      out.Add(TimeInterval(rule_valid_from, left_end));
    }
  }
  // Right piece [t1 + 1, inf].
  if (input.end() != kChrononMax) {
    out.Add(TimeInterval(ChrononAdd(input.end(), 1), kChrononMax));
  }
  return out;
}

Result<IntervalSet> UnionOp::Apply(const TimeInterval& input,
                                   Chronon /*rule_valid_from*/) const {
  IntervalSet out(input);
  out.Add(operand_);
  return out;
}

Result<IntervalSet> IntersectionOp::Apply(const TimeInterval& input,
                                          Chronon /*rule_valid_from*/) const {
  IntervalSet out;
  std::optional<TimeInterval> x = input.Intersect(operand_);
  if (x.has_value()) out.Add(*x);
  return out;
}

Result<IntervalSet> ShiftOp::Apply(const TimeInterval& input,
                                   Chronon /*rule_valid_from*/) const {
  return IntervalSet(TimeInterval(ChrononAdd(input.start(), offset_),
                                  ChrononAdd(input.end(), offset_)));
}

Result<TemporalOperatorPtr> ParseTemporalOperator(const std::string& text) {
  std::string t = Trim(text);
  std::string upper = ToUpper(t);
  if (upper == "WHENEVER") return TemporalOperatorPtr(new WheneverOp());
  if (upper == "WHENEVERNOT") return TemporalOperatorPtr(new WheneverNotOp());
  auto parse_arg = [&t]() -> Result<std::string> {
    size_t open = t.find('(');
    if (open == std::string::npos || t.back() != ')') {
      return Status::ParseError("operator argument must be parenthesized: '" +
                                t + "'");
    }
    return t.substr(open + 1, t.size() - open - 2);
  };
  if (StartsWith(upper, "UNION")) {
    LTAM_ASSIGN_OR_RETURN(std::string arg, parse_arg());
    LTAM_ASSIGN_OR_RETURN(TimeInterval operand, TimeInterval::Parse(arg));
    return TemporalOperatorPtr(new UnionOp(operand));
  }
  if (StartsWith(upper, "INTERSECTION")) {
    LTAM_ASSIGN_OR_RETURN(std::string arg, parse_arg());
    LTAM_ASSIGN_OR_RETURN(TimeInterval operand, TimeInterval::Parse(arg));
    return TemporalOperatorPtr(new IntersectionOp(operand));
  }
  if (StartsWith(upper, "SHIFT")) {
    LTAM_ASSIGN_OR_RETURN(std::string arg, parse_arg());
    LTAM_ASSIGN_OR_RETURN(Chronon offset, ParseChronon(arg));
    return TemporalOperatorPtr(new ShiftOp(offset));
  }
  return Status::ParseError("unknown temporal operator: '" + t + "'");
}

}  // namespace ltam
