// Copyright 2026 The LTAM Authors.
//
// Section 4 harness: authorization-rule derivation throughput as the
// organization and the rule set grow — subject fanout (Subordinates_Of
// over an org chart), location fanout (all_route_from over corridors),
// and full re-derivation after a profile change (Example 1's lifecycle).

#include <benchmark/benchmark.h>

#include "core/rules/rule_engine.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct Org {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
  AuthId base = kInvalidAuth;
};

/// An org chart of `n` staff under one boss, all in one grid building.
Org MakeOrg(uint32_t n) {
  Org org;
  org.graph = MakeGridGraph(8, 8).ValueOrDie();
  org.subjects = GenerateSubjects(&org.profiles, n);
  for (size_t i = 1; i < org.subjects.size(); ++i) {
    // A shallow tree: everyone reports to subject (i-1)/4.
    Status st = org.profiles.SetSupervisor(
        org.subjects[i], org.subjects[(i - 1) / 4]);
    (void)st;
  }
  org.base = org.auth_db.Add(
      LocationTemporalAuthorization::Make(
          TimeInterval(0, 400), TimeInterval(0, 500),
          LocationAuthorization{org.subjects[0],
                                org.graph.Primitives().back()},
          4)
          .ValueOrDie());
  return org;
}

/// Subject fanout: one rule deriving for every subordinate of the boss.
void BM_DeriveSubjectFanout(benchmark::State& state) {
  Org org = MakeOrg(static_cast<uint32_t>(state.range(0)));
  RuleEngine rules(&org.auth_db, &org.profiles, &org.graph);
  AuthorizationRule rule;
  rule.base = org.base;
  rule.op_subject = SubjectOperatorPtr(new SubordinatesOfOp());
  RuleId id = rules.AddRule(rule).ValueOrDie();
  (void)id;
  size_t derived = 0;
  for (auto _ : state) {
    DerivationReport report = rules.DeriveAll().ValueOrDie();
    derived = report.derived;
    benchmark::DoNotOptimize(report);
  }
  state.counters["derived"] = static_cast<double>(derived);
}
BENCHMARK(BM_DeriveSubjectFanout)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Location fanout: all_route_from over a longer and longer corridor.
void BM_DeriveLocationFanout(benchmark::State& state) {
  Org org;
  uint32_t len = static_cast<uint32_t>(state.range(0));
  org.graph = MakeGridGraph(len, 1).ValueOrDie();
  org.subjects = GenerateSubjects(&org.profiles, 1);
  org.base = org.auth_db.Add(
      LocationTemporalAuthorization::Make(
          TimeInterval(0, 400), TimeInterval(0, 500),
          LocationAuthorization{org.subjects[0],
                                org.graph.Primitives().back()},
          kUnlimitedEntries)
          .ValueOrDie());
  RuleEngine rules(&org.auth_db, &org.profiles, &org.graph);
  AuthorizationRule rule;
  rule.base = org.base;
  rule.op_location = LocationOperatorPtr(
      new AllRouteFromOp("R0_0", /*max_routes=*/64, /*max_length=*/512));
  RuleId id = rules.AddRule(rule).ValueOrDie();
  (void)id;
  size_t derived = 0;
  for (auto _ : state) {
    DerivationReport report = rules.DeriveAll().ValueOrDie();
    derived = report.derived;
    benchmark::DoNotOptimize(report);
  }
  state.counters["derived"] = static_cast<double>(derived);
}
BENCHMARK(BM_DeriveLocationFanout)->Arg(8)->Arg(32)->Arg(128);

/// Many small rules: one Supervisor_Of rule per staff member's own base
/// authorization.
void BM_DeriveManyRules(benchmark::State& state) {
  Org org = MakeOrg(static_cast<uint32_t>(state.range(0)));
  RuleEngine rules(&org.auth_db, &org.profiles, &org.graph);
  for (SubjectId s : org.subjects) {
    AuthId base = org.auth_db.Add(
        LocationTemporalAuthorization::Make(
            TimeInterval(0, 400), TimeInterval(0, 500),
            LocationAuthorization{s, org.graph.Primitives()[s % 64]}, 2)
            .ValueOrDie());
    AuthorizationRule rule;
    rule.base = base;
    rule.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
    benchmark::DoNotOptimize(rules.AddRule(rule));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rules.DeriveAll());
  }
  state.counters["rules"] = static_cast<double>(org.subjects.size());
}
BENCHMARK(BM_DeriveManyRules)->Arg(64)->Arg(256)->Arg(1024);

/// Example 1's lifecycle: profile change + refresh.
void BM_RefreshAfterProfileChange(benchmark::State& state) {
  Org org = MakeOrg(256);
  RuleEngine rules(&org.auth_db, &org.profiles, &org.graph);
  AuthorizationRule rule;
  rule.base = org.base;
  rule.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  RuleId id = rules.AddRule(rule).ValueOrDie();
  (void)id;
  benchmark::DoNotOptimize(rules.DeriveAll());
  bool flip = false;
  for (auto _ : state) {
    // Alternate subject 5's supervisor to force a real change.
    Status st = org.profiles.SetSupervisor(org.subjects[5],
                                           flip ? org.subjects[0]
                                                : org.subjects[1]);
    (void)st;
    flip = !flip;
    benchmark::DoNotOptimize(rules.RefreshIfProfilesChanged());
  }
}
BENCHMARK(BM_RefreshAfterProfileChange);

}  // namespace

BENCHMARK_MAIN();
