// Copyright 2026 The LTAM Authors.

#include "service/protocol.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace ltam {

namespace {

// --- Little-endian primitives ------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  static_assert(sizeof(double) == sizeof(uint64_t), "IEEE-754 doubles");
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Reads a u32le in place (caller guarantees 4 readable bytes).
uint32_t PeekU32(const char* p) {
  const uint8_t* d = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(d[0]) | (static_cast<uint32_t>(d[1]) << 8) |
         (static_cast<uint32_t>(d[2]) << 16) |
         (static_cast<uint32_t>(d[3]) << 24);
}

/// Strict bounds-checked cursor over one payload. Every Read* checks the
/// remaining byte count before touching memory; a failed read latches
/// `ok_` false and every later read keeps failing, so decoders can chain
/// reads and check once.
class Reader {
 public:
  explicit Reader(std::string_view payload)
      : data_(reinterpret_cast<const uint8_t*>(payload.data())),
        size_(payload.size()) {}

  bool ReadU8(uint8_t* v) {
    if (!Require(1)) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (!Require(2)) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (!Require(4)) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (!Require(8)) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// Length-prefixed string; the length is validated against the
  /// remaining payload before any byte is copied.
  bool ReadString(std::string* v) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (!Require(len)) return false;
    v->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  /// The strict-consumption check: a well-formed payload is read exactly.
  Status Finish(const char* what) const {
    if (!ok_) {
      return Status::ParseError(std::string(what) + ": truncated payload");
    }
    if (pos_ != size_) {
      return Status::ParseError(std::string(what) + ": " +
                                std::to_string(size_ - pos_) +
                                " trailing payload bytes");
    }
    return Status::OK();
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- Shared sub-encodings ----------------------------------------------------

constexpr size_t kWireEventBytes = 1 + 8 + 4 + 4;

void PutEvent(std::string* out, const AccessEvent& e) {
  PutU8(out, static_cast<uint8_t>(e.kind));
  PutI64(out, e.time);
  PutU32(out, e.subject);
  PutU32(out, e.location);
}

bool ReadEvent(Reader* r, AccessEvent* e) {
  uint8_t kind = 0;
  if (!r->ReadU8(&kind) || !r->ReadI64(&e->time) ||
      !r->ReadU32(&e->subject) || !r->ReadU32(&e->location)) {
    return false;
  }
  if (kind > static_cast<uint8_t>(AccessEventKind::kObserve)) return false;
  e->kind = static_cast<AccessEventKind>(kind);
  return true;
}

void PutDecision(std::string* out, const Decision& d) {
  PutU8(out, d.granted ? 1 : 0);
  PutU32(out, d.auth);
  PutU8(out, static_cast<uint8_t>(d.reason));
}

bool ReadDecision(Reader* r, Decision* d) {
  uint8_t granted = 0, reason = 0;
  if (!r->ReadU8(&granted) || !r->ReadU32(&d->auth) || !r->ReadU8(&reason)) {
    return false;
  }
  if (granted > 1) return false;
  if (reason > static_cast<uint8_t>(DenyReason::kObservationRejected)) {
    return false;
  }
  d->granted = granted == 1;
  d->reason = static_cast<DenyReason>(reason);
  return true;
}

void PutAlert(std::string* out, const Alert& a) {
  PutI64(out, a.time);
  PutU32(out, a.subject);
  PutU32(out, a.location);
  PutU8(out, static_cast<uint8_t>(a.type));
  PutString(out, a.detail);
}

bool ReadAlert(Reader* r, Alert* a) {
  uint8_t type = 0;
  if (!r->ReadI64(&a->time) || !r->ReadU32(&a->subject) ||
      !r->ReadU32(&a->location) || !r->ReadU8(&type) ||
      !r->ReadString(&a->detail)) {
    return false;
  }
  if (type > static_cast<uint8_t>(AlertType::kImpossibleMovement)) {
    return false;
  }
  a->type = static_cast<AlertType>(type);
  return true;
}

void PutStatus(std::string* out, const Status& s) {
  PutU8(out, static_cast<uint8_t>(s.code()));
  PutString(out, s.message());
}

bool ReadStatus(Reader* r, Status* s) {
  uint8_t code = 0;
  std::string message;
  if (!r->ReadU8(&code) || !r->ReadString(&message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kParseError)) return false;
  *s = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

/// A count field that must be plausible for the bytes that remain: each
/// counted element occupies at least `min_element_bytes`, so a count the
/// payload cannot possibly hold is rejected before any allocation.
bool ReadCount(Reader* r, size_t min_element_bytes, uint32_t* count) {
  if (!r->ReadU32(count)) return false;
  return static_cast<uint64_t>(*count) * min_element_bytes <= r->remaining();
}

constexpr size_t kWireAlertMinBytes = 8 + 4 + 4 + 1 + 4;

}  // namespace

// --- Frame layer -------------------------------------------------------------

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kPing:
    case MessageType::kApply:
    case MessageType::kApplyBatch:
    case MessageType::kApplyFix:
    case MessageType::kQuery:
    case MessageType::kCheckpoint:
    case MessageType::kStats:
    case MessageType::kReplicaHello:
    case MessageType::kPromote:
    case MessageType::kRepoint:
    case MessageType::kMetrics:
      return true;
    default:
      return false;
  }
}

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "ping";
    case MessageType::kApply: return "apply";
    case MessageType::kApplyBatch: return "apply-batch";
    case MessageType::kApplyFix: return "apply-fix";
    case MessageType::kQuery: return "query";
    case MessageType::kCheckpoint: return "checkpoint";
    case MessageType::kStats: return "stats";
    case MessageType::kPong: return "pong";
    case MessageType::kApplyResult: return "apply-result";
    case MessageType::kBatchResult: return "batch-result";
    case MessageType::kFixResult: return "fix-result";
    case MessageType::kQueryResult: return "query-result";
    case MessageType::kCheckpointResult: return "checkpoint-result";
    case MessageType::kStatsResult: return "stats-result";
    case MessageType::kError: return "error";
    case MessageType::kAlertPush: return "alert-push";
    case MessageType::kReplicaHello: return "replica-hello";
    case MessageType::kPromote: return "promote";
    case MessageType::kRepoint: return "repoint";
    case MessageType::kMetrics: return "metrics";
    case MessageType::kReplicaWelcome: return "replica-welcome";
    case MessageType::kSegmentChunk: return "segment-chunk";
    case MessageType::kWatermarkAdvance: return "watermark-advance";
    case MessageType::kPromoteResult: return "promote-result";
    case MessageType::kRepointResult: return "repoint-result";
    case MessageType::kMetricsResult: return "metrics-result";
  }
  return "unknown";
}

namespace {

bool IsKnownType(uint8_t type) {
  return IsRequestType(static_cast<MessageType>(type)) ||
         (type >= static_cast<uint8_t>(MessageType::kPong) &&
          type <= static_cast<uint8_t>(MessageType::kMetricsResult));
}

}  // namespace

std::string EncodeFrame(MessageType type, uint32_t request_id,
                        const std::string& payload) {
  LTAM_CHECK(payload.size() <= kMaxFramePayload)
      << "frame payload over the wire ceiling";
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kWireMagic);
  PutU8(&out, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU16(&out, 0);
  PutU32(&out, request_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size) {
  LTAM_CHECK(size >= kFrameHeaderBytes);
  Reader r(std::string_view(reinterpret_cast<const char*>(data),
                            kFrameHeaderBytes));
  uint32_t magic = 0, request_id = 0, length = 0;
  uint8_t version = 0, type = 0;
  uint16_t reserved = 0;
  r.ReadU32(&magic);
  r.ReadU8(&version);
  r.ReadU8(&type);
  r.ReadU16(&reserved);
  r.ReadU32(&request_id);
  r.ReadU32(&length);
  LTAM_CHECK(r.ok());
  if (magic != kWireMagic) {
    return Status::ParseError("frame: bad magic");
  }
  if (version != kWireVersion) {
    return Status::ParseError("frame: unsupported protocol version " +
                              std::to_string(version));
  }
  if (!IsKnownType(type)) {
    return Status::ParseError("frame: unknown message type " +
                              std::to_string(type));
  }
  if (reserved != 0) {
    return Status::ParseError("frame: nonzero reserved bits");
  }
  if (length > kMaxFramePayload) {
    return Status::ParseError("frame: payload length " +
                              std::to_string(length) + " over the " +
                              std::to_string(kMaxFramePayload) + " ceiling");
  }
  FrameHeader header;
  header.version = version;
  header.type = static_cast<MessageType>(type);
  header.request_id = request_id;
  header.payload_length = length;
  return header;
}

char* FrameAssembler::BeginFill(size_t min_bytes, size_t* capacity) {
  // A chunk pinned by an outstanding FrameView must never reallocate, so
  // append only while this assembler is the sole owner; otherwise open a
  // fresh chunk.
  if (chunks_.empty() || !Appendable(chunks_.back())) {
    chunks_.push_back(std::make_shared<std::string>());
    chunks_.back()->reserve(std::max(min_bytes, kChunkBytes));
  }
  std::string& tail = *chunks_.back();
  fill_base_ = tail.size();
  const size_t cap = std::max(min_bytes, tail.capacity() - tail.size());
  tail.resize(fill_base_ + cap);
  *capacity = cap;
  return &tail[fill_base_];
}

void FrameAssembler::CommitFill(size_t filled) {
  LTAM_CHECK(!chunks_.empty());
  chunks_.back()->resize(fill_base_ + filled);
  buffered_ += filled;
}

void FrameAssembler::Append(const char* data, size_t size) {
  if (size == 0) return;
  size_t cap = 0;
  char* dst = BeginFill(size, &cap);
  std::memcpy(dst, data, size);
  CommitFill(size);
}

size_t FrameAssembler::PeekBytes(char* dst, size_t n) const {
  size_t copied = 0;
  size_t offset = front_consumed_;
  for (const std::shared_ptr<std::string>& chunk : chunks_) {
    if (copied == n) break;
    const size_t take = std::min(chunk->size() - offset, n - copied);
    std::memcpy(dst + copied, chunk->data() + offset, take);
    copied += take;
    offset = 0;
  }
  return copied;
}

void FrameAssembler::Consume(size_t n) {
  LTAM_CHECK(n <= buffered_);
  buffered_ -= n;
  while (n > 0) {
    std::string& front = *chunks_.front();
    const size_t take = std::min(front.size() - front_consumed_, n);
    front_consumed_ += take;
    n -= take;
    if (front_consumed_ < front.size()) break;
    if (chunks_.size() == 1 && Appendable(chunks_.front())) {
      // Sole remaining chunk with no pins: recycle its capacity.
      front.clear();
      front_consumed_ = 0;
      break;
    }
    chunks_.pop_front();
    front_consumed_ = 0;
  }
}

Result<std::optional<FrameView>> FrameAssembler::NextView() {
  if (!error_.ok()) return error_;
  if (buffered_ < kFrameHeaderBytes) return std::optional<FrameView>();
  uint8_t head[kFrameHeaderBytes];
  PeekBytes(reinterpret_cast<char*>(head), kFrameHeaderBytes);
  Result<FrameHeader> header = DecodeFrameHeader(head, kFrameHeaderBytes);
  if (!header.ok()) {
    error_ = header.status();
    return error_;
  }
  const size_t total = kFrameHeaderBytes + header->payload_length;
  if (buffered_ < total) return std::optional<FrameView>();
  FrameView view;
  view.header = *header;
  std::shared_ptr<std::string> front = chunks_.front();
  if (front->size() - front_consumed_ >= total) {
    // Whole frame inside the front chunk: view it in place.
    view.payload = std::string_view(
        front->data() + front_consumed_ + kFrameHeaderBytes,
        header->payload_length);
    view.pin = std::move(front);
    Consume(total);
  } else {
    // Straddles chunks: coalesce the payload into a dedicated
    // exact-size chunk (the one copy on this path).
    Consume(kFrameHeaderBytes);
    auto owned = std::make_shared<std::string>();
    owned->resize(header->payload_length);
    const size_t copied = PeekBytes(owned->data(), header->payload_length);
    LTAM_CHECK(copied == header->payload_length);
    Consume(header->payload_length);
    view.payload = std::string_view(owned->data(), owned->size());
    view.pin = std::move(owned);
  }
  return std::optional<FrameView>(std::move(view));
}

Result<std::optional<Frame>> FrameAssembler::Next() {
  LTAM_ASSIGN_OR_RETURN(std::optional<FrameView> view, NextView());
  if (!view.has_value()) return std::optional<Frame>();
  Frame frame;
  frame.header = view->header;
  frame.payload.assign(view->payload.data(), view->payload.size());
  return std::optional<Frame>(std::move(frame));
}

// --- Requests ----------------------------------------------------------------

std::string EncodeApplyRequest(const AccessEvent& event) {
  std::string out;
  PutEvent(&out, event);
  return out;
}

Result<AccessEvent> DecodeApplyRequest(std::string_view payload) {
  Reader r(payload);
  AccessEvent event;
  if (!ReadEvent(&r, &event)) {
    return Status::ParseError("apply: malformed event");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("apply"));
  return event;
}

std::string EncodeApplyBatchRequest(Span<const AccessEvent> events) {
  LTAM_CHECK(events.size() <= kMaxWireBatchEvents)
      << "batch over the wire ceiling";
  std::string out;
  out.reserve(4 + events.size() * kWireEventBytes);
  PutU32(&out, static_cast<uint32_t>(events.size()));
  for (const AccessEvent& e : events) PutEvent(&out, e);
  return out;
}

Result<uint32_t> PeekApplyEventCount(MessageType type,
                                     std::string_view payload) {
  if (type == MessageType::kApply) {
    if (payload.size() != kWireEventBytes) {
      return Status::ParseError("apply: malformed event");
    }
    return 1u;
  }
  LTAM_CHECK(type == MessageType::kApplyBatch);
  if (payload.size() < 4) {
    return Status::ParseError("apply-batch: malformed event count");
  }
  const uint32_t count = PeekU32(payload.data());
  if (count > kMaxWireBatchEvents) {
    return Status::ParseError("apply-batch: " + std::to_string(count) +
                              " events over the " +
                              std::to_string(kMaxWireBatchEvents) +
                              " per-frame ceiling");
  }
  if (payload.size() != 4 + static_cast<size_t>(count) * kWireEventBytes) {
    return Status::ParseError("apply-batch: payload size does not match " +
                              std::to_string(count) + " events");
  }
  return count;
}

std::optional<SubjectId> PeekFirstSubject(MessageType type,
                                          std::string_view payload) {
  // The subject sits after the kind (u8) and time (i64) of the first
  // event; PeekApplyEventCount already vouched for the payload shape.
  if (type == MessageType::kApply) {
    return PeekU32(payload.data() + 1 + 8);
  }
  LTAM_CHECK(type == MessageType::kApplyBatch);
  if (PeekU32(payload.data()) == 0) return std::nullopt;
  return PeekU32(payload.data() + 4 + 1 + 8);
}

Status DecodeApplyEventsInto(MessageType type, std::string_view payload,
                             std::vector<AccessEvent>* out) {
  Reader r(payload);
  uint32_t count = 1;
  if (type == MessageType::kApplyBatch) {
    if (!ReadCount(&r, kWireEventBytes, &count)) {
      return Status::ParseError("apply-batch: malformed event count");
    }
    if (count > kMaxWireBatchEvents) {
      return Status::ParseError("apply-batch: " + std::to_string(count) +
                                " events over the " +
                                std::to_string(kMaxWireBatchEvents) +
                                " per-frame ceiling");
    }
  } else {
    LTAM_CHECK(type == MessageType::kApply);
  }
  const char* what = type == MessageType::kApply ? "apply" : "apply-batch";
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    AccessEvent e;
    if (!ReadEvent(&r, &e)) {
      return Status::ParseError(std::string(what) + ": malformed event");
    }
    out->push_back(e);
  }
  return r.Finish(what);
}

Result<std::vector<AccessEvent>> DecodeApplyBatchRequest(
    std::string_view payload) {
  std::vector<AccessEvent> events;
  LTAM_RETURN_IF_ERROR(
      DecodeApplyEventsInto(MessageType::kApplyBatch, payload, &events));
  return events;
}

std::string EncodeApplyFixRequest(const PositionFix& fix) {
  std::string out;
  PutI64(&out, fix.time);
  PutU32(&out, fix.subject);
  PutF64(&out, fix.position.x);
  PutF64(&out, fix.position.y);
  return out;
}

Result<PositionFix> DecodeApplyFixRequest(std::string_view payload) {
  Reader r(payload);
  PositionFix fix;
  if (!r.ReadI64(&fix.time) || !r.ReadU32(&fix.subject) ||
      !r.ReadF64(&fix.position.x) || !r.ReadF64(&fix.position.y)) {
    return Status::ParseError("apply-fix: malformed fix");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("apply-fix"));
  return fix;
}

std::string EncodeQueryRequest(const std::string& statement) {
  std::string out;
  PutString(&out, statement);
  return out;
}

Result<std::string> DecodeQueryRequest(std::string_view payload) {
  Reader r(payload);
  std::string statement;
  if (!r.ReadString(&statement)) {
    return Status::ParseError("query: malformed statement");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("query"));
  return statement;
}

// --- Responses ---------------------------------------------------------------

std::string EncodeBatchResult(const WireBatchResult& result) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(result.decisions.size()));
  for (const Decision& d : result.decisions) PutDecision(&out, d);
  PutU32(&out, static_cast<uint32_t>(result.alerts.size()));
  for (const Alert& a : result.alerts) PutAlert(&out, a);
  PutStatus(&out, result.durability);
  PutU64(&out, result.watermark.applied);
  PutU64(&out, result.watermark.durable);
  return out;
}

Result<WireBatchResult> DecodeBatchResult(std::string_view payload) {
  constexpr size_t kWireDecisionBytes = 1 + 4 + 1;
  Reader r(payload);
  WireBatchResult result;
  uint32_t decisions = 0;
  if (!ReadCount(&r, kWireDecisionBytes, &decisions)) {
    return Status::ParseError("batch-result: malformed decision count");
  }
  result.decisions.resize(decisions);
  for (Decision& d : result.decisions) {
    if (!ReadDecision(&r, &d)) {
      return Status::ParseError("batch-result: malformed decision");
    }
  }
  uint32_t alerts = 0;
  if (!ReadCount(&r, kWireAlertMinBytes, &alerts)) {
    return Status::ParseError("batch-result: malformed alert count");
  }
  result.alerts.resize(alerts);
  for (Alert& a : result.alerts) {
    if (!ReadAlert(&r, &a)) {
      return Status::ParseError("batch-result: malformed alert");
    }
  }
  if (!ReadStatus(&r, &result.durability)) {
    return Status::ParseError("batch-result: malformed durability status");
  }
  if (!r.ReadU64(&result.watermark.applied) ||
      !r.ReadU64(&result.watermark.durable) ||
      result.watermark.durable > result.watermark.applied) {
    return Status::ParseError("batch-result: malformed durability watermark");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("batch-result"));
  return result;
}

std::string EncodeFixResult(const WireFixResult& result) {
  std::string out;
  PutStatus(&out, result.status);
  PutU32(&out, static_cast<uint32_t>(result.alerts.size()));
  for (const Alert& a : result.alerts) PutAlert(&out, a);
  return out;
}

Result<WireFixResult> DecodeFixResult(std::string_view payload) {
  Reader r(payload);
  WireFixResult result;
  if (!ReadStatus(&r, &result.status)) {
    return Status::ParseError("fix-result: malformed status");
  }
  uint32_t alerts = 0;
  if (!ReadCount(&r, kWireAlertMinBytes, &alerts)) {
    return Status::ParseError("fix-result: malformed alert count");
  }
  result.alerts.resize(alerts);
  for (Alert& a : result.alerts) {
    if (!ReadAlert(&r, &a)) {
      return Status::ParseError("fix-result: malformed alert");
    }
  }
  LTAM_RETURN_IF_ERROR(r.Finish("fix-result"));
  return result;
}

std::string EncodeQueryResult(const QueryResult& result) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) PutString(&out, c);
  PutU32(&out, static_cast<uint32_t>(result.rows.size()));
  for (const std::vector<std::string>& row : result.rows) {
    LTAM_CHECK(row.size() == result.columns.size())
        << "ragged query table";
    for (const std::string& cell : row) PutString(&out, cell);
  }
  return out;
}

Result<QueryResult> DecodeQueryResult(std::string_view payload) {
  Reader r(payload);
  QueryResult result;
  uint32_t columns = 0;
  if (!ReadCount(&r, 4, &columns)) {
    return Status::ParseError("query-result: malformed column count");
  }
  result.columns.resize(columns);
  for (std::string& c : result.columns) {
    if (!r.ReadString(&c)) {
      return Status::ParseError("query-result: malformed column name");
    }
  }
  uint32_t rows = 0;
  // Each row holds `columns` length-prefixed cells (and a zero-column
  // table can hold no rows at all).
  if (!ReadCount(&r, columns * 4, &rows) || (columns == 0 && rows != 0)) {
    return Status::ParseError("query-result: malformed row count");
  }
  result.rows.resize(rows);
  for (std::vector<std::string>& row : result.rows) {
    row.resize(columns);
    for (std::string& cell : row) {
      if (!r.ReadString(&cell)) {
        return Status::ParseError("query-result: malformed cell");
      }
    }
  }
  LTAM_RETURN_IF_ERROR(r.Finish("query-result"));
  return result;
}

std::string EncodeStatsResult(const RuntimeStats& stats) {
  std::string out;
  PutU32(&out, stats.num_shards);
  PutU32(&out, stats.requested_shards);
  PutU8(&out, stats.durable ? 1 : 0);
  PutU8(&out, stats.shard_count_overridden ? 1 : 0);
  PutU64(&out, stats.epoch);
  PutU64(&out, stats.wal_events);
  PutU64(&out, stats.requests_processed);
  PutU64(&out, stats.requests_granted);
  PutU64(&out, stats.batches_applied);
  PutU64(&out, stats.events_applied);
  PutU64(&out, stats.events_refused);
  PutU64(&out, stats.batches_rejected);
  PutU64(&out, stats.pending_alerts);
  PutU64(&out, stats.applied_offset);
  PutU64(&out, stats.durable_offset);
  PutU64(&out, stats.wal_append_failures);
  PutU64(&out, stats.wal_sync_failures);
  // v3: per-shard durability watermarks (empty for in-memory runtimes).
  PutU32(&out, static_cast<uint32_t>(stats.shard_watermarks.size()));
  for (const DurabilityWatermark& w : stats.shard_watermarks) {
    PutU64(&out, w.applied);
    PutU64(&out, w.durable);
  }
  // v4: replication role + promotion epoch.
  PutU8(&out, stats.replica ? 1 : 0);
  PutU64(&out, stats.replication_epoch);
  // v6: tiered storage.
  PutU64(&out, stats.cold_segments);
  PutU64(&out, stats.cold_bytes);
  PutU64(&out, stats.dropped_events);
  PutU64(&out, stats.compaction_runs);
  PutU64(&out, stats.checkpoint_dirty_segments);
  return out;
}

Result<RuntimeStats> DecodeStatsResult(std::string_view payload) {
  Reader r(payload);
  RuntimeStats stats;
  uint8_t durable = 0, overridden = 0;
  uint64_t wal_events = 0, processed = 0, granted = 0, batches = 0,
           events = 0, refused = 0, rejected = 0, pending = 0;
  if (!r.ReadU32(&stats.num_shards) || !r.ReadU32(&stats.requested_shards) ||
      !r.ReadU8(&durable) || !r.ReadU8(&overridden) ||
      !r.ReadU64(&stats.epoch) || !r.ReadU64(&wal_events) ||
      !r.ReadU64(&processed) || !r.ReadU64(&granted) ||
      !r.ReadU64(&batches) || !r.ReadU64(&events) || !r.ReadU64(&refused) ||
      !r.ReadU64(&rejected) || !r.ReadU64(&pending) ||
      !r.ReadU64(&stats.applied_offset) ||
      !r.ReadU64(&stats.durable_offset) ||
      !r.ReadU64(&stats.wal_append_failures) ||
      !r.ReadU64(&stats.wal_sync_failures) || durable > 1 ||
      overridden > 1 || stats.durable_offset > stats.applied_offset) {
    return Status::ParseError("stats-result: malformed stats");
  }
  uint32_t shard_count = 0;
  if (!ReadCount(&r, 16, &shard_count)) {
    return Status::ParseError("stats-result: malformed shard watermark count");
  }
  stats.shard_watermarks.resize(shard_count);
  for (DurabilityWatermark& w : stats.shard_watermarks) {
    if (!r.ReadU64(&w.applied) || !r.ReadU64(&w.durable) ||
        w.durable > w.applied) {
      return Status::ParseError("stats-result: malformed shard watermark");
    }
  }
  uint8_t replica = 0;
  if (!r.ReadU8(&replica) || !r.ReadU64(&stats.replication_epoch) ||
      replica > 1) {
    return Status::ParseError("stats-result: malformed replication role");
  }
  stats.replica = replica == 1;
  if (!r.ReadU64(&stats.cold_segments) || !r.ReadU64(&stats.cold_bytes) ||
      !r.ReadU64(&stats.dropped_events) ||
      !r.ReadU64(&stats.compaction_runs) ||
      !r.ReadU64(&stats.checkpoint_dirty_segments)) {
    return Status::ParseError("stats-result: malformed tiered-storage stats");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("stats-result"));
  stats.durable = durable == 1;
  stats.shard_count_overridden = overridden == 1;
  stats.wal_events = wal_events;
  stats.requests_processed = processed;
  stats.requests_granted = granted;
  stats.batches_applied = batches;
  stats.events_applied = events;
  stats.events_refused = refused;
  stats.batches_rejected = rejected;
  stats.pending_alerts = pending;
  return stats;
}

std::string EncodeAlertPush(Span<const Alert> alerts) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(alerts.size()));
  for (const Alert& a : alerts) PutAlert(&out, a);
  return out;
}

Result<std::vector<Alert>> DecodeAlertPush(std::string_view payload) {
  Reader r(payload);
  uint32_t count = 0;
  if (!ReadCount(&r, kWireAlertMinBytes, &count)) {
    return Status::ParseError("alert-push: malformed alert count");
  }
  std::vector<Alert> alerts(count);
  for (Alert& a : alerts) {
    if (!ReadAlert(&r, &a)) {
      return Status::ParseError("alert-push: malformed alert");
    }
  }
  LTAM_RETURN_IF_ERROR(r.Finish("alert-push"));
  return alerts;
}

std::string EncodeErrorResult(const Status& status) {
  LTAM_CHECK(!status.ok()) << "an OK status is not an error payload";
  std::string out;
  PutStatus(&out, status);
  return out;
}

std::string EncodeReplicaHello(const ReplicaHello& hello) {
  std::string out;
  PutU64(&out, hello.epoch);
  PutU32(&out, hello.num_shards);
  for (uint64_t p : hello.positions) PutU64(&out, p);
  return out;
}

Result<ReplicaHello> DecodeReplicaHello(std::string_view payload) {
  Reader r(payload);
  ReplicaHello hello;
  if (!r.ReadU64(&hello.epoch) || !r.ReadU32(&hello.num_shards)) {
    return Status::ParseError("replica-hello: truncated payload");
  }
  // The shard count doubles as the position count; each position is 8
  // bytes, so an implausible count is caught before any allocation.
  if (hello.num_shards == 0 ||
      static_cast<uint64_t>(hello.num_shards) * 8 != r.remaining()) {
    return Status::ParseError("replica-hello: malformed shard count");
  }
  hello.positions.resize(hello.num_shards);
  for (uint32_t k = 0; k < hello.num_shards; ++k) {
    if (!r.ReadU64(&hello.positions[k])) {
      return Status::ParseError("replica-hello: truncated positions");
    }
  }
  LTAM_RETURN_IF_ERROR(r.Finish("replica-hello"));
  return hello;
}

std::string EncodeReplicaWelcome(const ReplicaWelcome& welcome) {
  std::string out;
  PutU64(&out, welcome.epoch);
  PutU32(&out, welcome.num_shards);
  return out;
}

Result<ReplicaWelcome> DecodeReplicaWelcome(std::string_view payload) {
  Reader r(payload);
  ReplicaWelcome welcome;
  if (!r.ReadU64(&welcome.epoch) || !r.ReadU32(&welcome.num_shards) ||
      welcome.num_shards == 0) {
    return Status::ParseError("replica-welcome: malformed payload");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("replica-welcome"));
  return welcome;
}

std::string EncodeSegmentChunk(const SegmentChunk& chunk) {
  LTAM_CHECK(chunk.records.size() <= kMaxReplicationRecords)
      << "segment chunk over the record ceiling";
  std::string out;
  PutU64(&out, chunk.epoch);
  PutU32(&out, chunk.shard);
  PutU64(&out, chunk.start);
  PutU32(&out, static_cast<uint32_t>(chunk.records.size()));
  for (const std::string& record : chunk.records) PutString(&out, record);
  return out;
}

Result<SegmentChunk> DecodeSegmentChunk(std::string_view payload) {
  Reader r(payload);
  SegmentChunk chunk;
  uint32_t count = 0;
  if (!r.ReadU64(&chunk.epoch) || !r.ReadU32(&chunk.shard) ||
      !r.ReadU64(&chunk.start) ||
      // Each record costs at least its 4-byte length prefix.
      !ReadCount(&r, 4, &count) || count > kMaxReplicationRecords) {
    return Status::ParseError("segment-chunk: malformed record count");
  }
  chunk.records.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.ReadString(&chunk.records[i])) {
      return Status::ParseError("segment-chunk: truncated record");
    }
  }
  LTAM_RETURN_IF_ERROR(r.Finish("segment-chunk"));
  return chunk;
}

std::string EncodeWatermarkAdvance(const WatermarkAdvance& advance) {
  std::string out;
  PutU64(&out, advance.epoch);
  PutU32(&out, static_cast<uint32_t>(advance.durable.size()));
  for (uint64_t d : advance.durable) PutU64(&out, d);
  return out;
}

Result<WatermarkAdvance> DecodeWatermarkAdvance(std::string_view payload) {
  Reader r(payload);
  WatermarkAdvance advance;
  uint32_t count = 0;
  if (!r.ReadU64(&advance.epoch) || !ReadCount(&r, 8, &count) ||
      count == 0) {
    return Status::ParseError("watermark-advance: malformed shard count");
  }
  advance.durable.resize(count);
  for (uint32_t k = 0; k < count; ++k) {
    if (!r.ReadU64(&advance.durable[k])) {
      return Status::ParseError("watermark-advance: truncated positions");
    }
  }
  LTAM_RETURN_IF_ERROR(r.Finish("watermark-advance"));
  return advance;
}

std::string EncodeRepointRequest(const RepointRequest& repoint) {
  std::string out;
  PutString(&out, repoint.host);
  PutU16(&out, repoint.port);
  return out;
}

Result<RepointRequest> DecodeRepointRequest(std::string_view payload) {
  Reader r(payload);
  RepointRequest repoint;
  if (!r.ReadString(&repoint.host) || !r.ReadU16(&repoint.port) ||
      repoint.host.empty() || repoint.port == 0) {
    return Status::ParseError("repoint: malformed endpoint");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("repoint"));
  return repoint;
}

std::string EncodePromoteResult(uint64_t epoch) {
  std::string out;
  PutU64(&out, epoch);
  return out;
}

Result<uint64_t> DecodePromoteResult(std::string_view payload) {
  Reader r(payload);
  uint64_t epoch = 0;
  if (!r.ReadU64(&epoch)) {
    return Status::ParseError("promote-result: truncated payload");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("promote-result"));
  return epoch;
}

std::string EncodeMetricsRequest(uint8_t format) {
  std::string out;
  PutU8(&out, format);
  return out;
}

Result<uint8_t> DecodeMetricsRequest(std::string_view payload) {
  Reader r(payload);
  uint8_t format = 0;
  if (!r.ReadU8(&format) || format > kMetricsFormatText) {
    return Status::ParseError("metrics: malformed format byte");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("metrics"));
  return format;
}

std::string EncodeMetricsResult(const MetricsSnapshot& snapshot) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    PutString(&out, name);
    PutU64(&out, value);
  }
  PutU32(&out, static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    PutString(&out, name);
    PutI64(&out, value);
  }
  PutU32(&out, static_cast<uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, histogram] : snapshot.histograms) {
    PutString(&out, name);
    PutU64(&out, histogram.count());
    PutU64(&out, histogram.sum());
    PutU64(&out, histogram.min());
    PutU64(&out, histogram.max());
    const auto buckets = histogram.NonZeroBuckets();
    PutU32(&out, static_cast<uint32_t>(buckets.size()));
    for (const auto& [index, bucket_count] : buckets) {
      PutU32(&out, index);
      PutU64(&out, bucket_count);
    }
  }
  return out;
}

Result<MetricsSnapshot> DecodeMetricsResult(std::string_view payload) {
  Reader r(payload);
  MetricsSnapshot snapshot;
  uint32_t counters = 0;
  if (!ReadCount(&r, 4 + 8, &counters) || counters > kMaxWireMetrics) {
    return Status::ParseError("metrics-result: malformed counter count");
  }
  snapshot.counters.resize(counters);
  for (uint32_t i = 0; i < counters; ++i) {
    auto& [name, value] = snapshot.counters[i];
    if (!r.ReadString(&name) || !r.ReadU64(&value)) {
      return Status::ParseError("metrics-result: truncated counter");
    }
  }
  uint32_t gauges = 0;
  if (!ReadCount(&r, 4 + 8, &gauges) || gauges > kMaxWireMetrics) {
    return Status::ParseError("metrics-result: malformed gauge count");
  }
  snapshot.gauges.resize(gauges);
  for (uint32_t i = 0; i < gauges; ++i) {
    auto& [name, value] = snapshot.gauges[i];
    if (!r.ReadString(&name) || !r.ReadI64(&value)) {
      return Status::ParseError("metrics-result: truncated gauge");
    }
  }
  uint32_t histograms = 0;
  if (!ReadCount(&r, 4 + 4 * 8 + 4, &histograms) ||
      histograms > kMaxWireMetrics) {
    return Status::ParseError("metrics-result: malformed histogram count");
  }
  snapshot.histograms.reserve(histograms);
  for (uint32_t i = 0; i < histograms; ++i) {
    std::string name;
    uint64_t count = 0, sum = 0, min = 0, max = 0;
    uint32_t buckets = 0;
    if (!r.ReadString(&name) || !r.ReadU64(&count) || !r.ReadU64(&sum) ||
        !r.ReadU64(&min) || !r.ReadU64(&max) ||
        !ReadCount(&r, 4 + 8, &buckets) ||
        buckets > kMaxWireHistogramBuckets) {
      return Status::ParseError("metrics-result: truncated histogram");
    }
    std::vector<std::pair<uint32_t, uint64_t>> nonzero(buckets);
    for (uint32_t b = 0; b < buckets; ++b) {
      if (!r.ReadU32(&nonzero[b].first) || !r.ReadU64(&nonzero[b].second)) {
        return Status::ParseError("metrics-result: truncated bucket");
      }
    }
    Result<LatencyHistogram> histogram =
        LatencyHistogram::FromParts(count, sum, min, max, nonzero);
    if (!histogram.ok()) {
      return Status::ParseError("metrics-result: inconsistent histogram (" +
                                histogram.status().message() + ")");
    }
    snapshot.histograms.emplace_back(std::move(name), std::move(*histogram));
  }
  LTAM_RETURN_IF_ERROR(r.Finish("metrics-result"));
  return snapshot;
}

Status DecodeErrorResult(std::string_view payload, Status* error) {
  Reader r(payload);
  Status status;
  if (!ReadStatus(&r, &status)) {
    return Status::ParseError("error: malformed status");
  }
  LTAM_RETURN_IF_ERROR(r.Finish("error"));
  if (status.ok()) {
    return Status::ParseError("error: OK status in an error frame");
  }
  *error = std::move(status);
  return Status::OK();
}

}  // namespace ltam
