// Copyright 2026 The LTAM Authors.
// Authorization and request workload generators.
//
// Produces reproducible authorization databases and access-request
// streams over a generated graph: the inputs for the scaling benchmarks
// (Na = authorizations per location) and the engine-throughput
// benchmarks.

#ifndef LTAM_SIM_WORKLOAD_H_
#define LTAM_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/auth_database.h"
#include "core/decision.h"
#include "engine/access_control_engine.h"
#include "engine/events.h"
#include "graph/multilevel_graph.h"
#include "profile/user_profile.h"
#include "util/random.h"

namespace ltam {

/// Parameters for GenerateAuthorizations.
struct AuthWorkloadOptions {
  /// Authorizations created per (subject, location) pair that is covered.
  uint32_t auths_per_location = 1;
  /// Probability that a given (subject, location) pair is covered at all.
  double coverage = 1.0;
  /// Entry durations are [s, s+len] with s uniform in [0, horizon) and
  /// len uniform in [min_len, max_len].
  Chronon horizon = 1000;
  Chronon min_len = 10;
  Chronon max_len = 100;
  /// Exit durations extend the entry duration by uniform [0, max_slack].
  Chronon max_slack = 50;
  /// Max entry count (n uniform in [1, max_entries]; 0 = unlimited).
  int64_t max_entries = 0;
};

/// Registers `count` subjects named "u<i>" in `profiles`.
std::vector<SubjectId> GenerateSubjects(UserProfileDatabase* profiles,
                                        uint32_t count);

/// Fills `db` with random authorizations for every subject over every
/// primitive location of `graph`, per `options`. Returns the number
/// added.
size_t GenerateAuthorizations(const MultilevelLocationGraph& graph,
                              const std::vector<SubjectId>& subjects,
                              const AuthWorkloadOptions& options, Rng* rng,
                              AuthorizationDatabase* db);

/// A generated access-request stream, time-sorted.
std::vector<AccessRequest> GenerateRequests(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t count, Chronon horizon,
    Rng* rng);

/// Parameters for GenerateEventBatches (the batch-pipeline workload).
struct BatchWorkloadOptions {
  /// Events per batch (the final batch may be smaller).
  size_t batch_size = 256;
  /// Probability that a subject's next event is an exit request (only
  /// emitted when the generator believes the subject is inside).
  double exit_fraction = 0.1;
  /// Probability that a subject's next event is a tracking observation
  /// instead of an entry request.
  double observe_fraction = 0.1;
  /// Per-subject clocks advance by uniform [1, max_step] per event, so
  /// every subject's events are strictly increasing in time — the
  /// ordering EvaluateBatch and the movement database require.
  Chronon max_step = 5;
};

/// Generates `total_events` events split into batches for the sharded
/// pipeline. Each subject's events are strictly increasing in time, both
/// within and across batches, and each batch is sorted by (time, subject)
/// so a sequential event-by-event replay sees the same per-subject order
/// as the sharded engine. Targets are random primitive locations.
std::vector<std::vector<AccessEvent>> GenerateEventBatches(
    const MultilevelLocationGraph& graph,
    const std::vector<SubjectId>& subjects, size_t total_events,
    const BatchWorkloadOptions& options, Rng* rng);

/// Outcome of replaying an event-batch stream through one sequential
/// AccessControlEngine — the reference the sharded and durable pipelines
/// are equivalence-tested (and benchmarked) against.
struct SequentialReplay {
  /// One decision per event, flattened in batch order (the same mapping
  /// ApplyAccessEvent uses: exits grant/deny, observations grant).
  std::vector<Decision> decisions;
  /// Alerts the reference engine raised, in raise order.
  std::vector<Alert> alerts;
  /// Total events replayed.
  size_t events = 0;
};

/// Replays `batches` event-by-event through a fresh sequential engine
/// over the given stores (a private MovementDatabase is used; `auth_db`
/// ledger state is mutated exactly as a live run would).
SequentialReplay ReplayBatchesSequential(
    const MultilevelLocationGraph& graph, AuthorizationDatabase* auth_db,
    const UserProfileDatabase& profiles,
    const std::vector<std::vector<AccessEvent>>& batches,
    const EngineOptions& options = {});

}  // namespace ltam

#endif  // LTAM_SIM_WORKLOAD_H_
