// Copyright 2026 The LTAM Authors.
// Sharded, batched access-decision pipeline.
//
// The single-threaded AccessControlEngine reproduces Figure 3 faithfully
// but serializes every request through one movement database. At
// production scale (the SARS-scenario deployment of Section 1 tracks a
// whole campus) the event stream is naturally partitionable: every
// decision for subject s depends only on s's authorizations, s's movement
// history, and the read-only location graph — Definition 4 binds each
// authorization to a single subject, so two subjects never contend on
// ledger state.
//
// ShardedDecisionEngine exploits that: subjects are hash-partitioned
// across N shards, each shard owns a private MovementDatabase view and a
// private AccessControlEngine (hence a private alert buffer), and a
// persistent worker thread per shard drains its slice of each batch.
// Within a batch, events of one subject are processed in batch order on
// one shard, so decisions are byte-identical to running the sequential
// engine event-by-event (the equivalence property checked by
// tests/sharded_engine_test.cc).
//
// The shared AuthorizationDatabase is safe under this discipline: reads
// go through its subject-bucketed candidate cache, ledger updates touch
// only records owned by the deciding shard's subjects, and mutations
// (rule derivation, revocation) happen between batches on the control
// thread.

#ifndef LTAM_ENGINE_SHARDED_ENGINE_H_
#define LTAM_ENGINE_SHARDED_ENGINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/access_control_engine.h"

namespace ltam {

/// Applies one AccessEvent to an engine and renders the outcome as a
/// Decision:
///  - kRequestEntry: the engine's Definition-7 decision, verbatim;
///  - kRequestExit: grant with kInvalidAuth when the exit was recorded,
///    Deny(kExitRejected) when it was refused (subject not inside, or an
///    out-of-order event);
///  - kObserve: always grant with kInvalidAuth (observations carry their
///    outcome through alerts, not decisions).
/// Both the sharded workers and sequential baselines use this function,
/// so "identical decisions" is a property of the pipeline, not of
/// per-event mapping choices.
Decision ApplyAccessEvent(AccessControlEngine* engine, const AccessEvent& e);

/// Tuning knobs for the sharded pipeline.
struct ShardedEngineOptions {
  /// Number of shards == number of worker threads. Clamped to >= 1.
  uint32_t num_shards = 4;
  /// Per-shard engine options.
  EngineOptions engine;
};

/// A batch-oriented, subject-sharded front end over N AccessControlEngine
/// instances.
///
/// Lifecycle: construct (spawns workers), call EvaluateBatch any number
/// of times from one control thread, destroy (joins workers). Database
/// mutations are only legal between EvaluateBatch calls.
class ShardedDecisionEngine {
 public:
  /// Borrows all stores; they must outlive the engine.
  ShardedDecisionEngine(const MultilevelLocationGraph* graph,
                        AuthorizationDatabase* auth_db,
                        const UserProfileDatabase* profiles,
                        ShardedEngineOptions options = {});
  ~ShardedDecisionEngine();

  ShardedDecisionEngine(const ShardedDecisionEngine&) = delete;
  ShardedDecisionEngine& operator=(const ShardedDecisionEngine&) = delete;

  /// Evaluates a batch of events. Events of the same subject are applied
  /// in batch order (their times must be nondecreasing, as the movement
  /// database requires); events of different subjects may be interleaved
  /// arbitrarily by the partition. Returns one Decision per event, in
  /// input order.
  std::vector<Decision> EvaluateBatch(const std::vector<AccessEvent>& batch);

  /// Shard a subject maps to.
  uint32_t ShardOf(SubjectId s) const;

  /// Number of shards.
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  /// The movement view owned by `shard` (subjects hashing to that shard).
  const MovementDatabase& shard_movements(uint32_t shard) const;

  /// Merged alerts from every shard so far, ordered by (time, subject,
  /// location, type) for determinism, clearing the per-shard buffers.
  std::vector<Alert> DrainAlerts();

  /// Aggregate counters across shards.
  size_t requests_processed() const;
  size_t requests_granted() const;
  /// Batches evaluated so far.
  size_t batches_evaluated() const { return batches_evaluated_; }

 private:
  /// One shard: private movement view + engine, driven by one worker.
  struct Shard {
    explicit Shard(const MultilevelLocationGraph* graph,
                   AuthorizationDatabase* auth_db,
                   const UserProfileDatabase* profiles,
                   const EngineOptions& options);

    MovementDatabase movements;
    AccessControlEngine engine;

    std::mutex mu;
    std::condition_variable cv;
    /// Indices into the current batch owned by this shard, batch order.
    std::vector<size_t> todo;
    bool has_work = false;
    bool stop = false;
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Batch currently being evaluated; set by EvaluateBatch, read by
  /// workers while the completion latch is open.
  const std::vector<AccessEvent>* current_batch_ = nullptr;
  /// Output slots; workers write disjoint indices.
  std::vector<Decision> decisions_;

  /// Completion latch for the in-flight batch.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t pending_shards_ = 0;

  size_t batches_evaluated_ = 0;
};

}  // namespace ltam

#endif  // LTAM_ENGINE_SHARDED_ENGINE_H_
