#!/usr/bin/env bash
# Copyright 2026 The LTAM Authors.
#
# CI entry point. Usage:
#   ./ci.sh            # every job below, tier1 through replication
#   ./ci.sh tier1      # plain build + full ctest suite (the tier-1 gate)
#   ./ci.sh asan       # AddressSanitizer + UBSan build, full ctest suite
#   ./ci.sh tsan       # ThreadSanitizer build, concurrency-relevant tests
#   ./ci.sh examples   # build + run every example binary (facade surface)
#   ./ci.sh service    # ltam_serve round-trip + concurrent smoke + shutdown
#                      # + live v5 metrics scrape (exposition must parse,
#                      # ingest counters must have moved)
#   ./ci.sh bench      # facade vs loopback-server throughput (io-thread
#                      # matrix) -> BENCH_pr6.json,
#                      # durable sync vs pipelined vs interval -> BENCH_pr5.json,
#                      # checkpoint latency full-rewrite vs incremental+tiered
#                      # -> BENCH_pr10.json; fails loudly if any expected
#                      # BENCH_pr<N>.json artifact is missing or empty
#   ./ci.sh load       # open-loop tail latency: ltam_load vs a live
#                      # ltam_serve per scenario family x arrival rate
#                      # -> BENCH_pr7.json (p50/p90/p99/p999 end-to-end);
#                      # the replication family runs against a durable
#                      # primary + read replica (queries routed to the
#                      # replica via --query-host). Each run also scrapes
#                      # the server's metrics over the wire and gates the
#                      # reconciliation (stage histogram counts == frames
#                      # the client got acked, stage sums bounded by the
#                      # client-observed latency) -> BENCH_pr9.json, which
#                      # also carries the instrumented-vs-baseline
#                      # loopback bench rows (the telemetry tax). Ends
#                      # with a soak pass against a retention-enabled
#                      # durable server: cold tier must seal + compact
#                      # and resident bytes must plateau -> BENCH_pr10.json
#   ./ci.sh replication # primary + 2 replicas over real TCP: kill -9
#                      # the primary mid-ingest, promote the freshest
#                      # survivor, repoint the other, assert convergence
#                      # (including the per-replica lag gauges draining
#                      # to zero) and byte-identical query answers
#
# Every future PR is expected to pass `./ci.sh` locally; the tier-1 gate
# is exactly the ROADMAP verify command. For a quick pre-commit signal,
# `ctest --test-dir build -L fast` skips the slow crash-matrix suites.
# Emitted BENCH_*.json artifacts carry context.host_nproc so scaling
# rows can be read against the machine shape they were measured on.

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

tier1() {
  echo "=== tier1: build + full test suite ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS"
}

asan() {
  echo "=== asan: address+undefined sanitizers, full test suite ==="
  cmake -B build-asan -S . -DLTAM_SANITIZE=address,undefined \
    -DLTAM_BUILD_BENCHMARKS=OFF -DLTAM_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j"$JOBS"
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"
}

tsan() {
  echo "=== tsan: thread sanitizer, concurrency tests ==="
  cmake -B build-tsan -S . -DLTAM_SANITIZE=thread \
    -DLTAM_BUILD_BENCHMARKS=OFF -DLTAM_BUILD_EXAMPLES=OFF
  # The sharded pipeline, the caches it leans on, the durable runtime
  # (worker-thread WAL appends + parallel recovery replay), the facade
  # that drives them, and the TCP server around it all (I/O thread +
  # ingest coalescer + read-worker pool + client threads) are the
  # concurrent surface; engine/movement tests ride along as controls.
  local targets=(sharded_engine_test auth_cache_test auth_database_test
                 engine_test movement_db_test durable_sharded_test
                 durable_equivalence_test access_runtime_test
                 movement_view_test service_loopback_test
                 log_pipeline_test loadgen_test replication_test
                 telemetry_test)
  cmake --build build-tsan -j"$JOBS" --target "${targets[@]}"
  for t in "${targets[@]}"; do
    "./build-tsan/tests/$t"
  done
}

examples() {
  echo "=== examples: build + run every example binary ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target \
    quickstart ltam_shell ntu_campus hospital_tracking building_security
  ./build/examples/quickstart > /dev/null
  ./build/examples/ntu_campus > /dev/null
  ./build/examples/hospital_tracking > /dev/null
  ./build/examples/building_security > /dev/null
  printf 'WHEN CAN Alice ACCESS CAIS\nquit\n' \
    | ./build/examples/ltam_shell > /dev/null
  echo "examples: all ran clean"
}

service() {
  echo "=== service: ltam_serve round-trip + concurrent smoke + shutdown ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target \
    ltam_serve ltam_shell ltam_load service_loopback_test \
    service_protocol_fuzz_test telemetry_test
  # Concurrent-client smoke: >=4 connections, coalesced ingest, byte-
  # identical to the direct facade (in-memory + durable), plus the
  # protocol fuzz suite.
  ./build/tests/service_protocol_fuzz_test > /dev/null
  ./build/tests/service_loopback_test > /dev/null
  ./build/tests/telemetry_test > /dev/null
  # End-to-end: a real server process, a real client round-trip through
  # the shell's remote mode, and a clean SIGTERM shutdown.
  local port=$((20000 + RANDOM % 20000))
  local log
  log="$(mktemp)"
  # Scenario world so the metrics gate below can drive real ingest at
  # the server (the shell's remote mode only speaks the query/control
  # surface).
  ./build/examples/ltam_serve --port="$port" --io-threads=2 \
    --scenario=surge --scenario-events=500 > "$log" 2>&1 &
  local server_pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening" "$log" && break
    sleep 0.1
  done
  grep -q "2 io-threads" "$log" \
    || { echo "service: banner missing the io-thread count" >&2; kill "$server_pid"; exit 1; }
  # Capture the shell output (no grep -q on the live pipe: the early
  # close would SIGPIPE the shell under pipefail) and demand the
  # remote-mode banner — a failed connect falls back to local mode,
  # whose stats would satisfy a naive check.
  local shell_out
  shell_out="$(mktemp)"
  printf 'connect 127.0.0.1:%d\nWHEN CAN Alice ACCESS CAIS\nstats\nquit\n' "$port" \
    | ./build/examples/ltam_shell > "$shell_out" 2>&1
  grep -q "connected to 127.0.0.1:$port" "$shell_out" \
    || { echo "service: shell never entered remote mode" >&2; kill "$server_pid"; exit 1; }
  grep -q 'events-applied' "$shell_out" \
    || { echo "service: remote stats round-trip failed" >&2; kill "$server_pid"; exit 1; }
  rm -f "$shell_out"
  # Live metrics gate: drive real ingest with a short open-loop burst,
  # then scrape the v5 metrics frame (Prometheus text) through the
  # shell. The exposition must be well-formed and the ingest counters
  # must have moved — a server that silently lost its instrumentation
  # fails here, not in a dashboard weeks later.
  ./build/examples/ltam_load --port="$port" --scenario=surge \
    --rate=500 --duration-s=1 --connections=2 > /dev/null \
    || { echo "service: metrics ingest burst failed" >&2; kill "$server_pid"; exit 1; }
  local prom_out
  prom_out="$(mktemp)"
  printf 'connect 127.0.0.1:%d\nmetrics prom\nquit\n' "$port" \
    | ./build/examples/ltam_shell 2>/dev/null \
    | grep -E '^(#|ltam_)' > "$prom_out"
  python3 - "$prom_out" <<'EOF' || { kill "$server_pid" 2>/dev/null; exit 1; }
import sys

values = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name.startswith("ltam_"), f"malformed exposition line: {line!r}"
        values[name] = float(value)  # must parse
frames = values.get("ltam_ingest_frames", 0)
assert frames > 0, "ingest.frames never moved"
assert values.get("ltam_ingest_events", 0) >= frames, "events below frames"
assert values.get("ltam_ingest_e2e_seconds_count") == frames, \
    "e2e histogram count diverges from the frame counter"
EOF
  rm -f "$prom_out"
  kill -TERM "$server_pid"
  wait "$server_pid" \
    || { echo "service: server exited uncleanly" >&2; exit 1; }
  grep -q "bye" "$log" \
    || { echo "service: server skipped the shutdown path" >&2; exit 1; }
  rm -f "$log"
  echo "service: round-trip + smoke + clean shutdown passed"
}

# Stamps the host core count into an emitted BENCH_*.json's context.
# Shard- and io-thread-scaling rows are only meaningful relative to the
# machine shape (on a 1-core container they measure scheduling
# overhead), so the standing caveat is machine-readable in the artifact
# itself instead of living as a ROADMAP footnote.
record_host_meta() {
  python3 - "$@" <<'EOF'
import json
import os
import sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    doc.setdefault("context", {})["host_nproc"] = os.cpu_count()
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
EOF
}

# Loud artifact gate: a bench/load job that "passed" without emitting
# the BENCH_pr<N>.json rows it exists to produce is a silent regression
# in the trajectory record. Usage: require_bench_artifacts <job> <file>...
require_bench_artifacts() {
  local job=$1
  shift
  local artifact
  for artifact in "$@"; do
    if [ ! -s "$artifact" ]; then
      echo "$job: expected artifact $artifact is missing or empty" >&2
      exit 1
    fi
    python3 -c "
import json, sys
with open('$artifact') as f:
    doc = json.load(f)
assert doc.get('benchmarks'), '$artifact has no benchmark rows'
" || { echo "$job: $artifact is not a valid benchmark artifact" >&2; exit 1; }
  done
}

bench() {
  echo "=== bench: loopback overhead -> BENCH_pr6.json, durability modes -> BENCH_pr5.json ==="
  cmake -B build -S .
  if ! cmake --build build -j"$JOBS" --target bench_service bench_access_engine; then
    echo "bench: google-benchmark not available; skipping" >&2
    return 0
  fi
  # BM_FacadeBatch is the direct AccessRuntime baseline on the service
  # workload; BM_ServiceLoopbackBatch drives the identical per-stream
  # batches through a loopback ltam-serve with 4 pipelined connections
  # at io_threads={1,4} — the gap is the network + coalescing overhead,
  # and frames_per_merge reports how much the coalescer amortizes. The
  # filter is deliberately unanchored: the io-thread matrix suffixes
  # benchmark names with their args ("BM_ServiceLoopbackBatch/1/4"), so
  # a '$'-anchored filter would silently drop every loopback row. On
  # 1-core CI containers the io_threads=4 rows measure scheduling
  # overhead, not parallelism — compare them only on multi-core hosts.
  ./build/bench/bench_service \
    --benchmark_filter='FacadeBatch|ServiceLoopbackBatch/' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_pr6.json --benchmark_out_format=json
  record_host_meta BENCH_pr6.json
  echo "bench: wrote $(pwd)/BENCH_pr6.json"
  # PR 5: the durable write path's three sync modes on the identical
  # stream (every iteration ends at the same durability barrier, so the
  # comparison is honest), plus the durable loopback server in batch vs
  # pipelined mode. Pipelined throughput must be >= sync mode.
  # Longer min time than the service benches: the durable modes differ
  # by tens of percent with ~10% run-to-run noise at 1-2 iterations.
  ./build/bench/bench_access_engine \
    --benchmark_filter='BM_DurableBatch' \
    --benchmark_min_time=0.2 \
    --benchmark_out=BENCH_pr5_durable.json --benchmark_out_format=json
  ./build/bench/bench_service \
    --benchmark_filter='ServiceLoopbackBatch(Durable|Pipelined)' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_pr5_service.json --benchmark_out_format=json
  python3 - <<'EOF'
import json
out = None
for path in ("BENCH_pr5_durable.json", "BENCH_pr5_service.json"):
    with open(path) as f:
        part = json.load(f)
    if out is None:
        out = part
    else:
        out["benchmarks"].extend(part["benchmarks"])
with open("BENCH_pr5.json", "w") as f:
    json.dump(out, f, indent=1)
EOF
  rm -f BENCH_pr5_durable.json BENCH_pr5_service.json
  record_host_meta BENCH_pr5.json
  echo "bench: wrote $(pwd)/BENCH_pr5.json"
  # PR 10: checkpoint latency, full rewrite vs incremental + tiered.
  # Same dirtying work per timed checkpoint at every history length;
  # the full variant dirties every shard (all snapshots rewritten, cost
  # grows with history), the incremental variant dirties one shard with
  # the cold tier bounding its hot snapshot (cost plateaus). The soak
  # rows from `./ci.sh load` merge into the same artifact.
  ./build/bench/bench_access_engine \
    --benchmark_filter='BM_Checkpoint(Full|Incremental)' \
    --benchmark_min_time=0.05 \
    --benchmark_out=BENCH_pr10.json --benchmark_out_format=json
  record_host_meta BENCH_pr10.json
  echo "bench: wrote $(pwd)/BENCH_pr10.json"
  require_bench_artifacts bench BENCH_pr5.json BENCH_pr6.json BENCH_pr10.json
}

load() {
  echo "=== load: open-loop tail latency per scenario family -> BENCH_pr7.json ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target ltam_serve ltam_load ltam_shell
  # One short open-loop pass per (scenario family, arrival rate) against
  # a real ltam_serve process booted with the matching world. The
  # loader measures latency from each frame's SCHEDULED arrival, so a
  # server that falls behind shows up in p99/p999 — the tail-latency
  # signal the closed-loop bench jobs cannot produce. --scenario-events
  # must equal rate*duration on both sides: it sizes the authorization
  # horizon the two processes derive the shared world from.
  local duration=1
  local connections=2
  local parts=() proms=()
  local scenario rate
  for scenario in surge contact churn tenant replication; do
    for rate in 2000 6000; do
      local events=$((rate * duration))
      local port=$((20000 + RANDOM % 20000))
      local log
      log="$(mktemp)"
      # The replication family runs in its real topology: a durable
      # primary taking ingest and a read replica answering the query
      # mix over --query-host — the tail this row gates is the
      # replicated-serving read path, not a single-node stand-in.
      local server_extra=() load_extra=()
      local repl_root="" replica_pid="" replica_log=""
      if [ "$scenario" = replication ]; then
        repl_root="$(mktemp -d)"
        mkdir -p "$repl_root/primary" "$repl_root/replica"
        server_extra=(--durable="$repl_root/primary" --shards=2
                      --sync-mode=pipelined)
      fi
      ./build/examples/ltam_serve --port="$port" --scenario="$scenario" \
        --scenario-events="$events" "${server_extra[@]}" > "$log" 2>&1 &
      local server_pid=$!
      for _ in $(seq 1 50); do
        grep -q "listening" "$log" && break
        sleep 0.1
      done
      grep -q "scenario $scenario" "$log" \
        || { echo "load: server missing the scenario banner" >&2; kill "$server_pid"; exit 1; }
      if [ "$scenario" = replication ]; then
        local replica_port=$((port + 1))
        replica_log="$(mktemp)"
        ./build/examples/ltam_serve --port="$replica_port" \
          --scenario="$scenario" --scenario-events="$events" \
          --durable="$repl_root/replica" --shards=2 \
          --replica-of=127.0.0.1:"$port" > "$replica_log" 2>&1 &
        replica_pid=$!
        for _ in $(seq 1 50); do
          grep -q "replica of" "$replica_log" && break
          sleep 0.1
        done
        grep -q "replica of" "$replica_log" \
          || { echo "load: replica never came up" >&2; kill "$server_pid" "$replica_pid"; exit 1; }
        load_extra=(--query-host=127.0.0.1 --query-port="$replica_port")
      fi
      local out="BENCH_pr7_${scenario}_${rate}.json"
      ./build/examples/ltam_load --port="$port" --scenario="$scenario" \
        --rate="$rate" --duration-s="$duration" \
        --connections="$connections" --json-out="$out" "${load_extra[@]}" \
        || { echo "load: $scenario @ $rate ev/s failed" >&2; kill "$server_pid"; exit 1; }
      parts+=("$out")
      # Scrape the server the run just hammered, before teardown: the
      # per-stage snapshot rides into BENCH_pr9.json next to the client
      # rows, and the merge below gates the reconciliation between them.
      local prom="BENCH_pr9_${scenario}_${rate}.prom"
      printf 'connect 127.0.0.1:%d\nmetrics prom\nquit\n' "$port" \
        | ./build/examples/ltam_shell 2>/dev/null \
        | grep -E '^(#|ltam_)' > "$prom" \
        || { echo "load: metrics scrape failed for $scenario @ $rate" >&2; kill "$server_pid"; exit 1; }
      proms+=("$prom")
      if [ -n "$replica_pid" ]; then
        kill -TERM "$replica_pid"
        wait "$replica_pid" \
          || { echo "load: replica exited uncleanly after $scenario @ $rate" >&2; exit 1; }
        rm -f "$replica_log"
      fi
      kill -TERM "$server_pid"
      wait "$server_pid" \
        || { echo "load: server exited uncleanly after $scenario @ $rate" >&2; exit 1; }
      rm -f "$log"
      [ -n "$repl_root" ] && rm -rf "$repl_root"
    done
  done
  # Merge the per-run reports and hard-fail if any (family, rate) row
  # lost its latency percentiles — the trajectory gate, not a warning.
  python3 - "${parts[@]}" <<'EOF'
import json
import os
import sys

merged = {"context": {"executable": "ltam_load", "open_loop": True,
                      "host_nproc": os.cpu_count()},
          "benchmarks": []}
for path in sys.argv[1:]:
    with open(path) as f:
        merged["benchmarks"].extend(json.load(f)["benchmarks"])
families = set()
rates_per_family = {}
for row in merged["benchmarks"]:
    for key in ("p50_ms", "p90_ms", "p99_ms", "p999_ms", "max_ms"):
        assert key in row, f"{row['name']} lost {key}"
    family = row["name"].split("_")[1]
    families.add(family)
    rates_per_family.setdefault(family, set()).add(
        row["name"].split("/rate:")[1].split("/")[0])
assert len(families) >= 3, f"need >=3 scenario families, got {families}"
for family, rates in rates_per_family.items():
    assert len(rates) >= 2, f"{family} needs >=2 arrival rates, got {rates}"
with open("BENCH_pr7.json", "w") as f:
    json.dump(merged, f, indent=1)
EOF
  # BENCH_pr9.json: the same client rows plus each run's server-side
  # telemetry snapshot, with the reconciliation gated hard — the stage
  # histograms must count exactly the frames the client got acked, and
  # their sums must nest inside the latency the client observed. A
  # drifting count basis or a non-monotonic clock fails the job, not a
  # code-review eyeball.
  python3 - "${parts[@]}" "${proms[@]}" <<'EOF'
import json
import os
import sys

paths = sys.argv[1:]
half = len(paths) // 2
client_paths, prom_paths = paths[:half], paths[half:]

def parse_prom(path):
    values = {}
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name.startswith("ltam_"), f"{path}: malformed line {line!r}"
            values[name] = float(value)
    return values

merged = {"context": {"executable": "ltam_load+ltam_serve",
                      "open_loop": True, "host_nproc": os.cpu_count()},
          "benchmarks": []}
for cpath, ppath in zip(client_paths, prom_paths):
    with open(cpath) as f:
        doc = json.load(f)
    merged["benchmarks"].extend(doc["benchmarks"])
    ingest = next(r for r in doc["benchmarks"] if "_ingest/" in r["name"])
    family = ingest["name"].split("_")[1]
    rate = ingest["name"].split("/rate:")[1].split("/")[0]
    m = parse_prom(ppath)

    # Count reconciliation: the server's frame counter and every
    # per-frame stage histogram agree with the client's acked-frame
    # count (quota-refused frames are counted by neither side).
    frames = m["ltam_ingest_frames"]
    assert frames == ingest["hist_count"], \
        f"{family}@{rate}: server saw {frames} frames, client acked {ingest['hist_count']}"
    for stage in ("queue_wait", "decode", "apply", "write", "e2e"):
        count = m[f"ltam_ingest_{stage}_seconds_count"]
        assert count == frames, \
            f"{family}@{rate}: ingest.{stage} counted {count}, expected {frames}"
    assert m["ltam_ingest_events"] >= frames

    # One fsync-wait span per merged batch; runtime.apply_batch ticks
    # at least once per batch (plus any world-boot applies), and spans
    # still pending at scrape time are allowed to be unresolved.
    fsync = m["ltam_ingest_fsync_wait_seconds_count"]
    batches = m["ltam_runtime_apply_batch_seconds_count"]
    assert 0 < fsync <= batches, f"{family}@{rate}: fsync={fsync} batches={batches}"

    # Sum consistency: stage spans nest inside the server's e2e span,
    # which nests inside the client's scheduled-arrival latency.
    e2e_sum = m["ltam_ingest_e2e_seconds_sum"]
    stage_sum = sum(m[f"ltam_ingest_{s}_seconds_sum"]
                    for s in ("queue_wait", "decode", "apply", "write"))
    assert stage_sum <= e2e_sum * 1.000001 + 1e-6, \
        f"{family}@{rate}: stage sums {stage_sum}s exceed e2e sum {e2e_sum}s"
    client_sum = ingest["hist_sum_ns"] / 1e9
    assert e2e_sum <= client_sum * 1.000001 + 1e-6, \
        f"{family}@{rate}: server e2e {e2e_sum}s exceeds client-observed {client_sum}s"

    row = {"name": f"SERVER_{family}_metrics/rate:{rate}",
           "run_type": "iteration", "iterations": 1,
           "ingest_frames": int(frames),
           "ingest_events": int(m["ltam_ingest_events"]),
           "fsync_wait_count": int(fsync),
           "apply_batch_count": int(batches),
           "wal_sync_count": int(m.get("ltam_wal_sync_seconds_count", 0)),
           "e2e_sum_s": e2e_sum, "stage_sum_s": stage_sum,
           "client_sum_s": client_sum}
    for s in ("queue_wait", "decode", "apply", "write", "e2e"):
        row[f"{s}_p99_ms"] = \
            m[f'ltam_ingest_{s}_seconds{{quantile="0.99"}}'] * 1e3
    merged["benchmarks"].append(row)
with open("BENCH_pr9.json", "w") as f:
    json.dump(merged, f, indent=1)
EOF
  rm -f "${parts[@]}" "${proms[@]}"
  echo "load: wrote $(pwd)/BENCH_pr7.json"
  # The telemetry tax: the identical loopback workload with and without
  # a registry wired in. Both rows land in BENCH_pr9.json; the gap is
  # reported (CI containers are too noisy for a hard gate, multi-core
  # hosts should see it within run-to-run noise).
  if cmake --build build -j"$JOBS" --target bench_service 2>/dev/null; then
    ./build/bench/bench_service \
      --benchmark_filter='ServiceLoopbackBatch(Instrumented)?/4/1' \
      --benchmark_min_time=0.05 \
      --benchmark_out=BENCH_pr9_bench.json --benchmark_out_format=json
    python3 - <<'EOF'
import json

with open("BENCH_pr9.json") as f:
    doc = json.load(f)
with open("BENCH_pr9_bench.json") as f:
    bench = json.load(f)["benchmarks"]
doc["benchmarks"].extend(bench)
rate = {}
for row in bench:
    if row["name"].startswith("BM_ServiceLoopbackBatchInstrumented"):
        rate["instrumented"] = row["items_per_second"]
    elif row["name"].startswith("BM_ServiceLoopbackBatch/"):
        rate["baseline"] = row["items_per_second"]
assert len(rate) == 2, f"missing a telemetry-tax row: {sorted(rate)}"
gap = 100.0 * (1.0 - rate["instrumented"] / rate["baseline"])
print(f"load: telemetry tax {gap:+.1f}% "
      f"({rate['instrumented']:.0f} vs {rate['baseline']:.0f} events/s)")
with open("BENCH_pr9.json", "w") as f:
    json.dump(doc, f, indent=1)
EOF
    rm -f BENCH_pr9_bench.json
  else
    echo "load: google-benchmark not available; BENCH_pr9.json carries no telemetry-tax rows" >&2
  fi
  record_host_meta BENCH_pr9.json
  echo "load: wrote $(pwd)/BENCH_pr9.json"

  # PR 10 soak: sustained ingest against a retention-enabled durable
  # server, checkpointing as it goes so the cold tier seals, compacts,
  # and the process's resident set plateaus instead of tracking total
  # history. The run is backgrounded so the server can be scraped
  # mid-flight: the end-of-run scrape must show compaction.runs moved
  # and resident bytes staying near the mid-run level.
  local soak_port=$((20000 + RANDOM % 20000))
  local soak_root soak_log
  soak_root="$(mktemp -d)"
  soak_log="$(mktemp)"
  local soak_events=12000
  ./build/examples/ltam_serve --port="$soak_port" --scenario=soak \
    --scenario-events="$soak_events" --durable="$soak_root" --shards=2 \
    --sync-mode=pipelined --retention-horizon-s=100000 \
    --retention-hot-events=128 > "$soak_log" 2>&1 &
  local soak_server_pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening" "$soak_log" && break
    sleep 0.1
  done
  grep -q "scenario soak" "$soak_log" \
    || { echo "load: soak server missing the scenario banner" >&2; kill "$soak_server_pid"; exit 1; }
  soak_scrape() {
    printf 'connect 127.0.0.1:%d\nmetrics prom\nquit\n' "$soak_port" \
      | ./build/examples/ltam_shell 2>/dev/null | grep -E '^(#|ltam_)'
  }
  ./build/examples/ltam_load --port="$soak_port" --scenario=soak \
    --rate=4000 --duration-s=3 --connections=2 \
    --checkpoint-every-frames=8 --json-out=BENCH_pr10_soak.json &
  local soak_load_pid=$!
  sleep 1.8
  local soak_mid
  soak_mid="$(soak_scrape)" \
    || { echo "load: soak mid-run scrape failed" >&2; kill "$soak_server_pid" "$soak_load_pid"; exit 1; }
  wait "$soak_load_pid" \
    || { echo "load: soak run failed" >&2; kill "$soak_server_pid"; exit 1; }
  local soak_end
  soak_end="$(soak_scrape)" \
    || { echo "load: soak end scrape failed" >&2; kill "$soak_server_pid"; exit 1; }
  kill -TERM "$soak_server_pid"
  wait "$soak_server_pid" \
    || { echo "load: soak server exited uncleanly" >&2; exit 1; }
  rm -f "$soak_log"
  rm -rf "$soak_root"
  SOAK_MID="$soak_mid" SOAK_END="$soak_end" python3 - <<'EOF'
import json
import os

def parse(text):
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        values[name] = float(value)
    return values

mid = parse(os.environ["SOAK_MID"])
end = parse(os.environ["SOAK_END"])

# The tier must actually operate under load: segments sealed, at least
# one compaction run, dirty-segment accounting flowing.
assert end.get("ltam_storage_cold_segments", 0) > 0, \
    f"no cold segments sealed: {end.get('ltam_storage_cold_segments')}"
assert end.get("ltam_storage_cold_bytes", 0) > 0
assert end.get("ltam_compaction_runs", 0) >= 1, \
    f"compaction never ran: {end.get('ltam_compaction_runs')}"
assert end.get("ltam_checkpoint_dirty_segments", 0) > 0

# The plateau gate: resident bytes at end-of-run must stay near the
# mid-run level — memory tracking TOTAL history would blow through
# this margin on any sustained run.
rss_mid = mid.get("ltam_storage_resident_bytes", 0)
rss_end = end.get("ltam_storage_resident_bytes", 0)
assert rss_mid > 0 and rss_end > 0, \
    f"resident-bytes gauge missing (mid={rss_mid}, end={rss_end})"
assert rss_end <= rss_mid * 1.75 + 32 * 1024 * 1024, \
    f"resident set kept growing: mid={rss_mid} end={rss_end}"

row = {"name": "SOAK_retention_metrics/rate:4000", "run_type": "iteration",
       "iterations": 1,
       "cold_segments": int(end["ltam_storage_cold_segments"]),
       "cold_bytes": int(end["ltam_storage_cold_bytes"]),
       "compaction_runs": int(end["ltam_compaction_runs"]),
       "checkpoint_dirty_segments":
           int(end["ltam_checkpoint_dirty_segments"]),
       "retention_dropped_segments":
           int(end.get("ltam_retention_dropped_segments", 0)),
       "resident_bytes_mid": int(rss_mid),
       "resident_bytes_end": int(rss_end)}

with open("BENCH_pr10_soak.json") as f:
    soak = json.load(f)
soak["benchmarks"].append(row)
try:
    with open("BENCH_pr10.json") as f:
        doc = json.load(f)
    doc["benchmarks"].extend(soak["benchmarks"])
except FileNotFoundError:
    doc = soak
with open("BENCH_pr10.json", "w") as f:
    json.dump(doc, f, indent=1)
print(f"load: soak plateau ok (rss mid={rss_mid/1e6:.0f}MB "
      f"end={rss_end/1e6:.0f}MB, compaction_runs="
      f"{int(end['ltam_compaction_runs'])})")
EOF
  rm -f BENCH_pr10_soak.json
  record_host_meta BENCH_pr10.json
  echo "load: wrote $(pwd)/BENCH_pr10.json (soak rows)"
  require_bench_artifacts load BENCH_pr7.json BENCH_pr9.json BENCH_pr10.json
}

replication() {
  echo "=== replication: kill -9 failover across real processes ==="
  cmake -B build -S .
  cmake --build build -j"$JOBS" --target \
    ltam_serve ltam_load ltam_shell replication_test
  # The in-process contracts first: catch-up byte-identity, crash-
  # promote-repoint equivalence against a direct replay, and stale-
  # epoch fencing (a fenced primary's writes provably never land).
  ./build/tests/replication_test > /dev/null

  # Then the real thing: three ltam_serve processes over TCP. Ingest
  # flows to the primary while replica 1 serves the scenario's query
  # mix; the primary is kill -9'd mid-ingest, the freshest survivor is
  # promoted (epoch 0 -> 1), the other survivor repointed at it, and
  # the pair must converge to the identical watermark and answer a
  # query sweep byte-identically.
  local root
  root="$(mktemp -d)"
  mkdir -p "$root/primary" "$root/r1" "$root/r2"
  local pport=$((20000 + RANDOM % 20000))
  local r1port=$((pport + 1)) r2port=$((pport + 2))
  local events=4000
  local world=(--scenario=replication --scenario-events="$events" --shards=2)

  await_banner() {
    local log=$1 pat=$2
    for _ in $(seq 1 100); do
      grep -q "$pat" "$log" && return 0
      sleep 0.1
    done
    echo "replication: timed out waiting for '$pat' in $log" >&2
    cat "$log" >&2
    return 1
  }
  # Prints a server's applied offset (the "durable/applied" watermark's
  # right half) via the shell's remote stats.
  applied_of() {
    printf 'connect 127.0.0.1:%d\nstats\nquit\n' "$1" \
      | ./build/examples/ltam_shell 2>/dev/null \
      | sed -n 's|.*durability-watermark:[[:space:]]*[0-9]*/\([0-9]*\).*|\1|p'
  }
  # A fixed query sweep with the endpoint-specific banner stripped —
  # the byte-identity probe.
  query_sweep() {
    { printf 'connect 127.0.0.1:%d\n' "$1"
      local i
      for i in 0 1 2 3 4 5 6 7; do
        printf 'WHERE WAS u%d AT 40\nWHERE WAS u%d AT 1000\n' "$i" "$i"
      done
      printf 'quit\n'
    } | ./build/examples/ltam_shell 2>&1 \
      | sed 's/connected to 127.0.0.1:[0-9]*/connected/'
  }

  ./build/examples/ltam_serve --port="$pport" --durable="$root/primary" \
    --sync-mode=pipelined "${world[@]}" > "$root/primary.log" 2>&1 &
  local primary_pid=$!
  await_banner "$root/primary.log" "listening"
  ./build/examples/ltam_serve --port="$r1port" --durable="$root/r1" \
    "${world[@]}" --replica-of=127.0.0.1:"$pport" > "$root/r1.log" 2>&1 &
  local r1_pid=$!
  ./build/examples/ltam_serve --port="$r2port" --durable="$root/r2" \
    "${world[@]}" --replica-of=127.0.0.1:"$pport" > "$root/r2.log" 2>&1 &
  local r2_pid=$!
  await_banner "$root/r1.log" "replica of"
  await_banner "$root/r2.log" "replica of"

  ./build/examples/ltam_load --port="$pport" --scenario=replication \
    --query-host=127.0.0.1 --query-port="$r1port" \
    --rate="$events" --duration-s=1 --connections=2 \
    > "$root/load.log" 2>&1 &
  local load_pid=$!
  sleep 0.6
  kill -9 "$primary_pid"
  # The severed ingest stream fails the load run — that's the scenario,
  # not a harness error.
  wait "$load_pid" || true
  wait "$primary_pid" 2>/dev/null || true
  sleep 0.5  # Let in-flight chunks the replicas already hold drain.

  # Promote whichever survivor saw more of the stream (the laggard's
  # state is a prefix of the leader's, so repointing it converges).
  local a1 a2
  a1="$(applied_of "$r1port")"; a1="${a1:-0}"
  a2="$(applied_of "$r2port")"; a2="${a2:-0}"
  [ "$a1" -gt 0 ] || [ "$a2" -gt 0 ] \
    || { echo "replication: no survivor applied any of the stream" >&2; exit 1; }
  local lead_port follow_port
  if [ "$a1" -ge "$a2" ]; then
    lead_port=$r1port; follow_port=$r2port
  else
    lead_port=$r2port; follow_port=$r1port
  fi
  # Capture, then grep: grep -q on the live pipe would SIGPIPE the
  # shell under pipefail the moment it matches (same trap as the
  # service job).
  local ctl_out
  ctl_out="$(printf 'connect 127.0.0.1:%d\npromote\nquit\n' "$lead_port" \
    | ./build/examples/ltam_shell)"
  grep -q "promoted to primary at replication epoch 1" <<< "$ctl_out" \
    || { echo "replication: promote failed: $ctl_out" >&2; exit 1; }
  ctl_out="$(printf 'connect 127.0.0.1:%d\nrepoint 127.0.0.1:%d\nquit\n' \
      "$follow_port" "$lead_port" | ./build/examples/ltam_shell)"
  grep -q "repointed" <<< "$ctl_out" \
    || { echo "replication: repoint failed: $ctl_out" >&2; exit 1; }

  # Convergence: the follower reaches the new primary's watermark AND
  # adopts its epoch (equal watermarks alone can predate the link's
  # redial — the epoch only moves once the new subscription is live).
  local lead_applied="" follow_stats="" converged=no
  for _ in $(seq 1 100); do
    lead_applied="$(applied_of "$lead_port")"
    follow_stats="$(printf 'connect 127.0.0.1:%d\nstats\nquit\n' \
        "$follow_port" | ./build/examples/ltam_shell)"
    if [ -n "$lead_applied" ] &&
       grep -Eq 'replication-epoch:[[:space:]]*1' <<< "$follow_stats" &&
       grep -Eq "durability-watermark:[[:space:]]*[0-9]+/$lead_applied " \
         <<< "$follow_stats"; then
      converged=yes
      break
    fi
    sleep 0.1
  done
  [ "$converged" = yes ] \
    || { echo "replication: survivors never converged (lead applied=$lead_applied, follower: $follow_stats)" >&2; exit 1; }

  # The new primary's per-replica lag gauges (shipped vs the follower's
  # durable position, exported by its log shipper and rendered by the
  # shell's remote stats) must drain to zero once the follower has
  # converged — a gauge stuck nonzero means the shipper and the
  # watermark disagree about the same replica.
  local lag_ok=no lead_stats=""
  for _ in $(seq 1 50); do
    lead_stats="$(printf 'connect 127.0.0.1:%d\nstats\nquit\n' \
        "$lead_port" | ./build/examples/ltam_shell)"
    if grep -q 'lag_records: ' <<< "$lead_stats" &&
       ! grep -Eq 'lag_records: (-|[1-9])' <<< "$lead_stats"; then
      lag_ok=yes
      break
    fi
    sleep 0.1
  done
  [ "$lag_ok" = yes ] \
    || { echo "replication: replica lag gauge never drained to zero: $lead_stats" >&2; exit 1; }

  diff <(query_sweep "$lead_port") <(query_sweep "$follow_port") \
    || { echo "replication: survivors answer queries differently" >&2; exit 1; }

  kill -TERM "$r1_pid" "$r2_pid"
  wait "$r1_pid" || { echo "replication: replica 1 exited uncleanly" >&2; exit 1; }
  wait "$r2_pid" || { echo "replication: replica 2 exited uncleanly" >&2; exit 1; }
  rm -rf "$root"
  echo "replication: kill -9 promote/repoint failover converged byte-identically"
}

case "${1:-all}" in
  tier1) tier1 ;;
  asan) asan ;;
  tsan) tsan ;;
  examples) examples ;;
  service) service ;;
  bench) bench ;;
  load) load ;;
  replication) replication ;;
  all)
    tier1
    asan
    tsan
    examples
    service
    bench
    load
    replication
    ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|examples|service|bench|load|replication|all]" >&2
    exit 2
    ;;
esac

echo "ci.sh: all requested jobs passed"
