// Copyright 2026 The LTAM Authors.
// Movement simulation — the stand-in for the paper's RFID/positioning
// infrastructure.
//
// Subjects perform random walks over the flattened location graph,
// issuing access requests as they move. A configurable fraction of moves
// are *violations* with ground truth recorded: tailgating (entering
// without a request, piggybacking on someone else's door) and overstays
// (ignoring the exit window). Feeding the resulting event stream to both
// the LTAM engine and the card-reader baseline measures each system's
// detection rate against the ground truth — the quantitative version of
// the paper's Section 1 comparison.

#ifndef LTAM_SIM_MOVEMENT_SIM_H_
#define LTAM_SIM_MOVEMENT_SIM_H_

#include <cstdint>
#include <vector>

#include "engine/access_control_engine.h"
#include "engine/baseline.h"
#include "graph/multilevel_graph.h"
#include "util/random.h"

namespace ltam {

/// One simulated event, in time order.
struct SimEvent {
  enum class Kind : uint8_t {
    kRequest = 0,   ///< Card swipe at the door of `location`.
    kSneak = 1,     ///< Physical move without a swipe (tailgating).
    kObserve = 2,   ///< Tracking observation of the subject's location.
    kExit = 3,      ///< Subject leaves the site.
    kTick = 4,      ///< Monitoring patrol tick.
  };
  Kind kind = Kind::kRequest;
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;
};

/// Ground-truth violation committed by the simulator.
struct GroundTruthViolation {
  AlertType type = AlertType::kUnauthorizedPresence;
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;
};

/// Simulation parameters.
struct SimOptions {
  uint32_t steps_per_subject = 32;
  /// Probability a move is a sneak (tailgate) instead of a swipe.
  double tailgate_prob = 0.0;
  /// Probability a subject overstays (waits past the exit window) before
  /// the next move.
  double overstay_prob = 0.0;
  /// Chronons between consecutive moves of one subject.
  Chronon step_gap = 3;
  /// Emit a tracking observation after every physical move.
  bool emit_observations = true;
  /// Emit a patrol tick after each global timestep.
  bool emit_ticks = true;
};

/// The generated scenario: events plus ground truth.
struct Scenario {
  std::vector<SimEvent> events;
  std::vector<GroundTruthViolation> ground_truth;
};

/// Simulates random walks of `subjects` over `graph` against the
/// authorizations in `db` (used to decide which moves *would* be granted,
/// so walks mostly follow authorized paths). Deterministic given `rng`.
Scenario SimulateMovement(const MultilevelLocationGraph& graph,
                          const AuthorizationDatabase& db,
                          const std::vector<SubjectId>& subjects,
                          const SimOptions& options, Rng* rng);

/// Replays a scenario against the LTAM engine.
void ReplayOnEngine(const Scenario& scenario, AccessControlEngine* engine);

class AccessRuntime;

/// Replays a scenario against an AccessRuntime (any backend) and
/// returns every alert it raised, drained. Event mapping matches
/// ReplayOnEngine: sneaks are invisible at the door, refused exits are
/// part of the measurement.
std::vector<Alert> ReplayOnRuntime(const Scenario& scenario,
                                   AccessRuntime* runtime);

/// Replays a scenario against the card-reader baseline (which ignores
/// sneaks/observations/ticks by construction).
void ReplayOnBaseline(const Scenario& scenario, CardReaderBaseline* baseline);

/// Detection statistics: how many ground-truth violations have a matching
/// alert (same subject, same type class, time within `slack`).
struct DetectionStats {
  size_t ground_truth = 0;
  size_t detected = 0;
  size_t false_alarms = 0;

  double recall() const {
    return ground_truth == 0
               ? 1.0
               : static_cast<double>(detected) / ground_truth;
  }
};

/// Scores alerts against ground truth.
DetectionStats ScoreDetections(const Scenario& scenario,
                               const std::vector<Alert>& alerts,
                               Chronon slack = 1000);

}  // namespace ltam

#endif  // LTAM_SIM_MOVEMENT_SIM_H_
