// Copyright 2026 The LTAM Authors.
// Keeps README.md honest: the quickstart and serving snippets, compiled
// and executed as written (modulo assertions replacing the comments).

#include <gtest/gtest.h>

#include "runtime/access_runtime.h"
#include "service/client.h"
#include "service/server.h"
#include "test_util.h"

namespace ltam {
namespace {

TEST(ReadmeSnippetTest, QuickstartCompilesAndBehaves) {
  // Layout (Definition 1), subjects, and a location-temporal
  // authorization (Definition 4), gathered into one SystemState.
  SystemState state;
  state.graph = MultilevelLocationGraph("Lab");
  LocationId cais =
      state.graph.AddPrimitive("CAIS", state.graph.root()).ValueOrDie();
  LocationId chipes =
      state.graph.AddPrimitive("CHIPES", state.graph.root()).ValueOrDie();
  ASSERT_OK(state.graph.AddEdge(cais, chipes));
  ASSERT_OK(state.graph.SetEntry(cais));
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  state.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(10, 20), TimeInterval(10, 50),
                        LocationAuthorization{alice, cais}, 2)
                        .ValueOrDie());

  // Enforcement (Figure 3) through the facade; "options.num_shards = 2"
  // and "options.durable_dir" from the README select other backends.
  RuntimeOptions options;
  options.num_shards = 2;
  std::unique_ptr<AccessRuntime> runtime =
      AccessRuntime::Open(std::move(state), options).ValueOrDie();

  Decision d =
      runtime->Apply(AccessEvent::Entry(12, alice, cais)).ValueOrDie();
  EXPECT_TRUE(d.granted);  // "granted"

  ASSERT_OK(runtime->Tick(60));  // "Alice overstayed -> kOverstay alert"
  std::vector<Alert> alerts = runtime->DrainAlerts();
  bool overstay = false;
  for (const Alert& alert : alerts) {
    if (alert.type == AlertType::kOverstay) overstay = true;
  }
  EXPECT_TRUE(overstay);

  LocationId where = runtime->movements().CurrentLocation(alice);
  EXPECT_EQ(cais, where);  // "CAIS"
}

TEST(ReadmeSnippetTest, ServingSnippetCompilesAndBehaves) {
  // The same world as the quickstart, served over loopback TCP.
  SystemState state;
  state.graph = MultilevelLocationGraph("Lab");
  LocationId cais =
      state.graph.AddPrimitive("CAIS", state.graph.root()).ValueOrDie();
  ASSERT_OK(state.graph.SetEntry(cais));
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  state.auth_db.Add(LocationTemporalAuthorization::Make(
                        TimeInterval(10, 20), TimeInterval(10, 50),
                        LocationAuthorization{alice, cais}, 2)
                        .ValueOrDie());
  std::unique_ptr<AccessRuntime> runtime =
      AccessRuntime::Open(std::move(state)).ValueOrDie();
  std::vector<AccessEvent> batch = {AccessEvent::Entry(12, alice, cais)};

  // --- The README "Serving" snippet, as written. ---
  ServiceServer server(runtime.get(), ServerOptions{});  // port 0: pick one
  ASSERT_OK(server.Start());

  auto client =
      ServiceClient::Connect("127.0.0.1", server.bound_port()).ValueOrDie();
  WireBatchResult r = client->ApplyBatch(batch).ValueOrDie();
  QueryResult table = client->Query("OCCUPANTS OF CAIS AT 12").ValueOrDie();
  RuntimeStats stats = client->Stats().ValueOrDie();
  server.Stop();
  // --- End of snippet. ---

  ASSERT_EQ(1u, r.decisions.size());
  EXPECT_TRUE(r.decisions[0].granted);
  EXPECT_OK(r.durability);
  ASSERT_EQ(1u, table.rows.size());
  EXPECT_EQ("Alice", table.rows[0][0]);
  EXPECT_EQ(1u, stats.events_applied);
  EXPECT_EQ(1u, stats.batches_applied);
}

}  // namespace
}  // namespace ltam
