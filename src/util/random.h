// Copyright 2026 The LTAM Authors.
// Deterministic pseudo-random number generation for simulators and
// workload generators. SplitMix64-seeded xoshiro256**; reproducible across
// platforms, unlike std::default_random_engine.

#ifndef LTAM_UTIL_RANDOM_H_
#define LTAM_UTIL_RANDOM_H_

#include <cstdint>

#include "util/logging.h"

namespace ltam {

/// Deterministic 64-bit PRNG (xoshiro256**). Same seed -> same sequence on
/// every platform, which keeps simulator workloads and benchmark inputs
/// reproducible.
class Rng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0x17a3u) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 to expand the seed into the full state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    LTAM_CHECK(bound > 0) << "Uniform bound must be positive";
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    LTAM_CHECK(lo <= hi) << "UniformRange requires lo <= hi";
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace ltam

#endif  // LTAM_UTIL_RANDOM_H_
