// Copyright 2026 The LTAM Authors.
// Whole-system snapshot round-trip tests.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/inaccessible.h"
#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ltam_snap_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            ".snap";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

SystemState MakeRichState() {
  SystemState state;
  state.graph = MakeNtuCampusGraph().ValueOrDie();
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  SubjectId bob = state.profiles.AddSubject("Bob").ValueOrDie();
  EXPECT_TRUE(state.profiles.SetSupervisor(alice, bob).ok());
  EXPECT_TRUE(state.profiles.AddToGroup(alice, "cais-lab").ok());
  EXPECT_TRUE(state.profiles.AssignRole(bob, "professor").ok());
  EXPECT_TRUE(state.profiles.SetAttribute(alice, "office", "N4-02c").ok());

  LocationId cais = state.graph.Find("CAIS").ValueOrDie();
  LocationId go = state.graph.Find("SCE.GO").ValueOrDie();
  EXPECT_TRUE(state.graph.SetBoundary(go, Polygon::Rect(0, 0, 10, 8)).ok());
  EXPECT_TRUE(state.graph.SetDescription(cais, "research centre").ok());

  AuthId a1 = state.auth_db.Add(
      LocationTemporalAuthorization::Make(
          TimeInterval(5, 20), TimeInterval(15, 50),
          LocationAuthorization{alice, cais}, 2)
          .ValueOrDie());
  AuthId a2 = state.auth_db.AddDerived(
      LocationTemporalAuthorization::Make(
          TimeInterval(5, 20), TimeInterval(15, 50),
          LocationAuthorization{bob, cais}, 2)
          .ValueOrDie(),
      0);
  EXPECT_TRUE(state.auth_db.RecordEntry(a1).ok());
  EXPECT_TRUE(state.auth_db.Revoke(a2).ok());

  AuthorizationRule rule;
  rule.id = 0;
  rule.valid_from = 7;
  rule.base = a1;
  rule.op_entry = TemporalOperatorPtr(new IntersectionOp(TimeInterval(10, 30)));
  rule.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  rule.op_location = LocationOperatorPtr(new AllRouteFromOp("SCE.GO"));
  rule.exp_n = CountExpr::Parse("min(n, 2)").ValueOrDie();
  rule.label = "r2";
  state.rules.push_back(rule);

  EXPECT_TRUE(state.movements.RecordMovement(10, alice, go).ok());
  EXPECT_TRUE(state.movements.RecordMovement(20, alice, kInvalidLocation).ok());
  return state;
}

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  SystemState state = MakeRichState();
  ASSERT_OK(SaveSnapshot(state, path_));
  ASSERT_OK_AND_ASSIGN(SystemState loaded, LoadSnapshot(path_));

  // Graph.
  EXPECT_EQ(loaded.graph.size(), state.graph.size());
  EXPECT_OK(loaded.graph.Validate());
  ASSERT_OK_AND_ASSIGN(LocationId cais, loaded.graph.Find("CAIS"));
  EXPECT_EQ(loaded.graph.location(cais).description, "research centre");
  ASSERT_OK_AND_ASSIGN(LocationId go, loaded.graph.Find("SCE.GO"));
  EXPECT_TRUE(loaded.graph.location(go).boundary.has_value());
  EXPECT_TRUE(loaded.graph.location(go).is_entry);
  EXPECT_EQ(loaded.graph.Edges().size(), state.graph.Edges().size());

  // Profiles.
  ASSERT_OK_AND_ASSIGN(SubjectId alice, loaded.profiles.Find("Alice"));
  ASSERT_OK_AND_ASSIGN(SubjectId bob, loaded.profiles.Find("Bob"));
  EXPECT_EQ(*loaded.profiles.SupervisorOf(alice), bob);
  EXPECT_TRUE(loaded.profiles.IsInGroup(alice, "cais-lab"));
  EXPECT_TRUE(loaded.profiles.HasRole(bob, "professor"));
  EXPECT_EQ(*loaded.profiles.GetAttribute(alice, "office"), "N4-02c");

  // Authorizations: ids, ledger, revocation, provenance.
  EXPECT_EQ(loaded.auth_db.size(), 2u);
  EXPECT_EQ(loaded.auth_db.active_size(), 1u);
  EXPECT_EQ(loaded.auth_db.record(0).entries_used, 1);
  EXPECT_EQ(loaded.auth_db.record(0).auth, state.auth_db.record(0).auth);
  EXPECT_TRUE(loaded.auth_db.record(1).revoked);
  EXPECT_EQ(loaded.auth_db.record(1).origin, AuthOrigin::kDerived);
  EXPECT_EQ(loaded.auth_db.record(1).source_rule, 0u);

  // Rules reconstructed through the registries.
  ASSERT_EQ(loaded.rules.size(), 1u);
  EXPECT_EQ(loaded.rules[0].valid_from, 7);
  EXPECT_EQ(loaded.rules[0].base, 0u);
  EXPECT_EQ(loaded.rules[0].op_entry->ToString(), "INTERSECTION([10, 30])");
  EXPECT_EQ(loaded.rules[0].op_subject->ToString(), "Supervisor_Of");
  EXPECT_EQ(loaded.rules[0].op_location->ToString(),
            "all_route_from(SCE.GO)");
  EXPECT_EQ(loaded.rules[0].exp_n->text(), "min(n, 2)");
  EXPECT_EQ(loaded.rules[0].label, "r2");

  // Movements.
  EXPECT_EQ(loaded.movements.history().size(), 2u);
  EXPECT_EQ(loaded.movements.LocationAt(alice, 15), go);
  EXPECT_EQ(loaded.movements.LocationAt(alice, 25), kInvalidLocation);
}

TEST_F(SnapshotTest, LoadedStateIsFunctionallyEquivalent) {
  // The loaded system must compute the same inaccessible set.
  SystemState state;
  state.graph = MakeFig4Graph().ValueOrDie();
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  auto grant = [&state, alice](const std::string& name, Chronon es,
                               Chronon ee, Chronon xs, Chronon xe) {
    state.auth_db.Add(LocationTemporalAuthorization::Make(
                          TimeInterval(es, ee), TimeInterval(xs, xe),
                          LocationAuthorization{
                              alice, state.graph.Find(name).ValueOrDie()},
                          1)
                          .ValueOrDie());
  };
  grant("A", 2, 35, 20, 50);
  grant("B", 40, 60, 55, 80);
  grant("C", 38, 45, 70, 90);
  grant("D", 5, 25, 10, 30);
  ASSERT_OK(SaveSnapshot(state, path_));
  ASSERT_OK_AND_ASSIGN(SystemState loaded, LoadSnapshot(path_));
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult before,
      FindInaccessible(state.graph, state.graph.root(), alice,
                       state.auth_db));
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult after,
      FindInaccessible(loaded.graph, loaded.graph.root(), alice,
                       loaded.auth_db));
  EXPECT_EQ(before.inaccessible, after.inaccessible);
}

TEST_F(SnapshotTest, SaveToBadPathFails) {
  SystemState state;
  state.graph = MakeFig4Graph().ValueOrDie();
  EXPECT_TRUE(SaveSnapshot(state, "/nonexistent/dir/x.snap").IsIOError());
}

TEST_F(SnapshotTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadSnapshot("/nonexistent/x.snap").status().IsIOError());
}

TEST_F(SnapshotTest, LoadRejectsGarbage) {
  {
    std::ofstream out(path_);
    out << "loc\t1\tX\tprimitive\t0\t0\t\n";  // Before graph-root.
  }
  EXPECT_TRUE(LoadSnapshot(path_).status().IsParseError());
  {
    std::ofstream out(path_, std::ios::trunc);
    out << "graph-root\tG\n";
    out << "mystery-record\t1\n";
  }
  EXPECT_TRUE(LoadSnapshot(path_).status().IsParseError());
}

}  // namespace
}  // namespace ltam
