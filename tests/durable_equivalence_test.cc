// Copyright 2026 The LTAM Authors.
// The durability equivalence property (satellite of the sharded-WAL PR):
// for randomized GenerateEventBatches workloads with interleaved
// Checkpoint() and Tick() calls, the DurableShardedSystem's decisions —
// live and after crash recovery — are identical to the sequential
// DurableSystem fed the same stream event-by-event, and their
// post-recovery alert/movement/ledger state matches exactly.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "storage/durable_sharded_system.h"
#include "storage/durable_system.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

namespace fs = std::filesystem;

SystemState MakeInitialState(uint64_t seed,
                             std::vector<SubjectId>* out_subjects = nullptr) {
  SystemState state;
  state.graph = MakeGridGraph(6, 6).ValueOrDie();
  std::vector<SubjectId> ids = GenerateSubjects(&state.profiles, 24);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.55;
  opt.horizon = 500;
  opt.min_len = 20;
  opt.max_len = 150;
  opt.max_entries = 3;
  GenerateAuthorizations(state.graph, ids, opt, &rng, &state.auth_db);
  if (out_subjects != nullptr) *out_subjects = ids;
  return state;
}

/// Feeds one event to the sequential durable runtime using the same
/// outcome mapping as ApplyAccessEvent, so decisions are comparable.
Decision ApplyToDurable(DurableSystem* sys, const AccessEvent& e) {
  switch (e.kind) {
    case AccessEventKind::kRequestEntry: {
      Result<Decision> d = sys->RequestEntry(e.time, e.subject, e.location);
      EXPECT_TRUE(d.ok()) << d.status().ToString();
      return d.ok() ? *d : Decision::Deny(DenyReason::kWalError);
    }
    case AccessEventKind::kRequestExit: {
      Status st = sys->RequestExit(e.time, e.subject);
      return st.ok() ? Decision::Grant(kInvalidAuth)
                     : Decision::Deny(DenyReason::kExitRejected);
    }
    case AccessEventKind::kObserve: {
      // ObservePresence now reports refusals (unknown location,
      // out-of-order time); mirror ApplyAccessEvent's mapping.
      Status st = sys->ObservePresence(e.time, e.subject, e.location);
      return st.ok() ? Decision::Grant(kInvalidAuth)
                     : Decision::Deny(DenyReason::kObservationRejected);
    }
  }
  return Decision::Deny(DenyReason::kNone);  // Unreachable.
}

using AlertKey = std::tuple<Chronon, SubjectId, LocationId, int, std::string>;

std::multiset<AlertKey> AlertMultiset(const std::vector<Alert>& alerts) {
  std::multiset<AlertKey> out;
  for (const Alert& a : alerts) {
    out.insert(std::make_tuple(a.time, a.subject, a.location,
                               static_cast<int>(a.type), a.detail));
  }
  return out;
}

/// Per-subject movement traces (the order that matters: each subject's
/// own history; cross-subject interleaving is shard-dependent).
std::map<SubjectId, std::vector<std::string>> TracesOf(
    const std::vector<MovementEvent>& history) {
  std::map<SubjectId, std::vector<std::string>> out;
  for (const MovementEvent& ev : history) {
    out[ev.subject].push_back(ev.ToString());
  }
  return out;
}

class DurableEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/ltam_deq_" +
            std::to_string(GetParam());
    fs::remove_all(root_);
    fs::create_directories(root_ + "/seq");
    fs::create_directories(root_ + "/sharded");
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_P(DurableEquivalenceTest, ShardedMatchesSequentialAcrossCheckpoints) {
  const uint64_t seed = GetParam();
  std::vector<SubjectId> subjects;
  SystemState gen_state = MakeInitialState(seed, &subjects);

  Rng rng(seed * 7919 + 1);
  BatchWorkloadOptions batch_opt;
  batch_opt.batch_size = 120;
  batch_opt.exit_fraction = 0.15;
  batch_opt.observe_fraction = 0.15;
  auto batches = GenerateEventBatches(gen_state.graph, subjects,
                                      /*total_events=*/900, batch_opt, &rng);

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DurableSystem> seq,
      DurableSystem::Open(root_ + "/seq", MakeInitialState(seed)));
  DurableShardedOptions opt;
  opt.num_shards = 5;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DurableShardedSystem> sharded,
                       DurableShardedSystem::Open(root_ + "/sharded",
                                                  MakeInitialState(seed),
                                                  opt));

  // Live equivalence, with checkpoints and ticks interleaved at the same
  // stream positions on both sides.
  Chronon clock = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    for (const AccessEvent& e : batches[i]) {
      clock = std::max(clock, e.time);
    }
    ASSERT_OK_AND_ASSIGN(std::vector<Decision> sharded_decisions,
                         sharded->EvaluateBatch(batches[i]));
    ASSERT_EQ(sharded_decisions.size(), batches[i].size());
    for (size_t j = 0; j < batches[i].size(); ++j) {
      Decision seq_decision = ApplyToDurable(seq.get(), batches[i][j]);
      EXPECT_EQ(sharded_decisions[j].ToString(), seq_decision.ToString())
          << "batch " << i << ", event " << j;
    }
    if (i % 2 == 1) {
      ASSERT_OK(seq->Tick(clock));
      ASSERT_OK(sharded->Tick(clock));
    }
    if (i % 3 == 2) {
      ASSERT_OK(seq->Checkpoint());
      ASSERT_OK(sharded->Checkpoint());
    }
  }

  // Live alert equivalence (both buffers drained up to here).
  EXPECT_EQ(AlertMultiset(sharded->DrainAlerts()),
            AlertMultiset(seq->engine().alerts()));

  // "Crash" both runtimes (no final checkpoint) and recover.
  seq.reset();
  sharded.reset();
  ASSERT_OK_AND_ASSIGN(
      seq, DurableSystem::Open(root_ + "/seq", MakeInitialState(seed)));
  ASSERT_OK_AND_ASSIGN(sharded,
                       DurableShardedSystem::Open(root_ + "/sharded",
                                                  MakeInitialState(seed),
                                                  opt));

  // Post-recovery state equivalence: per-subject movement traces...
  EXPECT_EQ(TracesOf(sharded->MergedMovements().history()),
            TracesOf(seq->state().movements.history()));
  // ...the shared ledger...
  const AuthorizationDatabase& seq_db = seq->state().auth_db;
  const AuthorizationDatabase& sharded_db = sharded->base().auth_db;
  ASSERT_EQ(sharded_db.size(), seq_db.size());
  for (AuthId id = 0; id < seq_db.size(); ++id) {
    EXPECT_EQ(sharded_db.record(id).entries_used,
              seq_db.record(id).entries_used)
        << "auth " << id;
  }
  // ...and the alerts the two recoveries re-raised replaying their tails.
  EXPECT_EQ(AlertMultiset(sharded->DrainAlerts()),
            AlertMultiset(seq->engine().alerts()));
  seq->engine().ClearAlerts();

  // The recovered runtimes stay equivalent on fresh traffic.
  Rng probe_rng(seed * 104729 + 3);
  auto probe = GenerateEventBatches(gen_state.graph, subjects, 200, batch_opt,
                                    &probe_rng);
  for (auto& batch : probe) {
    for (AccessEvent& e : batch) e.time += 100000;
    ASSERT_OK_AND_ASSIGN(std::vector<Decision> sharded_decisions,
                         sharded->EvaluateBatch(batch));
    for (size_t j = 0; j < batch.size(); ++j) {
      Decision seq_decision = ApplyToDurable(seq.get(), batch[j]);
      EXPECT_EQ(sharded_decisions[j].ToString(), seq_decision.ToString());
    }
  }
  ASSERT_OK(seq->Tick(200001));
  ASSERT_OK(sharded->Tick(200001));
  EXPECT_EQ(AlertMultiset(sharded->DrainAlerts()),
            AlertMultiset(seq->engine().alerts()));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DurableEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace ltam
