// Copyright 2026 The LTAM Authors.

#include "telemetry/metrics.h"

#include <time.h>
#if defined(__linux__)
#include <unistd.h>
#endif

#include <algorithm>
#include <cstdio>
#include <thread>

#include "util/string_util.h"

namespace ltam {

namespace {

// Stripe selection: hash the thread id once per thread. Distinct
// threads may share a stripe (that is what the atomics/mutexes are
// for); the hash only spreads steady-state load.
size_t ThreadStripe() {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's
// dotted names become underscored with an "ltam_" prefix.
std::string SanitizeName(const std::string& name) {
  std::string out = "ltam_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

double NsToSeconds(uint64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace

uint64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

void Counter::Increment(uint64_t delta) {
  cells_[ThreadStripe() % kStripes].v.fetch_add(delta,
                                                std::memory_order_relaxed);
}

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Record(uint64_t value_ns) {
  Cell& cell = cells_[ThreadStripe() % kStripes];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.histogram.Record(value_ns);
}

LatencyHistogram Histogram::Snapshot() const {
  LatencyHistogram merged;
  for (const Cell& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell.mu);
    merged.Merge(cell.histogram);
  }
  return merged;
}

MetricsRegistry::Entry* MetricsRegistry::FindEntry(const std::string& name) {
  for (auto& [entry_name, entry] : entries_) {
    if (entry_name == name) return &entry;
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(
    const std::string& name) const {
  for (const auto& [entry_name, entry] : entries_) {
    if (entry_name == name) return &entry;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = FindEntry(name)) {
    return entry->kind == Kind::kCounter ? entry->counter.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.counter.reset(new Counter());
  Counter* out = entry.counter.get();
  entries_.emplace_back(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = FindEntry(name)) {
    return entry->kind == Kind::kGauge ? entry->gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.gauge.reset(new Gauge());
  Gauge* out = entry.gauge.get();
  entries_.emplace_back(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = FindEntry(name)) {
    return entry->kind == Kind::kHistogram ? entry->histogram.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram.reset(new Histogram());
  Histogram* out = entry.histogram.get();
  entries_.emplace_back(name, std::move(entry));
  return out;
}

Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->kind == Kind::kCounter
             ? entry->counter.get()
             : nullptr;
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->kind == Kind::kGauge ? entry->gauge.get()
                                                         : nullptr;
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* entry = FindEntry(name);
  return entry != nullptr && entry->kind == Kind::kHistogram
             ? entry->histogram.get()
             : nullptr;
}

bool MetricsRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == name) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      switch (entry.kind) {
        case Kind::kCounter:
          snapshot.counters.emplace_back(name, entry.counter->value());
          break;
        case Kind::kGauge:
          snapshot.gauges.emplace_back(name, entry.gauge->value());
          break;
        case Kind::kHistogram:
          snapshot.histograms.emplace_back(name,
                                           entry.histogram->Snapshot());
          break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = SanitizeName(name);
    out += StrFormat("# TYPE %s counter\n", pname.c_str());
    out += StrFormat("%s %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = SanitizeName(name);
    out += StrFormat("# TYPE %s gauge\n", pname.c_str());
    out += StrFormat("%s %lld\n", pname.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    // Durations are recorded in nanoseconds; Prometheus convention is
    // base-unit seconds.
    const std::string pname = SanitizeName(name) + "_seconds";
    out += StrFormat("# TYPE %s summary\n", pname.c_str());
    static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
    for (double q : kQuantiles) {
      out += StrFormat("%s{quantile=\"%g\"} %.9f\n", pname.c_str(), q,
                       NsToSeconds(histogram.Quantile(q)));
    }
    out += StrFormat("%s_sum %.9f\n", pname.c_str(),
                     NsToSeconds(histogram.sum()));
    out += StrFormat("%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(histogram.count()));
  }
  return out;
}

std::string MetricsSummaryText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("%-32s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("%-32s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    out += StrFormat("%-32s %s\n", name.c_str(),
                     histogram.ToString().c_str());
  }
  return out;
}

uint64_t ReadResidentBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int fields = std::fscanf(f, "%llu %llu", &total_pages,
                                 &resident_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<uint64_t>(resident_pages) *
         static_cast<uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace ltam
