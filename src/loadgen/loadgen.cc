// Copyright 2026 The LTAM Authors.

#include "loadgen/loadgen.h"

#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "service/client.h"
#include "util/logging.h"
#include "util/random.h"

namespace ltam {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t NanosSince(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - start)
          .count());
}

/// One scheduled arrival: a frame of the connection's stream, or a
/// query drawn from the scenario pool.
struct Arrival {
  bool is_query = false;
  size_t index = 0;  // Frame index, or index into the query pool.
};

/// One frame in flight: its scheduled arrival (latency baseline) and
/// the events it carried (for refusal accounting).
struct InFlight {
  uint64_t sched_ns = 0;
  size_t events = 0;
};

/// Everything one worker accumulates; merged into the LoadReport after
/// join. Workers never share state while running.
struct WorkerState {
  LoadReport report;
  Status status = Status::OK();
};

/// Folds one received pipelined response (accepted or quota-refused)
/// into the worker's counters. Responses are matched to submissions by
/// request_id: a refusal is generated at dispatch and overtakes
/// accepted frames still queued in the coalescer, so positional (FIFO)
/// attribution would charge the wrong frame's events to the refusal.
Status HandleReceived(
    const Result<std::optional<ServiceClient::PipelinedBatch>>& received,
    std::unordered_map<uint32_t, InFlight>* in_flight, uint64_t now_ns,
    LoadReport* r) {
  if (!received.ok()) return received.status();
  if (!received->has_value()) return Status::OK();  // Poll timeout.
  const ServiceClient::PipelinedBatch& batch = **received;
  auto it = in_flight->find(batch.request_id);
  if (it == in_flight->end()) {
    return Status::Internal("response for unknown request " +
                            std::to_string(batch.request_id));
  }
  const InFlight sent = it->second;
  in_flight->erase(it);
  if (!batch.refusal.ok()) {
    // The server refused the frame at its ingest quota: the overload
    // signal this harness exists to measure, not a harness failure.
    ++r->quota_refused_frames;
    r->quota_refused_events += sent.events;
    return Status::OK();
  }
  r->ingest_latency.Record(now_ns - sent.sched_ns);
  r->events_admitted += batch.result.decisions.size();
  for (const Decision& d : batch.result.decisions) {
    if (d.granted) {
      ++r->grants;
    } else {
      ++r->denials;
    }
  }
  r->alerts += batch.result.alerts.size();
  return Status::OK();
}

void RunWorker(const LoadScenario& scenario, const LoadGenOptions& options,
               uint32_t conn, WorkerState* state) {
  LoadReport& r = state->report;
  const std::vector<std::vector<AccessEvent>>& frames =
      scenario.streams[conn];
  size_t stream_events = 0;
  for (const auto& f : frames) stream_events += f.size();
  if (stream_events == 0) return;

  // The query/ingest mix is decided up front with its own seeded
  // stream, so the arrival count (and therefore the schedule) is
  // reproducible for a given (scenario, options, connection).
  Rng mix_rng(options.schedule_seed ^ (0xa076'1d64'78bd'642full * (conn + 1)));
  std::vector<Arrival> arrivals;
  size_t next_query = conn;  // Stagger pool starts across connections.
  for (size_t f = 0; f < frames.size(); ++f) {
    while (scenario.query_fraction > 0 && !scenario.queries.empty() &&
           mix_rng.Bernoulli(scenario.query_fraction)) {
      arrivals.push_back(
          {true, next_query++ % scenario.queries.size()});
    }
    arrivals.push_back({false, f});
  }

  // Arrival rate that hits this connection's share of the target EVENT
  // rate: mean events per arrival = stream_events / arrivals.
  const double lambda = options.rate /
                        static_cast<double>(options.connections) *
                        static_cast<double>(arrivals.size()) /
                        static_cast<double>(stream_events);
  const std::vector<uint64_t> schedule = BuildArrivalScheduleNs(
      arrivals.size(), lambda, scenario.burst_duty, scenario.burst_period_ms,
      options.schedule_seed + 0x9e37'79b9'7f4a'7c15ull * (conn + 1));

  // Policy churn maps to remote control-plane barriers: the wire
  // protocol has no Mutate (ROADMAP item 3), so connection 0 issues a
  // Checkpoint before the rounds where a mutation would land — same
  // drain-the-pipeline pressure on the server, applied mutations are
  // the local-replay (equivalence-test) side's job.
  std::set<size_t> barrier_before;
  if (conn == 0) {
    const size_t streams = scenario.streams.size();
    for (const ScenarioMutation& m : scenario.mutations) {
      barrier_before.insert(m.before_frame / streams);
    }
    if (options.checkpoint_every_frames > 0) {
      for (size_t f = options.checkpoint_every_frames; f < frames.size();
           f += options.checkpoint_every_frames) {
        barrier_before.insert(f);
      }
    }
  }

  Result<std::unique_ptr<ServiceClient>> client =
      ServiceClient::Connect(options.host, options.port);
  if (!client.ok()) {
    state->status = client.status();
    return;
  }

  // Split reads: queries get their own connection (to a replica, or to
  // the same server — either way they no longer force an ingest-pipe
  // drain, see the query arrival below).
  std::unique_ptr<ServiceClient> query_client;
  if (!options.query_host.empty() && !scenario.queries.empty()) {
    Result<std::unique_ptr<ServiceClient>> connected =
        ServiceClient::Connect(options.query_host, options.query_port);
    if (!connected.ok()) {
      state->status = connected.status();
      return;
    }
    query_client = std::move(connected).ValueOrDie();
  }

  std::unordered_map<uint32_t, InFlight> in_flight;
  const SteadyClock::time_point start = SteadyClock::now();

  // Waits for one response, bounded: a live server always answers every
  // accepted-or-refused frame, so a silent minute means the harness is
  // wedged — fail instead of deadlocking.
  constexpr int kReceiveTimeoutMs = 60'000;
  auto receive_one = [&]() -> Status {
    auto polled = (*client)->PollBatchResult(kReceiveTimeoutMs);
    if (polled.ok() && !polled->has_value()) {
      return Status::IOError(
          "no response for " + std::to_string(kReceiveTimeoutMs) +
          "ms with " + std::to_string(in_flight.size()) +
          " frames in flight");
    }
    return HandleReceived(polled, &in_flight, NanosSince(start), &r);
  };
  auto drain_all = [&]() -> Status {
    while (!in_flight.empty()) {
      LTAM_RETURN_IF_ERROR(receive_one());
    }
    return Status::OK();
  };

  Status st = Status::OK();
  for (size_t i = 0; i < arrivals.size() && st.ok(); ++i) {
    const uint64_t sched_ns = schedule[i];
    // Idle until the scheduled arrival, harvesting any responses the
    // server has already pushed down the pipe.
    while (true) {
      const uint64_t now_ns = NanosSince(start);
      if (now_ns >= sched_ns) break;
      const int wait_ms =
          static_cast<int>((sched_ns - now_ns) / 1'000'000ull);
      auto polled = (*client)->PollBatchResult(wait_ms);
      st = HandleReceived(polled, &in_flight, NanosSince(start), &r);
      if (!st.ok()) break;
    }
    if (!st.ok()) break;

    const uint64_t send_ns = NanosSince(start);
    if (send_ns > sched_ns) {
      r.max_sched_lag_ns = std::max(r.max_sched_lag_ns, send_ns - sched_ns);
      // Sub-millisecond lag is scheduler jitter, not the harness
      // falling behind; only count material lateness.
      if (send_ns - sched_ns > 1'000'000ull) ++r.late_sends;
    }

    const Arrival& a = arrivals[i];
    if (a.is_query) {
      if (query_client == nullptr) {
        // Sync calls must not interleave with unreceived pipelined
        // submissions on the SAME connection — drain first. The drain
        // time counts toward the query's latency (it is measured from
        // the scheduled arrival). A dedicated query connection skips
        // this barrier: reads overlap the in-flight ingest stream.
        st = drain_all();
        if (!st.ok()) break;
      }
      ServiceClient* reader =
          query_client != nullptr ? query_client.get() : client->get();
      Result<QueryResult> qr = reader->Query(scenario.queries[a.index]);
      if (!qr.ok()) {
        st = qr.status();
        break;
      }
      ++r.queries_sent;
      r.query_latency.Record(NanosSince(start) - sched_ns);
      continue;
    }

    if (barrier_before.count(a.index) > 0) {
      st = drain_all();
      if (!st.ok()) break;
      st = (*client)->Checkpoint();
      if (!st.ok()) break;
      ++r.checkpoints;
    }

    // Cap the pipeline: block on responses rather than buffering
    // unboundedly. The block is visible as schedule lag.
    while (st.ok() && in_flight.size() >= options.max_in_flight) {
      st = receive_one();
    }
    if (!st.ok()) break;

    const std::vector<AccessEvent>& frame = frames[a.index];
    Result<uint32_t> id = (*client)->SubmitBatch(
        Span<const AccessEvent>(frame.data(), frame.size()));
    if (!id.ok()) {
      st = id.status();
      break;
    }
    st = (*client)->Flush();
    if (!st.ok()) break;
    ++r.frames_sent;
    r.events_sent += frame.size();
    in_flight.emplace(*id, InFlight{sched_ns, frame.size()});
  }

  if (st.ok()) st = drain_all();
  r.wall_seconds = static_cast<double>(NanosSince(start)) / 1e9;
  state->status = st;
}

}  // namespace

std::vector<uint64_t> BuildArrivalScheduleNs(size_t arrivals,
                                             double rate_per_sec,
                                             double burst_duty,
                                             uint64_t burst_period_ms,
                                             uint64_t seed) {
  std::vector<uint64_t> out;
  out.reserve(arrivals);
  if (arrivals == 0 || rate_per_sec <= 0) return out;
  Rng rng(seed);
  const bool bursty = burst_period_ms > 0 && burst_duty > 0 &&
                      burst_duty < 1.0;
  // Bursty schedules confine arrivals to the duty window of each
  // period, so the in-window rate must be rate/duty for the mean over
  // a full period to stay at `rate_per_sec`.
  const double gap_rate = bursty ? rate_per_sec / burst_duty : rate_per_sec;
  double on_axis_ns = 0;
  for (size_t i = 0; i < arrivals; ++i) {
    // Exponential gap via inverse transform; clamp the uniform away
    // from 0 so log() stays finite.
    double u = rng.UniformDouble();
    if (u < 1e-12) u = 1e-12;
    on_axis_ns += -std::log(u) / gap_rate * 1e9;
    double real_ns = on_axis_ns;
    if (bursty) {
      // on_axis_ns accumulates only on-window time; splice the off
      // part of every period back in.
      const double period_ns = static_cast<double>(burst_period_ms) * 1e6;
      const double on_ns = period_ns * burst_duty;
      const double window = std::floor(on_axis_ns / on_ns);
      real_ns = window * period_ns + (on_axis_ns - window * on_ns);
    }
    out.push_back(static_cast<uint64_t>(real_ns));
  }
  return out;
}

Result<LoadReport> RunLoad(const LoadScenario& scenario,
                           const LoadGenOptions& options) {
  if (options.connections == 0) {
    return Status::InvalidArgument("need at least one connection");
  }
  if (options.connections != scenario.streams.size()) {
    return Status::InvalidArgument(
        "connections (" + std::to_string(options.connections) +
        ") must equal the scenario's stream count (" +
        std::to_string(scenario.streams.size()) +
        "): each stream's subjects belong to exactly one connection");
  }
  if (options.rate <= 0) {
    return Status::InvalidArgument("rate must be positive");
  }
  if (options.max_in_flight == 0) {
    return Status::InvalidArgument("max_in_flight must be positive");
  }
  if (!options.query_host.empty() && options.query_port == 0) {
    return Status::InvalidArgument(
        "query_host set without query_port: the read endpoint needs "
        "both");
  }

  std::vector<WorkerState> states(options.connections);
  const SteadyClock::time_point t0 = SteadyClock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(options.connections);
    for (uint32_t c = 0; c < options.connections; ++c) {
      workers.emplace_back(RunWorker, std::cref(scenario),
                           std::cref(options), c, &states[c]);
    }
    for (std::thread& t : workers) t.join();
  }
  const double wall = static_cast<double>(NanosSince(t0)) / 1e9;

  LoadReport merged;
  for (WorkerState& s : states) {
    if (!s.status.ok()) return s.status;
    merged.ingest_latency.Merge(s.report.ingest_latency);
    merged.query_latency.Merge(s.report.query_latency);
    merged.frames_sent += s.report.frames_sent;
    merged.events_sent += s.report.events_sent;
    merged.events_admitted += s.report.events_admitted;
    merged.grants += s.report.grants;
    merged.denials += s.report.denials;
    merged.quota_refused_frames += s.report.quota_refused_frames;
    merged.quota_refused_events += s.report.quota_refused_events;
    merged.queries_sent += s.report.queries_sent;
    merged.checkpoints += s.report.checkpoints;
    merged.alerts += s.report.alerts;
    merged.late_sends += s.report.late_sends;
    merged.max_sched_lag_ns =
        std::max(merged.max_sched_lag_ns, s.report.max_sched_lag_ns);
  }
  merged.wall_seconds = wall;
  merged.achieved_event_rate =
      wall > 0 ? static_cast<double>(merged.events_sent) / wall : 0.0;
  return merged;
}

}  // namespace ltam
