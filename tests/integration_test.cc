// Copyright 2026 The LTAM Authors.
// End-to-end integration: campus graph + rules + enforcement + queries +
// persistence working together, following the paper's running scenario.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/conflict.h"
#include "core/inaccessible.h"
#include "core/rules/rule_engine.h"
#include "engine/access_control_engine.h"
#include "query/query_language.h"
#include "sim/graph_gen.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace ltam {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeNtuCampusGraph());
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
    ASSERT_OK_AND_ASSIGN(bob_, profiles_.AddSubject("Bob"));
    ASSERT_OK(profiles_.SetSupervisor(alice_, bob_));
    ASSERT_OK_AND_ASSIGN(go_, graph_.Find("SCE.GO"));
    ASSERT_OK_AND_ASSIGN(seca_, graph_.Find("SCE.SectionA"));
    ASSERT_OK_AND_ASSIGN(secb_, graph_.Find("SCE.SectionB"));
    ASSERT_OK_AND_ASSIGN(cais_, graph_.Find("CAIS"));
  }

  AuthId Grant(SubjectId s, LocationId l, Chronon es, Chronon ee, Chronon xs,
               Chronon xe, int64_t n = kUnlimitedEntries) {
    return auth_db_.Add(LocationTemporalAuthorization::Make(
                            TimeInterval(es, ee), TimeInterval(xs, xe),
                            LocationAuthorization{s, l}, n)
                            .ValueOrDie());
  }

  MultilevelLocationGraph graph_;
  UserProfileDatabase profiles_;
  AuthorizationDatabase auth_db_;
  MovementDatabase movement_db_;
  SubjectId alice_ = kInvalidSubject;
  SubjectId bob_ = kInvalidSubject;
  LocationId go_ = kInvalidLocation;
  LocationId seca_ = kInvalidLocation;
  LocationId secb_ = kInvalidLocation;
  LocationId cais_ = kInvalidLocation;
};

TEST_F(IntegrationTest, RuleDrivenAccessEndToEnd) {
  // Base authorization on CAIS; a rule extends Alice's access to the
  // whole GO -> CAIS corridor; the engine then admits her walking it.
  AuthId base = Grant(alice_, cais_, 0, 100, 0, 200, 2);
  RuleEngine rules(&auth_db_, &profiles_, &graph_);
  AuthorizationRule corridor;
  corridor.valid_from = 0;
  corridor.base = base;
  corridor.op_location = LocationOperatorPtr(new AllRouteFromOp("SCE.GO"));
  ASSERT_OK(rules.AddRule(corridor).status());
  // A second rule gives her supervisor the same CAIS rights.
  AuthorizationRule sup;
  sup.valid_from = 0;
  sup.base = base;
  sup.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  ASSERT_OK(rules.AddRule(sup).status());
  ASSERT_OK(rules.DeriveAll().status());

  AccessControlEngine engine(&graph_, &auth_db_, &movement_db_, &profiles_);
  EXPECT_TRUE(engine.RequestEntry(10, alice_, go_).granted);
  EXPECT_TRUE(engine.RequestEntry(12, alice_, seca_).granted);
  EXPECT_TRUE(engine.RequestEntry(14, alice_, secb_).granted);
  EXPECT_TRUE(engine.RequestEntry(16, alice_, cais_).granted);
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_EQ(movement_db_.CurrentLocation(alice_), cais_);

  // Bob got CAIS rights but no corridor: adjacency stops him at the door
  // when approaching from outside (EEE.GO is an entry too, but CAIS is
  // not adjacent to any site door).
  EXPECT_EQ(engine.RequestEntry(20, bob_, cais_).reason,
            DenyReason::kNotAdjacent);
}

TEST_F(IntegrationTest, InaccessibilityAuditFindsMissingCorridor) {
  // The officer grants CAIS but forgets the corridor: the audit
  // (Section 6) flags CAIS as inaccessible despite its authorization.
  Grant(alice_, cais_, 0, 100, 0, 200);
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r,
      FindInaccessible(graph_, graph_.root(), alice_, auth_db_));
  EXPECT_TRUE(r.IsInaccessible(cais_));
  // Granting the corridor fixes the audit.
  Grant(alice_, go_, 0, 100, 0, 200);
  Grant(alice_, seca_, 0, 100, 0, 200);
  Grant(alice_, secb_, 0, 100, 0, 200);
  ASSERT_OK_AND_ASSIGN(
      InaccessibleResult r2,
      FindInaccessible(graph_, graph_.root(), alice_, auth_db_));
  EXPECT_FALSE(r2.IsInaccessible(cais_));
}

TEST_F(IntegrationTest, QueryLanguageOverLiveSystem) {
  Grant(alice_, go_, 0, 100, 0, 200);
  Grant(alice_, seca_, 0, 100, 0, 200);
  AccessControlEngine engine(&graph_, &auth_db_, &movement_db_, &profiles_);
  ASSERT_TRUE(engine.RequestEntry(10, alice_, go_).granted);
  ASSERT_TRUE(engine.RequestEntry(20, alice_, seca_).granted);

  QueryEngine qe(&graph_, &auth_db_, &movement_db_, &profiles_);
  QueryInterpreter interp(&qe, &graph_, &profiles_, &movement_db_,
                          &auth_db_);
  ASSERT_OK_AND_ASSIGN(QueryResult where,
                       interp.Run("WHERE WAS Alice AT 15"));
  EXPECT_EQ(where.rows[0][2], "SCE.GO");
  ASSERT_OK_AND_ASSIGN(QueryResult route,
                       interp.Run("ROUTE FOR Alice FROM SCE.GO TO "
                                  "SCE.SectionA DURING [0, 100]"));
  EXPECT_EQ(route.rows.size(), 2u);
  ASSERT_OK_AND_ASSIGN(QueryResult hist, interp.Run("HISTORY OF Alice"));
  EXPECT_EQ(hist.rows.size(), 2u);
}

TEST_F(IntegrationTest, ConflictsFromRulesDetectedAndMerged) {
  // An explicit authorization and a rule-derived one overlap.
  AuthId base = Grant(alice_, cais_, 0, 50, 0, 100);
  Grant(alice_, cais_, 40, 90, 40, 150);
  RuleEngine rules(&auth_db_, &profiles_, &graph_);
  AuthorizationRule shift;
  shift.valid_from = 0;
  shift.base = base;
  shift.op_entry = TemporalOperatorPtr(new ShiftOp(30));
  shift.op_exit = TemporalOperatorPtr(new ShiftOp(30));
  ASSERT_OK(rules.AddRule(shift).status());
  ASSERT_OK(rules.DeriveAll().status());
  std::vector<Conflict> conflicts = DetectConflicts(auth_db_);
  EXPECT_FALSE(conflicts.empty());
  ASSERT_OK_AND_ASSIGN(
      ConflictResolutionReport report,
      ResolveConflicts(&auth_db_, ConflictResolution::kMerge));
  EXPECT_GT(report.merged_added, 0u);
  EXPECT_TRUE(DetectConflicts(auth_db_).empty());
}

TEST_F(IntegrationTest, SnapshotPreservesLiveSystem) {
  Grant(alice_, go_, 0, 100, 0, 200, 3);
  AccessControlEngine engine(&graph_, &auth_db_, &movement_db_, &profiles_);
  ASSERT_TRUE(engine.RequestEntry(10, alice_, go_).granted);

  std::string path = ::testing::TempDir() + "/ltam_integration.snap";
  std::remove(path.c_str());
  SystemState state;
  state.graph = std::move(graph_);
  state.profiles = std::move(profiles_);
  state.auth_db = std::move(auth_db_);
  state.movements = std::move(movement_db_);
  ASSERT_OK(SaveSnapshot(state, path));
  ASSERT_OK_AND_ASSIGN(SystemState loaded, LoadSnapshot(path));
  std::remove(path.c_str());

  // The restored engine continues where the old one stopped: the ledger
  // remembers one of three entries used.
  MovementDatabase movements2 = std::move(loaded.movements);
  AccessControlEngine engine2(&loaded.graph, &loaded.auth_db, &movements2,
                              &loaded.profiles);
  ASSERT_OK_AND_ASSIGN(SubjectId alice, loaded.profiles.Find("Alice"));
  EXPECT_EQ(movements2.CurrentLocation(alice),
            loaded.graph.Find("SCE.GO").ValueOrDie());
  EXPECT_EQ(loaded.auth_db.record(0).entries_used, 1);
}

}  // namespace
}  // namespace ltam
