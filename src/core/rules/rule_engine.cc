// Copyright 2026 The LTAM Authors.

#include "core/rules/rule_engine.h"

#include <algorithm>

#include "util/logging.h"

namespace ltam {

RuleEngine::RuleEngine(AuthorizationDatabase* auth_db,
                       UserProfileDatabase* profiles,
                       const MultilevelLocationGraph* graph)
    : auth_db_(auth_db), profiles_(profiles), graph_(graph) {
  LTAM_CHECK(auth_db != nullptr);
  LTAM_CHECK(profiles != nullptr);
  LTAM_CHECK(graph != nullptr);
}

Result<RuleId> RuleEngine::AddRule(AuthorizationRule rule) {
  if (!auth_db_->Exists(rule.base)) {
    return Status::NotFound("rule base authorization #" +
                            std::to_string(rule.base) + " does not exist");
  }
  rule.id = static_cast<RuleId>(rules_.size());
  rules_.push_back(std::move(rule));
  return rules_.back().id;
}

Status RuleEngine::RemoveRule(RuleId id) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [id](const AuthorizationRule& r) { return r.id == id; });
  if (it == rules_.end()) return Status::NotFound("no such rule");
  auth_db_->RevokeDerivedBy(id);
  rules_.erase(it);
  return Status::OK();
}

Result<std::vector<LocationTemporalAuthorization>> RuleEngine::Expand(
    const AuthorizationRule& rule) const {
  if (!auth_db_->Exists(rule.base)) {
    return Status::NotFound("rule base authorization does not exist");
  }
  const AuthRecord& base_rec = auth_db_->record(rule.base);
  if (base_rec.revoked) {
    // A revoked base derives nothing (the rule stays registered; it will
    // produce again if the base is re-granted under the same id).
    return std::vector<LocationTemporalAuthorization>{};
  }
  const LocationTemporalAuthorization& base = base_rec.auth;

  // Temporal elements: unset operators copy the base duration (WHENEVER).
  const WheneverOp whenever;
  const TemporalOperator& entry_op =
      rule.op_entry ? *rule.op_entry : static_cast<const TemporalOperator&>(whenever);
  const TemporalOperator& exit_op =
      rule.op_exit ? *rule.op_exit : static_cast<const TemporalOperator&>(whenever);
  LTAM_ASSIGN_OR_RETURN(IntervalSet entry_set,
                        entry_op.Apply(base.entry_duration(), rule.valid_from));
  LTAM_ASSIGN_OR_RETURN(IntervalSet exit_set,
                        exit_op.Apply(base.exit_duration(), rule.valid_from));

  // Subject element.
  std::vector<SubjectId> subjects;
  if (rule.op_subject) {
    LTAM_ASSIGN_OR_RETURN(subjects, rule.op_subject->Apply(base.subject(),
                                                           *profiles_));
  } else {
    subjects.push_back(base.subject());
  }

  // Location element.
  std::vector<LocationId> locations;
  if (rule.op_location) {
    LTAM_ASSIGN_OR_RETURN(locations, rule.op_location->Apply(base.location(),
                                                             *graph_));
  } else {
    locations.push_back(base.location());
  }

  // Entry-count element.
  int64_t n = rule.exp_n.has_value() ? rule.exp_n->Eval(base.max_entries())
                                     : base.max_entries();

  // Cross product: one derived authorization per (entry interval, subject,
  // location). For each entry interval we pick the exit window that makes
  // the pair satisfy Definition 4 (tos >= tis, toe >= tie), clamping the
  // exit start up to the entry start; exit windows ending before the entry
  // window are unusable and dropped.
  std::vector<LocationTemporalAuthorization> out;
  for (const TimeInterval& entry : entry_set.intervals()) {
    for (const TimeInterval& exit_raw : exit_set.intervals()) {
      Chronon exit_start = std::max(exit_raw.start(), entry.start());
      Chronon exit_end = exit_raw.end();
      if (exit_end < entry.end()) continue;  // Cannot satisfy toe >= tie.
      if (exit_start > exit_end) continue;
      for (SubjectId s : subjects) {
        for (LocationId l : locations) {
          Result<LocationTemporalAuthorization> derived =
              LocationTemporalAuthorization::Make(
                  entry, TimeInterval(exit_start, exit_end),
                  LocationAuthorization{s, l}, n);
          if (derived.ok()) out.push_back(*derived);
        }
      }
    }
  }
  return out;
}

Result<DerivationReport> RuleEngine::DeriveRule(RuleId id) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [id](const AuthorizationRule& r) { return r.id == id; });
  if (it == rules_.end()) return Status::NotFound("no such rule");
  DerivationReport report;
  report.rules_evaluated = 1;
  report.revoked = auth_db_->RevokeDerivedBy(id);
  LTAM_ASSIGN_OR_RETURN(std::vector<LocationTemporalAuthorization> derived,
                        Expand(*it));
  for (const LocationTemporalAuthorization& auth : derived) {
    auth_db_->AddDerived(auth, id);
    ++report.derived;
  }
  last_profile_version_ = profiles_->version();
  return report;
}

Result<DerivationReport> RuleEngine::DeriveAll() {
  DerivationReport total;
  for (const AuthorizationRule& rule : rules_) {
    LTAM_ASSIGN_OR_RETURN(DerivationReport r, DeriveRule(rule.id));
    total.rules_evaluated += r.rules_evaluated;
    total.derived += r.derived;
    total.revoked += r.revoked;
    total.skipped += r.skipped;
  }
  last_profile_version_ = profiles_->version();
  return total;
}

Result<DerivationReport> RuleEngine::RefreshIfProfilesChanged() {
  if (profiles_->version() == last_profile_version_) {
    return DerivationReport{};
  }
  return DeriveAll();
}

}  // namespace ltam
