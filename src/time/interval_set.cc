// Copyright 2026 The LTAM Authors.

#include "time/interval_set.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

Chronon IntervalSet::Min() const {
  LTAM_CHECK(!empty()) << "Min() on empty IntervalSet";
  return intervals_.front().start();
}

Chronon IntervalSet::Max() const {
  LTAM_CHECK(!empty()) << "Max() on empty IntervalSet";
  return intervals_.back().end();
}

void IntervalSet::Add(const TimeInterval& interval) {
  if (!interval.valid()) return;
  // Find the first existing interval that could merge with `interval`.
  // All intervals ending before interval.start-1 are unaffected.
  std::vector<TimeInterval> merged;
  merged.reserve(intervals_.size() + 1);
  TimeInterval cur = interval;
  size_t i = 0;
  // Copy strictly-before intervals.
  while (i < intervals_.size() &&
         !intervals_[i].Mergeable(cur) && intervals_[i] < cur) {
    merged.push_back(intervals_[i]);
    ++i;
  }
  // Merge everything mergeable.
  while (i < intervals_.size() && intervals_[i].Mergeable(cur)) {
    cur = *cur.MergeWith(intervals_[i]);
    ++i;
  }
  merged.push_back(cur);
  // Copy the rest.
  while (i < intervals_.size()) {
    merged.push_back(intervals_[i]);
    ++i;
  }
  intervals_ = std::move(merged);
}

void IntervalSet::Remove(const TimeInterval& interval) {
  if (!interval.valid()) return;
  std::vector<TimeInterval> out;
  out.reserve(intervals_.size() + 1);
  for (const TimeInterval& iv : intervals_) {
    if (!iv.Overlaps(interval)) {
      out.push_back(iv);
      continue;
    }
    // Left remainder [iv.start, interval.start-1].
    if (iv.start() < interval.start()) {
      out.emplace_back(iv.start(), ChrononSub(interval.start(), 1));
    }
    // Right remainder [interval.end+1, iv.end].
    if (interval.end() < iv.end()) {
      out.emplace_back(ChrononAdd(interval.end(), 1), iv.end());
    }
  }
  intervals_ = std::move(out);
}

bool IntervalSet::Contains(Chronon t) const {
  // Binary search: first interval with start > t, step back.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Chronon v, const TimeInterval& iv) { return v < iv.start(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

bool IntervalSet::Contains(const TimeInterval& interval) const {
  if (!interval.valid()) return true;  // Empty interval trivially contained.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), interval.start(),
      [](Chronon v, const TimeInterval& iv) { return v < iv.start(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(interval);
}

bool IntervalSet::ContainsSet(const IntervalSet& other) const {
  for (const TimeInterval& iv : other.intervals_) {
    if (!Contains(iv)) return false;
  }
  return true;
}

bool IntervalSet::Overlaps(const TimeInterval& interval) const {
  if (!interval.valid()) return false;
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), interval.end(),
      [](Chronon v, const TimeInterval& iv) { return v < iv.start(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Overlaps(interval);
}

bool IntervalSet::Overlaps(const IntervalSet& other) const {
  // Linear merge scan.
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    if (intervals_[i].Overlaps(other.intervals_[j])) return true;
    if (intervals_[i].end() < other.intervals_[j].end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  // Merge two sorted sequences, coalescing on the fly.
  IntervalSet out;
  out.intervals_.reserve(intervals_.size() + other.intervals_.size());
  size_t i = 0;
  size_t j = 0;
  auto push = [&out](const TimeInterval& iv) {
    if (!out.intervals_.empty() && out.intervals_.back().Mergeable(iv)) {
      out.intervals_.back() = *out.intervals_.back().MergeWith(iv);
    } else {
      out.intervals_.push_back(iv);
    }
  };
  while (i < intervals_.size() || j < other.intervals_.size()) {
    if (j >= other.intervals_.size() ||
        (i < intervals_.size() && intervals_[i] < other.intervals_[j])) {
      push(intervals_[i++]);
    } else {
      push(other.intervals_[j++]);
    }
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    std::optional<TimeInterval> x = intervals_[i].Intersect(other.intervals_[j]);
    if (x.has_value()) out.intervals_.push_back(*x);
    if (intervals_[i].end() < other.intervals_[j].end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const TimeInterval& interval) const {
  return Intersect(IntervalSet(interval));
}

IntervalSet IntervalSet::Difference(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const TimeInterval& iv : other.intervals_) out.Remove(iv);
  return out;
}

IntervalSet IntervalSet::Complement(const TimeInterval& universe) const {
  IntervalSet out(universe);
  return out.Difference(*this);
}

Chronon IntervalSet::TotalSize() const {
  Chronon total = 0;
  for (const TimeInterval& iv : intervals_) {
    Chronon s = iv.size();
    if (s == kChrononMax) return kChrononMax;
    total = ChrononAdd(total, s);
    if (total == kChrononMax) return kChrononMax;
  }
  return total;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ", ";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

Result<IntervalSet> IntervalSet::Parse(const std::string& text) {
  std::string t = Trim(text);
  if (t.empty() || EqualsIgnoreCase(t, "null") ||
      EqualsIgnoreCase(t, "phi") || t == "{}") {
    return IntervalSet();
  }
  if (t.front() == '[') {
    LTAM_ASSIGN_OR_RETURN(TimeInterval iv, TimeInterval::Parse(t));
    return IntervalSet(iv);
  }
  if (t.front() != '{' || t.back() != '}') {
    return Status::ParseError("interval set must look like '{[a,b], ...}'");
  }
  IntervalSet out;
  std::string body = Trim(t.substr(1, t.size() - 2));
  size_t pos = 0;
  while (pos < body.size()) {
    size_t open = body.find('[', pos);
    if (open == std::string::npos) break;
    size_t close = body.find(']', open);
    if (close == std::string::npos) {
      return Status::ParseError("unterminated interval in set: '" + t + "'");
    }
    LTAM_ASSIGN_OR_RETURN(
        TimeInterval iv,
        TimeInterval::Parse(body.substr(open, close - open + 1)));
    out.Add(iv);
    pos = close + 1;
  }
  return out;
}

}  // namespace ltam
