// Copyright 2026 The LTAM Authors.

#include "storage/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "storage/codec.h"
#include "util/string_util.h"

namespace ltam {

namespace {

std::string I64(int64_t v) { return std::to_string(v); }
std::string U32(uint32_t v) { return std::to_string(v); }

Result<int64_t> F_I64(const Record& rec, size_t i) {
  if (i >= rec.fields.size()) {
    return Status::ParseError("record '" + rec.type + "' missing field " +
                              std::to_string(i));
  }
  return ParseInt64(rec.fields[i]);
}

Result<std::string> F_Str(const Record& rec, size_t i) {
  if (i >= rec.fields.size()) {
    return Status::ParseError("record '" + rec.type + "' missing field " +
                              std::to_string(i));
  }
  return rec.fields[i];
}

Record MoveRecord(const MovementEvent& ev) {
  return Record{"move",
                {I64(ev.time), U32(ev.subject),
                 ev.to == kInvalidLocation ? "out" : U32(ev.to)}};
}

Status ApplyMoveRecord(const Record& rec, MovementDatabase* movements) {
  LTAM_ASSIGN_OR_RETURN(int64_t t, F_I64(rec, 0));
  LTAM_ASSIGN_OR_RETURN(int64_t s, F_I64(rec, 1));
  LTAM_ASSIGN_OR_RETURN(std::string to, F_Str(rec, 2));
  if (s < 0 || s > static_cast<int64_t>(UINT32_MAX)) {
    return Status::ParseError("move subject id out of range");
  }
  LocationId dest = kInvalidLocation;
  if (to != "out") {
    LTAM_ASSIGN_OR_RETURN(int64_t l, ParseInt64(to));
    if (l < 0 || l > static_cast<int64_t>(UINT32_MAX)) {
      return Status::ParseError("move location id out of range");
    }
    dest = static_cast<LocationId>(l);
  }
  return movements->RecordMovement(t, static_cast<SubjectId>(s), dest);
}

}  // namespace

Status SaveSnapshot(const SystemState& state, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open snapshot '" + path + "' for write");
  }
  auto emit = [&out](const Record& rec) {
    out << EncodeRecord(rec) << '\n';
  };

  // --- Graph ---------------------------------------------------------------
  const MultilevelLocationGraph& g = state.graph;
  emit({"graph-root", {g.location(g.root()).name}});
  for (LocationId id = 1; id < g.size(); ++id) {
    const Location& loc = g.location(id);
    emit({"loc",
          {U32(id), loc.name, loc.IsComposite() ? "composite" : "primitive",
           U32(loc.parent), loc.is_entry ? "1" : "0", loc.description}});
    if (loc.boundary.has_value()) {
      Record rec{"boundary", {U32(id)}};
      for (const Point& p : loc.boundary->ring()) {
        rec.fields.push_back(StrFormat("%.17g", p.x));
        rec.fields.push_back(StrFormat("%.17g", p.y));
      }
      emit(rec);
    }
  }
  for (const auto& [a, b] : g.Edges()) {
    emit({"edge", {U32(a), U32(b)}});
  }

  // --- Profiles --------------------------------------------------------------
  const UserProfileDatabase& profiles = state.profiles;
  for (SubjectId s : profiles.AllSubjects()) {
    const Subject& subj = profiles.subject(s);
    emit({"subject", {U32(s), subj.name}});
  }
  // Supervisors after all subjects exist (forward references are legal).
  for (SubjectId s : profiles.AllSubjects()) {
    const Subject& subj = profiles.subject(s);
    if (subj.supervisor != kInvalidSubject) {
      emit({"supervisor", {U32(s), U32(subj.supervisor)}});
    }
    for (const std::string& group : subj.groups) {
      emit({"group", {U32(s), group}});
    }
    for (const std::string& role : subj.roles) {
      emit({"role", {U32(s), role}});
    }
    for (const auto& [key, value] : subj.attributes) {
      emit({"attr", {U32(s), key, value}});
    }
  }

  // --- Authorizations --------------------------------------------------------
  const AuthorizationDatabase& db = state.auth_db;
  for (AuthId id = 0; id < db.size(); ++id) {
    const AuthRecord& rec = db.record(id);
    emit({"auth",
          {U32(id), I64(rec.auth.entry_duration().start()),
           I64(rec.auth.entry_duration().end()),
           I64(rec.auth.exit_duration().start()),
           I64(rec.auth.exit_duration().end()), U32(rec.auth.subject()),
           U32(rec.auth.location()), I64(rec.auth.max_entries()),
           rec.origin == AuthOrigin::kDerived ? "derived" : "explicit",
           U32(rec.source_rule), rec.revoked ? "1" : "0",
           I64(rec.entries_used)}});
  }

  // --- Rules -------------------------------------------------------------------
  for (const AuthorizationRule& rule : state.rules) {
    emit({"rule",
          {I64(rule.valid_from), U32(rule.base),
           rule.op_entry ? rule.op_entry->ToString() : "WHENEVER",
           rule.op_exit ? rule.op_exit->ToString() : "WHENEVER",
           rule.op_subject ? rule.op_subject->ToString() : "Identity",
           rule.op_location ? rule.op_location->ToString() : "Identity",
           rule.exp_n.has_value() ? rule.exp_n->text() : "n", rule.label}});
  }

  // --- Movements -----------------------------------------------------------------
  for (const MovementEvent& ev : state.movements.history()) {
    emit(MoveRecord(ev));
  }

  out.flush();
  if (!out.good()) return Status::IOError("snapshot write failed");
  return Status::OK();
}

Result<SystemState> LoadSnapshot(const std::string& path) {
  return LoadSnapshot(path, SubjectOperatorRegistry::Default(),
                      LocationOperatorRegistry::Default());
}

Result<SystemState> LoadSnapshot(
    const std::string& path, const SubjectOperatorRegistry& subject_ops,
    const LocationOperatorRegistry& location_ops) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open snapshot '" + path + "'");
  }
  SystemState state;
  bool graph_initialized = false;
  std::string line;
  size_t line_no = 0;
  // Authorizations replay in id order; ledger/revocations apply inline.
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Result<Record> rec_or = DecodeRecord(line);
    if (!rec_or.ok()) {
      return rec_or.status().WithContext("snapshot line " +
                                         std::to_string(line_no));
    }
    const Record& rec = *rec_or;

    if (rec.type == "graph-root") {
      LTAM_ASSIGN_OR_RETURN(std::string name, F_Str(rec, 0));
      state.graph = MultilevelLocationGraph(name);
      graph_initialized = true;
      continue;
    }
    if (!graph_initialized) {
      return Status::ParseError("snapshot must start with graph-root");
    }
    if (rec.type == "loc") {
      LTAM_ASSIGN_OR_RETURN(int64_t id, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(std::string name, F_Str(rec, 1));
      LTAM_ASSIGN_OR_RETURN(std::string kind, F_Str(rec, 2));
      LTAM_ASSIGN_OR_RETURN(int64_t parent, F_I64(rec, 3));
      LTAM_ASSIGN_OR_RETURN(int64_t is_entry, F_I64(rec, 4));
      LTAM_ASSIGN_OR_RETURN(std::string description, F_Str(rec, 5));
      Result<LocationId> added =
          kind == "composite"
              ? state.graph.AddComposite(name,
                                         static_cast<LocationId>(parent))
              : state.graph.AddPrimitive(name,
                                         static_cast<LocationId>(parent));
      if (!added.ok()) return added.status();
      if (*added != static_cast<LocationId>(id)) {
        return Status::ParseError("snapshot location ids are not dense");
      }
      if (is_entry != 0) {
        LTAM_RETURN_IF_ERROR(state.graph.SetEntry(*added, true));
      }
      if (!description.empty()) {
        LTAM_RETURN_IF_ERROR(state.graph.SetDescription(*added, description));
      }
      continue;
    }
    if (rec.type == "boundary") {
      LTAM_ASSIGN_OR_RETURN(int64_t id, F_I64(rec, 0));
      if ((rec.fields.size() - 1) % 2 != 0) {
        return Status::ParseError("boundary record has odd coordinate count");
      }
      std::vector<Point> ring;
      for (size_t i = 1; i + 1 < rec.fields.size(); i += 2) {
        LTAM_ASSIGN_OR_RETURN(double x, ParseDouble(rec.fields[i]));
        LTAM_ASSIGN_OR_RETURN(double y, ParseDouble(rec.fields[i + 1]));
        ring.push_back(Point{x, y});
      }
      LTAM_ASSIGN_OR_RETURN(Polygon poly, Polygon::Make(std::move(ring)));
      LTAM_RETURN_IF_ERROR(
          state.graph.SetBoundary(static_cast<LocationId>(id), poly));
      continue;
    }
    if (rec.type == "edge") {
      LTAM_ASSIGN_OR_RETURN(int64_t a, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(int64_t b, F_I64(rec, 1));
      LTAM_RETURN_IF_ERROR(state.graph.AddEdge(static_cast<LocationId>(a),
                                               static_cast<LocationId>(b)));
      continue;
    }
    if (rec.type == "subject") {
      LTAM_ASSIGN_OR_RETURN(int64_t id, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(std::string name, F_Str(rec, 1));
      LTAM_ASSIGN_OR_RETURN(SubjectId added, state.profiles.AddSubject(name));
      if (added != static_cast<SubjectId>(id)) {
        return Status::ParseError("snapshot subject ids are not dense");
      }
      continue;
    }
    if (rec.type == "supervisor") {
      LTAM_ASSIGN_OR_RETURN(int64_t s, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(int64_t sup, F_I64(rec, 1));
      LTAM_RETURN_IF_ERROR(state.profiles.SetSupervisor(
          static_cast<SubjectId>(s), static_cast<SubjectId>(sup)));
      continue;
    }
    if (rec.type == "group") {
      LTAM_ASSIGN_OR_RETURN(int64_t s, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(std::string group, F_Str(rec, 1));
      LTAM_RETURN_IF_ERROR(
          state.profiles.AddToGroup(static_cast<SubjectId>(s), group));
      continue;
    }
    if (rec.type == "role") {
      LTAM_ASSIGN_OR_RETURN(int64_t s, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(std::string role, F_Str(rec, 1));
      LTAM_RETURN_IF_ERROR(
          state.profiles.AssignRole(static_cast<SubjectId>(s), role));
      continue;
    }
    if (rec.type == "attr") {
      LTAM_ASSIGN_OR_RETURN(int64_t s, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(std::string key, F_Str(rec, 1));
      LTAM_ASSIGN_OR_RETURN(std::string value, F_Str(rec, 2));
      LTAM_RETURN_IF_ERROR(state.profiles.SetAttribute(
          static_cast<SubjectId>(s), key, value));
      continue;
    }
    if (rec.type == "auth") {
      LTAM_ASSIGN_OR_RETURN(int64_t id, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(int64_t es, F_I64(rec, 1));
      LTAM_ASSIGN_OR_RETURN(int64_t ee, F_I64(rec, 2));
      LTAM_ASSIGN_OR_RETURN(int64_t xs, F_I64(rec, 3));
      LTAM_ASSIGN_OR_RETURN(int64_t xe, F_I64(rec, 4));
      LTAM_ASSIGN_OR_RETURN(int64_t s, F_I64(rec, 5));
      LTAM_ASSIGN_OR_RETURN(int64_t l, F_I64(rec, 6));
      LTAM_ASSIGN_OR_RETURN(int64_t n, F_I64(rec, 7));
      LTAM_ASSIGN_OR_RETURN(std::string origin, F_Str(rec, 8));
      LTAM_ASSIGN_OR_RETURN(int64_t rule, F_I64(rec, 9));
      LTAM_ASSIGN_OR_RETURN(int64_t revoked, F_I64(rec, 10));
      LTAM_ASSIGN_OR_RETURN(int64_t used, F_I64(rec, 11));
      LTAM_ASSIGN_OR_RETURN(
          LocationTemporalAuthorization auth,
          LocationTemporalAuthorization::Make(
              TimeInterval(es, ee), TimeInterval(xs, xe),
              LocationAuthorization{static_cast<SubjectId>(s),
                                    static_cast<LocationId>(l)},
              n));
      AuthId added =
          origin == "derived"
              ? state.auth_db.AddDerived(auth, static_cast<RuleId>(rule))
              : state.auth_db.Add(auth);
      if (added != static_cast<AuthId>(id)) {
        return Status::ParseError("snapshot auth ids are not dense");
      }
      for (int64_t i = 0; i < used; ++i) {
        LTAM_RETURN_IF_ERROR(state.auth_db.RecordEntry(added));
      }
      if (revoked != 0) {
        LTAM_RETURN_IF_ERROR(state.auth_db.Revoke(added));
      }
      continue;
    }
    if (rec.type == "rule") {
      AuthorizationRule rule;
      LTAM_ASSIGN_OR_RETURN(rule.valid_from, F_I64(rec, 0));
      LTAM_ASSIGN_OR_RETURN(int64_t base, F_I64(rec, 1));
      rule.base = static_cast<AuthId>(base);
      LTAM_ASSIGN_OR_RETURN(std::string op_entry, F_Str(rec, 2));
      LTAM_ASSIGN_OR_RETURN(rule.op_entry, ParseTemporalOperator(op_entry));
      LTAM_ASSIGN_OR_RETURN(std::string op_exit, F_Str(rec, 3));
      LTAM_ASSIGN_OR_RETURN(rule.op_exit, ParseTemporalOperator(op_exit));
      LTAM_ASSIGN_OR_RETURN(std::string op_subject, F_Str(rec, 4));
      LTAM_ASSIGN_OR_RETURN(rule.op_subject, subject_ops.Parse(op_subject));
      LTAM_ASSIGN_OR_RETURN(std::string op_location, F_Str(rec, 5));
      LTAM_ASSIGN_OR_RETURN(rule.op_location, location_ops.Parse(op_location));
      LTAM_ASSIGN_OR_RETURN(std::string expn, F_Str(rec, 6));
      LTAM_ASSIGN_OR_RETURN(rule.exp_n, CountExpr::Parse(expn));
      LTAM_ASSIGN_OR_RETURN(rule.label, F_Str(rec, 7));
      rule.id = static_cast<RuleId>(state.rules.size());
      state.rules.push_back(std::move(rule));
      continue;
    }
    if (rec.type == "move") {
      LTAM_RETURN_IF_ERROR(ApplyMoveRecord(rec, &state.movements));
      continue;
    }
    return Status::ParseError("unknown snapshot record type '" + rec.type +
                              "'");
  }
  return state;
}

Status SaveMovements(const MovementDatabase& movements,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open movement segment '" + path +
                           "' for write");
  }
  for (const MovementEvent& ev : movements.history()) {
    out << EncodeRecord(MoveRecord(ev)) << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IOError("movement segment write failed");
  return Status::OK();
}

Result<MovementDatabase> LoadMovements(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open movement segment '" + path + "'");
  }
  MovementDatabase movements;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Result<Record> rec_or = DecodeRecord(line);
    if (!rec_or.ok()) {
      return rec_or.status().WithContext("movement segment line " +
                                         std::to_string(line_no));
    }
    if (rec_or->type != "move") {
      return Status::ParseError("movement segment line " +
                                std::to_string(line_no) +
                                " has unexpected record '" + rec_or->type +
                                "'");
    }
    Status applied = ApplyMoveRecord(*rec_or, &movements);
    if (!applied.ok()) {
      return applied.WithContext("movement segment line " +
                                 std::to_string(line_no));
    }
  }
  return movements;
}

}  // namespace ltam
