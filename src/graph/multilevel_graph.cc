// Copyright 2026 The LTAM Authors.

#include "graph/multilevel_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ltam {

MultilevelLocationGraph::MultilevelLocationGraph(std::string root_name) {
  Location root;
  root.id = 0;
  root.name = std::move(root_name);
  root.kind = LocationKind::kComposite;
  root.parent = kInvalidLocation;
  by_name_.emplace(root.name, 0);
  locations_.push_back(std::move(root));
}

Result<LocationId> MultilevelLocationGraph::AddLocation(
    const std::string& name, LocationKind kind, LocationId parent) {
  if (name.empty()) {
    return Status::InvalidArgument("location name must be nonempty");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("location '" + name + "' already exists");
  }
  if (!Exists(parent)) {
    return Status::NotFound(StrFormat("parent location #%u does not exist",
                                      parent));
  }
  if (!locations_[parent].IsComposite()) {
    return Status::InvalidArgument("parent '" + locations_[parent].name +
                                   "' is primitive; only composite "
                                   "locations can contain others");
  }
  LocationId id = static_cast<LocationId>(locations_.size());
  Location loc;
  loc.id = id;
  loc.name = name;
  loc.kind = kind;
  loc.parent = parent;
  locations_.push_back(std::move(loc));
  locations_[parent].children.push_back(id);
  by_name_.emplace(name, id);
  InvalidateCaches();
  return id;
}

Result<LocationId> MultilevelLocationGraph::AddComposite(
    const std::string& name, LocationId parent) {
  return AddLocation(name, LocationKind::kComposite, parent);
}

Result<LocationId> MultilevelLocationGraph::AddPrimitive(
    const std::string& name, LocationId parent) {
  return AddLocation(name, LocationKind::kPrimitive, parent);
}

Result<LocationId> MultilevelLocationGraph::AddComposite(
    const std::string& name, const std::string& parent_name) {
  LTAM_ASSIGN_OR_RETURN(LocationId parent, Find(parent_name));
  return AddComposite(name, parent);
}

Result<LocationId> MultilevelLocationGraph::AddPrimitive(
    const std::string& name, const std::string& parent_name) {
  LTAM_ASSIGN_OR_RETURN(LocationId parent, Find(parent_name));
  return AddPrimitive(name, parent);
}

Status MultilevelLocationGraph::AddEdge(LocationId a, LocationId b) {
  if (!Exists(a) || !Exists(b)) {
    return Status::NotFound("edge endpoint does not exist");
  }
  if (a == b) {
    return Status::InvalidArgument("self-loop edge on '" +
                                   locations_[a].name + "'");
  }
  if (locations_[a].parent != locations_[b].parent) {
    return Status::InvalidArgument(
        "edge endpoints '" + locations_[a].name + "' and '" +
        locations_[b].name +
        "' belong to different composites; cross-graph movement goes "
        "through entry locations");
  }
  const auto& adj = locations_[a].sibling_adj;
  if (std::find(adj.begin(), adj.end(), b) != adj.end()) {
    return Status::AlreadyExists("edge (" + locations_[a].name + ", " +
                                 locations_[b].name + ") already exists");
  }
  locations_[a].sibling_adj.push_back(b);
  locations_[b].sibling_adj.push_back(a);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
  InvalidateCaches();
  return Status::OK();
}

Status MultilevelLocationGraph::AddEdge(const std::string& a,
                                        const std::string& b) {
  LTAM_ASSIGN_OR_RETURN(LocationId ia, Find(a));
  LTAM_ASSIGN_OR_RETURN(LocationId ib, Find(b));
  return AddEdge(ia, ib);
}

Status MultilevelLocationGraph::SetEntry(LocationId l, bool is_entry) {
  if (!Exists(l)) return Status::NotFound("location does not exist");
  if (l == root()) {
    return Status::InvalidArgument(
        "the root composite cannot be an entry of anything");
  }
  locations_[l].is_entry = is_entry;
  InvalidateCaches();
  return Status::OK();
}

Status MultilevelLocationGraph::SetEntry(const std::string& name,
                                         bool is_entry) {
  LTAM_ASSIGN_OR_RETURN(LocationId id, Find(name));
  return SetEntry(id, is_entry);
}

Status MultilevelLocationGraph::SetBoundary(LocationId l, Polygon boundary) {
  if (!Exists(l)) return Status::NotFound("location does not exist");
  locations_[l].boundary = std::move(boundary);
  return Status::OK();
}

Status MultilevelLocationGraph::SetDescription(LocationId l,
                                               std::string description) {
  if (!Exists(l)) return Status::NotFound("location does not exist");
  locations_[l].description = std::move(description);
  return Status::OK();
}

Result<LocationId> MultilevelLocationGraph::Find(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no location named '" + name + "'");
  }
  return it->second;
}

const Location& MultilevelLocationGraph::location(LocationId id) const {
  LTAM_CHECK(Exists(id)) << "location id " << id << " out of range";
  return locations_[id];
}

std::vector<LocationId> MultilevelLocationGraph::Primitives() const {
  std::vector<LocationId> out;
  for (const Location& l : locations_) {
    if (l.IsPrimitive()) out.push_back(l.id);
  }
  return out;
}

std::vector<LocationId> MultilevelLocationGraph::Composites() const {
  std::vector<LocationId> out;
  for (const Location& l : locations_) {
    if (l.IsComposite()) out.push_back(l.id);
  }
  return out;
}

std::vector<std::pair<LocationId, LocationId>>
MultilevelLocationGraph::Edges() const {
  return edges_;
}

bool MultilevelLocationGraph::IsPartOf(LocationId l,
                                       LocationId composite) const {
  if (!Exists(l) || !Exists(composite)) return false;
  LocationId cur = locations_[l].parent;
  while (cur != kInvalidLocation) {
    if (cur == composite) return true;
    cur = locations_[cur].parent;
  }
  return false;
}

std::vector<LocationId> MultilevelLocationGraph::Ancestors(
    LocationId l) const {
  std::vector<LocationId> out;
  if (!Exists(l)) return out;
  LocationId cur = locations_[l].parent;
  while (cur != kInvalidLocation) {
    out.push_back(cur);
    cur = locations_[cur].parent;
  }
  return out;
}

std::vector<LocationId> MultilevelLocationGraph::EntryLocations(
    LocationId composite) const {
  std::vector<LocationId> out;
  if (!Exists(composite) || !locations_[composite].IsComposite()) return out;
  for (LocationId c : locations_[composite].children) {
    if (locations_[c].is_entry) out.push_back(c);
  }
  return out;
}

std::vector<LocationId> MultilevelLocationGraph::EntryPrimitives(
    LocationId l) const {
  std::vector<LocationId> out;
  if (!Exists(l)) return out;
  if (locations_[l].IsPrimitive()) {
    out.push_back(l);
    return out;
  }
  for (LocationId e : EntryLocations(l)) {
    std::vector<LocationId> sub = EntryPrimitives(e);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<LocationId> MultilevelLocationGraph::PrimitivesWithin(
    LocationId l) const {
  std::vector<LocationId> out;
  if (!Exists(l)) return out;
  if (locations_[l].IsPrimitive()) {
    out.push_back(l);
    return out;
  }
  for (LocationId c : locations_[l].children) {
    std::vector<LocationId> sub = PrimitivesWithin(c);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void MultilevelLocationGraph::InvalidateCaches() const {
  effective_valid_ = false;
}

void MultilevelLocationGraph::BuildEffectiveAdjacency() const {
  effective_adj_.assign(locations_.size(), {});
  for (const auto& [a, b] : edges_) {
    std::vector<LocationId> pa = EntryPrimitives(a);
    std::vector<LocationId> pb = EntryPrimitives(b);
    // An edge endpoint that is itself primitive contributes exactly
    // itself; a composite endpoint contributes its entry primitives
    // (complex-route rule, Section 3.1).
    for (LocationId p : pa) {
      for (LocationId q : pb) {
        effective_adj_[p].push_back(q);
        effective_adj_[q].push_back(p);
      }
    }
  }
  // De-duplicate, preserving first-occurrence order: neighbor order is
  // edge-insertion order, which downstream algorithms use for
  // deterministic, layout-controlled traversal (e.g. reproducing the
  // processing order of the paper's Table 2).
  for (std::vector<LocationId>& adj : effective_adj_) {
    std::vector<LocationId> deduped;
    deduped.reserve(adj.size());
    for (LocationId n : adj) {
      if (std::find(deduped.begin(), deduped.end(), n) == deduped.end()) {
        deduped.push_back(n);
      }
    }
    adj = std::move(deduped);
  }
  effective_valid_ = true;
}

void MultilevelLocationGraph::WarmEffectiveAdjacency() const {
  if (!effective_valid_) BuildEffectiveAdjacency();
}

const std::vector<LocationId>& MultilevelLocationGraph::EffectiveNeighbors(
    LocationId l) const {
  LTAM_CHECK(Exists(l)) << "location id " << l << " out of range";
  LTAM_CHECK(locations_[l].IsPrimitive())
      << "effective neighbors are defined for primitive locations; '"
      << locations_[l].name << "' is composite";
  if (!effective_valid_) BuildEffectiveAdjacency();
  return effective_adj_[l];
}

size_t MultilevelLocationGraph::MaxDegree() const {
  size_t best = 0;
  for (LocationId p : Primitives()) {
    best = std::max(best, EffectiveNeighbors(p).size());
  }
  return best;
}

std::string MultilevelLocationGraph::ToString() const {
  std::string out;
  // Depth-first tree dump.
  struct Frame {
    LocationId id;
    int depth;
  };
  std::vector<Frame> stack{{root(), 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Location& loc = locations_[f.id];
    out.append(static_cast<size_t>(f.depth) * 2, ' ');
    out += loc.name;
    out += loc.IsComposite() ? " (composite" : " (primitive";
    if (loc.is_entry) out += ", entry";
    out += ")\n";
    // Push children in reverse so they pop in insertion order.
    for (auto it = loc.children.rbegin(); it != loc.children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out;
}

}  // namespace ltam
