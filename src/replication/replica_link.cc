// Copyright 2026 The LTAM Authors.

#include "replication/replica_link.h"

#include <chrono>

#include "replication/epoch.h"

namespace ltam {

ReplicaLink::ReplicaLink(AccessRuntime* runtime, std::shared_mutex* runtime_mu,
                         std::string host, uint16_t port,
                         ReplicaLinkOptions options)
    : runtime_(runtime),
      runtime_mu_(runtime_mu),
      options_(options),
      host_(std::move(host)),
      port_(port) {}

ReplicaLink::~ReplicaLink() { Stop(); }

void ReplicaLink::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

void ReplicaLink::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
    if (client_ != nullptr) client_->ShutdownSocket();
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void ReplicaLink::Repoint(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  host_ = host;
  port_ = port;
  ++target_generation_;
  // Break the current stream; the loop redials the new target.
  if (client_ != nullptr) client_->ShutdownSocket();
  cv_.notify_all();
}

uint64_t ReplicaLink::records_applied() const {
  return records_applied_.load(std::memory_order_relaxed);
}

uint64_t ReplicaLink::fenced_frames() const {
  return fenced_frames_.load(std::memory_order_relaxed);
}

bool ReplicaLink::connected() const {
  return connected_.load(std::memory_order_acquire);
}

Status ReplicaLink::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

std::vector<uint64_t> ReplicaLink::upstream_durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return upstream_durable_;
}

std::pair<std::string, uint16_t> ReplicaLink::upstream() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {host_, port_};
}

void ReplicaLink::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return;  // Shutdown-induced breakage is not an error.
  last_error_ = std::move(status);
}

bool ReplicaLink::Backoff() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(options_.reconnect_backoff_ms),
               [this] { return stop_; });
  return !stop_;
}

void ReplicaLink::Run() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    RunOnce();
    connected_.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      client_.reset();
      if (stop_) return;
    }
    if (!Backoff()) return;
  }
}

void ReplicaLink::RunOnce() {
  std::string host;
  uint16_t port = 0;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    host = host_;
    port = port_;
    generation = target_generation_;
  }

  Result<std::unique_ptr<ServiceClient>> dialed =
      ServiceClient::Connect(host, port);
  if (!dialed.ok()) {
    RecordError(dialed.status());
    return;
  }
  ServiceClient* client = dialed->get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || target_generation_ != generation) return;
    client_ = std::move(*dialed);
  }

  // Subscribe: our epoch plus per-shard DURABLE positions — the honest
  // resume point (an applied-but-unsynced suffix would not survive our
  // own crash, so the primary must re-ship it).
  ReplicaHello hello;
  {
    std::shared_lock<std::shared_mutex> rlock(*runtime_mu_);
    hello.epoch = runtime_->replication_epoch();
    Result<std::vector<uint64_t>> positions = runtime_->ReplicationPositions();
    if (!positions.ok()) {
      RecordError(positions.status());
      return;
    }
    hello.positions = std::move(*positions);
  }
  hello.num_shards = static_cast<uint32_t>(hello.positions.size());
  Status sent = client->SendRawFrame(MessageType::kReplicaHello, 1,
                                     EncodeReplicaHello(hello));
  if (!sent.ok()) {
    RecordError(std::move(sent));
    return;
  }
  Result<Frame> first = client->ReceiveRaw();
  if (!first.ok()) {
    RecordError(first.status().WithContext("awaiting replica-welcome"));
    return;
  }
  if (first->header.type == MessageType::kError) {
    Status refused;
    if (DecodeErrorResult(first->payload, &refused).ok()) {
      RecordError(refused.WithContext("subscription refused by " + host + ":" +
                                      std::to_string(port)));
    } else {
      RecordError(Status::ParseError("malformed subscription refusal"));
    }
    return;
  }
  if (first->header.type != MessageType::kReplicaWelcome) {
    RecordError(Status::Internal(
        std::string("expected replica-welcome, got ") +
        MessageTypeToString(first->header.type)));
    return;
  }
  Result<ReplicaWelcome> welcome = DecodeReplicaWelcome(first->payload);
  if (!welcome.ok()) {
    RecordError(welcome.status());
    return;
  }
  if (welcome->num_shards != hello.num_shards) {
    RecordError(Status::FailedPrecondition(
        "upstream runs " + std::to_string(welcome->num_shards) +
        " shards, this replica " + std::to_string(hello.num_shards) +
        " — replication requires identical sharding"));
    return;
  }
  if (welcome->epoch < hello.epoch) {
    // The upstream itself is a fenced ex-primary; park and retry (it
    // may be repointed away or restarted at the new epoch).
    RecordError(CheckStreamEpoch(hello.epoch, welcome->epoch)
                    .WithContext("upstream " + host + ":" +
                                 std::to_string(port)));
    return;
  }
  if (welcome->epoch > hello.epoch) {
    std::unique_lock<std::shared_mutex> wlock(*runtime_mu_);
    Status adopted = runtime_->AdoptReplicationEpoch(welcome->epoch);
    if (!adopted.ok()) {
      RecordError(std::move(adopted));
      return;
    }
  }
  connected_.store(true, std::memory_order_release);

  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || target_generation_ != generation) return;
    }
    Result<Frame> frame = client->ReceiveRaw();
    if (!frame.ok()) {
      RecordError(frame.status().WithContext("replication stream from " +
                                             host + ":" +
                                             std::to_string(port)));
      return;
    }
    switch (frame->header.type) {
      case MessageType::kSegmentChunk: {
        Result<SegmentChunk> chunk = DecodeSegmentChunk(frame->payload);
        if (!chunk.ok()) {
          RecordError(chunk.status());
          return;
        }
        const uint64_t local = runtime_->replication_epoch();
        if (chunk->epoch < local) {
          // The fencing rule: a stale-epoch primary's records must
          // never reach the engine.
          fenced_frames_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        std::unique_lock<std::shared_mutex> wlock(*runtime_mu_);
        if (chunk->epoch > local) {
          Status adopted = runtime_->AdoptReplicationEpoch(chunk->epoch);
          if (!adopted.ok()) {
            RecordError(std::move(adopted));
            return;
          }
        }
        Result<AccessRuntime::ReplicationApplyResult> applied =
            runtime_->ApplyReplicated(chunk->shard, chunk->start,
                                      chunk->records);
        if (!applied.ok()) {
          // A hole or a refusal: drop the stream and re-hello — the
          // fresh positions make the primary re-ship what we need.
          RecordError(applied.status());
          return;
        }
        records_applied_.fetch_add(chunk->records.size(),
                                   std::memory_order_relaxed);
        break;
      }
      case MessageType::kWatermarkAdvance: {
        Result<WatermarkAdvance> advance =
            DecodeWatermarkAdvance(frame->payload);
        if (!advance.ok()) {
          RecordError(advance.status());
          return;
        }
        if (advance->epoch < runtime_->replication_epoch()) {
          fenced_frames_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        std::lock_guard<std::mutex> lock(mu_);
        upstream_durable_ = std::move(advance->durable);
        break;
      }
      case MessageType::kError: {
        Status pushed;
        if (DecodeErrorResult(frame->payload, &pushed).ok()) {
          RecordError(pushed.WithContext("pushed by upstream"));
        } else {
          RecordError(Status::ParseError("malformed upstream error"));
        }
        return;
      }
      case MessageType::kAlertPush:
        // The upstream's shutdown drain; a replica has no client to
        // forward to — alerts re-materialize from the replayed records.
        break;
      default:
        break;  // Future stream frames: ignore, don't drop the link.
    }
  }
}

}  // namespace ltam
