// Copyright 2026 The LTAM Authors.
//
// Reproduces Figure 4 + Table 1 + Table 2: builds the paper's 4-location
// example, runs Algorithm 1 with trace capture, prints the trace in
// Table 2's layout and the final inaccessible set, then times the
// algorithm on that instance.
//
// Expected output: row order Initiation, Update A, Update B, Update D,
// Update C, Update A; final answer {C}. (The paper's printed cells
// [20, 35]/[30, 50] in the last row are arithmetic typos — by its own
// formulas, lines 21/24 of Algorithm 1, the contributions are
// [20, 30]/[20, 50]; the unions, and hence the answer, are identical.
// See EXPERIMENTS.md.)

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/inaccessible.h"
#include "sim/graph_gen.h"
#include "util/logging.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct Fixture {
  MultilevelLocationGraph graph;
  SubjectId alice = 0;
  AuthorizationDatabase auth_db;

  Fixture() : graph(MakeFig4Graph().ValueOrDie()) {
    auto add = [this](const char* room, Chronon es, Chronon ee, Chronon xs,
                      Chronon xe) {
      auth_db.Add(LocationTemporalAuthorization::Make(
                      TimeInterval(es, ee), TimeInterval(xs, xe),
                      LocationAuthorization{
                          alice, graph.Find(room).ValueOrDie()},
                      1)
                      .ValueOrDie());
    };
    // Table 1.
    add("A", 2, 35, 20, 50);
    add("B", 40, 60, 55, 80);
    add("C", 38, 45, 70, 90);
    add("D", 5, 25, 10, 30);
  }
};

void PrintReproduction() {
  Fixture f;
  std::printf("=== Figure 4 / Table 1 / Table 2 reproduction ===\n\n");
  std::printf("Location graph (Figure 4): A-B, A-D, B-C, C-D; entry A.\n");
  std::printf("Authorizations (Table 1):\n");
  for (AuthId id : f.auth_db.Active()) {
    std::printf("  %s\n", f.auth_db.record(id).auth.ToString().c_str());
  }
  InaccessibleOptions options;
  options.algorithm = InaccessibleAlgorithm::kWorklist;
  options.capture_trace = true;
  InaccessibleResult r =
      FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options)
          .ValueOrDie();
  std::printf("\nAlgorithm 1 trace (Table 2):\n%s",
              r.TraceToString(f.graph).c_str());
  std::printf("\nInaccessible locations:");
  for (LocationId l : r.inaccessible) {
    std::printf(" %s", f.graph.location(l).name.c_str());
  }
  std::printf("   (paper: C)\n\n");
}

void BM_Fig4FindInaccessible(benchmark::State& state) {
  Fixture f;
  InaccessibleOptions options;
  options.algorithm = state.range(0) == 0 ? InaccessibleAlgorithm::kWorklist
                                          : InaccessibleAlgorithm::kSweep;
  for (auto _ : state) {
    auto r =
        FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(state.range(0) == 0 ? "worklist" : "sweep");
}
BENCHMARK(BM_Fig4FindInaccessible)->Arg(0)->Arg(1);

void BM_Fig4TraceCapture(benchmark::State& state) {
  Fixture f;
  InaccessibleOptions options;
  options.capture_trace = true;
  for (auto _ : state) {
    auto r =
        FindInaccessible(f.graph, f.graph.root(), f.alice, f.auth_db, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Fig4TraceCapture);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
