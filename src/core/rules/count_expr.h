// Copyright 2026 The LTAM Authors.
// Numeric expressions on the entry count (the `exp_n` element of an
// authorization rule, Definition 5: "specifies a numeric expression on
// the number of entries").

#ifndef LTAM_CORE_RULES_COUNT_EXPR_H_
#define LTAM_CORE_RULES_COUNT_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"

namespace ltam {

/// A small arithmetic expression over the base authorization's entry
/// count `n`: integer literals, `n`, `inf`, `+ - * /`, parentheses, and
/// the functions `min(a,b)` / `max(a,b)`.
///
/// Examples: "n" (copy), "2" (constant), "n+1", "min(n, 3)", "2*n".
/// Division is integer division; division by zero and results < 1 clamp
/// to 1 at evaluation (Definition 4 requires entry >= 1); `inf` is the
/// unlimited sentinel and is absorbing for + and *.
class CountExpr {
 public:
  /// Parses the expression; ParseError on malformed input.
  static Result<CountExpr> Parse(const std::string& text);

  /// The identity expression "n".
  static CountExpr Identity();

  /// Evaluates with the base count `n` (kUnlimitedEntries for infinity).
  int64_t Eval(int64_t n) const;

  /// The original source text.
  const std::string& text() const { return text_; }

  CountExpr(const CountExpr& other);
  CountExpr& operator=(const CountExpr& other);
  CountExpr(CountExpr&&) noexcept;
  CountExpr& operator=(CountExpr&&) noexcept;
  ~CountExpr();

  /// AST node; public so the implementation's parser can build trees, but
  /// opaque (defined only in count_expr.cc).
  struct Node;

 private:
  explicit CountExpr(std::unique_ptr<Node> root, std::string text);

  std::unique_ptr<Node> root_;
  std::string text_;
};

}  // namespace ltam

#endif  // LTAM_CORE_RULES_COUNT_EXPR_H_
