// Copyright 2026 The LTAM Authors.

#include "engine/events.h"

#include <algorithm>

#include "time/interval.h"
#include "util/string_util.h"

namespace ltam {

std::string MovementEvent::ToString() const {
  auto loc = [](LocationId l) {
    return l == kInvalidLocation ? std::string("outside")
                                 : "l" + std::to_string(l);
  };
  return "(" + ChrononToString(time) + ", s" + std::to_string(subject) +
         ", " + loc(from) + " -> " + loc(to) + ")";
}

const char* AccessEventKindToString(AccessEventKind kind) {
  switch (kind) {
    case AccessEventKind::kRequestEntry:
      return "entry";
    case AccessEventKind::kRequestExit:
      return "exit";
    case AccessEventKind::kObserve:
      return "observe";
  }
  return "unknown";
}

std::string AccessEvent::ToString() const {
  std::string out = StrFormat("%s(%s, s%u", AccessEventKindToString(kind),
                              ChrononToString(time).c_str(), subject);
  if (kind != AccessEventKind::kRequestExit) {
    out += ", l" + std::to_string(location);
  }
  return out + ")";
}

const char* AlertTypeToString(AlertType type) {
  switch (type) {
    case AlertType::kUnauthorizedPresence:
      return "unauthorized-presence";
    case AlertType::kOverstay:
      return "overstay";
    case AlertType::kEarlyExit:
      return "early-exit";
    case AlertType::kAccessDenied:
      return "access-denied";
    case AlertType::kImpossibleMovement:
      return "impossible-movement";
  }
  return "unknown";
}

std::string Alert::ToString() const {
  return StrFormat("[t=%s] %s: subject s%u at l%u%s%s",
                   ChrononToString(time).c_str(), AlertTypeToString(type),
                   subject, location, detail.empty() ? "" : " - ",
                   detail.c_str());
}

void SortAlerts(std::vector<Alert>* alerts) {
  std::stable_sort(alerts->begin(), alerts->end(),
                   [](const Alert& a, const Alert& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.subject != b.subject) return a.subject < b.subject;
                     if (a.location != b.location) {
                       return a.location < b.location;
                     }
                     return static_cast<int>(a.type) < static_cast<int>(b.type);
                   });
}

}  // namespace ltam
