// Copyright 2026 The LTAM Authors.
// Authorization conflict detection and resolution.
//
// Section 4: "the authorization rules may introduce conflicts of
// authorizations... For example, a derived authorization may say that
// Alice can enter CAIS during [5, 10]. However, another authorization may
// state that Alice is authorized to enter CAIS during [10, 11]. This
// conflict should be resolved either by combining the two authorizations,
// or discarding one of them. The problem is left for future work." —
// this module implements that future work: detection of overlapping or
// adjacent authorizations for the same (subject, location), plus the two
// resolution strategies the paper sketches.

#ifndef LTAM_CORE_CONFLICT_H_
#define LTAM_CORE_CONFLICT_H_

#include <string>
#include <vector>

#include "core/auth_database.h"

namespace ltam {

/// How two authorizations for the same (subject, location) interact.
enum class ConflictKind : uint8_t {
  /// Entry durations share at least one chronon.
  kOverlapping = 0,
  /// Entry durations are integer-adjacent ([5,10] then [11,20]) — the
  /// paper's [5,10] / [10,11] example once intervals touch.
  kAdjacent = 1,
  /// One entry duration contains the other entirely.
  kContainment = 2,
};

const char* ConflictKindToString(ConflictKind kind);

/// A detected conflict between two active authorizations.
struct Conflict {
  AuthId first = kInvalidAuth;
  AuthId second = kInvalidAuth;
  ConflictKind kind = ConflictKind::kOverlapping;

  std::string ToString() const;
};

/// Resolution strategies ("combining the two authorizations, or
/// discarding one of them").
enum class ConflictResolution : uint8_t {
  /// Revoke both and add one merged authorization: entry/exit durations
  /// unioned (they merge by construction), n = max of the two.
  kMerge = 0,
  /// Keep the older record (lower id); revoke the newer.
  kKeepEarlier = 1,
  /// Keep the newer record; revoke the older.
  kKeepLater = 2,
};

/// Scans the active authorizations and reports every pairwise conflict.
std::vector<Conflict> DetectConflicts(const AuthorizationDatabase& db);

/// Scans only one (subject, location) pair.
std::vector<Conflict> DetectConflicts(const AuthorizationDatabase& db,
                                      SubjectId s, LocationId l);

/// Outcome of ResolveConflicts.
struct ConflictResolutionReport {
  size_t conflicts_found = 0;
  size_t revoked = 0;
  size_t merged_added = 0;
};

/// Applies `policy` until the database is conflict-free. kMerge coalesces
/// whole overlap groups into single authorizations; the keep-* policies
/// drop records. Merging is only performed when both entry and exit
/// durations merge into single intervals; pairs whose exit durations
/// cannot merge are left untouched and reported (a safe merge would widen
/// privileges).
Result<ConflictResolutionReport> ResolveConflicts(AuthorizationDatabase* db,
                                                  ConflictResolution policy);

}  // namespace ltam

#endif  // LTAM_CORE_CONFLICT_H_
