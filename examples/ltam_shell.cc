// Copyright 2026 The LTAM Authors.
//
// An administrator shell: loads a policy script (or the built-in demo
// policy) into an AccessRuntime, derives the scripted rules inside the
// runtime's mutation window, then evaluates query-language statements
// from stdin — the interactive face of Figure 3's query engine,
// answering over the runtime's MovementView.
//
// Run: ./build/examples/ltam_shell [policy.ltam] [--durable=DIR] [--shards=N]
//
// Shell commands besides query statements:
//   connect <host:port>   switch to remote mode: statements are sent to
//                         an ltam_serve endpoint over the wire protocol
//   disconnect            back to the local runtime
//   stats                 runtime counters (local or remote — the same
//                         numbers either way; the wire carries the
//                         runtime's own RuntimeStats). Against a
//                         primary with attached replicas, also renders
//                         each replica's shipped-vs-durable lag gauge.
//   metrics [prom]        telemetry snapshot: per-stage latency
//                         histograms, counters, gauges. Summary lines
//                         by default; `metrics prom` prints the
//                         Prometheus text exposition instead. Remote
//                         mode scrapes the server over the wire.
//   checkpoint            persist the runtime (local or remote)
//   promote               remote only: promote a replica server to
//                         primary (bumps its replication epoch; the
//                         fenced old primary's stream is refused)
//   repoint <host:port>   remote only: re-target a replica server's
//                         upstream (the survivor-reconnect step)
//   quit / exit           leave (Ctrl-C and EOF behave the same)
//
// Shutdown discipline: Ctrl-C, SIGTERM, EOF, and quit all fall out of
// the input loop and checkpoint a durable runtime before exiting, so
// the next open recovers the exit state instead of replaying the WAL.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "runtime/access_runtime.h"
#include "query/query_language.h"
#include "service/client.h"
#include "service/shutdown.h"
#include "storage/policy_script.h"
#include "telemetry/metrics.h"

namespace {

using namespace ltam;  // NOLINT: example brevity.

/// Splits "host:port"; false on malformed input.
bool ParseEndpoint(const std::string& arg, std::string* host,
                   uint16_t* port) {
  size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= arg.size()) {
    return false;
  }
  *host = arg.substr(0, colon);
  try {
    int parsed = std::stoi(arg.substr(colon + 1));
    if (parsed <= 0 || parsed > 65535) return false;
    *port = static_cast<uint16_t>(parsed);
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  InstallShutdownSignalHandlers();

  std::string policy_path;
  MetricsRegistry metrics;
  RuntimeOptions options;
  options.metrics = &metrics;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--durable=", 0) == 0) {
      options.durable_dir = arg.substr(10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.num_shards = static_cast<uint32_t>(
          std::max(1, std::atoi(arg.c_str() + 9)));
    } else {
      policy_path = arg;
    }
  }

  Result<SystemState> state_or = policy_path.empty()
                                     ? ParsePolicyScript(DemoPolicyScript())
                                     : LoadPolicyScript(policy_path);
  if (!state_or.ok()) {
    std::fprintf(stderr, "policy error: %s\n",
                 state_or.status().ToString().c_str());
    return 1;
  }

  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(state_or).ValueOrDie(), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "runtime error: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<AccessRuntime> runtime = std::move(opened).ValueOrDie();

  size_t derived = 0;
  Status mutated = RegisterAndDeriveScriptedRules(runtime.get(), &derived);
  if (!mutated.ok()) {
    std::fprintf(stderr, "rule error: %s\n", mutated.ToString().c_str());
    return 1;
  }
  std::printf(
      "loaded: %zu locations, %zu subjects, %zu authorizations "
      "(%zu rule-derived)\n",
      runtime->graph().size(), runtime->profiles().size(),
      runtime->auth_db().active_size(), derived);

  QueryInterpreter interp(&runtime->query(), &runtime->graph(),
                          &runtime->profiles(), &runtime->movements(),
                          &runtime->auth_db());
  std::unique_ptr<ServiceClient> remote;

  std::printf("query> ");
  std::fflush(stdout);
  std::string line;
  while (!ShutdownRequested() && std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "disconnect") {
      if (remote != nullptr) {
        remote.reset();
        std::printf("back to the local runtime\n");
      }
    } else if (line.rfind("connect ", 0) == 0) {
      std::string host;
      uint16_t port = 0;
      if (!ParseEndpoint(line.substr(8), &host, &port)) {
        std::printf("error: usage: connect <host:port>\n");
      } else {
        Result<std::unique_ptr<ServiceClient>> connected =
            ServiceClient::Connect(host, port);
        if (connected.ok()) {
          remote = std::move(connected).ValueOrDie();
          std::printf("connected to %s:%u; statements now run remotely\n",
                      host.c_str(), port);
        } else {
          std::printf("error: %s\n",
                      connected.status().ToString().c_str());
        }
      }
    } else if (line == "stats") {
      if (remote != nullptr) {
        Result<RuntimeStats> stats = remote->Stats();
        if (stats.ok()) {
          std::printf("%s", RuntimeStatsToString(*stats).c_str());
          // A primary with attached replicas also exposes per-replica
          // shipped-vs-durable lag gauges; render them alongside. A
          // server without a registry refuses the scrape — that is not
          // a stats failure, so it stays silent.
          Result<MetricsSnapshot> snapshot = remote->Metrics();
          if (snapshot.ok()) {
            for (const auto& [name, value] : snapshot->gauges) {
              if (name.rfind("replication.replica.", 0) == 0) {
                std::printf("%s: %lld\n", name.c_str(),
                            static_cast<long long>(value));
              }
            }
          }
        } else {
          std::printf("error: %s\n", stats.status().ToString().c_str());
        }
      } else {
        std::printf("%s", RuntimeStatsToString(runtime->Stats()).c_str());
      }
    } else if (line == "metrics" || line == "metrics prom") {
      const bool prom = line == "metrics prom";
      if (remote != nullptr) {
        if (prom) {
          Result<std::string> text = remote->MetricsText();
          if (text.ok()) {
            std::printf("%s", text->c_str());
          } else {
            std::printf("error: %s\n", text.status().ToString().c_str());
          }
        } else {
          Result<MetricsSnapshot> snapshot = remote->Metrics();
          if (snapshot.ok()) {
            std::printf("%s", MetricsSummaryText(*snapshot).c_str());
          } else {
            std::printf("error: %s\n",
                        snapshot.status().ToString().c_str());
          }
        }
      } else {
        MetricsSnapshot snapshot = metrics.Snapshot();
        std::printf("%s", prom ? ToPrometheusText(snapshot).c_str()
                               : MetricsSummaryText(snapshot).c_str());
      }
    } else if (line == "checkpoint") {
      Status st = remote != nullptr ? remote->Checkpoint()
                                    : runtime->Checkpoint();
      std::printf("%s\n", st.ok() ? "checkpointed" : st.ToString().c_str());
    } else if (line == "promote") {
      if (remote == nullptr) {
        std::printf("error: promote needs a remote server (connect first)\n");
      } else {
        Result<uint64_t> epoch = remote->Promote();
        if (epoch.ok()) {
          std::printf("promoted to primary at replication epoch %llu\n",
                      static_cast<unsigned long long>(*epoch));
        } else {
          std::printf("error: %s\n", epoch.status().ToString().c_str());
        }
      }
    } else if (line.rfind("repoint ", 0) == 0) {
      std::string host;
      uint16_t port = 0;
      if (remote == nullptr) {
        std::printf("error: repoint needs a remote server (connect first)\n");
      } else if (!ParseEndpoint(line.substr(8), &host, &port)) {
        std::printf("error: usage: repoint <host:port>\n");
      } else {
        Status st = remote->Repoint(host, port);
        std::printf("%s\n", st.ok() ? "repointed" : st.ToString().c_str());
      }
    } else if (!line.empty()) {
      Result<QueryResult> result =
          remote != nullptr ? remote->Query(line) : interp.Run(line);
      if (result.ok()) {
        std::printf("%s", result->ToString().c_str());
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    }
    if (ShutdownRequested()) break;
    std::printf("query> ");
    std::fflush(stdout);
  }
  std::printf("\n");

  // Ctrl-C, SIGTERM, EOF, and quit all exit through here: a durable
  // runtime checkpoints so recovery restarts from this state.
  if (!CheckpointBeforeExit(runtime.get()).ok()) return 1;
  return 0;
}
