// Copyright 2026 The LTAM Authors.
// The user profile database (Figure 3).
//
// "The user profile database stores user profiles, which are used for
// creating authorizations, or deriving authorizations" — in particular the
// subject operators of authorization rules (Definition 5) such as
// Supervisor_Of query it. It stores subjects, key/value attributes, a
// supervisor relation, group membership, and role assignment.

#ifndef LTAM_PROFILE_USER_PROFILE_H_
#define LTAM_PROFILE_USER_PROFILE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace ltam {

/// Dense identifier of a subject (user).
using SubjectId = uint32_t;

/// Sentinel for "no subject".
inline constexpr SubjectId kInvalidSubject = UINT32_MAX;

/// A registered user and their profile attributes.
struct Subject {
  SubjectId id = kInvalidSubject;
  std::string name;
  SubjectId supervisor = kInvalidSubject;
  std::set<std::string> groups;
  std::set<std::string> roles;
  std::map<std::string, std::string> attributes;
};

/// In-memory indexed store of subjects and their relationships.
///
/// Mutations bump a version counter so the rule engine can detect profile
/// changes and re-derive authorizations (the paper's Example 1: when Alice
/// is assigned a different supervisor, the system automatically derives
/// the authorization for the new supervisor and revokes the old one).
class UserProfileDatabase {
 public:
  UserProfileDatabase() = default;

  // --- Subjects ------------------------------------------------------------

  /// Registers a subject with a globally unique name.
  Result<SubjectId> AddSubject(const std::string& name);

  /// Resolves a subject name.
  Result<SubjectId> Find(const std::string& name) const;

  /// True iff `id` denotes an existing subject.
  bool Exists(SubjectId id) const { return id < subjects_.size(); }

  /// Borrowing accessor; `id` must exist.
  const Subject& subject(SubjectId id) const;

  /// Number of registered subjects.
  size_t size() const { return subjects_.size(); }

  /// Every subject id, ascending.
  std::vector<SubjectId> AllSubjects() const;

  // --- Relationships -------------------------------------------------------

  /// Sets (or clears, with kInvalidSubject) the supervisor of `s`.
  /// Rejects self-supervision and supervision cycles.
  Status SetSupervisor(SubjectId s, SubjectId supervisor);

  /// The supervisor, or NotFound if `s` has none.
  Result<SubjectId> SupervisorOf(SubjectId s) const;

  /// Direct reports of `s`.
  std::vector<SubjectId> SubordinatesOf(SubjectId s) const;

  /// Transitive management chain above `s` (nearest first).
  std::vector<SubjectId> ManagementChain(SubjectId s) const;

  Status AddToGroup(SubjectId s, const std::string& group);
  Status RemoveFromGroup(SubjectId s, const std::string& group);
  std::vector<SubjectId> MembersOfGroup(const std::string& group) const;
  bool IsInGroup(SubjectId s, const std::string& group) const;

  Status AssignRole(SubjectId s, const std::string& role);
  Status RevokeRole(SubjectId s, const std::string& role);
  std::vector<SubjectId> SubjectsWithRole(const std::string& role) const;
  bool HasRole(SubjectId s, const std::string& role) const;

  /// Sets a free-form profile attribute (e.g. "department" -> "SCE").
  Status SetAttribute(SubjectId s, const std::string& key,
                      const std::string& value);
  /// Reads an attribute; NotFound when unset.
  Result<std::string> GetAttribute(SubjectId s, const std::string& key) const;

  // --- Change tracking -----------------------------------------------------

  /// Monotone counter bumped by every successful mutation.
  uint64_t version() const { return version_; }

 private:
  std::vector<Subject> subjects_;
  std::unordered_map<std::string, SubjectId> by_name_;
  std::unordered_map<std::string, std::set<SubjectId>> group_members_;
  std::unordered_map<std::string, std::set<SubjectId>> role_members_;
  uint64_t version_ = 0;
};

}  // namespace ltam

#endif  // LTAM_PROFILE_USER_PROFILE_H_
