// Copyright 2026 The LTAM Authors.

#include "query/movement_view.h"

#include <algorithm>

#include "util/logging.h"

namespace ltam {

// --- MovementDatabaseView ----------------------------------------------------

LocationId MovementDatabaseView::CurrentLocation(SubjectId s) const {
  return db_->CurrentLocation(s);
}

Result<Chronon> MovementDatabaseView::CurrentStaySince(SubjectId s) const {
  return db_->CurrentStaySince(s);
}

LocationId MovementDatabaseView::LocationAt(SubjectId s, Chronon t) const {
  return db_->LocationAt(s, t);
}

std::vector<SubjectId> MovementDatabaseView::OccupantsAt(LocationId l,
                                                         Chronon t) const {
  return db_->OccupantsAt(l, t);
}

std::vector<SubjectId> MovementDatabaseView::CurrentOccupants(
    LocationId l) const {
  return db_->CurrentOccupants(l);
}

std::vector<Stay> MovementDatabaseView::StaysOf(SubjectId s) const {
  return db_->StaysOf(s);
}

std::vector<Stay> MovementDatabaseView::StaysIn(LocationId l) const {
  return db_->StaysIn(l);
}

std::vector<MovementDatabase::Contact> MovementDatabaseView::ContactsOf(
    SubjectId s, const TimeInterval& window, Chronon min_overlap) const {
  return db_->ContactsOf(s, window, min_overlap);
}

size_t MovementDatabaseView::tracked_subjects() const {
  return db_->tracked_subjects();
}

size_t MovementDatabaseView::history_size() const {
  // Logical size: sealing/retention must not change the reported
  // history length (total_events == history().size() pre-seal).
  return static_cast<size_t>(db_->total_events());
}

// --- ShardedMovementView -----------------------------------------------------

ShardedMovementView::ShardedMovementView(
    std::vector<const MovementDatabase*> shards, ShardRouter route)
    : shards_(std::move(shards)), route_(std::move(route)) {
  LTAM_CHECK(!shards_.empty()) << "sharded view needs at least one shard";
  for (const MovementDatabase* db : shards_) {
    LTAM_CHECK(db != nullptr) << "sharded view over a null shard";
  }
}

const MovementDatabase* ShardedMovementView::OwnerShard(SubjectId s) const {
  if (!route_) return nullptr;
  uint32_t k = route_(s);
  LTAM_CHECK(k < shards_.size()) << "router mapped subject out of range";
  return shards_[k];
}

LocationId ShardedMovementView::CurrentLocation(SubjectId s) const {
  if (const MovementDatabase* owner = OwnerShard(s)) {
    return owner->CurrentLocation(s);
  }
  for (const MovementDatabase* db : shards_) {
    LocationId l = db->CurrentLocation(s);
    if (l != kInvalidLocation) return l;
  }
  return kInvalidLocation;
}

Result<Chronon> ShardedMovementView::CurrentStaySince(SubjectId s) const {
  if (const MovementDatabase* owner = OwnerShard(s)) {
    return owner->CurrentStaySince(s);
  }
  for (const MovementDatabase* db : shards_) {
    Result<Chronon> since = db->CurrentStaySince(s);
    if (since.ok()) return since;
  }
  return Status::NotFound("subject is not inside any location");
}

LocationId ShardedMovementView::LocationAt(SubjectId s, Chronon t) const {
  if (const MovementDatabase* owner = OwnerShard(s)) {
    return owner->LocationAt(s, t);
  }
  for (const MovementDatabase* db : shards_) {
    LocationId l = db->LocationAt(s, t);
    if (l != kInvalidLocation) return l;
  }
  return kInvalidLocation;
}

std::vector<SubjectId> ShardedMovementView::OccupantsAt(LocationId l,
                                                        Chronon t) const {
  std::vector<SubjectId> out;
  for (const MovementDatabase* db : shards_) {
    std::vector<SubjectId> part = db->OccupantsAt(l, t);
    out.insert(out.end(), part.begin(), part.end());
  }
  // Each shard already sorted + deduplicated its part; subjects are
  // disjoint across shards, so a global sort restores the contract.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SubjectId> ShardedMovementView::CurrentOccupants(
    LocationId l) const {
  std::vector<SubjectId> out;
  for (const MovementDatabase* db : shards_) {
    std::vector<SubjectId> part = db->CurrentOccupants(l);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Stay> ShardedMovementView::StaysOf(SubjectId s) const {
  if (const MovementDatabase* owner = OwnerShard(s)) {
    return owner->StaysOf(s);
  }
  for (const MovementDatabase* db : shards_) {
    std::vector<Stay> stays = db->StaysOf(s);
    if (!stays.empty()) return stays;
  }
  return {};
}

std::vector<Stay> ShardedMovementView::StaysIn(LocationId l) const {
  std::vector<Stay> out;
  for (const MovementDatabase* db : shards_) {
    std::vector<Stay> part = db->StaysIn(l);
    out.insert(out.end(), part.begin(), part.end());
  }
  // Per-shard lists are in per-shard arrival (enter-time) order; the
  // cross-subject interleaving of one global database is not
  // reconstructible, so normalize to (enter_time, subject, exit_time,
  // location) — the same order a sealed MovementDatabase emits, so
  // tiered and untiered deployments render identical lists.
  std::stable_sort(out.begin(), out.end(), [](const Stay& a, const Stay& b) {
    if (a.enter_time != b.enter_time) return a.enter_time < b.enter_time;
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.exit_time != b.exit_time) return a.exit_time < b.exit_time;
    return a.location < b.location;
  });
  return out;
}

std::vector<MovementDatabase::Contact> ShardedMovementView::ContactsOf(
    SubjectId s, const TimeInterval& window, Chronon min_overlap) const {
  // The probe subject's stays live on one shard; the co-located stays
  // live anywhere. For each of the probe's stays, fan the location scan
  // out over every shard — the same (stay x candidate-stay) pairs the
  // sequential ContactsOf enumerates, via the shared matcher.
  std::vector<MovementDatabase::Contact> out;
  for (const Stay& mine : StaysOf(s)) {
    for (const MovementDatabase* db : shards_) {
      // Per-database hot+cold scan — the same step the sequential
      // ContactsOf takes per stay, so the fan-out stays byte-identical.
      db->AppendContactsForStay(mine, window, min_overlap, &out);
    }
  }
  SortContacts(&out);
  return out;
}

size_t ShardedMovementView::tracked_subjects() const {
  size_t total = 0;
  for (const MovementDatabase* db : shards_) total += db->tracked_subjects();
  return total;
}

size_t ShardedMovementView::history_size() const {
  size_t total = 0;
  for (const MovementDatabase* db : shards_) {
    total += static_cast<size_t>(db->total_events());
  }
  return total;
}

}  // namespace ltam
