// Copyright 2026 The LTAM Authors.
//
// Ablation: the paper's Algorithm 1 as printed (sweep: every flagged
// location reprocessed per pass over L) against the FIFO worklist variant
// this library uses by default. Both compute the same fixpoint (tested in
// inaccessible_property_test); the benchmark quantifies the wasted
// rescans, reported via the `updates` counter and wall time.

#include <benchmark/benchmark.h>

#include "core/inaccessible.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "util/random.h"

namespace {

using namespace ltam;  // NOLINT: harness brevity.

struct Instance {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  SubjectId subject = kInvalidSubject;
};

Instance Make(uint32_t n, uint32_t degree, uint64_t seed) {
  Instance inst;
  Rng grng(seed);
  inst.graph = MakeRandomRegularGraph(n, degree, &grng).ValueOrDie();
  std::vector<SubjectId> subjects = GenerateSubjects(&inst.profiles, 1);
  inst.subject = subjects[0];
  AuthWorkloadOptions opt;
  opt.horizon = 400;
  opt.min_len = 100;
  opt.max_len = 300;
  opt.max_slack = 100;
  Rng rng(seed * 3 + 1);
  GenerateAuthorizations(inst.graph, subjects, opt, &rng, &inst.auth_db);
  return inst;
}

void Run(benchmark::State& state, InaccessibleAlgorithm algorithm) {
  Instance inst = Make(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(1)), 42);
  InaccessibleOptions options;
  options.algorithm = algorithm;
  size_t updates = 0;
  for (auto _ : state) {
    auto r = FindInaccessible(inst.graph, inst.graph.root(), inst.subject,
                              inst.auth_db, options);
    updates = r.ValueOrDie().updates;
    benchmark::DoNotOptimize(r);
  }
  state.counters["updates"] = static_cast<double>(updates);
}

void BM_Alg1_Sweep(benchmark::State& state) {
  Run(state, InaccessibleAlgorithm::kSweep);
}
void BM_Alg1_Worklist(benchmark::State& state) {
  Run(state, InaccessibleAlgorithm::kWorklist);
}

BENCHMARK(BM_Alg1_Sweep)
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({256, 8})
    ->Args({256, 16});
BENCHMARK(BM_Alg1_Worklist)
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({256, 8})
    ->Args({256, 16});

}  // namespace

BENCHMARK_MAIN();
