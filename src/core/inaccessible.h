// Copyright 2026 The LTAM Authors.
// The inaccessible-location finding problem (Section 6, Definitions 8-9,
// Algorithm 1).
//
// Given a subject, a set of authorizations, and a (multilevel) location
// graph, a location is *inaccessible* if no authorized route with access
// request duration [0, inf) reaches it from the entry locations. The
// algorithm associates with every location an overall grant time T^g and
// an overall departure time T^d (interval sets), seeds the entry
// locations from their authorizations, and propagates grant/departure
// windows to neighbors until a fixpoint; locations whose T^g stays null
// are inaccessible.

#ifndef LTAM_CORE_INACCESSIBLE_H_
#define LTAM_CORE_INACCESSIBLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/auth_database.h"
#include "graph/multilevel_graph.h"
#include "time/interval_set.h"

namespace ltam {

/// Which propagation strategy to run.
enum class InaccessibleAlgorithm : uint8_t {
  /// Faithful Algorithm 1: repeated sweeps over all flagged locations
  /// (the while/for structure of the paper, lines 14-34).
  kSweep = 0,
  /// FIFO worklist: processes exactly the flagged locations in flag
  /// order; same fixpoint, fewer rescans. This variant reproduces the
  /// row order of Table 2.
  kWorklist = 1,
};

/// Options for FindInaccessible.
struct InaccessibleOptions {
  InaccessibleAlgorithm algorithm = InaccessibleAlgorithm::kWorklist;
  /// Record a TraceRow after the initiation step and after every location
  /// update (the structure of Table 2). Costs memory; off by default.
  bool capture_trace = false;
  /// Section 6 remark: "an entry location is inaccessible to a subject s
  /// if it has null exit duration for its authorization." Algorithm 1 as
  /// printed leaves such an entry accessible (its T^g is non-null); with
  /// this flag the textual remark wins and entry locations with no
  /// authorized exit are reported inaccessible. Off by default
  /// (algorithm-faithful).
  bool strict_entry_exit = false;
};

/// Per-location state snapshot used in traces (one Table 2 cell group).
struct LocationTimeState {
  LocationId location = kInvalidLocation;
  bool flag = false;
  IntervalSet grant;      ///< T^g.
  IntervalSet departure;  ///< T^d.
};

/// One row of the Table 2 trace: the state of every location after a
/// step ("Initiation", "Update A", ...).
struct TraceRow {
  std::string label;
  std::vector<LocationTimeState> states;
};

/// Result of the analysis.
struct InaccessibleResult {
  /// Locations with null overall grant time, ascending by id.
  std::vector<LocationId> inaccessible;
  /// Final T^g per analyzed location (parallel to `analyzed`).
  std::vector<LocationTimeState> final_states;
  /// The analyzed primitive locations, ascending by id.
  std::vector<LocationId> analyzed;
  /// Location-update steps executed (measures convergence).
  size_t updates = 0;
  /// Trace rows (only when capture_trace).
  std::vector<TraceRow> trace;

  /// True iff `l` was found inaccessible.
  bool IsInaccessible(LocationId l) const;

  /// Renders the trace in the layout of Table 2.
  std::string TraceToString(const MultilevelLocationGraph& graph) const;
};

/// Solves the inaccessible location finding problem (Definition 9) for
/// `subject` over the primitive locations of `scope` (a composite; use
/// graph.root() for the whole site). Entry seeds are the entry primitives
/// of `scope`; adjacency is the flattened complex-route adjacency
/// restricted to the scope.
Result<InaccessibleResult> FindInaccessible(
    const MultilevelLocationGraph& graph, LocationId scope,
    SubjectId subject, const AuthorizationDatabase& auth_db,
    const InaccessibleOptions& options = {});

/// Incremental driver for the inaccessible-location analysis across many
/// subjects.
///
/// The fixpoint of Algorithm 1 is per-subject: only `subject`'s
/// authorizations feed the seeds and update steps. A production control
/// station re-answers "which locations can s reach?" for millions of
/// subjects after every policy change; recomputing every subject's
/// fixpoint is wasted work when a mutation touched only a few. This
/// analyzer caches each subject's result tagged with
/// AuthorizationDatabase::SubjectVersion and re-runs the fixpoint only
/// for subjects whose authorizations actually changed (added, revoked, or
/// re-derived) since their cached run.
///
/// Not thread-safe; drive it from the control thread between batches.
class IncrementalInaccessibleAnalyzer {
 public:
  /// Borrows the graph and database; they must outlive the analyzer.
  IncrementalInaccessibleAnalyzer(const MultilevelLocationGraph* graph,
                                  LocationId scope,
                                  const AuthorizationDatabase* auth_db,
                                  InaccessibleOptions options = {});

  /// Result for `subject`: cached when fresh, recomputed when the
  /// subject's authorizations changed. The reference is valid until the
  /// next Analyze/Refresh/InvalidateAll call for that subject.
  Result<const InaccessibleResult*> Analyze(SubjectId subject);

  /// Outcome of a Refresh sweep.
  struct RefreshReport {
    size_t recomputed = 0;  ///< Subjects whose fixpoint was re-run.
    size_t reused = 0;      ///< Subjects served from cache.
  };

  /// Ensures every subject in `subjects` is fresh, re-seeding only the
  /// changed ones. Typical call after a rule-engine derivation pass.
  Result<RefreshReport> Refresh(const std::vector<SubjectId>& subjects);

  /// Drops every cached result (e.g. after the graph itself changed,
  /// which per-subject versions do not track).
  void InvalidateAll() { cache_.clear(); }

  /// Cached subject count (observability).
  size_t cached_subjects() const { return cache_.size(); }

 private:
  struct Entry {
    uint64_t version = 0;
    InaccessibleResult result;
  };

  /// Returns the fresh cache entry for `subject`, recomputing if stale;
  /// sets `*recomputed` accordingly when non-null.
  Result<const InaccessibleResult*> Freshen(SubjectId subject,
                                            bool* recomputed);

  const MultilevelLocationGraph* graph_;
  LocationId scope_;
  const AuthorizationDatabase* auth_db_;
  InaccessibleOptions options_;
  std::unordered_map<SubjectId, Entry> cache_;
};

/// Lemma-1-based hierarchical pruning: runs the analysis locally inside
/// every composite (considering only that composite's entry locations)
/// and reports locations that are *provably* inaccessible globally
/// because they are inaccessible within their own composite. A superset
/// check against the full analysis is cheap: every location returned here
/// is inaccessible in FindInaccessible's answer, but not conversely.
Result<std::vector<LocationId>> HierarchicalInaccessiblePrune(
    const MultilevelLocationGraph& graph, SubjectId subject,
    const AuthorizationDatabase& auth_db);

}  // namespace ltam

#endif  // LTAM_CORE_INACCESSIBLE_H_
