// Copyright 2026 The LTAM Authors.

#include "time/periodic.h"

#include <algorithm>

#include "util/string_util.h"

namespace ltam {

Result<PeriodicExpression> PeriodicExpression::Make(
    Chronon period, Chronon anchor, std::vector<TimeInterval> offsets) {
  if (period <= 0) {
    return Status::InvalidArgument("periodic expression period must be > 0");
  }
  if (offsets.empty()) {
    return Status::InvalidArgument(
        "periodic expression needs at least one offset window");
  }
  for (const TimeInterval& iv : offsets) {
    if (!iv.valid()) {
      return Status::InvalidArgument("invalid offset window " +
                                     iv.ToString());
    }
    if (iv.start() < 0 || iv.end() >= period) {
      return Status::InvalidArgument(
          "offset window " + iv.ToString() + " must lie within [0, " +
          std::to_string(period - 1) + "]");
    }
  }
  std::sort(offsets.begin(), offsets.end());
  return PeriodicExpression(period, anchor, std::move(offsets));
}

bool PeriodicExpression::Contains(Chronon t) const {
  if (t == kChrononMax || t == kChrononMin) return false;
  Chronon rel = (t - anchor_) % period_;
  if (rel < 0) rel += period_;
  for (const TimeInterval& iv : offsets_) {
    if (iv.Contains(rel)) return true;
  }
  return false;
}

Result<IntervalSet> PeriodicExpression::ExpandWithin(
    const TimeInterval& horizon) const {
  if (!horizon.valid()) return IntervalSet();
  if (horizon.start() == kChrononMin || horizon.end() == kChrononMax) {
    return Status::InvalidArgument(
        "cannot expand a periodic expression over an unbounded horizon");
  }
  IntervalSet out;
  // First period whose windows could touch the horizon.
  Chronon rel = (horizon.start() - anchor_) % period_;
  if (rel < 0) rel += period_;
  Chronon period_start = horizon.start() - rel;
  for (Chronon base = period_start; base <= horizon.end();
       base = ChrononAdd(base, period_)) {
    for (const TimeInterval& iv : offsets_) {
      TimeInterval shifted(ChrononAdd(base, iv.start()),
                           ChrononAdd(base, iv.end()));
      std::optional<TimeInterval> clipped = shifted.Intersect(horizon);
      if (clipped.has_value()) out.Add(*clipped);
    }
    if (base > kChrononMax - period_) break;  // Avoid overflow wraparound.
  }
  return out;
}

std::string PeriodicExpression::ToString() const {
  std::string out = "every " + std::to_string(period_) + " from " +
                    std::to_string(anchor_) + " in {";
  for (size_t i = 0; i < offsets_.size(); ++i) {
    if (i > 0) out += ", ";
    out += offsets_[i].ToString();
  }
  out += "}";
  return out;
}

Result<PeriodicExpression> PeriodicExpression::Parse(
    const std::string& text) {
  std::string t = Trim(text);
  if (!StartsWith(t, "every ")) {
    return Status::ParseError(
        "periodic expression must start with 'every': '" + t + "'");
  }
  size_t from_pos = t.find(" from ");
  size_t in_pos = t.find(" in ");
  if (from_pos == std::string::npos || in_pos == std::string::npos ||
      in_pos < from_pos) {
    return Status::ParseError(
        "periodic expression must look like 'every P from A in {...}'");
  }
  LTAM_ASSIGN_OR_RETURN(int64_t period,
                        ParseInt64(t.substr(6, from_pos - 6)));
  LTAM_ASSIGN_OR_RETURN(
      int64_t anchor, ParseInt64(t.substr(from_pos + 6, in_pos - from_pos - 6)));
  LTAM_ASSIGN_OR_RETURN(IntervalSet windows,
                        IntervalSet::Parse(t.substr(in_pos + 4)));
  if (windows.empty()) {
    return Status::ParseError("periodic expression has no windows");
  }
  return Make(period, anchor, windows.intervals());
}

}  // namespace ltam
