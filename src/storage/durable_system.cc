// Copyright 2026 The LTAM Authors.

#include "storage/durable_system.h"

#include <sys/stat.h>

#include <cstdio>

#include "engine/sharded_engine.h"
#include "storage/event_log.h"
#include "util/string_util.h"

namespace ltam {

namespace {

constexpr const char kSnapshotFile[] = "state.snap";
constexpr const char kWalFile[] = "events.wal";

std::string SnapPath(const std::string& dir) {
  return dir + "/" + kSnapshotFile;
}
std::string WalPath(const std::string& dir) { return dir + "/" + kWalFile; }

}  // namespace

DurableSystem::DurableSystem(std::string dir, SystemState state,
                             EngineOptions engine_options)
    : dir_(std::move(dir)),
      state_(std::move(state)),
      engine_options_(engine_options) {}

const char* DurableSystem::SnapshotFileName() { return kSnapshotFile; }
const char* DurableSystem::WalFileName() { return kWalFile; }

Result<std::unique_ptr<DurableSystem>> DurableSystem::Open(
    const std::string& dir, SystemState initial,
    EngineOptions engine_options) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("'" + dir + "' is not a directory");
  }
  std::unique_ptr<DurableSystem> sys;
  if (FileExists(SnapPath(dir))) {
    LTAM_ASSIGN_OR_RETURN(SystemState recovered, LoadSnapshot(SnapPath(dir)));
    sys.reset(new DurableSystem(dir, std::move(recovered), engine_options));
  } else {
    sys.reset(new DurableSystem(dir, std::move(initial), engine_options));
  }
  LTAM_RETURN_IF_ERROR(sys->InitEngine());
  sys->RebuildActiveStays();
  if (FileExists(WalPath(dir))) {
    // Drop a torn final record before replaying; otherwise the next
    // append would merge with it into one garbage line.
    LTAM_ASSIGN_OR_RETURN(size_t dropped, TruncateTornWalTail(WalPath(dir)));
    (void)dropped;
    LTAM_RETURN_IF_ERROR(sys->ReplayLogTail());
  }
  LTAM_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(WalPath(dir)));
  sys->wal_ = std::make_unique<WalWriter>(std::move(wal));
  return sys;
}

Status DurableSystem::InitEngine() {
  engine_ = std::make_unique<AccessControlEngine>(
      &state_.graph, &state_.auth_db, &state_.movements, &state_.profiles,
      engine_options_);
  return Status::OK();
}

void DurableSystem::RebuildActiveStays() {
  ResumeOpenStays(engine_.get(), state_.movements, state_.auth_db,
                  state_.profiles.AllSubjects());
}

Status DurableSystem::ReplayLogTail() {
  replaying_ = true;
  // The shared logged-event codec (storage/event_log.h) decodes and
  // re-applies each record; denials repeat deterministically.
  Status st = ReplayWal(WalPath(dir_), [this](const Record& rec) -> Status {
    return ApplyLoggedRecord(engine_.get(), rec);
  });
  replaying_ = false;
  return st;
}

Status DurableSystem::Log(const Record& record) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("runtime is not open");
  }
  Status appended = wal_->Append(record);
  if (!appended.ok()) {
    ++append_failures_;
    return appended;
  }
  ++wal_events_;
  ++total_appended_;
  return Status::OK();
}

Result<Decision> DurableSystem::Apply(const AccessEvent& event) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(event)));
  return ApplyAccessEvent(engine_.get(), event);
}

Result<Decision> DurableSystem::RequestEntry(Chronon t, SubjectId s,
                                             LocationId l) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(AccessEvent::Entry(t, s, l))));
  return engine_->RequestEntry(t, s, l);
}

Status DurableSystem::RequestExit(Chronon t, SubjectId s) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(AccessEvent::Exit(t, s))));
  return engine_->RequestExit(t, s);
}

Status DurableSystem::ObservePresence(Chronon t, SubjectId s, LocationId l) {
  LTAM_RETURN_IF_ERROR(Log(EncodeEventRecord(AccessEvent::Observe(t, s, l))));
  return engine_->ObservePresence(t, s, l);
}

Status DurableSystem::Tick(Chronon t) {
  LTAM_RETURN_IF_ERROR(Log(EncodeTickRecord(t)));
  engine_->Tick(t);
  return Status::OK();
}

Status DurableSystem::Sync() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("runtime is not open");
  }
  Status synced = wal_->Sync();
  if (!synced.ok()) {
    ++sync_failures_;
    return synced;
  }
  total_synced_ = total_appended_;
  return Status::OK();
}

Status DurableSystem::Checkpoint() {
  LTAM_RETURN_IF_ERROR(SaveSnapshot(state_, SnapPath(dir_)));
  // Truncate the log: everything up to now lives in the snapshot.
  wal_.reset();
  if (std::remove(WalPath(dir_).c_str()) != 0 &&
      FileExists(WalPath(dir_))) {
    return Status::IOError("cannot truncate WAL");
  }
  LTAM_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(WalPath(dir_)));
  wal_ = std::make_unique<WalWriter>(std::move(wal));
  wal_events_ = 0;
  // The snapshot supersedes the log: everything accepted is durable.
  total_synced_ = total_appended_;
  return Status::OK();
}

}  // namespace ltam
