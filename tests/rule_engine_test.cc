// Copyright 2026 The LTAM Authors.
// Tests for rule derivation — Examples 1-3 of Section 4 verbatim, plus
// re-derivation on profile change and WHENEVERNOT multi-interval rules.

#include "core/rules/rule_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

class RuleEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(graph_, MakeNtuCampusGraph());
    ASSERT_OK_AND_ASSIGN(alice_, profiles_.AddSubject("Alice"));
    ASSERT_OK_AND_ASSIGN(bob_, profiles_.AddSubject("Bob"));
    ASSERT_OK(profiles_.SetSupervisor(alice_, bob_));
    ASSERT_OK_AND_ASSIGN(cais_, graph_.Find("CAIS"));
    // a1: ([5, 20], [15, 50], (Alice, CAIS), 2).
    ASSERT_OK_AND_ASSIGN(
        LocationTemporalAuthorization a1,
        LocationTemporalAuthorization::Make(
            TimeInterval(5, 20), TimeInterval(15, 50),
            LocationAuthorization{alice_, cais_}, 2));
    a1_ = auth_db_.Add(a1);
    engine_ = std::make_unique<RuleEngine>(&auth_db_, &profiles_, &graph_);
  }

  /// Active derived authorizations of a rule.
  std::vector<LocationTemporalAuthorization> DerivedOf(RuleId rule) {
    std::vector<LocationTemporalAuthorization> out;
    for (AuthId id : auth_db_.Active()) {
      const AuthRecord& rec = auth_db_.record(id);
      if (rec.origin == AuthOrigin::kDerived && rec.source_rule == rule) {
        out.push_back(rec.auth);
      }
    }
    return out;
  }

  MultilevelLocationGraph graph_;
  UserProfileDatabase profiles_;
  AuthorizationDatabase auth_db_;
  std::unique_ptr<RuleEngine> engine_;
  SubjectId alice_ = kInvalidSubject;
  SubjectId bob_ = kInvalidSubject;
  LocationId cais_ = kInvalidLocation;
  AuthId a1_ = kInvalidAuth;
};

TEST_F(RuleEngineTest, Example1SupervisorDerivation) {
  // r1: <7 : a1, (WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2)>.
  AuthorizationRule r1;
  r1.valid_from = 7;
  r1.base = a1_;
  r1.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  r1.label = "r1";
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(r1));
  ASSERT_OK_AND_ASSIGN(DerivationReport report, engine_->DeriveAll());
  EXPECT_EQ(report.derived, 1u);
  // Derived a2: ([5, 20], [15, 50], (Bob, CAIS), 2).
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].subject(), bob_);
  EXPECT_EQ(derived[0].location(), cais_);
  EXPECT_EQ(derived[0].entry_duration(), TimeInterval(5, 20));
  EXPECT_EQ(derived[0].exit_duration(), TimeInterval(15, 50));
  EXPECT_EQ(derived[0].max_entries(), 2);
  // Bob can now enter CAIS at t=10.
  EXPECT_TRUE(auth_db_.CheckAccess(10, bob_, cais_).granted);
}

TEST_F(RuleEngineTest, Example1RederivationOnNewSupervisor) {
  AuthorizationRule r1;
  r1.valid_from = 7;
  r1.base = a1_;
  r1.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(r1));
  ASSERT_OK(engine_->DeriveAll().status());
  EXPECT_TRUE(auth_db_.CheckAccess(10, bob_, cais_).granted);

  // "If Alice is assigned a different supervisor... the system is able to
  // automatically derive the authorizations for the new supervisor while
  // the authorization for Bob will be revoked."
  ASSERT_OK_AND_ASSIGN(SubjectId carol, profiles_.AddSubject("Carol"));
  ASSERT_OK(profiles_.SetSupervisor(alice_, carol));
  ASSERT_OK_AND_ASSIGN(DerivationReport report,
                       engine_->RefreshIfProfilesChanged());
  EXPECT_EQ(report.revoked, 1u);
  EXPECT_EQ(report.derived, 1u);
  EXPECT_FALSE(auth_db_.CheckAccess(10, bob_, cais_).granted);
  EXPECT_TRUE(auth_db_.CheckAccess(10, carol, cais_).granted);
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].subject(), carol);
  // No further profile change -> refresh is a no-op.
  ASSERT_OK_AND_ASSIGN(DerivationReport noop,
                       engine_->RefreshIfProfilesChanged());
  EXPECT_EQ(noop.rules_evaluated, 0u);
}

TEST_F(RuleEngineTest, Example2IntersectionClipsEntry) {
  // r2: <7 : a1, (INTERSECTION([10, 30]), WHENEVER, Supervisor_Of, CAIS,
  // 2)> derives a3: ([10, 20], [15, 50], (Bob, CAIS), 2).
  AuthorizationRule r2;
  r2.valid_from = 7;
  r2.base = a1_;
  r2.op_entry = TemporalOperatorPtr(new IntersectionOp(TimeInterval(10, 30)));
  r2.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(r2));
  ASSERT_OK(engine_->DeriveAll().status());
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].entry_duration(), TimeInterval(10, 20));
  EXPECT_EQ(derived[0].exit_duration(), TimeInterval(15, 50));
  EXPECT_EQ(derived[0].subject(), bob_);
  EXPECT_EQ(derived[0].max_entries(), 2);
}

TEST_F(RuleEngineTest, Example3AllRouteFrom) {
  // r3: <7 : a1, (WHENEVER, WHENEVER, -, all_route_from(SCE.GO), 2)>.
  AuthorizationRule r3;
  r3.valid_from = 7;
  r3.base = a1_;
  r3.op_location = LocationOperatorPtr(new AllRouteFromOp("SCE.GO"));
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(r3));
  ASSERT_OK(engine_->DeriveAll().status());
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  // "An authorization will be derived for each of these locations":
  // {SCE.GO, SCE.SectionA, SCE.SectionB, SCE.SectionC, CHIPES}.
  ASSERT_EQ(derived.size(), 5u);
  std::vector<std::string> names;
  for (const auto& auth : derived) {
    EXPECT_EQ(auth.subject(), alice_);
    EXPECT_EQ(auth.entry_duration(), TimeInterval(5, 20));
    names.push_back(graph_.location(auth.location()).name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names,
            (std::vector<std::string>{"CHIPES", "SCE.GO", "SCE.SectionA",
                                      "SCE.SectionB", "SCE.SectionC"}));
}

TEST_F(RuleEngineTest, WheneverNotDerivesTwoAuthorizations) {
  AuthorizationRule rule;
  rule.valid_from = 0;
  rule.base = a1_;
  rule.op_entry = TemporalOperatorPtr(new WheneverNotOp());
  rule.op_exit = TemporalOperatorPtr(new WheneverNotOp());
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(rule));
  ASSERT_OK(engine_->DeriveAll().status());
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  // Entry pieces: [0,4] and [21,inf]; exit pieces: [0,14] and [51,inf].
  // Definition-4 filtering keeps ([0,4],[0->0,14]) and ([21,inf],[51,inf])
  // and ([0,4],[51,inf]); ([21,inf],[0,14]) dies (exit ends before entry).
  ASSERT_EQ(derived.size(), 3u);
  bool saw_early = false;
  bool saw_late = false;
  for (const auto& auth : derived) {
    if (auth.entry_duration() == TimeInterval(0, 4) &&
        auth.exit_duration() == TimeInterval(0, 14)) {
      saw_early = true;
    }
    if (auth.entry_duration() == TimeInterval(21, kChrononMax) &&
        auth.exit_duration() == TimeInterval(51, kChrononMax)) {
      saw_late = true;
    }
  }
  EXPECT_TRUE(saw_early);
  EXPECT_TRUE(saw_late);
}

TEST_F(RuleEngineTest, CountExpression) {
  AuthorizationRule rule;
  rule.valid_from = 0;
  rule.base = a1_;
  ASSERT_OK_AND_ASSIGN(rule.exp_n, CountExpr::Parse("n*3"));
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(rule));
  ASSERT_OK(engine_->DeriveAll().status());
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].max_entries(), 6);
}

TEST_F(RuleEngineTest, UnsetOperatorsCopyBase) {
  // "If any of the rule elements is not specified in a rule, the default
  // value will be copied from the base authorization."
  AuthorizationRule rule;
  rule.valid_from = 0;
  rule.base = a1_;
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(rule));
  ASSERT_OK(engine_->DeriveAll().status());
  std::vector<LocationTemporalAuthorization> derived = DerivedOf(rid);
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0], auth_db_.record(a1_).auth);
}

TEST_F(RuleEngineTest, RevokedBaseDerivesNothing) {
  AuthorizationRule rule;
  rule.valid_from = 0;
  rule.base = a1_;
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(rule));
  ASSERT_OK(auth_db_.Revoke(a1_));
  ASSERT_OK(engine_->DeriveAll().status());
  EXPECT_TRUE(DerivedOf(rid).empty());
}

TEST_F(RuleEngineTest, AddRuleValidatesBase) {
  AuthorizationRule rule;
  rule.base = 999;
  EXPECT_TRUE(engine_->AddRule(rule).status().IsNotFound());
}

TEST_F(RuleEngineTest, RemoveRuleRevokesDerivations) {
  AuthorizationRule rule;
  rule.valid_from = 0;
  rule.base = a1_;
  rule.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(rule));
  ASSERT_OK(engine_->DeriveAll().status());
  EXPECT_TRUE(auth_db_.CheckAccess(10, bob_, cais_).granted);
  ASSERT_OK(engine_->RemoveRule(rid));
  EXPECT_FALSE(auth_db_.CheckAccess(10, bob_, cais_).granted);
  EXPECT_TRUE(engine_->RemoveRule(rid).IsNotFound());
}

TEST_F(RuleEngineTest, DeriveAllIsIdempotent) {
  AuthorizationRule rule;
  rule.valid_from = 0;
  rule.base = a1_;
  rule.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  ASSERT_OK_AND_ASSIGN(RuleId rid, engine_->AddRule(rule));
  ASSERT_OK(engine_->DeriveAll().status());
  ASSERT_OK(engine_->DeriveAll().status());
  ASSERT_OK(engine_->DeriveAll().status());
  EXPECT_EQ(DerivedOf(rid).size(), 1u);
}

TEST_F(RuleEngineTest, RuleToString) {
  AuthorizationRule rule;
  rule.valid_from = 7;
  rule.base = a1_;
  rule.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
  EXPECT_EQ(rule.ToString(),
            "<7 : (a#0, (WHENEVER, WHENEVER, Supervisor_Of, Identity, n))>");
}

}  // namespace
}  // namespace ltam
