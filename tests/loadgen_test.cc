// Copyright 2026 The LTAM Authors.
// The open-loop load generator: seeded arrival schedules are
// deterministic (the no-coordinated-omission contract starts with a
// reproducible schedule), a run against a live loopback server sends
// exactly the scenario's events with reproducible counters, an arrival
// rate far above server capacity is answered with per-connection quota
// refusals — never a deadlock or an unbounded queue — and the harness
// shuts down cleanly enough to run back-to-back against the same
// runtime. Part of the TSan CI job: N worker threads with pipelined
// clients against the epoll server exercise the full concurrent
// surface.

#include "loadgen/loadgen.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/access_runtime.h"
#include "service/server.h"
#include "sim/workload.h"
#include "test_util.h"

namespace ltam {
namespace {

TEST(ArrivalScheduleTest, DeterministicNondecreasingAtTargetRate) {
  const std::vector<uint64_t> a =
      BuildArrivalScheduleNs(5000, 2000.0, 1.0, 0, 42);
  const std::vector<uint64_t> b =
      BuildArrivalScheduleNs(5000, 2000.0, 1.0, 0, 42);
  ASSERT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b) << "same arguments must give the identical schedule";
  for (size_t i = 1; i < a.size(); ++i) ASSERT_GE(a[i], a[i - 1]);
  // Mean gap of an exponential(rate) process: 1/rate. 5000 draws keep
  // the sample mean within a few percent.
  const double mean_gap_ns =
      static_cast<double>(a.back()) / static_cast<double>(a.size() - 1);
  EXPECT_NEAR(mean_gap_ns, 1e9 / 2000.0, 0.1 * 1e9 / 2000.0);
  // A different seed is a different schedule.
  EXPECT_NE(a, BuildArrivalScheduleNs(5000, 2000.0, 1.0, 0, 43));
}

TEST(ArrivalScheduleTest, BurstShapeConfinesArrivalsToDutyWindow) {
  const double duty = 0.25;
  const uint64_t period_ms = 100;
  const std::vector<uint64_t> sched =
      BuildArrivalScheduleNs(4000, 8000.0, duty, period_ms, 7);
  ASSERT_EQ(sched.size(), 4000u);
  const uint64_t period_ns = period_ms * 1'000'000ull;
  const uint64_t on_ns =
      static_cast<uint64_t>(static_cast<double>(period_ns) * duty);
  for (size_t i = 0; i < sched.size(); ++i) {
    ASSERT_LE(sched[i] % period_ns, on_ns + 1)
        << "arrival " << i << " lands outside the duty window";
    if (i > 0) ASSERT_GE(sched[i], sched[i - 1]);
  }
  // The mean rate over whole periods must stay at the target: the
  // last arrival of a rate-8000 schedule of 4000 events lands near
  // 0.5s regardless of the burst shape.
  EXPECT_NEAR(static_cast<double>(sched.back()) / 1e9, 0.5, 0.15);
}

TEST(LoadGenTest, RejectsMismatchedOptions) {
  LoadScenario scenario =
      GenerateLoadScenario(ScenarioFamily::kSurge, ScenarioOptions{})
          .ValueOrDie();
  LoadGenOptions options;  // connections=1, scenario default streams=1.
  options.connections = 3;
  EXPECT_EQ(RunLoad(scenario, options).status().code(),
            StatusCode::kInvalidArgument);
  options.connections = 1;
  options.rate = 0;
  EXPECT_EQ(RunLoad(scenario, options).status().code(),
            StatusCode::kInvalidArgument);
}

/// Boots `scenario`'s world on an in-process server and runs the load
/// generator against it.
Result<LoadReport> RunAgainstLoopback(const LoadScenario& scenario,
                                      LoadGenOptions options,
                                      ServerOptions server_options = {}) {
  SystemState initial = scenario.initial;
  RuntimeOptions runtime_options;
  runtime_options.engine = scenario.engine;
  LTAM_ASSIGN_OR_RETURN(std::unique_ptr<AccessRuntime> rt,
                        AccessRuntime::Open(std::move(initial),
                                            runtime_options));
  ServiceServer server(rt.get(), server_options);
  LTAM_RETURN_IF_ERROR(server.Start());
  options.port = server.bound_port();
  Result<LoadReport> report = RunLoad(scenario, options);
  server.Stop();
  return report;
}

TEST(LoadGenTest, SeededRunsAreReproducibleAndFullyAccounted) {
  ScenarioOptions so;
  so.subjects = 24;
  so.streams = 2;
  so.total_events = 600;
  so.events_per_frame = 16;
  LoadScenario scenario =
      GenerateLoadScenario(ScenarioFamily::kContactSweep, so).ValueOrDie();
  ASSERT_GT(scenario.queries.size(), 0u);

  LoadGenOptions options;
  options.connections = 2;
  options.rate = 50'000.0;  // Finish fast; counts don't depend on rate.
  options.schedule_seed = 9;

  LoadReport first = RunAgainstLoopback(scenario, options).ValueOrDie();
  LoadReport second = RunAgainstLoopback(scenario, options).ValueOrDie();

  // The deterministic side of an open-loop run: what was sent.
  EXPECT_EQ(first.events_sent, scenario.total_events);
  EXPECT_EQ(first.frames_sent, second.frames_sent);
  EXPECT_EQ(first.events_sent, second.events_sent);
  EXPECT_EQ(first.queries_sent, second.queries_sent);
  EXPECT_GT(first.queries_sent, 0u) << "contact sweep must mix in queries";
  EXPECT_GT(first.query_latency.count(), 0u);

  // Every sent event is answered exactly once: admitted with a
  // decision or refused at a quota.
  for (const LoadReport* r : {&first, &second}) {
    EXPECT_EQ(r->events_admitted + r->quota_refused_events, r->events_sent);
    EXPECT_EQ(r->grants + r->denials, r->events_admitted);
    EXPECT_EQ(r->ingest_latency.count() + r->quota_refused_frames,
              r->frames_sent);
  }
}

TEST(LoadGenTest, ChurnScenarioIssuesCheckpointBarriers) {
  ScenarioOptions so;
  so.subjects = 24;
  so.streams = 2;
  so.total_events = 600;
  so.events_per_frame = 16;
  so.mutate_every_frames = 4;
  LoadScenario scenario =
      GenerateLoadScenario(ScenarioFamily::kPolicyChurn, so).ValueOrDie();
  ASSERT_GT(scenario.mutations.size(), 0u);

  LoadGenOptions options;
  options.connections = 2;
  options.rate = 50'000.0;
  LoadReport report = RunAgainstLoopback(scenario, options).ValueOrDie();
  EXPECT_GT(report.checkpoints, 0u)
      << "churn runs must exercise the control-plane barrier";
  EXPECT_EQ(report.events_admitted + report.quota_refused_events,
            report.events_sent);
}

TEST(LoadGenTest, ReplicationScenarioSplitsReadsOntoQueryEndpoint) {
  ScenarioOptions so;
  so.subjects = 24;
  so.streams = 2;
  so.total_events = 600;
  so.events_per_frame = 16;
  LoadScenario scenario =
      GenerateLoadScenario(ScenarioFamily::kReplication, so).ValueOrDie();
  ASSERT_GT(scenario.queries.size(), 0u);
  ASSERT_TRUE(scenario.mutations.empty());

  SystemState initial = scenario.initial;
  RuntimeOptions runtime_options;
  runtime_options.engine = scenario.engine;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<AccessRuntime> rt,
      AccessRuntime::Open(std::move(initial), runtime_options));
  ServiceServer server(rt.get(), {});
  ASSERT_OK(server.Start());

  LoadGenOptions options;
  options.connections = 2;
  options.rate = 50'000.0;
  options.port = server.bound_port();
  // The same server stands in for the replica: what this test pins
  // down is the split itself — queries travel over dedicated
  // connections and overlap the pipelined ingest stream instead of
  // draining it. (ci.sh's replication job points query_host at a real
  // replica.)
  options.query_host = "127.0.0.1";
  options.query_port = server.bound_port();
  ASSERT_OK_AND_ASSIGN(LoadReport report, RunLoad(scenario, options));
  server.Stop();

  EXPECT_GT(report.queries_sent, 0u)
      << "the replication family must mix in reads";
  EXPECT_EQ(report.query_latency.count(), report.queries_sent);
  EXPECT_EQ(report.events_sent, scenario.total_events);
  EXPECT_EQ(report.events_admitted + report.quota_refused_events,
            report.events_sent);
  EXPECT_EQ(report.grants + report.denials, report.events_admitted);

  // A read endpoint needs both halves of its address.
  options.query_port = 0;
  EXPECT_EQ(RunLoad(scenario, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LoadGenTest, ReportHistogramsSurviveTheJsonBucketDump) {
  // ltam_load --json-out writes each report histogram as
  // (count, sum, min, max, non-zero buckets); two split runs merged
  // from their dumps must equal the one-shot aggregate, percentile for
  // percentile — the offline-merge contract.
  ScenarioOptions so;
  so.subjects = 24;
  so.streams = 2;
  so.total_events = 600;
  so.events_per_frame = 16;
  LoadScenario scenario =
      GenerateLoadScenario(ScenarioFamily::kContactSweep, so).ValueOrDie();
  LoadGenOptions options;
  options.connections = 2;
  options.rate = 50'000.0;
  options.schedule_seed = 31;
  LoadReport first = RunAgainstLoopback(scenario, options).ValueOrDie();
  options.schedule_seed = 37;
  LoadReport second = RunAgainstLoopback(scenario, options).ValueOrDie();
  ASSERT_GT(first.ingest_latency.count(), 0u);
  ASSERT_GT(second.ingest_latency.count(), 0u);

  // What a consumer of two JSON reports reconstructs...
  auto rebuild = [](const LatencyHistogram& h) {
    return LatencyHistogram::FromParts(h.count(), h.sum(), h.min(), h.max(),
                                       h.NonZeroBuckets())
        .ValueOrDie();
  };
  LatencyHistogram merged = rebuild(first.ingest_latency);
  merged.Merge(rebuild(second.ingest_latency));

  // ...equals merging the live histograms directly.
  LatencyHistogram reference = first.ingest_latency;
  reference.Merge(second.ingest_latency);
  EXPECT_EQ(reference.count(), merged.count());
  EXPECT_EQ(reference.mean(), merged.mean());
  EXPECT_EQ(reference.min(), merged.min());
  EXPECT_EQ(reference.max(), merged.max());
  EXPECT_EQ(reference.p50(), merged.p50());
  EXPECT_EQ(reference.p90(), merged.p90());
  EXPECT_EQ(reference.p99(), merged.p99());
  EXPECT_EQ(reference.p999(), merged.p999());
  EXPECT_EQ(reference.NonZeroBuckets(), merged.NonZeroBuckets());
}

TEST(LoadGenTest, OverloadObservesQuotaRefusalsNeverDeadlocks) {
  ScenarioOptions so;
  so.subjects = 48;
  so.streams = 4;
  so.total_events = 6000;
  so.events_per_frame = 32;
  LoadScenario scenario =
      GenerateLoadScenario(ScenarioFamily::kSurge, so).ValueOrDie();

  // A server with a deliberately tiny per-connection ingest quota and a
  // schedule that arrives effectively all at once: the flood must be
  // answered with kFailedPrecondition refusals (bounded queues), and
  // the run must drain to completion.
  ServerOptions server_options;
  server_options.max_connection_queued_events = 64;
  server_options.max_queued_events = 512;

  LoadGenOptions options;
  options.connections = 4;
  options.rate = 2'000'000.0;
  options.max_in_flight = 128;

  LoadReport report =
      RunAgainstLoopback(scenario, options, server_options).ValueOrDie();
  EXPECT_GT(report.quota_refused_frames, 0u)
      << "an offered rate this far above capacity must trip the quota";
  EXPECT_EQ(report.events_admitted + report.quota_refused_events,
            report.events_sent);
  EXPECT_EQ(report.events_sent, scenario.total_events);
  // The overload shows up in the open-loop signals, not as an error.
  EXPECT_GT(report.ingest_latency.count(), 0u);
}

}  // namespace
}  // namespace ltam
