// Copyright 2026 The LTAM Authors.

#include "sim/graph_gen.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace ltam {

namespace {

/// Shared error-propagating builder helpers.
struct Builder {
  MultilevelLocationGraph graph;
  Status status = Status::OK();

  explicit Builder(std::string root) : graph(std::move(root)) {}

  LocationId Prim(const std::string& name, LocationId parent) {
    if (!status.ok()) return kInvalidLocation;
    Result<LocationId> r = graph.AddPrimitive(name, parent);
    if (!r.ok()) {
      status = r.status();
      return kInvalidLocation;
    }
    return *r;
  }

  LocationId Comp(const std::string& name, LocationId parent) {
    if (!status.ok()) return kInvalidLocation;
    Result<LocationId> r = graph.AddComposite(name, parent);
    if (!r.ok()) {
      status = r.status();
      return kInvalidLocation;
    }
    return *r;
  }

  void Edge(LocationId a, LocationId b) {
    if (!status.ok()) return;
    status = graph.AddEdge(a, b);
  }

  void Entry(LocationId l) {
    if (!status.ok()) return;
    status = graph.SetEntry(l, true);
  }

  Result<MultilevelLocationGraph> Finish() {
    if (!status.ok()) return status;
    LTAM_RETURN_IF_ERROR(graph.Validate());
    return std::move(graph);
  }
};

}  // namespace

Result<MultilevelLocationGraph> MakeGridGraph(uint32_t width,
                                              uint32_t height) {
  if (width == 0 || height == 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  Builder b("Site");
  std::vector<LocationId> rooms(static_cast<size_t>(width) * height);
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      rooms[static_cast<size_t>(y) * width + x] =
          b.Prim(StrFormat("R%u_%u", x, y), b.graph.root());
    }
  }
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      size_t i = static_cast<size_t>(y) * width + x;
      if (x + 1 < width) b.Edge(rooms[i], rooms[i + 1]);
      if (y + 1 < height) b.Edge(rooms[i], rooms[i + width]);
    }
  }
  b.Entry(rooms[0]);
  return b.Finish();
}

Result<MultilevelLocationGraph> MakeTreeGraph(uint32_t branching,
                                              uint32_t depth) {
  if (branching == 0 || depth == 0) {
    return Status::InvalidArgument("tree parameters must be positive");
  }
  Builder b("Site");
  std::vector<LocationId> frontier;
  LocationId root_room = b.Prim("T0", b.graph.root());
  b.Entry(root_room);
  frontier.push_back(root_room);
  uint32_t next = 1;
  for (uint32_t level = 1; level < depth; ++level) {
    std::vector<LocationId> next_frontier;
    for (LocationId parent_room : frontier) {
      for (uint32_t c = 0; c < branching; ++c) {
        LocationId child = b.Prim(StrFormat("T%u", next++), b.graph.root());
        b.Edge(parent_room, child);
        next_frontier.push_back(child);
      }
    }
    frontier = std::move(next_frontier);
  }
  return b.Finish();
}

Result<MultilevelLocationGraph> MakeRandomRegularGraph(uint32_t n,
                                                       uint32_t degree,
                                                       Rng* rng) {
  if (n < 2) return Status::InvalidArgument("need at least 2 rooms");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  Builder b("Site");
  std::vector<LocationId> rooms(n);
  for (uint32_t i = 0; i < n; ++i) {
    rooms[i] = b.Prim(StrFormat("N%u", i), b.graph.root());
  }
  // Hamiltonian cycle for connectivity.
  std::set<std::pair<uint32_t, uint32_t>> used;
  auto add_edge = [&](uint32_t i, uint32_t j) {
    if (i == j) return false;
    auto key = std::minmax(i, j);
    if (used.count({key.first, key.second}) > 0) return false;
    used.insert({key.first, key.second});
    b.Edge(rooms[i], rooms[j]);
    return true;
  };
  for (uint32_t i = 0; i < n; ++i) add_edge(i, (i + 1) % n);
  // Random chords until the average degree approaches `degree`.
  uint64_t target_edges =
      std::min<uint64_t>(static_cast<uint64_t>(n) * degree / 2,
                         static_cast<uint64_t>(n) * (n - 1) / 2);
  uint64_t attempts = 0;
  while (used.size() < target_edges && attempts < 20 * target_edges) {
    ++attempts;
    add_edge(static_cast<uint32_t>(rng->Uniform(n)),
             static_cast<uint32_t>(rng->Uniform(n)));
  }
  b.Entry(rooms[0]);
  return b.Finish();
}

Result<MultilevelLocationGraph> MakeCampusGraph(uint32_t buildings,
                                                uint32_t rooms_per_building) {
  if (buildings == 0 || rooms_per_building == 0) {
    return Status::InvalidArgument("campus parameters must be positive");
  }
  Builder b("Campus");
  std::vector<LocationId> houses(buildings);
  for (uint32_t h = 0; h < buildings; ++h) {
    houses[h] = b.Comp(StrFormat("B%u", h), b.graph.root());
    LocationId prev = kInvalidLocation;
    for (uint32_t r = 0; r < rooms_per_building; ++r) {
      LocationId room = b.Prim(StrFormat("B%u.R%u", h, r), houses[h]);
      if (r == 0) b.Entry(room);  // The building's "GO".
      if (prev != kInvalidLocation) b.Edge(prev, room);
      prev = room;
    }
  }
  // Ring of buildings at the root level.
  if (buildings > 1) {
    for (uint32_t h = 0; h < buildings; ++h) {
      b.Edge(houses[h], houses[(h + 1) % buildings]);
      if (buildings == 2) break;  // Avoid duplicate edge 0-1/1-0.
    }
  }
  // Building 0 is the campus gate.
  b.Entry(houses[0]);
  return b.Finish();
}

Result<MultilevelLocationGraph> MakeNtuCampusGraph() {
  Builder b("NTU");
  LocationId root = b.graph.root();

  // Schools (composites).
  LocationId sce = b.Comp("SCE", root);
  LocationId eee = b.Comp("EEE", root);
  LocationId cee = b.Comp("CEE", root);
  LocationId sme = b.Comp("SME", root);
  LocationId nbs = b.Comp("NBS", root);

  // SCE rooms (Figure 2, top).
  LocationId sce_go = b.Prim("SCE.GO", sce);
  LocationId sce_dean = b.Prim("SCE.DeanOffice", sce);
  LocationId sce_a = b.Prim("SCE.SectionA", sce);
  LocationId sce_b = b.Prim("SCE.SectionB", sce);
  LocationId sce_c = b.Prim("SCE.SectionC", sce);
  LocationId cais = b.Prim("CAIS", sce);
  LocationId chipes = b.Prim("CHIPES", sce);
  // Edges. Known from the text: GO-SectionA-Dean (complex route example),
  // Dean-SectionA-SectionB-CAIS (simple route example), SectionB-CAIS
  // edge called out explicitly. SectionC and CHIPES lie on the
  // alternative GO->CAIS route of Example 3 (GO, SectionA, SectionB,
  // SectionC, CHIPES, CAIS), so: SectionB-SectionC, SectionC-CHIPES,
  // CHIPES-CAIS.
  b.Edge(sce_go, sce_a);
  b.Edge(sce_a, sce_dean);
  b.Edge(sce_a, sce_b);
  b.Edge(sce_b, cais);
  b.Edge(sce_b, sce_c);
  b.Edge(sce_c, chipes);
  b.Edge(chipes, cais);
  b.Entry(sce_go);
  b.Entry(sce_c);

  // EEE rooms (mirror structure: GO, Dean's Office, Sections A-C, Lab1,
  // Lab2).
  LocationId eee_go = b.Prim("EEE.GO", eee);
  LocationId eee_dean = b.Prim("EEE.DeanOffice", eee);
  LocationId eee_a = b.Prim("EEE.SectionA", eee);
  LocationId eee_b = b.Prim("EEE.SectionB", eee);
  LocationId eee_c = b.Prim("EEE.SectionC", eee);
  LocationId lab1 = b.Prim("Lab1", eee);
  LocationId lab2 = b.Prim("Lab2", eee);
  // Complex route example needs EEE.Dean - EEE.SectionA - EEE.GO.
  b.Edge(eee_go, eee_a);
  b.Edge(eee_a, eee_dean);
  b.Edge(eee_a, eee_b);
  b.Edge(eee_b, lab1);
  b.Edge(eee_b, eee_c);
  b.Edge(eee_c, lab2);
  b.Edge(lab2, lab1);
  b.Entry(eee_go);
  b.Entry(eee_c);

  // The remaining schools, sketched as single-room graphs (the paper
  // leaves their interiors unspecified).
  LocationId cee_go = b.Prim("CEE.GO", cee);
  LocationId sme_go = b.Prim("SME.GO", sme);
  LocationId nbs_go = b.Prim("NBS.GO", nbs);
  b.Entry(cee_go);
  b.Entry(sme_go);
  b.Entry(nbs_go);

  // Campus-level edges between schools (Figure 2, bottom row joins the
  // schools; exact campus edges beyond SCE-EEE are not enumerated in the
  // paper, we use a ring which keeps NTU connected).
  b.Edge(sce, eee);
  b.Edge(eee, cee);
  b.Edge(cee, sme);
  b.Edge(sme, nbs);
  b.Edge(nbs, sce);

  // Campus-level entries: visitors arrive through SCE or EEE (the two
  // schools the paper details).
  b.Entry(sce);
  b.Entry(eee);

  return b.Finish();
}

Result<MultilevelLocationGraph> MakeFig4Graph() {
  Builder b("G");
  LocationId root = b.graph.root();
  LocationId a = b.Prim("A", root);
  LocationId bb = b.Prim("B", root);
  LocationId c = b.Prim("C", root);
  LocationId d = b.Prim("D", root);
  // Insertion order B-C first so that B's neighbor list is (C, A): the
  // worklist then processes Update B, Update D, Update C, Update A —
  // exactly Table 2's row order.
  b.Edge(bb, c);
  b.Edge(a, bb);
  b.Edge(a, d);
  b.Edge(c, d);
  b.Entry(a);
  return b.Finish();
}

}  // namespace ltam
