// Copyright 2026 The LTAM Authors.
// Authorization rules (Definition 5): <tr : (a, OP)>.

#ifndef LTAM_CORE_RULES_RULE_H_
#define LTAM_CORE_RULES_RULE_H_

#include <optional>
#include <string>

#include "core/authorization.h"
#include "core/rules/count_expr.h"
#include "core/rules/location_op.h"
#include "core/rules/subject_op.h"
#include "core/rules/temporal_op.h"

namespace ltam {

/// An authorization rule: from time `valid_from` (tr), derive
/// authorizations from the base authorization `base` through the operator
/// tuple (op_entry, op_exit, op_subject, op_location, exp_n).
///
/// "If any of the rule elements is not specified in a rule, the default
/// value will be copied from the base authorization" — unset operators
/// (null pointers / nullopt) behave as identity.
struct AuthorizationRule {
  RuleId id = kInvalidRule;
  /// tr: the time from when the rule is valid.
  Chronon valid_from = 0;
  /// The base authorization (must exist in the authorization database).
  AuthId base = kInvalidAuth;
  /// Temporal operator on the entry duration (null = WHENEVER).
  TemporalOperatorPtr op_entry;
  /// Temporal operator on the exit duration (null = WHENEVER).
  TemporalOperatorPtr op_exit;
  /// Subject operator (null = identity).
  SubjectOperatorPtr op_subject;
  /// Location operator (null = identity).
  LocationOperatorPtr op_location;
  /// Entry-count expression (nullopt = copy n from the base).
  std::optional<CountExpr> exp_n;
  /// Administrator-facing label ("r1").
  std::string label;

  /// "<7 : (a1, (WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2))>"-style
  /// rendering.
  std::string ToString() const {
    std::string out = "<" + std::to_string(valid_from) + " : (a#" +
                      std::to_string(base) + ", (";
    out += op_entry ? op_entry->ToString() : "WHENEVER";
    out += ", ";
    out += op_exit ? op_exit->ToString() : "WHENEVER";
    out += ", ";
    out += op_subject ? op_subject->ToString() : "Identity";
    out += ", ";
    out += op_location ? op_location->ToString() : "Identity";
    out += ", ";
    out += exp_n.has_value() ? exp_n->text() : "n";
    out += "))>";
    return out;
  }
};

}  // namespace ltam

#endif  // LTAM_CORE_RULES_RULE_H_
