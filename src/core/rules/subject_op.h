// Copyright 2026 The LTAM Authors.
// Subject operators of authorization rules (Definition 5).
//
// "op_subject takes subject s of a, and derives the subjects for the
// derived authorizations based on some relationships between subjects."
// The operators resolve against the user profile database (Figure 3);
// custom operators can be registered by name ("customized operators can
// be defined as well, which leads to greater degree of flexibility").

#ifndef LTAM_CORE_RULES_SUBJECT_OP_H_
#define LTAM_CORE_RULES_SUBJECT_OP_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "profile/user_profile.h"
#include "util/result.h"

namespace ltam {

/// Abstract subject operator.
class SubjectOperator {
 public:
  virtual ~SubjectOperator() = default;

  /// Maps the base subject to the derived subjects. An empty vector is
  /// legal (the rule then derives nothing), e.g. Supervisor_Of applied to
  /// a subject without a supervisor.
  virtual Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const = 0;

  /// Stable operator name for display and serialization.
  virtual std::string ToString() const = 0;
};

using SubjectOperatorPtr = std::shared_ptr<const SubjectOperator>;

/// Identity: the derived authorization keeps the base subject.
class IdentitySubjectOp : public SubjectOperator {
 public:
  Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const override;
  std::string ToString() const override { return "Identity"; }
};

/// Supervisor_Of (Example 1): "returns the supervisor of a user by
/// querying the user profile database."
class SupervisorOfOp : public SubjectOperator {
 public:
  Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const override;
  std::string ToString() const override { return "Supervisor_Of"; }
};

/// Subordinates_Of: every direct report of the base subject.
class SubordinatesOfOp : public SubjectOperator {
 public:
  Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const override;
  std::string ToString() const override { return "Subordinates_Of"; }
};

/// Group_Members(g): every member of group g (independent of base).
class GroupMembersOp : public SubjectOperator {
 public:
  explicit GroupMembersOp(std::string group) : group_(std::move(group)) {}
  Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const override;
  std::string ToString() const override {
    return "Group_Members(" + group_ + ")";
  }

 private:
  std::string group_;
};

/// Role_Holders(r): every subject holding role r (independent of base).
class RoleHoldersOp : public SubjectOperator {
 public:
  explicit RoleHoldersOp(std::string role) : role_(std::move(role)) {}
  Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const override;
  std::string ToString() const override {
    return "Role_Holders(" + role_ + ")";
  }

 private:
  std::string role_;
};

/// Same_Group_As: everyone sharing at least one group with the base
/// subject, excluding the base subject.
class SameGroupAsOp : public SubjectOperator {
 public:
  Result<std::vector<SubjectId>> Apply(
      SubjectId base, const UserProfileDatabase& profiles) const override;
  std::string ToString() const override { return "Same_Group_As"; }
};

/// Registry of subject operators addressable by name, including custom
/// ones. Names are matched case-insensitively; an operator spec is
/// "Name" or "Name(arg)".
class SubjectOperatorRegistry {
 public:
  /// Factory signature; `arg` is the text between parentheses (empty when
  /// absent).
  using Factory =
      std::function<Result<SubjectOperatorPtr>(const std::string& arg)>;

  /// A registry pre-populated with the built-in operators.
  static SubjectOperatorRegistry Default();

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Parses an operator spec into an operator instance.
  Result<SubjectOperatorPtr> Parse(const std::string& spec) const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace ltam

#endif  // LTAM_CORE_RULES_SUBJECT_OP_H_
