// Copyright 2026 The LTAM Authors.
// Deterministic fuzzing of every text front end: random and mutated
// inputs must produce Status errors, never crashes, hangs, or silent
// state corruption.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "query/query_language.h"
#include "sim/graph_gen.h"
#include "storage/policy_script.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "time/periodic.h"
#include "util/random.h"

namespace ltam {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-biased bytes plus occasional control characters.
    if (rng->Bernoulli(0.9)) {
      out += static_cast<char>(' ' + rng->Uniform(95));
    } else {
      out += static_cast<char>(rng->Uniform(32));
    }
  }
  return out;
}

std::string Mutate(const std::string& input, Rng* rng) {
  std::string out = input;
  int edits = 1 + static_cast<int>(rng->Uniform(8));
  for (int i = 0; i < edits && !out.empty(); ++i) {
    size_t pos = rng->Uniform(out.size());
    switch (rng->Uniform(3)) {
      case 0:
        out[pos] = static_cast<char>(' ' + rng->Uniform(95));
        break;
      case 1:
        out.erase(pos, 1);
        break;
      case 2:
        out.insert(pos, 1, static_cast<char>(' ' + rng->Uniform(95)));
        break;
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, IntervalParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, 40);
    auto r1 = TimeInterval::Parse(input);
    auto r2 = IntervalSet::Parse(input);
    auto r3 = ParseChronon(input);
    auto r4 = PeriodicExpression::Parse(input);
    (void)r1;
    (void)r2;
    (void)r3;
    (void)r4;
  }
  // Mutations of valid inputs.
  for (int i = 0; i < 300; ++i) {
    auto r = IntervalSet::Parse(Mutate("{[2, 35], [40, inf]}", &rng));
    (void)r;
  }
}

TEST_P(FuzzTest, CountExprParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Result<CountExpr> r = CountExpr::Parse(RandomBytes(&rng, 32));
    if (r.ok()) {
      // Whatever parsed must evaluate within Definition 4's range.
      EXPECT_GE(r->Eval(3), 1);
    }
  }
  for (int i = 0; i < 300; ++i) {
    Result<CountExpr> r = CountExpr::Parse(Mutate("min(n, 3) * 2 + 1", &rng));
    if (r.ok()) {
      EXPECT_GE(r->Eval(5), 1);
    }
  }
}

TEST_P(FuzzTest, QueryInterpreterNeverCrashes) {
  MultilevelLocationGraph graph = MakeFig4Graph().ValueOrDie();
  UserProfileDatabase profiles;
  SubjectId alice = profiles.AddSubject("Alice").ValueOrDie();
  AuthorizationDatabase auth_db;
  auth_db.Add(LocationTemporalAuthorization::Make(
                  TimeInterval(0, 50), TimeInterval(0, 80),
                  LocationAuthorization{alice, graph.Find("A").ValueOrDie()},
                  2)
                  .ValueOrDie());
  MovementDatabase movements;
  QueryEngine qe(&graph, &auth_db, &movements, &profiles);
  QueryInterpreter interp(&qe, &graph, &profiles, &movements, &auth_db);

  Rng rng(GetParam());
  // Token soup from the language's own vocabulary.
  const char* kVocab[] = {"CAN",       "ACCESS", "AT",     "WHO",  "WHEN",
                          "FOR",       "IN",     "DURING", "FROM", "TO",
                          "ROUTE",     "WHERE",  "WAS",    "OF",   "MIN",
                          "CONTACTS",  "Alice",  "A",      "B",    "G",
                          "[0, 50]",   "10",     "inf",    "AUTHS",
                          "OVERSTAYING", "HISTORY", "OCCUPANTS", "ACCESSIBLE"};
  for (int i = 0; i < 400; ++i) {
    std::string q;
    int words = 1 + static_cast<int>(rng.Uniform(8));
    for (int wi = 0; wi < words; ++wi) {
      if (wi > 0) q += " ";
      q += kVocab[rng.Uniform(sizeof(kVocab) / sizeof(kVocab[0]))];
    }
    Result<QueryResult> r = interp.Run(q);
    (void)r;  // Must return, never crash.
  }
  // Raw byte soup.
  for (int i = 0; i < 200; ++i) {
    Result<QueryResult> r = interp.Run(RandomBytes(&rng, 64));
    (void)r;
  }
}

TEST_P(FuzzTest, PolicyScriptParserNeverCrashes) {
  const std::string valid = R"(
SITE G
ROOM A IN G
ROOM B IN G
EDGE A B
ENTRY A
SUBJECT S
AUTH S A ENTER [0,10] EXIT [0,20] TIMES 2
RULE FROM 0 BASE 0 SUBJECT Supervisor_Of
)";
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Result<SystemState> r = ParsePolicyScript(Mutate(valid, &rng));
    (void)r;
  }
  for (int i = 0; i < 100; ++i) {
    Result<SystemState> r = ParsePolicyScript(RandomBytes(&rng, 200));
    (void)r;
  }
}

TEST_P(FuzzTest, SnapshotLoaderNeverCrashes) {
  // Build a valid snapshot text, then corrupt it.
  SystemState state;
  state.graph = MakeFig4Graph().ValueOrDie();
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  state.auth_db.Add(
      LocationTemporalAuthorization::Make(
          TimeInterval(0, 50), TimeInterval(0, 80),
          LocationAuthorization{alice, state.graph.Find("A").ValueOrDie()},
          1)
          .ValueOrDie());
  std::string path = ::testing::TempDir() + "/ltam_fuzz_" +
                     std::to_string(GetParam()) + ".snap";
  ASSERT_OK(SaveSnapshot(state, path));
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    std::string corrupted = Mutate(contents, &rng);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << corrupted;
    }
    Result<SystemState> r = LoadSnapshot(path);
    (void)r;  // ok or ParseError; never a crash.
  }
  std::remove(path.c_str());
}

TEST_P(FuzzTest, OperatorRegistryParsersNeverCrash) {
  Rng rng(GetParam());
  SubjectOperatorRegistry subjects = SubjectOperatorRegistry::Default();
  LocationOperatorRegistry locations = LocationOperatorRegistry::Default();
  for (int i = 0; i < 300; ++i) {
    std::string spec = RandomBytes(&rng, 48);
    auto r1 = subjects.Parse(spec);
    auto r2 = locations.Parse(spec);
    auto r3 = ParseTemporalOperator(spec);
    (void)r1;
    (void)r2;
    (void)r3;
  }
  for (int i = 0; i < 200; ++i) {
    auto r = ParseTemporalOperator(Mutate("INTERSECTION([10, 30])", &rng));
    (void)r;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace ltam
