// Copyright 2026 The LTAM Authors.
// Replication epoch persistence and the fencing gate.
//
// The replication epoch is the cluster's promotion counter, distinct
// from the checkpoint epoch that names snapshot/WAL files. Every server
// (primary or replica) carries one; promotion bumps it by at least one
// and persists it BEFORE the new primary accepts a single write, so the
// epoch on disk is always >= the epoch of any record the server ever
// shipped or applied.
//
// The gate is the whole failover-safety story, in the Pacemaker mold
// (promote = take the master role, fence = make the old master harmless):
//
//   * A replica rejects any frame (welcome, chunk, watermark) whose
//     epoch is BELOW its own. A partitioned ex-primary that missed a
//     promotion keeps its old epoch; every frame it ships after the
//     partition heals is provably stale and dropped, so it can never
//     diverge a replica that has moved on.
//   * A primary rejects a subscription whose hello epoch is ABOVE its
//     own: the replica has seen a newer promotion, therefore this
//     primary has been superseded — it is the one being fenced, and the
//     refusal tells its operator so.
//   * Equal epochs flow; a replica seeing a HIGHER epoch adopts it
//     (it lagged a promotion, the data stream is still the one true
//     stream).
//
// Persistence is a one-line file (`REPL_EPOCH`) committed by the same
// tmp + fsync + rename discipline as the manifest; a missing file reads
// as epoch 0, so pre-replication directories upgrade in place.

#ifndef LTAM_REPLICATION_EPOCH_H_
#define LTAM_REPLICATION_EPOCH_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace ltam {

/// Canonical epoch file name inside a durable directory.
inline const char* ReplicationEpochFileName() { return "REPL_EPOCH"; }

/// Reads the persisted replication epoch from `dir`. A directory that
/// has never persisted one (including every pre-replication directory)
/// reads as epoch 0; a present-but-corrupt file is an error, not a 0 —
/// silently restarting a fenced primary at epoch 0 would defeat the gate.
Result<uint64_t> LoadReplicationEpoch(const std::string& dir);

/// Durably persists `epoch` into `dir` (tmp + fsync + rename + dirsync).
/// Must complete before the caller acts on the new epoch.
Status StoreReplicationEpoch(const std::string& dir, uint64_t epoch);

/// Primary-side gate for an incoming subscription: a hello from a
/// replica at a higher epoch means THIS server has been superseded.
/// OK when `hello_epoch <= local_epoch`.
Status CheckSubscriptionEpoch(uint64_t local_epoch, uint64_t hello_epoch);

/// Replica-side gate for an incoming stream frame: a frame below the
/// local epoch is from a fenced ex-primary and must be dropped. OK when
/// `frame_epoch >= local_epoch`; the caller adopts a higher epoch.
Status CheckStreamEpoch(uint64_t local_epoch, uint64_t frame_epoch);

}  // namespace ltam

#endif  // LTAM_REPLICATION_EPOCH_H_
