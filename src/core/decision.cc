// Copyright 2026 The LTAM Authors.

#include "core/decision.h"

#include "time/interval.h"
#include "util/string_util.h"

namespace ltam {

std::string AccessRequest::ToString() const {
  return "(" + ChrononToString(time) + ", s" + std::to_string(subject) +
         ", l" + std::to_string(location) + ")";
}

const char* DenyReasonToString(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kNoAuthorization:
      return "no-authorization";
    case DenyReason::kOutsideEntryDuration:
      return "outside-entry-duration";
    case DenyReason::kEntriesExhausted:
      return "entries-exhausted";
    case DenyReason::kNotAdjacent:
      return "not-adjacent";
    case DenyReason::kUnknownSubject:
      return "unknown-subject";
    case DenyReason::kUnknownLocation:
      return "unknown-location";
    case DenyReason::kExitRejected:
      return "exit-rejected";
    case DenyReason::kWalError:
      return "wal-error";
    case DenyReason::kObservationRejected:
      return "observation-rejected";
  }
  return "unknown";
}

std::string Decision::ToString() const {
  if (granted) {
    // Exits and accepted observations grant without a backing
    // authorization; print them without a meaningless auth id.
    if (auth == kInvalidAuth) return "granted";
    return StrFormat("granted (auth #%u)", auth);
  }
  return std::string("denied (") + DenyReasonToString(reason) + ")";
}

}  // namespace ltam
