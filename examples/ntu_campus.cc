// Copyright 2026 The LTAM Authors.
//
// The paper's running example end to end: the NTU campus of Figures 1-2,
// the simple/complex routes of Section 3.1, and the authorization rules
// r1/r2/r3 of Section 4 (Examples 1-3), including automatic re-derivation
// when Alice's supervisor changes — all administered through the
// AccessRuntime facade (rule derivation and the supervisor change are
// mutations, so they run inside the runtime's enforced mutation window),
// with the Section 5 request timeline enforced at the end.
//
// Run: ./build/examples/ntu_campus

#include <cstdio>
#include <memory>

#include "core/rules/rule_engine.h"
#include "runtime/access_runtime.h"
#include "sim/graph_gen.h"
#include "util/logging.h"

namespace {

void PrintDerived(const ltam::AuthorizationDatabase& db,
                  const ltam::UserProfileDatabase& profiles,
                  const ltam::MultilevelLocationGraph& graph,
                  ltam::RuleId rule, const char* label) {
  std::printf("  derived by %s:\n", label);
  for (ltam::AuthId id : db.Active()) {
    const ltam::AuthRecord& rec = db.record(id);
    if (rec.origin == ltam::AuthOrigin::kDerived && rec.source_rule == rule) {
      std::printf("    a#%u = %s\n", id,
                  rec.auth.ToString(profiles, graph).c_str());
    }
  }
}

}  // namespace

int main() {
  using namespace ltam;  // NOLINT: example brevity.

  // Figure 2's multilevel location graph, plus subjects and the base
  // authorization a1 (Section 4): Alice works in CAIS; Bob supervises.
  SystemState state;
  state.graph = MakeNtuCampusGraph().ValueOrDie();
  SubjectId alice = state.profiles.AddSubject("Alice").ValueOrDie();
  SubjectId bob = state.profiles.AddSubject("Bob").ValueOrDie();
  LTAM_CHECK(state.profiles.SetSupervisor(alice, bob).ok());

  Result<std::unique_ptr<AccessRuntime>> opened =
      AccessRuntime::Open(std::move(state));
  LTAM_CHECK(opened.ok()) << opened.status().ToString();
  std::unique_ptr<AccessRuntime> rt = std::move(opened).ValueOrDie();

  const MultilevelLocationGraph& graph = rt->graph();
  std::printf("NTU multilevel location graph (Figure 2):\n%s\n",
              graph.ToString().c_str());

  // Section 3.1's routes.
  auto id = [&graph](const char* name) {
    return graph.Find(name).ValueOrDie();
  };
  std::vector<LocationId> simple = {id("SCE.DeanOffice"), id("SCE.SectionA"),
                                    id("SCE.SectionB"), id("CAIS")};
  std::printf("simple route <Dean, SectionA, SectionB, CAIS> valid: %s\n",
              graph.IsSimpleRoute(simple) ? "yes" : "no");
  std::vector<LocationId> complex_route =
      graph.FindRoute(id("EEE.DeanOffice"), id("SCE.DeanOffice"))
          .ValueOrDie();
  std::printf("complex route EEE.Dean -> SCE.Dean:");
  for (LocationId l : complex_route) {
    std::printf(" %s", graph.location(l).name.c_str());
  }
  std::printf("\n\n");

  // Rule administration happens inside the mutation window. The rule
  // engine outlives one window (Example 1 re-derives in a later one), so
  // it is built on the first mutation and reused by the rest.
  std::unique_ptr<RuleEngine> rules;
  AuthId a1 = kInvalidAuth;
  RuleId r1_id = kInvalidRule;
  RuleId r2_id = kInvalidRule;
  RuleId r3_id = kInvalidRule;
  Status administered = rt->Mutate([&](const MutableStores& stores) {
    a1 = stores.auth_db.Add(LocationTemporalAuthorization::Make(
                                TimeInterval(5, 20), TimeInterval(15, 50),
                                LocationAuthorization{alice, id("CAIS")}, 2)
                                .ValueOrDie());
    rules = std::make_unique<RuleEngine>(&stores.auth_db, &stores.profiles,
                                         &stores.graph);

    // r1: the supervisor gets Alice's CAIS rights (Example 1).
    AuthorizationRule r1;
    r1.valid_from = 7;
    r1.base = a1;
    r1.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
    r1.label = "r1";
    LTAM_ASSIGN_OR_RETURN(r1_id, rules->AddRule(r1));

    // r2: ... but only during [10, 30] (Example 2).
    AuthorizationRule r2;
    r2.valid_from = 7;
    r2.base = a1;
    r2.op_entry =
        TemporalOperatorPtr(new IntersectionOp(TimeInterval(10, 30)));
    r2.op_subject = SubjectOperatorPtr(new SupervisorOfOp());
    r2.label = "r2";
    LTAM_ASSIGN_OR_RETURN(r2_id, rules->AddRule(r2));

    // r3: Alice may walk every GO -> CAIS corridor room (Example 3).
    AuthorizationRule r3;
    r3.valid_from = 7;
    r3.base = a1;
    r3.op_location = LocationOperatorPtr(new AllRouteFromOp("SCE.GO"));
    r3.label = "r3";
    LTAM_ASSIGN_OR_RETURN(r3_id, rules->AddRule(r3));
    return Status::OK();
  });
  LTAM_CHECK(administered.ok()) << administered.ToString();

  std::printf("a1 = %s\n\n",
              rt->auth_db().record(a1).auth.ToString(rt->profiles(), graph)
                  .c_str());
  for (const AuthorizationRule& rule : rules->rules()) {
    std::printf("%s: %s\n", rule.label.c_str(), rule.ToString().c_str());
  }

  DerivationReport report;
  LTAM_CHECK(rt->Mutate([&](const MutableStores&) {
                 LTAM_ASSIGN_OR_RETURN(report, rules->DeriveAll());
                 return Status::OK();
               })
                 .ok());
  std::printf("\nderivation: %zu rules -> %zu authorizations\n",
              report.rules_evaluated, report.derived);
  PrintDerived(rt->auth_db(), rt->profiles(), graph, r1_id, "r1 (Example 1)");
  PrintDerived(rt->auth_db(), rt->profiles(), graph, r2_id, "r2 (Example 2)");
  PrintDerived(rt->auth_db(), rt->profiles(), graph, r3_id, "r3 (Example 3)");

  // Example 1's punchline: reassign the supervisor and re-derive.
  LTAM_CHECK(rt->Mutate([&](const MutableStores& stores) {
                 LTAM_ASSIGN_OR_RETURN(SubjectId carol,
                                       stores.profiles.AddSubject("Carol"));
                 LTAM_RETURN_IF_ERROR(
                     stores.profiles.SetSupervisor(alice, carol));
                 LTAM_ASSIGN_OR_RETURN(report,
                                       rules->RefreshIfProfilesChanged());
                 return Status::OK();
               })
                 .ok());
  std::printf(
      "\nAlice's supervisor is now Carol: re-derivation revoked %zu and "
      "derived %zu\n",
      report.revoked, report.derived);
  PrintDerived(rt->auth_db(), rt->profiles(), graph, r1_id,
               "r1 after the change");

  // Section 5, enforced: Alice's derived corridor rights let her walk
  // GO -> SectionA -> SectionB -> CAIS within the entry windows.
  std::printf("\nSection 5 timeline through the runtime:\n");
  for (const char* name :
       {"SCE.GO", "SCE.SectionA", "SCE.SectionB", "CAIS"}) {
    Result<Decision> d = rt->Apply(AccessEvent::Entry(10, alice, id(name)));
    LTAM_CHECK(d.ok()) << d.status().ToString();
    std::printf("  (10, Alice, %-13s) -> %s\n", name, d->ToString().c_str());
  }

  // Export the campus for graphviz rendering.
  std::printf("\nGraphviz DOT of Figure 2 (first lines):\n");
  std::string dot = graph.ToDot();
  std::printf("%s...\n", dot.substr(0, dot.find("subgraph")).c_str());
  return 0;
}
