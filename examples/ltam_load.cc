// Copyright 2026 The LTAM Authors.
//
// ltam_load: open-loop load generator against a live ltam_serve.
//
// Boot a server on one side with a scenario world:
//   ./build/examples/ltam_serve --port=7447 --scenario=surge
// then drive the matching traffic from the other:
//   ./build/examples/ltam_load --port=7447 --scenario=surge --rate=4000
//       --duration-s=5 --connections=4 --json-out=load.json
//
// Both processes construct the identical world from (scenario, seed,
// subjects, events) — see sim/workload.h — so subject and location ids
// agree without any world serialization on the wire. Arrivals follow a
// deterministic seeded Poisson schedule at --rate events/sec; latency
// is measured from each frame's SCHEDULED arrival time (coordinated
// omission is not possible by construction: a server that falls behind
// accrues queueing delay in the recorded percentiles).
//
// Flags:
//   --host=ADDR --port=N      server endpoint (default 127.0.0.1:7447)
//   --query-host=ADDR --query-port=N
//                             route the scenario's query mix to this
//                             endpoint (a read replica) over dedicated
//                             connections; ingest keeps flowing to
//                             --host. Both or neither.
//   --scenario=NAME           surge|contact|churn|tenant|replication
//                             (default surge)
//   --rate=N                  target events/sec across connections
//   --duration-s=N            run length; total events = rate * duration
//   --connections=N           worker threads = TCP connections
//   --events-per-frame=N      events per scheduled arrival (default 32)
//   --max-in-flight=N         pipelined frames per connection (default 64)
//   --scenario-seed=N --scenario-subjects=N --scenario-tenants=N
//                             world knobs; must match the server's
//   --schedule-seed=N         arrival-schedule seed (driver-only)
//   --json-out=FILE           write a google-benchmark-shaped report;
//                             each row carries the full histogram
//                             bucket dump (count/sum/min/max plus every
//                             non-zero bucket), so reports from split
//                             runs merge offline without losing the
//                             tail (LatencyHistogram::FromParts
//                             reconstructs, Merge combines)
//   --log-level=L             debug|info|warning|error (default info)
//
// Exit code: 0 on a completed run (refusals included — overload is a
// measurement, not an error), nonzero on harness/connection failures.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "loadgen/loadgen.h"
#include "sim/workload.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ltam;  // NOLINT: example brevity.

  std::string scenario_name = "surge";
  ScenarioOptions scenario_options;
  LoadGenOptions load_options;
  double duration_s = 2.0;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](size_t prefix) { return arg.substr(prefix); };
    if (arg.rfind("--host=", 0) == 0) {
      load_options.host = value(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      load_options.port = static_cast<uint16_t>(std::atoi(value(7).c_str()));
    } else if (arg.rfind("--query-host=", 0) == 0) {
      load_options.query_host = value(13);
    } else if (arg.rfind("--query-port=", 0) == 0) {
      load_options.query_port =
          static_cast<uint16_t>(std::atoi(value(13).c_str()));
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario_name = value(11);
    } else if (arg.rfind("--rate=", 0) == 0) {
      load_options.rate = std::atof(value(7).c_str());
    } else if (arg.rfind("--duration-s=", 0) == 0) {
      duration_s = std::atof(value(13).c_str());
    } else if (arg.rfind("--connections=", 0) == 0) {
      load_options.connections = static_cast<uint32_t>(
          std::max(1, std::atoi(value(14).c_str())));
    } else if (arg.rfind("--events-per-frame=", 0) == 0) {
      scenario_options.events_per_frame =
          static_cast<size_t>(std::max(1, std::atoi(value(19).c_str())));
    } else if (arg.rfind("--max-in-flight=", 0) == 0) {
      load_options.max_in_flight =
          static_cast<size_t>(std::max(1, std::atoi(value(16).c_str())));
    } else if (arg.rfind("--scenario-seed=", 0) == 0) {
      scenario_options.seed =
          static_cast<uint64_t>(std::atoll(value(16).c_str()));
    } else if (arg.rfind("--scenario-subjects=", 0) == 0) {
      scenario_options.subjects = static_cast<uint32_t>(
          std::max(1, std::atoi(value(20).c_str())));
    } else if (arg.rfind("--scenario-tenants=", 0) == 0) {
      scenario_options.tenants = static_cast<uint32_t>(
          std::max(1, std::atoi(value(19).c_str())));
    } else if (arg.rfind("--schedule-seed=", 0) == 0) {
      load_options.schedule_seed =
          static_cast<uint64_t>(std::atoll(value(16).c_str()));
    } else if (arg.rfind("--checkpoint-every-frames=", 0) == 0) {
      load_options.checkpoint_every_frames =
          static_cast<size_t>(std::max(0, std::atoi(value(26).c_str())));
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = value(11);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      Result<LogLevel> level = ParseLogLevel(value(12));
      if (!level.ok()) {
        std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
        return 2;
      }
      SetLogLevel(*level);
    } else {
      std::fprintf(
          stderr,
          "unknown flag '%s'\nusage: ltam_load [--host=ADDR] [--port=N] "
          "[--query-host=ADDR] [--query-port=N] "
          "[--scenario=NAME] [--rate=N] [--duration-s=N] [--connections=N] "
          "[--events-per-frame=N] [--max-in-flight=N] [--scenario-seed=N] "
          "[--scenario-subjects=N] [--scenario-tenants=N] "
          "[--schedule-seed=N] [--checkpoint-every-frames=N] "
          "[--json-out=FILE] [--log-level=L]\n",
          arg.c_str());
      return 2;
    }
  }

  Result<ScenarioFamily> family = ParseScenarioFamily(scenario_name);
  if (!family.ok()) {
    std::fprintf(stderr, "%s\n", family.status().ToString().c_str());
    return 2;
  }
  if (load_options.rate <= 0 || duration_s <= 0) {
    std::fprintf(stderr, "--rate and --duration-s must be positive\n");
    return 2;
  }
  scenario_options.streams = load_options.connections;
  scenario_options.total_events =
      static_cast<size_t>(load_options.rate * duration_s);

  Result<LoadScenario> scenario =
      GenerateLoadScenario(*family, scenario_options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario error: %s\n",
                 scenario.status().ToString().c_str());
    return 2;
  }

  std::printf(
      "ltam_load: %s against %s:%u — %zu events @ %.0f/s over %u "
      "connection%s\n",
      scenario_name.c_str(), load_options.host.c_str(), load_options.port,
      scenario->total_events, load_options.rate, load_options.connections,
      load_options.connections == 1 ? "" : "s");
  if (!load_options.query_host.empty()) {
    std::printf("ltam_load: queries routed to %s:%u\n",
                load_options.query_host.c_str(), load_options.query_port);
  }
  std::fflush(stdout);

  Result<LoadReport> report_or = RunLoad(*scenario, load_options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "load error: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const LoadReport& r = *report_or;

  std::printf("ltam_load: ingest  %s\n", r.ingest_latency.ToString().c_str());
  if (r.query_latency.count() > 0) {
    std::printf("ltam_load: queries %s\n",
                r.query_latency.ToString().c_str());
  }
  std::printf(
      "ltam_load: %llu frames (%llu events: %llu grant / %llu deny), "
      "%llu quota-refused frames, %llu queries, %llu checkpoints, "
      "%llu alerts\n",
      static_cast<unsigned long long>(r.frames_sent),
      static_cast<unsigned long long>(r.events_sent),
      static_cast<unsigned long long>(r.grants),
      static_cast<unsigned long long>(r.denials),
      static_cast<unsigned long long>(r.quota_refused_frames),
      static_cast<unsigned long long>(r.queries_sent),
      static_cast<unsigned long long>(r.checkpoints),
      static_cast<unsigned long long>(r.alerts));
  std::printf(
      "ltam_load: achieved %.0f events/s over %.2fs (%llu late sends, "
      "max schedule lag %.3fms)\n",
      r.achieved_event_rate, r.wall_seconds,
      static_cast<unsigned long long>(r.late_sends),
      static_cast<double>(r.max_sched_lag_ns) / 1e6);

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    auto ms = [](uint64_t nanos) {
      return static_cast<double>(nanos) / 1e6;
    };
    // The google-benchmark JSON shape the BENCH_pr*.json trajectory
    // uses: one row per histogram, latency percentiles as counters.
    std::fprintf(f,
                 "{\n \"context\": {\n"
                 "  \"executable\": \"ltam_load\",\n"
                 "  \"host_nproc\": %u,\n"
                 "  \"scenario\": \"%s\",\n"
                 "  \"target_rate\": %.1f,\n"
                 "  \"duration_s\": %.2f,\n"
                 "  \"connections\": %u,\n"
                 "  \"open_loop\": true\n },\n \"benchmarks\": [\n",
                 std::thread::hardware_concurrency(), scenario_name.c_str(),
                 load_options.rate, duration_s, load_options.connections);
    auto emit = [&](const char* kind, const LatencyHistogram& h,
                    bool last) {
      std::fprintf(
          f,
          "  {\n   \"name\": \"LOAD_%s_%s/rate:%.0f/conn:%u\",\n"
          "   \"run_type\": \"iteration\",\n   \"iterations\": %llu,\n"
          "   \"real_time\": %.3f,\n   \"time_unit\": \"ms\",\n"
          "   \"items_per_second\": %.1f,\n"
          "   \"p50_ms\": %.3f,\n   \"p90_ms\": %.3f,\n"
          "   \"p99_ms\": %.3f,\n   \"p999_ms\": %.3f,\n"
          "   \"max_ms\": %.3f,\n   \"mean_ms\": %.3f,\n"
          "   \"events_sent\": %llu,\n   \"grants\": %llu,\n"
          "   \"denials\": %llu,\n   \"quota_refused_frames\": %llu,\n"
          "   \"quota_refused_events\": %llu,\n   \"queries\": %llu,\n"
          "   \"checkpoints\": %llu,\n   \"late_sends\": %llu,\n"
          "   \"max_sched_lag_ms\": %.3f,\n",
          scenario_name.c_str(), kind, load_options.rate,
          load_options.connections,
          static_cast<unsigned long long>(h.count()),
          r.wall_seconds * 1e3, r.achieved_event_rate, ms(h.p50()),
          ms(h.p90()), ms(h.p99()), ms(h.p999()), ms(h.max()),
          h.mean() / 1e6,
          static_cast<unsigned long long>(r.events_sent),
          static_cast<unsigned long long>(r.grants),
          static_cast<unsigned long long>(r.denials),
          static_cast<unsigned long long>(r.quota_refused_frames),
          static_cast<unsigned long long>(r.quota_refused_events),
          static_cast<unsigned long long>(r.queries_sent),
          static_cast<unsigned long long>(r.checkpoints),
          static_cast<unsigned long long>(r.late_sends),
          static_cast<double>(r.max_sched_lag_ns) / 1e6);
      // The full histogram, losslessly: split runs merge offline via
      // LatencyHistogram::FromParts + Merge without flattening the
      // tail into precomputed percentiles.
      std::fprintf(
          f,
          "   \"hist_count\": %llu,\n   \"hist_sum_ns\": %llu,\n"
          "   \"hist_min_ns\": %llu,\n   \"hist_max_ns\": %llu,\n"
          "   \"hist_buckets\": [",
          static_cast<unsigned long long>(h.count()),
          static_cast<unsigned long long>(h.sum()),
          static_cast<unsigned long long>(h.count() > 0 ? h.min() : 0),
          static_cast<unsigned long long>(h.max()));
      bool first_bucket = true;
      for (const auto& [index, bucket_count] : h.NonZeroBuckets()) {
        std::fprintf(f, "%s[%u,%llu]", first_bucket ? "" : ",", index,
                     static_cast<unsigned long long>(bucket_count));
        first_bucket = false;
      }
      std::fprintf(f, "]\n  }%s\n", last ? "" : ",");
    };
    const bool has_queries = r.query_latency.count() > 0;
    emit("ingest", r.ingest_latency, !has_queries);
    if (has_queries) emit("query", r.query_latency, true);
    std::fprintf(f, " ]\n}\n");
    std::fclose(f);
    std::printf("ltam_load: wrote %s\n", json_out.c_str());
  }
  return 0;
}
