// Copyright 2026 The LTAM Authors.

#include "sim/workload.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "sim/graph_gen.h"
#include "test_util.h"

namespace ltam {
namespace {

TEST(WorkloadTest, GenerateSubjects) {
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 5);
  EXPECT_EQ(subjects.size(), 5u);
  EXPECT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles.subject(subjects[3]).name, "u3");
  // Idempotent on a second call.
  std::vector<SubjectId> again = GenerateSubjects(&profiles, 5);
  EXPECT_EQ(again, subjects);
  EXPECT_EQ(profiles.size(), 5u);
}

TEST(WorkloadTest, GenerateAuthorizationsFullCoverage) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(3, 3));
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 2);
  AuthorizationDatabase db;
  Rng rng(1);
  AuthWorkloadOptions opt;
  opt.auths_per_location = 2;
  size_t added = GenerateAuthorizations(g, subjects, opt, &rng, &db);
  EXPECT_EQ(added, 2u * 9u * 2u);
  EXPECT_EQ(db.size(), added);
  // Every authorization satisfies Definition 4 by construction; spot
  // check windows.
  for (AuthId id : db.Active()) {
    const LocationTemporalAuthorization& a = db.record(id).auth;
    EXPECT_LE(a.entry_duration().start(), a.entry_duration().end());
    EXPECT_GE(a.exit_duration().start(), a.entry_duration().start());
    EXPECT_GE(a.exit_duration().end(), a.entry_duration().end());
  }
}

TEST(WorkloadTest, CoverageControlsDensity) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(8, 8));
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 1);
  AuthorizationDatabase db;
  Rng rng(2);
  AuthWorkloadOptions opt;
  opt.coverage = 0.25;
  size_t added = GenerateAuthorizations(g, subjects, opt, &rng, &db);
  // Binomial(64, 0.25): far from 0 and far from 64.
  EXPECT_GT(added, 4u);
  EXPECT_LT(added, 40u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(4, 4));
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 2);
  AuthorizationDatabase db1;
  AuthorizationDatabase db2;
  Rng rng1(9);
  Rng rng2(9);
  AuthWorkloadOptions opt;
  GenerateAuthorizations(g, subjects, opt, &rng1, &db1);
  GenerateAuthorizations(g, subjects, opt, &rng2, &db2);
  ASSERT_EQ(db1.size(), db2.size());
  for (AuthId id = 0; id < db1.size(); ++id) {
    EXPECT_EQ(db1.record(id).auth, db2.record(id).auth);
  }
}

TEST(WorkloadTest, BoundedEntryCounts) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(3, 3));
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 1);
  AuthorizationDatabase db;
  Rng rng(3);
  AuthWorkloadOptions opt;
  opt.max_entries = 4;
  GenerateAuthorizations(g, subjects, opt, &rng, &db);
  for (AuthId id : db.Active()) {
    int64_t n = db.record(id).auth.max_entries();
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 4);
  }
}

TEST(WorkloadTest, GenerateRequestsSortedWithinHorizon) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(4, 4));
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 3);
  Rng rng(5);
  std::vector<AccessRequest> reqs =
      GenerateRequests(g, subjects, 100, 500, &rng);
  ASSERT_EQ(reqs.size(), 100u);
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].time, 0);
    EXPECT_LT(reqs[i].time, 500);
    EXPECT_LT(reqs[i].subject, 3u);
    if (i > 0) {
      EXPECT_GE(reqs[i].time, reqs[i - 1].time);
    }
  }
  EXPECT_TRUE(GenerateRequests(g, {}, 10, 500, &rng).empty());
}

TEST(WorkloadTest, GenerateEventBatchesInvariants) {
  ASSERT_OK_AND_ASSIGN(MultilevelLocationGraph g, MakeGridGraph(4, 4));
  UserProfileDatabase profiles;
  std::vector<SubjectId> subjects = GenerateSubjects(&profiles, 6);
  Rng rng(9);
  BatchWorkloadOptions opt;
  opt.batch_size = 64;
  opt.exit_fraction = 0.2;
  opt.observe_fraction = 0.2;
  std::vector<std::vector<AccessEvent>> batches =
      GenerateEventBatches(g, subjects, 300, opt, &rng);

  // 300 events in batches of 64: 4 full + 1 remainder.
  ASSERT_EQ(batches.size(), 5u);
  size_t total = 0;
  std::unordered_map<SubjectId, Chronon> last_time;
  for (const std::vector<AccessEvent>& batch : batches) {
    total += batch.size();
    EXPECT_LE(batch.size(), 64u);
    for (size_t i = 0; i < batch.size(); ++i) {
      const AccessEvent& e = batch[i];
      EXPECT_LT(e.subject, 6u);
      if (e.kind != AccessEventKind::kRequestExit) {
        EXPECT_TRUE(g.Exists(e.location));
        EXPECT_TRUE(g.location(e.location).IsPrimitive());
      }
      // Batches are time-sorted...
      if (i > 0) {
        EXPECT_GE(e.time, batch[i - 1].time);
      }
      // ...and every subject's stream is strictly increasing, across
      // batch boundaries too (the movement database's requirement).
      auto it = last_time.find(e.subject);
      if (it != last_time.end()) {
        EXPECT_GT(e.time, it->second);
      }
      last_time[e.subject] = e.time;
    }
  }
  EXPECT_EQ(total, 300u);

  // An exit is only generated for a subject previously sent inside.
  std::unordered_map<SubjectId, bool> seen_entry;
  for (const auto& batch : batches) {
    for (const AccessEvent& e : batch) {
      if (e.kind == AccessEventKind::kRequestExit) {
        EXPECT_TRUE(seen_entry[e.subject])
            << "exit for a subject that never entered";
      } else {
        seen_entry[e.subject] = true;
      }
    }
  }

  EXPECT_TRUE(GenerateEventBatches(g, {}, 10, opt, &rng).empty());
}

}  // namespace
}  // namespace ltam
