// Copyright 2026 The LTAM Authors.
// The outcome of evaluating an access request (Definitions 6 and 7).

#ifndef LTAM_CORE_DECISION_H_
#define LTAM_CORE_DECISION_H_

#include <string>

#include "core/authorization.h"
#include "time/chronon.h"

namespace ltam {

/// Definition 6: an access request (t, s, l) — at time t, subject s
/// requests to enter location l.
struct AccessRequest {
  Chronon time = 0;
  SubjectId subject = kInvalidSubject;
  LocationId location = kInvalidLocation;

  std::string ToString() const;
};

/// Why an access request was denied.
enum class DenyReason : uint8_t {
  kNone = 0,               ///< Request was granted.
  kNoAuthorization = 1,    ///< No authorization exists for (s, l).
  kOutsideEntryDuration = 2,  ///< Authorizations exist but none covers t.
  kEntriesExhausted = 3,   ///< Matching authorizations are all used up.
  kNotAdjacent = 4,        ///< Movement constraint: l is not reachable from
                           ///< the subject's current location in one step.
  kUnknownSubject = 5,     ///< Subject not registered.
  kUnknownLocation = 6,    ///< Location does not exist or is composite.
  kExitRejected = 7,       ///< Exit request refused: the subject is not
                           ///< inside, or the event is out of order.
  kWalError = 8,           ///< Durability failure: the event could not be
                           ///< appended to the write-ahead log, so it was
                           ///< refused rather than applied unlogged.
  kObservationRejected = 9,  ///< Tracking observation refused: it names an
                             ///< unknown/composite location or arrives out
                             ///< of time order, so nothing was recorded.
};

/// Returns a stable lower-case name for a deny reason.
const char* DenyReasonToString(DenyReason reason);

/// Definition 7 outcome: granted (with the granting authorization) or
/// denied (with the most specific applicable reason).
struct Decision {
  bool granted = false;
  AuthId auth = kInvalidAuth;
  DenyReason reason = DenyReason::kNone;

  static Decision Grant(AuthId auth) {
    return Decision{true, auth, DenyReason::kNone};
  }
  static Decision Deny(DenyReason reason) {
    return Decision{false, kInvalidAuth, reason};
  }

  std::string ToString() const;
};

}  // namespace ltam

#endif  // LTAM_CORE_DECISION_H_
