// Copyright 2026 The LTAM Authors.
// Replica-side upstream link: dial, subscribe, apply, repeat.
//
// A ReplicaLink turns a read-only AccessRuntime (DemoteToReplica) into
// a follower of one upstream primary. Its thread loops:
//
//   connect(host, port)
//     -> kReplicaHello{epoch, per-shard durable positions}
//     <- kReplicaWelcome{epoch, num_shards}   (fence-checked)
//     <- kSegmentChunk / kWatermarkAdvance stream (request_id 0)
//
// Each chunk is applied under the EXCLUSIVE runtime lock shared with
// the replica's own server (the same lock its query/stats workers take
// shared), through AccessRuntime::ApplyReplicated — which write-ahead
// logs the records to the replica's own WAL before replaying them, so
// the replica's directory recovers exactly like a primary's and its
// durable watermark is an honest resume position for the next hello.
//
// Fencing (replication/epoch.h): any frame whose epoch is below the
// replica's is from a superseded ex-primary — counted in
// fenced_frames() and dropped, never applied. A higher frame epoch is
// adopted (the replica lagged a promotion). A welcome below the local
// epoch parks the link in backoff: the upstream itself is stale.
//
// Stop() and Repoint() interrupt the blocking receive by half-closing
// the socket (the one ServiceClient member that is safe cross-thread);
// the loop then exits or redials the new target. Every disconnect
// reconnects with freshly read positions, so duplicates are bounded by
// one chunk and the overlap-skip in ApplyReplicated absorbs them.

#ifndef LTAM_REPLICATION_REPLICA_LINK_H_
#define LTAM_REPLICATION_REPLICA_LINK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/access_runtime.h"
#include "service/client.h"

namespace ltam {

struct ReplicaLinkOptions {
  /// Backoff between failed dials / dropped streams.
  uint32_t reconnect_backoff_ms = 200;
};

class ReplicaLink {
 public:
  /// `runtime` must already be a replica (DemoteToReplica) and stays
  /// alive longer than the link; `runtime_mu` is the server's runtime
  /// lock (exclusive for every apply).
  ReplicaLink(AccessRuntime* runtime, std::shared_mutex* runtime_mu,
              std::string host, uint16_t port, ReplicaLinkOptions options = {});
  ~ReplicaLink();

  ReplicaLink(const ReplicaLink&) = delete;
  ReplicaLink& operator=(const ReplicaLink&) = delete;

  void Start();
  void Stop();

  /// Re-targets the upstream (the survivor-reconnect step of a
  /// failover): drops the current stream and redials host:port.
  void Repoint(const std::string& host, uint16_t port);

  // --- Introspection ---------------------------------------------------------

  /// Log records applied from the stream since Start (duplicates a
  /// reconnect re-shipped included — the runtime skipped those).
  uint64_t records_applied() const;

  /// Stream frames dropped by the fencing gate (stale epoch).
  uint64_t fenced_frames() const;

  /// True while a subscription is live (welcome received, stream open).
  bool connected() const;

  /// The last error that dropped a dial or a stream (OK when none has).
  Status last_error() const;

  /// The primary's per-shard durable positions from the latest
  /// kWatermarkAdvance — replica lag is this minus ReplicationPositions.
  std::vector<uint64_t> upstream_durable() const;

  /// Current upstream target.
  std::pair<std::string, uint16_t> upstream() const;

 private:
  void Run();
  /// One dial + subscription + stream, until it drops or stop/repoint.
  void RunOnce();
  void RecordError(Status status);
  /// Interruptible backoff sleep; false when stopping.
  bool Backoff();

  AccessRuntime* const runtime_;
  std::shared_mutex* const runtime_mu_;
  const ReplicaLinkOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string host_;
  uint16_t port_;
  uint64_t target_generation_ = 0;  // Bumped by Repoint.
  bool stop_ = false;
  bool started_ = false;
  std::unique_ptr<ServiceClient> client_;  // Shared only for ShutdownSocket.
  Status last_error_;
  std::vector<uint64_t> upstream_durable_;

  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> fenced_frames_{0};
  std::atomic<bool> connected_{false};

  std::thread thread_;
};

}  // namespace ltam

#endif  // LTAM_REPLICATION_REPLICA_LINK_H_
