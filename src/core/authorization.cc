// Copyright 2026 The LTAM Authors.

#include "core/authorization.h"

#include <algorithm>

#include "graph/multilevel_graph.h"
#include "util/string_util.h"

namespace ltam {

Result<LocationTemporalAuthorization> LocationTemporalAuthorization::Make(
    TimeInterval entry_duration, TimeInterval exit_duration,
    LocationAuthorization auth, int64_t max_entries) {
  if (!entry_duration.valid()) {
    return Status::InvalidArgument("entry duration " +
                                   entry_duration.ToString() + " is empty");
  }
  if (!exit_duration.valid()) {
    return Status::InvalidArgument("exit duration " +
                                   exit_duration.ToString() + " is empty");
  }
  // Definition 4: tos >= tis and toe >= tie — one cannot be required to
  // leave before one could have entered.
  if (exit_duration.start() < entry_duration.start()) {
    return Status::InvalidArgument(
        "exit duration " + exit_duration.ToString() +
        " starts before entry duration " + entry_duration.ToString());
  }
  if (exit_duration.end() < entry_duration.end()) {
    return Status::InvalidArgument(
        "exit duration " + exit_duration.ToString() +
        " ends before entry duration " + entry_duration.ToString());
  }
  if (auth.subject == kInvalidSubject) {
    return Status::InvalidArgument("authorization subject is unset");
  }
  if (auth.location == kInvalidLocation) {
    return Status::InvalidArgument("authorization location is unset");
  }
  if (max_entries < 1) {
    return Status::InvalidArgument(
        StrFormat("entry count must be in [1, inf); got %lld",
                  static_cast<long long>(max_entries)));
  }
  return LocationTemporalAuthorization(entry_duration, exit_duration, auth,
                                       max_entries);
}

Result<LocationTemporalAuthorization>
LocationTemporalAuthorization::MakeDefaultExit(TimeInterval entry_duration,
                                               LocationAuthorization auth,
                                               int64_t max_entries) {
  if (!entry_duration.valid()) {
    return Status::InvalidArgument("entry duration " +
                                   entry_duration.ToString() + " is empty");
  }
  // "If the exit duration is not specified, the default value will be
  // [tis, inf]."
  return Make(entry_duration, TimeInterval::From(entry_duration.start()),
              auth, max_entries);
}

std::optional<TimeInterval>
LocationTemporalAuthorization::GrantDuration(
    const TimeInterval& request_window) const {
  Chronon s = std::max(request_window.start(), entry_duration_.start());
  Chronon e = std::min(request_window.end(), entry_duration_.end());
  if (s > e) return std::nullopt;
  return TimeInterval(s, e);
}

std::optional<TimeInterval>
LocationTemporalAuthorization::DepartureDuration(
    const TimeInterval& request_window) const {
  Chronon s = std::max(request_window.start(), exit_duration_.start());
  Chronon e = exit_duration_.end();
  if (s > e) return std::nullopt;
  return TimeInterval(s, e);
}

std::string LocationTemporalAuthorization::ToString() const {
  std::string n = max_entries_ == kUnlimitedEntries
                      ? "inf"
                      : std::to_string(max_entries_);
  return "(" + entry_duration_.ToString() + ", " + exit_duration_.ToString() +
         ", (s" + std::to_string(auth_.subject) + ", l" +
         std::to_string(auth_.location) + "), " + n + ")";
}

std::string LocationTemporalAuthorization::ToString(
    const UserProfileDatabase& profiles,
    const MultilevelLocationGraph& graph) const {
  std::string subject = profiles.Exists(auth_.subject)
                            ? profiles.subject(auth_.subject).name
                            : "s" + std::to_string(auth_.subject);
  std::string location = graph.Exists(auth_.location)
                             ? graph.location(auth_.location).name
                             : "l" + std::to_string(auth_.location);
  std::string n = max_entries_ == kUnlimitedEntries
                      ? "inf"
                      : std::to_string(max_entries_);
  return "(" + entry_duration_.ToString() + ", " + exit_duration_.ToString() +
         ", (" + subject + ", " + location + "), " + n + ")";
}

}  // namespace ltam
