// Copyright 2026 The LTAM Authors.

#include "engine/baseline.h"

#include "util/logging.h"

namespace ltam {

CardReaderBaseline::CardReaderBaseline(AuthorizationDatabase* auth_db)
    : auth_db_(auth_db) {
  LTAM_CHECK(auth_db != nullptr);
}

Decision CardReaderBaseline::RequestEntry(Chronon t, SubjectId s,
                                          LocationId l) {
  ++requests_processed_;
  Decision d = auth_db_->CheckAndRecordAccess(t, s, l);
  if (d.granted) {
    ++requests_granted_;
  } else {
    alerts_.push_back(Alert{t, s, l, AlertType::kAccessDenied,
                            DenyReasonToString(d.reason)});
  }
  return d;
}

Status CardReaderBaseline::RequestExit(Chronon /*t*/, SubjectId /*s*/) {
  return Status::OK();
}

void CardReaderBaseline::ObservePresence(Chronon /*t*/, SubjectId /*s*/,
                                         LocationId /*l*/) {}

void CardReaderBaseline::Tick(Chronon /*t*/) {}

}  // namespace ltam
