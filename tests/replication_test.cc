// Copyright 2026 The LTAM Authors.
// The replicated-serving contract, end to end over real sockets:
//
//  * A read replica that subscribes to a primary catches up to the
//    primary's committed WAL stream, answers Query/Stats byte-identical
//    to it, and refuses every write with a structured redirect.
//  * Crash-promote-reconnect: the primary dies abruptly mid-sequence,
//    one replica is promoted through the wire (epoch bump), the other
//    is repointed at the survivor — and the decision stream observed
//    across the failover is byte-identical to a direct single-runtime
//    replay of the same batches, with both survivors converging to the
//    same movement state.
//  * Fencing: once a promotion happened, the stale-epoch ex-primary's
//    stream is provably rejected — a replica that has seen epoch N
//    parks rather than subscribe to an epoch N-1 upstream, and none of
//    the ex-primary's post-partition writes ever reach it.
//
// Each test wires nodes exactly the way ltam_serve --replica-of does:
// the embedding code owns the ReplicaLink and supplies the server's
// promote/repoint hooks. The whole suite runs under the TSan CI job —
// shipper threads, link threads, I/O loops, and the failover hooks
// exercise every replication lock.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "replication/epoch.h"
#include "replication/replica_link.h"
#include "runtime/access_runtime.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/graph_gen.h"
#include "sim/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace ltam {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kShards = 3;

struct World {
  MultilevelLocationGraph graph;
  UserProfileDatabase profiles;
  AuthorizationDatabase auth_db;
  std::vector<SubjectId> subjects;
};

World MakeWorld(uint64_t seed) {
  World w;
  w.graph = MakeGridGraph(5, 5).ValueOrDie();
  w.subjects = GenerateSubjects(&w.profiles, 24);
  Rng rng(seed);
  AuthWorkloadOptions opt;
  opt.coverage = 0.6;
  opt.horizon = 400;
  opt.min_len = 20;
  opt.max_len = 120;
  opt.max_entries = 3;
  GenerateAuthorizations(w.graph, w.subjects, opt, &rng, &w.auth_db);
  return w;
}

SystemState StateOf(const World& w) {
  SystemState state;
  state.graph = w.graph;
  state.profiles = w.profiles;
  state.auth_db = w.auth_db;
  return state;
}

std::vector<std::vector<AccessEvent>> MakeBatches(const World& w,
                                                  size_t total_events,
                                                  uint64_t seed) {
  Rng rng(seed);
  BatchWorkloadOptions opt;
  opt.batch_size = 40;
  opt.exit_fraction = 0.15;
  opt.observe_fraction = 0.15;
  return GenerateEventBatches(w.graph, w.subjects, total_events, opt, &rng);
}

std::string DecisionBytes(const std::vector<Decision>& decisions) {
  std::string out;
  for (const Decision& d : decisions) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

/// Renders a query answer OR its error — a replica must agree with the
/// primary on both.
std::string Render(const Result<QueryResult>& r) {
  return r.ok() ? r->ToString() : r.status().ToString();
}

/// One server node, wired the way ltam_serve --replica-of wires it: the
/// node owns the runtime, the server, and (replica only) the upstream
/// link, and supplies the promote/repoint hooks that retire the link.
struct Node {
  std::string dir;
  std::unique_ptr<AccessRuntime> runtime;
  std::unique_ptr<ServiceServer> server;
  std::mutex link_mu;
  std::unique_ptr<ReplicaLink> link;
  uint16_t port = 0;

  /// upstream_port < 0 starts a primary; otherwise a replica following
  /// 127.0.0.1:upstream_port. `advertise_primary` mirrors what
  /// ltam_serve always does: write refusals carry the structured
  /// [primary=...] token, kept current across repoints and cleared on
  /// promotion. Default off so refusal-shape tests see the bare error.
  void Start(const World& w, const std::string& d, int upstream_port,
             bool advertise_primary = false) {
    dir = d;
    fs::create_directories(dir);
    RuntimeOptions options;
    options.num_shards = kShards;
    options.durable_dir = dir;
    Result<std::unique_ptr<AccessRuntime>> opened =
        AccessRuntime::Open(StateOf(w), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    runtime = std::move(opened).ValueOrDie();
    ServerOptions server_options;
    if (upstream_port >= 0) {
      ASSERT_OK(runtime->DemoteToReplica());
      if (advertise_primary) {
        runtime->SetPrimaryRedirect("127.0.0.1:" +
                                    std::to_string(upstream_port));
      }
      server_options.promote_hook = [this]() -> Result<uint64_t> {
        std::unique_ptr<ReplicaLink> retiring;
        {
          std::lock_guard<std::mutex> lock(link_mu);
          retiring = std::move(link);
        }
        // Outside the runtime lock: the link thread may need it to
        // finish an in-flight apply before it can join.
        if (retiring != nullptr) retiring->Stop();
        std::unique_lock<std::shared_mutex> wlock(server->runtime_mutex());
        Result<uint64_t> epoch = runtime->Promote();
        if (epoch.ok()) runtime->SetPrimaryRedirect("");
        return epoch;
      };
      server_options.repoint_hook = [this, advertise_primary](
                                        const std::string& host,
                                        uint16_t p) -> Status {
        std::lock_guard<std::mutex> lock(link_mu);
        if (link == nullptr) {
          return Status::FailedPrecondition(
              "not following an upstream (already promoted?)");
        }
        link->Repoint(host, p);
        if (advertise_primary) {
          std::unique_lock<std::shared_mutex> wlock(server->runtime_mutex());
          runtime->SetPrimaryRedirect(host + ":" + std::to_string(p));
        }
        return Status::OK();
      };
    }
    server = std::make_unique<ServiceServer>(runtime.get(), server_options);
    ASSERT_OK(server->Start());
    port = server->bound_port();
    if (upstream_port >= 0) {
      ReplicaLinkOptions link_options;
      link_options.reconnect_backoff_ms = 25;  // Fast retries for tests.
      auto fresh = std::make_unique<ReplicaLink>(
          runtime.get(), &server->runtime_mutex(), "127.0.0.1",
          static_cast<uint16_t>(upstream_port), link_options);
      fresh->Start();
      std::lock_guard<std::mutex> lock(link_mu);
      link = std::move(fresh);
    }
  }

  void Stop() {
    std::unique_ptr<ReplicaLink> retiring;
    {
      std::lock_guard<std::mutex> lock(link_mu);
      retiring = std::move(link);
    }
    if (retiring != nullptr) retiring->Stop();
    if (server != nullptr) server->Stop();
  }

  Status LinkError() {
    std::lock_guard<std::mutex> lock(link_mu);
    return link == nullptr ? Status::OK() : link->last_error();
  }

  uint64_t LinkApplied() {
    std::lock_guard<std::mutex> lock(link_mu);
    return link == nullptr ? 0 : link->records_applied();
  }
};

/// Polls `client`'s remote Stats until `pred` holds; fails the test
/// (and returns the last observation) after ~10s.
RuntimeStats AwaitStats(ServiceClient* client,
                        const std::function<bool(const RuntimeStats&)>& pred,
                        const std::string& what) {
  RuntimeStats last;
  for (int i = 0; i < 500; ++i) {
    Result<RuntimeStats> stats = client->Stats();
    if (stats.ok()) {
      last = *stats;
      if (pred(last)) return last;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ADD_FAILURE() << "timed out waiting for " << what
                << " (applied_offset=" << last.applied_offset
                << ", replication_epoch=" << last.replication_epoch << ")";
  return last;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/ltam_replication_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST(ReplicationEpochTest, PersistedEpochRoundTripsAndGatesFence) {
  const std::string dir = ::testing::TempDir() + "/ltam_repl_epoch";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Never persisted reads as 0: pre-replication directories upgrade in
  // place.
  ASSERT_OK_AND_ASSIGN(uint64_t fresh, LoadReplicationEpoch(dir));
  EXPECT_EQ(0u, fresh);
  ASSERT_OK(StoreReplicationEpoch(dir, 7));
  ASSERT_OK_AND_ASSIGN(uint64_t loaded, LoadReplicationEpoch(dir));
  EXPECT_EQ(7u, loaded);

  // A present-but-corrupt file is an error, not a 0 — silently
  // restarting a fenced primary at epoch 0 would defeat the gate.
  {
    std::ofstream out(dir + "/" + ReplicationEpochFileName(),
                      std::ios::binary | std::ios::trunc);
    out << "not-a-number\n";
  }
  EXPECT_FALSE(LoadReplicationEpoch(dir).ok());

  // The primary-side gate: a hello ABOVE the local epoch means this
  // primary has been superseded.
  EXPECT_OK(CheckSubscriptionEpoch(5, 5));
  EXPECT_OK(CheckSubscriptionEpoch(5, 4));
  Status superseded = CheckSubscriptionEpoch(5, 6);
  EXPECT_TRUE(superseded.IsFailedPrecondition()) << superseded.ToString();
  EXPECT_NE(superseded.ToString().find("fenced"), std::string::npos);

  // The replica-side gate: a frame BELOW the local epoch is from a
  // fenced ex-primary; equal and higher flow.
  EXPECT_OK(CheckStreamEpoch(5, 5));
  EXPECT_OK(CheckStreamEpoch(5, 9));
  Status stale = CheckStreamEpoch(5, 4);
  EXPECT_TRUE(stale.IsFailedPrecondition()) << stale.ToString();
  EXPECT_NE(stale.ToString().find("fenced"), std::string::npos);

  fs::remove_all(dir);
}

TEST_F(ReplicationTest, ReplicaCatchesUpServesReadsAndRefusesWrites) {
  World w = MakeWorld(3101);
  auto batches = MakeBatches(w, /*total_events=*/480, 3109);

  Node primary;
  Node replica;
  primary.Start(w, root_ + "/primary", -1);
  replica.Start(w, root_ + "/replica", primary.port);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> primary_client,
                       ServiceClient::Connect("127.0.0.1", primary.port));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> replica_client,
                       ServiceClient::Connect("127.0.0.1", replica.port));

  // A replica refuses writes with a structured redirect — batch and
  // single-event paths both, before any traffic has flowed.
  Result<WireBatchResult> refused = replica_client->ApplyBatch(batches[0]);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition())
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("replica"), std::string::npos)
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("primary"), std::string::npos)
      << "the refusal must redirect to the primary, got: "
      << refused.status().ToString();
  Result<WireBatchResult> single = replica_client->Apply(batches[0][0]);
  ASSERT_FALSE(single.ok());
  EXPECT_TRUE(single.status().IsFailedPrecondition())
      << single.status().ToString();

  // Ingest through the primary; the shipper streams committed records.
  size_t fed = 0;
  for (const auto& batch : batches) {
    ASSERT_OK(primary_client->ApplyBatch(batch).status());
    fed += batch.size();
  }
  RuntimeStats caught = AwaitStats(
      replica_client.get(),
      [&](const RuntimeStats& s) { return s.applied_offset == fed; },
      "replica catch-up to " + std::to_string(fed) + " records");
  EXPECT_TRUE(caught.replica);
  EXPECT_EQ(0u, caught.replication_epoch);

  // Per-shard positions agree with the primary's own watermarks.
  ASSERT_OK_AND_ASSIGN(RuntimeStats primary_stats, primary_client->Stats());
  EXPECT_FALSE(primary_stats.replica);
  ASSERT_EQ(primary_stats.shard_watermarks.size(),
            caught.shard_watermarks.size());
  for (size_t k = 0; k < caught.shard_watermarks.size(); ++k) {
    EXPECT_EQ(primary_stats.shard_watermarks[k].applied,
              caught.shard_watermarks[k].applied)
        << "shard " << k;
    EXPECT_LE(caught.shard_watermarks[k].durable,
              caught.shard_watermarks[k].applied)
        << "shard " << k;
  }

  // Live remote reads answer byte-identical over both runtimes.
  for (size_t i = 0; i < w.subjects.size(); ++i) {
    for (Chronon t : {60, 150, 240, 390}) {
      const std::string statement =
          "WHERE WAS u" + std::to_string(i) + " AT " + std::to_string(t);
      EXPECT_EQ(Render(primary_client->Query(statement)),
                Render(replica_client->Query(statement)))
          << statement;
    }
  }

  primary_client.reset();
  replica_client.reset();
  replica.Stop();
  primary.Stop();
  for (SubjectId s : w.subjects) {
    EXPECT_EQ(primary.runtime->movements().CurrentLocation(s),
              replica.runtime->movements().CurrentLocation(s))
        << "subject " << s;
  }
}

/// Grabs an ephemeral port the kernel just released — connecting to it
/// refuses fast, which is what the failed-redirect leg needs.
uint16_t ClosedPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0, ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  socklen_t len = sizeof(addr);
  EXPECT_EQ(0, ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len));
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST_F(ReplicationTest, ClientFollowsStructuredPrimaryRedirect) {
  World w = MakeWorld(6401);
  auto batches = MakeBatches(w, /*total_events=*/160, 6407);
  ASSERT_GE(batches.size(), 2u);

  Node primary;
  Node replica;
  primary.Start(w, root_ + "/primary", -1);
  replica.Start(w, root_ + "/replica", primary.port,
                /*advertise_primary=*/true);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> client,
                       ServiceClient::Connect("127.0.0.1", replica.port));

  // The replica's refusal names the primary; the client re-dials it and
  // the write lands — one redirect, no error surfaced to the caller.
  ASSERT_OK_AND_ASSIGN(WireBatchResult first, client->ApplyBatch(batches[0]));
  EXPECT_EQ(batches[0].size(), first.decisions.size());
  EXPECT_EQ(1u, client->client_stats().redirects_followed);
  EXPECT_EQ(0u, client->client_stats().redirect_dial_failures);

  // The client now talks to the primary directly: further writes do not
  // redirect again, and Stats reports the primary role.
  ASSERT_OK(client->Apply(batches[1][0]).status());
  EXPECT_EQ(1u, client->client_stats().redirects_followed);
  ASSERT_OK_AND_ASSIGN(RuntimeStats role, client->Stats());
  EXPECT_FALSE(role.replica);

  // The redirected writes replicate back to the node the client first
  // dialed — the redirect did not fork the write path.
  const size_t fed = batches[0].size() + 1;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> replica_client,
                       ServiceClient::Connect("127.0.0.1", replica.port));
  AwaitStats(
      replica_client.get(),
      [&](const RuntimeStats& s) { return s.applied_offset == fed; },
      "replica catch-up behind the redirected writes");

  // A refusal naming an unreachable primary surfaces unchanged: repoint
  // the replica (the advertised hint chases the link) at a port nobody
  // listens on, then write through it again.
  ASSERT_OK(replica_client->Repoint("127.0.0.1", ClosedPort()));
  Result<WireBatchResult> refused = replica_client->ApplyBatch(batches[0]);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsFailedPrecondition())
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("[primary="), std::string::npos)
      << "the structured token must survive a failed follow: "
      << refused.status().ToString();
  EXPECT_EQ(0u, replica_client->client_stats().redirects_followed);
  EXPECT_EQ(1u, replica_client->client_stats().redirect_dial_failures);

  client.reset();
  replica_client.reset();
  replica.Stop();
  primary.Stop();
}

TEST_F(ReplicationTest, CrashPromoteRepointPreservesByteIdenticalDecisions) {
  World w = MakeWorld(4201);
  auto batches = MakeBatches(w, /*total_events=*/600, 4211);
  ASSERT_GE(batches.size(), 4u);
  const size_t cut = batches.size() / 2;

  Node primary;
  Node replica1;
  Node replica2;
  primary.Start(w, root_ + "/primary", -1);
  replica1.Start(w, root_ + "/replica1", primary.port);
  replica2.Start(w, root_ + "/replica2", primary.port);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> primary_client,
                       ServiceClient::Connect("127.0.0.1", primary.port));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> r1_client,
                       ServiceClient::Connect("127.0.0.1", replica1.port));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> r2_client,
                       ServiceClient::Connect("127.0.0.1", replica2.port));

  // First half of the sequence through the doomed primary; collect the
  // decision stream the client observed.
  std::vector<std::string> decisions;
  size_t fed = 0;
  for (size_t k = 0; k < cut; ++k) {
    ASSERT_OK_AND_ASSIGN(WireBatchResult r,
                         primary_client->ApplyBatch(batches[k]));
    decisions.push_back(DecisionBytes(r.decisions));
    fed += batches[k].size();
  }
  auto caught_up = [&](const RuntimeStats& s) {
    return s.applied_offset == fed;
  };
  AwaitStats(r1_client.get(), caught_up, "replica1 pre-crash catch-up");
  AwaitStats(r2_client.get(), caught_up, "replica2 pre-crash catch-up");

  // The primary dies abruptly: no checkpoint, its clients unceremoniously
  // cut off.
  primary_client.reset();
  primary.Stop();
  primary.runtime.reset();

  // Failover, all through the wire: promote one survivor, repoint the
  // other at it.
  ASSERT_OK_AND_ASSIGN(uint64_t epoch, r1_client->Promote());
  EXPECT_EQ(1u, epoch);
  ASSERT_OK(r2_client->Repoint("127.0.0.1", replica1.port));

  // The promoted node accepts the remainder of the sequence.
  for (size_t k = cut; k < batches.size(); ++k) {
    ASSERT_OK_AND_ASSIGN(WireBatchResult r, r1_client->ApplyBatch(batches[k]));
    decisions.push_back(DecisionBytes(r.decisions));
    fed += batches[k].size();
  }
  RuntimeStats converged = AwaitStats(
      r2_client.get(),
      [&](const RuntimeStats& s) {
        return s.applied_offset == fed && s.replication_epoch == 1;
      },
      "replica2 post-failover convergence");
  EXPECT_TRUE(converged.replica);
  ASSERT_OK_AND_ASSIGN(RuntimeStats promoted, r1_client->Stats());
  EXPECT_FALSE(promoted.replica) << "promotion re-enables writes";
  EXPECT_EQ(1u, promoted.replication_epoch);

  // The acceptance gate: the decision stream observed ACROSS the
  // failover is byte-identical to a direct single-runtime replay.
  RuntimeOptions reference_options;
  reference_options.num_shards = kShards;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<AccessRuntime> reference,
                       AccessRuntime::Open(StateOf(w), reference_options));
  for (size_t k = 0; k < batches.size(); ++k) {
    ASSERT_OK_AND_ASSIGN(BatchResult r, reference->ApplyBatch(batches[k]));
    EXPECT_EQ(DecisionBytes(r.decisions), decisions[k])
        << "decision stream diverged at batch " << k
        << (k < cut ? " (old primary)" : " (promoted survivor)");
  }

  // Both survivors answer live reads identically.
  for (size_t i = 0; i < w.subjects.size(); ++i) {
    const std::string statement = "WHERE WAS u" + std::to_string(i) +
                                  " AT 200";
    EXPECT_EQ(Render(r1_client->Query(statement)),
              Render(r2_client->Query(statement)))
        << statement;
  }

  r1_client.reset();
  r2_client.reset();
  replica1.Stop();
  replica2.Stop();
  for (SubjectId s : w.subjects) {
    EXPECT_EQ(reference->movements().CurrentLocation(s),
              replica1.runtime->movements().CurrentLocation(s))
        << "promoted survivor diverged on subject " << s;
    EXPECT_EQ(reference->movements().CurrentLocation(s),
              replica2.runtime->movements().CurrentLocation(s))
        << "repointed survivor diverged on subject " << s;
  }
}

TEST_F(ReplicationTest, StaleEpochPrimaryIsFencedAndSurvivorRecovers) {
  World w = MakeWorld(5301);
  auto batches = MakeBatches(w, /*total_events=*/320, 5303);
  ASSERT_GE(batches.size(), 7u);

  // A split-brain rehearsal: A keeps running at epoch 0 while B is
  // promoted to epoch 1 behind its back.
  Node a;
  Node b;
  Node c;
  a.Start(w, root_ + "/a", -1);
  b.Start(w, root_ + "/b", a.port);
  c.Start(w, root_ + "/c", a.port);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> a_client,
                       ServiceClient::Connect("127.0.0.1", a.port));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> b_client,
                       ServiceClient::Connect("127.0.0.1", b.port));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<ServiceClient> c_client,
                       ServiceClient::Connect("127.0.0.1", c.port));

  size_t fed = 0;
  for (size_t k = 0; k < 4; ++k) {
    ASSERT_OK(a_client->ApplyBatch(batches[k]).status());
    fed += batches[k].size();
  }
  auto caught_up = [&](const RuntimeStats& s) {
    return s.applied_offset == fed;
  };
  AwaitStats(b_client.get(), caught_up, "b catch-up");
  AwaitStats(c_client.get(), caught_up, "c catch-up");

  ASSERT_OK_AND_ASSIGN(uint64_t epoch, b_client->Promote());
  EXPECT_EQ(1u, epoch);
  ASSERT_OK(c_client->Repoint("127.0.0.1", b.port));
  ASSERT_OK(b_client->ApplyBatch(batches[4]).status());
  fed += batches[4].size();
  AwaitStats(
      c_client.get(),
      [&](const RuntimeStats& s) {
        return s.applied_offset == fed && s.replication_epoch == 1;
      },
      "c following the promoted b");

  // Point C at the fenced ex-primary. Its hello (epoch 1) tells A
  // (epoch 0) it has been superseded; A must refuse the subscription
  // and C must park rather than regress.
  ASSERT_OK(c_client->Repoint("127.0.0.1", a.port));
  // A — unaware of the promotion — keeps accepting writes...
  ASSERT_OK(a_client->ApplyBatch(batches[5]).status());
  bool fenced = false;
  for (int i = 0; i < 500 && !fenced; ++i) {
    Status err = c.LinkError();
    fenced = !err.ok() && err.IsFailedPrecondition() &&
             err.ToString().find("fenced") != std::string::npos;
    if (!fenced) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(fenced) << "expected a fencing refusal, last link error: "
                      << c.LinkError().ToString();
  // ...and none of them may ever reach C: after several reconnect
  // cycles it still holds exactly the promoted lineage.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_OK_AND_ASSIGN(RuntimeStats c_stats, c_client->Stats());
  EXPECT_EQ(fed, c_stats.applied_offset)
      << "a fenced upstream's writes leaked into the replica";
  EXPECT_EQ(1u, c_stats.replication_epoch);

  // Repointed back to the true primary, the survivor resumes cleanly.
  ASSERT_OK(c_client->Repoint("127.0.0.1", b.port));
  ASSERT_OK(b_client->ApplyBatch(batches[6]).status());
  fed += batches[6].size();
  AwaitStats(
      c_client.get(),
      [&](const RuntimeStats& s) { return s.applied_offset == fed; },
      "c resuming from the true primary");

  a_client.reset();
  b_client.reset();
  c_client.reset();
  c.Stop();
  b.Stop();
  a.Stop();
}

}  // namespace
}  // namespace ltam
